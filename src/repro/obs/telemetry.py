"""Wall-clock metrics registry: counters, gauges, histograms.

Everything else in :mod:`repro.obs` observes the *simulated* machine;
this module observes the *host* runtime around it — the serve layer's
request flow, the engine's dispatch/batch/retry dynamics, the charge
buffer's flush behaviour.  It is deliberately dependency-free (no
prometheus_client): a :class:`MetricsRegistry` holds labeled
:class:`Counter` / :class:`Gauge` / :class:`Histogram` families, is
thread-safe behind one lock, and serializes to a JSON-safe *families*
snapshot that :mod:`repro.obs.expo` renders as Prometheus text
exposition (and parses back, strictly).

Process model: a registry is process-local.  Pool workers are separate
processes, so worker-side metrics (the charge-buffer family) ride the
existing worker payload protocol: :func:`MetricsRegistry.drain` empties
the worker's registry into a families snapshot that travels home with
the job result, and :func:`MetricsRegistry.merge` folds it into the
parent's registry — counters and histogram buckets add, gauges follow
their declared merge mode.

Invisibility contract: nothing here may touch simulated metrics.  The
registry records wall-clock observations in its own structures only;
``canonical_report_json`` stays byte-identical with telemetry enabled
(pinned by ``tests/test_telemetry_parity.py`` for all 32 benchmarks).

The ``REPRO_TELEMETRY=0`` environment kill switch (or
:func:`set_enabled`) turns every instrumentation site into a cheap
boolean check without touching call sites.
"""

from __future__ import annotations

import os
import re
import threading
from bisect import bisect_left
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

#: Fixed log-spaced latency buckets, seconds.  A 1-2.5-5 decade ladder
#: from 100 us to 60 s: fine enough to place a p99 within ~2x, coarse
#: enough that every histogram series stays 19 buckets wide forever
#: (bounded cardinality is part of the exposition contract).
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Power-of-two size buckets for count-valued histograms (batch
#: members, charge-buffer flush entries).
SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384,
)

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_ENV_DISABLE = "REPRO_TELEMETRY"

_enabled = os.environ.get(_ENV_DISABLE, "1").lower() not in ("0", "false", "no")


def enabled() -> bool:
    """Whether instrumentation sites should record (the kill switch)."""
    return _enabled


def set_enabled(value: bool) -> bool:
    """Flip the kill switch; returns the previous state (tests)."""
    global _enabled
    previous = _enabled
    _enabled = bool(value)
    return previous


class disabled:
    """Context manager: telemetry off inside the block (tests)."""

    def __enter__(self) -> "disabled":
        self._previous = set_enabled(False)
        return self

    def __exit__(self, *exc) -> None:
        set_enabled(self._previous)


def _check_name(name: str) -> str:
    if not _METRIC_NAME_RE.match(name):
        raise ValueError(f"bad metric name {name!r}")
    return name


def _check_labels(label_names: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(label_names)
    for name in names:
        if not _LABEL_NAME_RE.match(name) or name == "le":
            raise ValueError(f"bad label name {name!r}")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate label names in {names!r}")
    return names


class _Child:
    """One labeled series of a metric family."""

    __slots__ = ("_metric", "_key")

    def __init__(self, metric: "Metric", key: Tuple[str, ...]) -> None:
        self._metric = metric
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        """Add to a counter (or gauge) series."""
        self._metric._inc(self._key, amount)

    def set(self, value: float) -> None:
        """Set a gauge series (or a counter fed by a collector whose
        source is itself monotone, e.g. ``ServerCounters``)."""
        self._metric._set(self._key, value)

    def observe(self, value: float) -> None:
        """Record one observation into a histogram series."""
        self._metric._observe(self._key, value)

    @property
    def value(self) -> float:
        """Current scalar value (counter/gauge)."""
        return self._metric._value(self._key)


class Metric:
    """One metric family: a name, a kind, and its labeled series.

    Series are created lazily by :meth:`labels`; an unlabeled family is
    the single series with the empty label tuple (the family object
    itself supports ``inc``/``set``/``observe`` directly).
    """

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        kind: str,
        label_names: Tuple[str, ...],
        *,
        buckets: Optional[Tuple[float, ...]] = None,
        merge: str = "sum",
    ) -> None:
        self._registry = registry
        self.name = _check_name(name)
        self.help = help_text
        self.kind = kind
        self.label_names = _check_labels(label_names)
        self.merge = merge
        if kind == "histogram":
            if not buckets or sorted(buckets) != list(buckets):
                raise ValueError(f"{name}: buckets must be sorted, non-empty")
            self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        else:
            self.buckets = ()
        #: label-value tuple -> float, or [bucket counts..., +Inf] lists
        self._scalars: Dict[Tuple[str, ...], float] = {}
        self._hist: Dict[Tuple[str, ...], List[float]] = {}
        self._sums: Dict[Tuple[str, ...], float] = {}

    # -- series access ---------------------------------------------------
    def labels(self, **labels: str) -> _Child:
        """The series for one label-value assignment."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        return _Child(self, key)

    def _default(self) -> _Child:
        if self.label_names:
            raise ValueError(f"{self.name}: labels required")
        return _Child(self, ())

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    @property
    def value(self) -> float:
        return self._default().value

    # -- series mutation (under the registry lock) -----------------------
    def _inc(self, key: Tuple[str, ...], amount: float) -> None:
        if self.kind == "histogram":
            raise TypeError(f"{self.name}: histograms take observe()")
        if self.kind == "counter" and amount < 0:
            raise ValueError(f"{self.name}: counters only go up")
        with self._registry._lock:
            self._scalars[key] = self._scalars.get(key, 0.0) + amount

    def _set(self, key: Tuple[str, ...], value: float) -> None:
        if self.kind == "histogram":
            raise TypeError(f"{self.name}: histograms take observe()")
        with self._registry._lock:
            self._scalars[key] = float(value)

    def _observe(self, key: Tuple[str, ...], value: float) -> None:
        if self.kind != "histogram":
            raise TypeError(f"{self.name}: observe() is histogram-only")
        value = float(value)
        with self._registry._lock:
            counts = self._hist.get(key)
            if counts is None:
                counts = [0.0] * (len(self.buckets) + 1)
                self._hist[key] = counts
                self._scalars[key] = 0.0
                self._sums[key] = 0.0
            counts[bisect_left(self.buckets, value)] += 1
            self._scalars[key] += 1
            self._sums[key] += value

    def _value(self, key: Tuple[str, ...]) -> float:
        with self._registry._lock:
            return self._scalars.get(key, 0.0)

    # -- snapshot (caller holds the registry lock) -----------------------
    def _snapshot_series(self) -> List[Dict]:
        series: List[Dict] = []
        if self.kind == "histogram":
            for key in sorted(self._hist):
                counts = self._hist[key]
                cumulative: List[List[float]] = []
                running = 0.0
                for le, n in zip(self.buckets, counts):
                    running += n
                    cumulative.append([le, running])
                running += counts[-1]
                cumulative.append([float("inf"), running])
                series.append(
                    {
                        "labels": dict(zip(self.label_names, key)),
                        "buckets": cumulative,
                        "sum": self._sums[key],
                        "count": self._scalars.get(key, 0.0),
                    }
                )
        else:
            for key in sorted(self._scalars):
                series.append(
                    {
                        "labels": dict(zip(self.label_names, key)),
                        "value": self._scalars[key],
                    }
                )
        return series

    def _reset(self) -> None:
        self._scalars.clear()
        self._hist.clear()
        self._sums.clear()


class MetricsRegistry:
    """A process-local family of metrics plus its collect hooks.

    *Collectors* are callbacks invoked at every :meth:`collect` before
    the snapshot is taken; they refresh metrics whose source of truth
    lives elsewhere (``ServerCounters``, queue depths, pool
    generations) so a scrape reconciles exactly (``==``) with that
    state instead of tracking a parallel tally that could drift.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: Dict[str, Metric] = {}
        self._collectors: List[Callable[[], None]] = []

    # -- declaration -----------------------------------------------------
    def _declare(self, name: str, help_text: str, kind: str, labels, **kw):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind or existing.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} re-declared as {kind} "
                        f"{tuple(labels)} (was {existing.kind} "
                        f"{existing.label_names})"
                    )
                return existing
            metric = Metric(self, name, help_text, kind, tuple(labels), **kw)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help_text: str, labels: Sequence[str] = ()
    ) -> Metric:
        """Declare (or fetch) a monotone counter family."""
        return self._declare(name, help_text, "counter", labels)

    def gauge(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str] = (),
        *,
        merge: str = "last",
    ) -> Metric:
        """Declare (or fetch) a gauge family.

        ``merge`` governs cross-process folding: ``last`` (incoming
        value wins), ``sum`` or ``max``.
        """
        if merge not in ("last", "sum", "max"):
            raise ValueError(f"bad gauge merge mode {merge!r}")
        return self._declare(name, help_text, "gauge", labels, merge=merge)

    def histogram(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str] = (),
        *,
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
    ) -> Metric:
        """Declare (or fetch) a histogram family with fixed buckets."""
        return self._declare(
            name, help_text, "histogram", labels, buckets=tuple(buckets)
        )

    def add_collector(self, collector: Callable[[], None]) -> None:
        """Register a refresh hook run at every :meth:`collect`."""
        with self._lock:
            self._collectors.append(collector)

    # -- snapshot / merge ------------------------------------------------
    def collect(self) -> Dict[str, Dict]:
        """JSON-safe families snapshot (collectors run first).

        Shape: ``{name: {type, help, label_names, buckets?, series}}``
        with each series carrying ``labels`` plus either ``value`` or
        cumulative ``buckets``/``sum``/``count`` — the same shape
        :func:`repro.obs.expo.parse_exposition` returns.
        """
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector()
        families: Dict[str, Dict] = {}
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                family: Dict[str, object] = {
                    "type": metric.kind,
                    "help": metric.help,
                    "label_names": list(metric.label_names),
                    "series": metric._snapshot_series(),
                }
                if metric.kind == "histogram":
                    family["buckets"] = list(metric.buckets)
                families[name] = family
        return families

    def drain(self, prefix: Optional[str] = None) -> Dict[str, Dict]:
        """Snapshot then reset matching metrics (worker shipping).

        Collectors do *not* run (a worker's derived state stays local);
        only families with recorded series are returned, so an idle
        worker ships nothing.  Gauges are level metrics, not deltas —
        they stay put and are not shipped.  ``prefix`` restricts the
        drain to one namespace — the pool protocol drains only
        ``repro_charge_``.
        """
        families: Dict[str, Dict] = {}
        with self._lock:
            for name in sorted(self._metrics):
                if prefix is not None and not name.startswith(prefix):
                    continue
                metric = self._metrics[name]
                if metric.kind == "gauge":
                    continue
                series = metric._snapshot_series()
                if not series:
                    continue
                family: Dict[str, object] = {
                    "type": metric.kind,
                    "help": metric.help,
                    "label_names": list(metric.label_names),
                    "series": series,
                }
                if metric.kind == "histogram":
                    family["buckets"] = list(metric.buckets)
                families[name] = family
                if metric.kind != "gauge":
                    metric._reset()
        return families

    def merge(self, families: Mapping[str, Mapping]) -> None:
        """Fold a families snapshot from another process into this one.

        Counters and histogram buckets add; gauges follow their merge
        mode (incoming families declare metrics absent here).
        """
        for name, family in families.items():
            kind = family["type"]
            labels = tuple(family.get("label_names", ()))
            if kind == "histogram":
                metric = self.histogram(
                    name,
                    family.get("help", ""),
                    labels,
                    buckets=tuple(family.get("buckets", LATENCY_BUCKETS_S)),
                )
                self._merge_histogram(metric, family)
            elif kind == "gauge":
                metric = self.gauge(name, family.get("help", ""), labels)
                self._merge_scalar(metric, family, metric.merge)
            else:
                metric = self.counter(name, family.get("help", ""), labels)
                self._merge_scalar(metric, family, "sum")

    def _merge_scalar(self, metric: Metric, family: Mapping, mode: str) -> None:
        with self._lock:
            for entry in family["series"]:
                key = tuple(
                    str(entry["labels"][n]) for n in metric.label_names
                )
                incoming = float(entry["value"])
                if mode == "sum":
                    metric._scalars[key] = (
                        metric._scalars.get(key, 0.0) + incoming
                    )
                elif mode == "max":
                    metric._scalars[key] = max(
                        metric._scalars.get(key, incoming), incoming
                    )
                else:
                    metric._scalars[key] = incoming

    def _merge_histogram(self, metric: Metric, family: Mapping) -> None:
        with self._lock:
            for entry in family["series"]:
                key = tuple(
                    str(entry["labels"][n]) for n in metric.label_names
                )
                incoming = entry["buckets"]
                finite = [b for b in incoming if b[0] != float("inf")]
                if [b[0] for b in finite] != list(metric.buckets):
                    raise ValueError(
                        f"{metric.name}: bucket layout mismatch on merge"
                    )
                counts = metric._hist.get(key)
                if counts is None:
                    counts = [0.0] * (len(metric.buckets) + 1)
                    metric._hist[key] = counts
                    metric._scalars[key] = 0.0
                    metric._sums[key] = 0.0
                # de-cumulate the incoming snapshot back to per-bucket
                previous = 0.0
                for position, (_, cumulative) in enumerate(incoming):
                    counts[position] += cumulative - previous
                    previous = cumulative
                metric._scalars[key] += float(entry["count"])
                metric._sums[key] += float(entry["sum"])

    def reset(self) -> None:
        """Zero every series of every metric (tests)."""
        with self._lock:
            for metric in self._metrics.values():
                metric._reset()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global default registry.

    CLI-local instrumentation (engine runs, campaign sweeps, the charge
    buffer inside workers) lands here; the serve layer gives each
    :class:`~repro.serve.server.ServeApp` its own registry instead so
    ``GET /metrics`` describes exactly one server instance.
    """
    return _REGISTRY


__all__ = [
    "LATENCY_BUCKETS_S",
    "SIZE_BUCKETS",
    "Metric",
    "MetricsRegistry",
    "disabled",
    "enabled",
    "get_registry",
    "set_enabled",
]
