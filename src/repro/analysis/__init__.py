"""Analysis tools over suite runs.

The DPF paper positions its tables as "a primary guide in selecting
the appropriate code … according to a given set of goals and criteria"
(§1).  This package provides the programmatic counterparts:

* :mod:`repro.analysis.ratios` — computation-to-communication ratio
  and grain-size analysis per benchmark (the paper's attributes (5)
  and (6) turned into comparable numbers);
* :mod:`repro.analysis.compare` — environment comparisons: run the
  suite on two machine/tier configurations, rank winners, locate
  crossover problem sizes;
* :mod:`repro.analysis.trace` — export the recorded communication
  events as a structured trace for external tooling.
"""

from repro.analysis.bandwidth import BandwidthFit, measure_bisection_bandwidth
from repro.analysis.compare import EnvironmentComparison, compare_environments, find_crossover
from repro.analysis.ratios import RatioSummary, comm_to_comp_ratio, grain_size
from repro.analysis.trace import comm_trace, trace_to_json

__all__ = [
    "BandwidthFit",
    "EnvironmentComparison",
    "RatioSummary",
    "comm_to_comp_ratio",
    "comm_trace",
    "compare_environments",
    "find_crossover",
    "grain_size",
    "measure_bisection_bandwidth",
    "trace_to_json",
]
