"""Property-based tests of collective-communication algebra.

These pin the invariants downstream code relies on: shifts compose and
invert, transposition is an involution, remapping changes cost but not
value, spreads and reductions are adjoint, and stencils are linear.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Session, cm5
from repro.array import from_numpy
from repro.comm.gather_scatter import gather, scatter
from repro.comm.primitives import (
    cshift,
    eoshift,
    reduce_array,
    remap,
    spread,
    transpose,
)
from repro.comm.scan import scan, segmented_scan
from repro.comm.stencil import stencil_apply


def _session():
    return Session(cm5(8))


class TestShiftAlgebra:
    @given(
        n=st.integers(2, 48),
        s1=st.integers(-50, 50),
        s2=st.integers(-50, 50),
    )
    @settings(max_examples=30, deadline=None)
    def test_cshift_composition(self, n, s1, s2):
        """cshift(cshift(x, a), b) == cshift(x, a + b)."""
        session = _session()
        x = from_numpy(session, np.arange(float(n)), "(:)")
        lhs = cshift(cshift(x, s1), s2)
        rhs = cshift(x, s1 + s2)
        assert np.array_equal(lhs.np, rhs.np)

    @given(n=st.integers(2, 48), s=st.integers(-50, 50))
    @settings(max_examples=30, deadline=None)
    def test_cshift_inverse(self, n, s):
        session = _session()
        x = from_numpy(session, np.arange(float(n)), "(:)")
        assert np.array_equal(cshift(cshift(x, s), -s).np, x.np)

    @given(n=st.integers(4, 32), s=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_eoshift_matches_cshift_in_interior(self, n, s):
        """Away from the wrapped boundary, eoshift == cshift."""
        session = _session()
        data = np.random.default_rng(n).standard_normal(n)
        x = from_numpy(session, data, "(:)")
        eo = eoshift(x, s).np
        cs = cshift(x, s).np
        assert np.array_equal(eo[: n - s], cs[: n - s])

    @given(n=st.integers(2, 32))
    @settings(max_examples=20, deadline=None)
    def test_full_rotation_is_identity(self, n):
        session = _session()
        x = from_numpy(session, np.arange(float(n)), "(:)")
        assert np.array_equal(cshift(x, n).np, x.np)


class TestTransposeRemap:
    @given(
        rows=st.integers(1, 12),
        cols=st.integers(1, 12),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_transpose_involution(self, rows, cols, seed):
        session = _session()
        data = np.random.default_rng(seed).standard_normal((rows, cols))
        x = from_numpy(session, data, "(:,:)")
        assert np.array_equal(transpose(transpose(x)).np, data)

    @given(seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_remap_roundtrip_preserves_data(self, seed):
        session = _session()
        data = np.random.default_rng(seed).standard_normal((4, 6))
        x = from_numpy(session, data, "(:,:)")
        back = remap(remap(x, "(:serial,:)"), "(:,:)")
        assert np.array_equal(back.np, data)
        assert back.layout.spec_string() == "(:,:)"

    def test_transpose_of_3d_permutation_composition(self):
        session = _session()
        data = np.random.default_rng(0).standard_normal((3, 4, 5))
        x = from_numpy(session, data, "(:,:,:)")
        once = transpose(x, (1, 2, 0))
        twice = transpose(once, (1, 2, 0))
        thrice = transpose(twice, (1, 2, 0))
        assert np.array_equal(thrice.np, data)


class TestSpreadReduceAdjoint:
    @given(
        n=st.integers(1, 24),
        copies=st.integers(1, 8),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=25, deadline=None)
    def test_reduce_of_spread_scales(self, n, copies, seed):
        """sum(spread(x, k)) over the new axis == k * x."""
        session = _session()
        data = np.random.default_rng(seed).standard_normal(n)
        x = from_numpy(session, data, "(:)")
        s = spread(x, 0, copies)
        back = reduce_array(s, "sum", axis=0)
        assert np.allclose(back.np, copies * data)

    @given(n=st.integers(1, 24), seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_max_of_spread_is_identity(self, n, seed):
        session = _session()
        data = np.random.default_rng(seed).standard_normal(n)
        x = from_numpy(session, data, "(:)")
        back = reduce_array(spread(x, 1, 5), "max", axis=1)
        assert np.allclose(back.np, data)


class TestScanReduceConsistency:
    @given(values=st.lists(st.floats(-100, 100), min_size=1, max_size=48))
    @settings(max_examples=30, deadline=None)
    def test_last_scan_element_is_reduction(self, values):
        session = _session()
        arr = np.array(values)
        x = from_numpy(session, arr, "(:)")
        total = reduce_array(x, "sum")
        prefix = scan(x, "sum")
        assert prefix.np[-1] == pytest.approx(total, rel=1e-9, abs=1e-9)

    @given(
        values=st.lists(st.floats(-10, 10), min_size=2, max_size=40),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_segmented_scan_segment_totals(self, values, seed):
        """Each segment's last scan value equals its direct sum."""
        session = _session()
        arr = np.array(values)
        rng = np.random.default_rng(seed)
        starts = rng.random(len(arr)) < 0.3
        starts[0] = True
        out = segmented_scan(from_numpy(session, arr, "(:)"), starts, "sum").np
        idx = np.flatnonzero(starts)
        bounds = np.append(idx, len(arr))
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            assert out[hi - 1] == pytest.approx(arr[lo:hi].sum(), abs=1e-9)


class TestGatherScatterDuality:
    @given(n=st.integers(1, 48), seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_gather_after_scatter_permutation(self, n, seed):
        session = _session()
        rng = np.random.default_rng(seed)
        perm = rng.permutation(n)
        vals = rng.standard_normal(n)
        dest = from_numpy(session, np.zeros(n), "(:)")
        scatter(dest, perm, from_numpy(session, vals, "(:)"))
        assert np.allclose(gather(dest, perm).np, vals)

    @given(n=st.integers(1, 32), m=st.integers(1, 32), seed=st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_scatter_add_mass_conservation(self, n, m, seed):
        session = _session()
        rng = np.random.default_rng(seed)
        vals = rng.random(m)
        dest = from_numpy(session, np.zeros(n), "(:)")
        scatter(dest, rng.integers(0, n, m), from_numpy(session, vals, "(:)"), "add")
        assert dest.np.sum() == pytest.approx(vals.sum())


class TestStencilLinearity:
    @given(seed=st.integers(0, 50), alpha=st.floats(-3, 3), beta=st.floats(-3, 3))
    @settings(max_examples=20, deadline=None)
    def test_linearity(self, seed, alpha, beta):
        """S(a x + b y) == a S(x) + b S(y)."""
        session = _session()
        rng = np.random.default_rng(seed)
        dx = rng.standard_normal((8, 8))
        dy = rng.standard_normal((8, 8))
        taps = {(0, 0): 2.0, (1, 0): -1.0, (0, -1): 0.5}
        x = from_numpy(session, dx, "(:,:)")
        y = from_numpy(session, dy, "(:,:)")
        combo = from_numpy(session, alpha * dx + beta * dy, "(:,:)")
        lhs = stencil_apply(combo, taps).np
        rhs = alpha * stencil_apply(x, taps).np + beta * stencil_apply(y, taps).np
        assert np.allclose(lhs, rhs, atol=1e-9)

    def test_identity_stencil(self):
        session = _session()
        data = np.random.default_rng(1).standard_normal((6, 6))
        x = from_numpy(session, data, "(:,:)")
        assert np.allclose(stencil_apply(x, {(0, 0): 1.0}).np, data)
