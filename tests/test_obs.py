"""repro.obs: span tracing, Chrome export, profiles, live streaming.

The two load-bearing guarantees, pinned here for every benchmark in
the registry:

* attaching a :class:`SpanCollector` never changes the metrics — the
  canonical report JSON is byte-identical to an unobserved run;
* the collector's totals reconcile with the :class:`PerfReport` of the
  same run *exactly* (``==`` on floats, not approximately): busy and
  elapsed seconds bit-for-bit, FLOP and byte counts as integers.
"""

import json

import pytest

from repro.cli import main
from repro.engine import Engine, EngineConfig, RunStore, plan_suite
from repro.metrics.serialize import canonical_report_json, report_to_dict
from repro.obs import (
    SPAN_SUMMARY_SCHEMA,
    STREAM_EVENT_KINDS,
    EventStream,
    SpanCollector,
    chrome_trace,
    chrome_trace_from_report,
    folded_stacks,
    read_stream,
    render_profile,
    validate_chrome_trace,
    write_chrome_trace,
    write_folded,
)
from repro.sessions import open_session
from repro.suite import REGISTRY, run_benchmark

from tests.test_fastpath_parity import SMALL_PARAMS

#: Benchmarks whose main loops carry session.iteration markers, with
#: any parameter overrides needed to exercise a stepping variant
#: (n-body's default broadcast variant has no time loop).
ITERATION_ADOPTERS = (
    ("diff-1d", {}),
    ("diff-2d", {}),
    ("diff-3d", {}),
    ("conj-grad", {}),
    ("n-body", {"variant": "cshift"}),
    ("n-body", {"variant": "cshift_sym"}),
    ("fft", {}),
)


def traced_run(name, **params):
    """Run one benchmark with a collector attached; return both."""
    session = open_session()
    collector = SpanCollector().attach(session)
    report = run_benchmark(name, session, **params)
    collector.finalize()
    return report, collector


# ----------------------------------------------------------------------
# The tentpole guarantees, across the whole registry
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_collector_is_metrics_invisible_and_reconciles(name):
    params = SMALL_PARAMS.get(name, {})
    baseline = run_benchmark(name, open_session(), **params)
    base_json = canonical_report_json(report_to_dict(baseline))

    report, collector = traced_run(name, **params)
    assert canonical_report_json(report_to_dict(report)) == base_json, (
        "attaching a SpanCollector changed the canonical report"
    )
    totals = collector.totals()
    # Bit-exact float equality — same summation order as the recorder.
    assert totals["busy_time_s"] == report.busy_time
    assert totals["elapsed_time_s"] == report.elapsed_time
    assert totals["flop_count"] == report.flop_count
    assert totals["network_bytes"] == report.network_bytes


@pytest.mark.parametrize("name,extra", ITERATION_ADOPTERS)
def test_adopters_emit_iteration_spans(name, extra):
    params = {**SMALL_PARAMS.get(name, {}), **extra}
    _, collector = traced_run(name, **params)
    iteration_spans = [
        s for s in collector.root.walk() if s.kind == "iteration"
    ]
    assert iteration_spans, f"{name} produced no iteration spans"
    for span in iteration_spans:
        assert span.end is not None
        assert span.end >= span.start


def test_iteration_marker_is_noop_without_collector():
    """Session.iteration costs one None-check when nothing is attached."""
    session = open_session()
    first = session.iteration(0)
    second = session.iteration(1)
    assert first is second  # the shared null context, no allocation
    with first:
        pass


# ----------------------------------------------------------------------
# Collector mechanics
# ----------------------------------------------------------------------
class TestSpanCollector:
    def test_span_tree_shape(self):
        _, collector = traced_run("diff-2d", nx=16, steps=3)
        root = collector.root
        assert root.kind == "run"
        kinds = {s.kind for s in root.walk()}
        assert kinds == {"run", "region", "iteration"}
        main_loop = [
            s for s in root.walk()
            if s.kind == "region" and s.name == "main_loop"
        ]
        assert main_loop
        assert sum(
            1 for s in main_loop[0].walk() if s.kind == "iteration"
        ) == 3

    def test_slices_tile_the_timeline(self):
        report, collector = traced_run("diff-2d", nx=16, steps=3)
        assert collector.slices
        cursor = 0.0
        for sl in collector.slices:
            assert sl.start == cursor  # sequential simulated clock
            assert sl.end >= sl.start
            cursor = sl.end
        assert cursor == collector.now
        # The running clock accumulates one slice at a time, so it can
        # differ from the report total by float-summation order (ULPs);
        # the bit-exact path is totals(), not the timeline cursor.
        assert cursor == pytest.approx(report.elapsed_time, rel=1e-12)

    def test_double_attach_rejected(self):
        session = open_session()
        SpanCollector().attach(session)
        with pytest.raises(RuntimeError, match="observer"):
            SpanCollector().attach(session)

    def test_collector_reuse_rejected(self):
        collector = SpanCollector()
        collector.attach(open_session())
        with pytest.raises(RuntimeError):
            collector.attach(open_session())

    def test_finalize_idempotent_and_detaches(self):
        session = open_session()
        collector = SpanCollector().attach(session)
        run_benchmark("fft", session, n=64)
        assert collector.finalize() is collector
        assert session.recorder.observer is None
        collector.finalize()  # no-op, no error
        assert collector.root.end is not None

    def test_summary_schema_and_totals(self):
        report, collector = traced_run("conj-grad", n=96)
        summary = collector.summary()
        assert summary["schema"] == SPAN_SUMMARY_SCHEMA
        assert summary["flop_count"] == report.flop_count
        assert summary["network_bytes"] == report.network_bytes
        assert summary["busy_time_s"] == report.busy_time
        assert summary["iterations"] == report.iterations
        assert summary["top_regions"]
        assert json.loads(json.dumps(summary)) == summary  # JSON-safe

    def test_pattern_attribution_matches_recorder(self):
        session = open_session()
        collector = SpanCollector().attach(session)
        run_benchmark("conj-grad", session, n=96)
        collector.finalize()
        patterns = collector.totals()["patterns"]
        assert {p: a["count"] for p, a in patterns.items()} == {
            p.value: c
            for p, c in session.recorder.root.comm_counts().items()
        }


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
class TestChromeTrace:
    def test_live_trace_is_valid(self):
        _, collector = traced_run("diff-2d", nx=16, steps=3)
        trace = chrome_trace(collector, benchmark="diff-2d")
        assert validate_chrome_trace(trace) == []
        events = trace["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"X", "M", "C"}
        names = {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {"regions", "compute", "comm busy", "comm idle"}

    def test_counters_are_cumulative_and_end_at_totals(self):
        report, collector = traced_run("diff-2d", nx=16, steps=3)
        trace = chrome_trace(collector, benchmark="diff-2d")
        flop_samples = [
            e["args"]["flops"] for e in trace["traceEvents"]
            if e["ph"] == "C" and e["name"] == "cumulative FLOPs"
        ]
        byte_samples = [
            e["args"]["bytes"] for e in trace["traceEvents"]
            if e["ph"] == "C" and e["name"] == "network bytes"
        ]
        assert flop_samples == sorted(flop_samples)
        assert byte_samples == sorted(byte_samples)
        assert flop_samples[-1] == report.flop_count
        assert byte_samples[-1] == report.network_bytes

    def test_trace_from_stored_report(self):
        report, _ = traced_run("conj-grad", n=96)
        trace = chrome_trace_from_report(report)
        assert validate_chrome_trace(trace) == []
        region_events = [
            e for e in trace["traceEvents"] if e["ph"] == "X"
        ]
        assert {e["name"] for e in region_events} == {
            seg.name for seg in report.segments
        }

    def test_write_roundtrip(self, tmp_path):
        _, collector = traced_run("fft", n=64)
        path = tmp_path / "trace.json"
        write_chrome_trace(chrome_trace(collector), path)
        assert validate_chrome_trace(json.loads(path.read_text())) == []

    def test_validator_flags_malformed_traces(self):
        assert validate_chrome_trace([]) == ["trace is not a JSON object"]
        assert validate_chrome_trace({}) == [
            "traceEvents missing or not a list"
        ]
        assert "traceEvents is empty" in validate_chrome_trace(
            {"traceEvents": []}
        )
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "pid": 1, "tid": 1,
                              "name": "x", "ts": 0.0, "dur": -1.0}]}
        )
        assert any("invalid dur" in p for p in problems)
        problems = validate_chrome_trace({"traceEvents": [{"ph": "Q"}]})
        assert any("invalid ph" in p for p in problems)


# ----------------------------------------------------------------------
# Profile report and folded stacks
# ----------------------------------------------------------------------
class TestProfile:
    def test_render_profile_sections(self):
        _, collector = traced_run("conj-grad", n=96)
        text = render_profile(collector, benchmark="conj-grad")
        assert "profile: conj-grad" in text
        assert "top regions by exclusive busy time" in text
        assert "main_loop" in text
        assert "communication by pattern:" in text
        assert "cshift" in text and "reduction" in text

    def test_folded_stack_format(self):
        _, collector = traced_run("diff-2d", nx=16, steps=3)
        lines = folded_stacks(collector, root_frame="diff-2d")
        assert lines
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert stack.startswith("diff-2d")
            assert int(value) >= 0
        assert any("diff-2d;main_loop" in line for line in lines)

    def test_folded_values_sum_to_busy_time(self):
        report, collector = traced_run("diff-2d", nx=16, steps=3)
        total_us = sum(
            int(line.rsplit(" ", 1)[1])
            for line in folded_stacks(collector)
        )
        assert total_us == pytest.approx(report.busy_time * 1e6, abs=2.0)

    def test_write_folded(self, tmp_path):
        _, collector = traced_run("fft", n=64)
        path = tmp_path / "stacks.folded"
        write_folded(collector, path, root_frame="fft")
        content = path.read_text().strip().splitlines()
        assert content == folded_stacks(collector, root_frame="fft")


# ----------------------------------------------------------------------
# Event stream
# ----------------------------------------------------------------------
class TestEventStream:
    def test_lazy_open_and_seq(self, tmp_path):
        path = tmp_path / "deep" / "events.jsonl"
        stream = EventStream(path)
        assert not path.exists()  # nothing written yet
        stream.emit("run_started", run_id="r1", n_jobs=2)
        stream.emit("job_finished", benchmark="fft", status="ok")
        stream.emit("run_finished", duration_s=1.0)
        stream.close()
        events = read_stream(path)
        assert [e["kind"] for e in events] == list(STREAM_EVENT_KINDS)
        assert [e["seq"] for e in events] == [0, 1, 2]

    def test_unknown_kind_rejected(self, tmp_path):
        stream = EventStream(tmp_path / "events.jsonl")
        with pytest.raises(ValueError, match="unknown stream event kind"):
            stream.emit("job_started")

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventStream(path) as stream:
            stream.emit("run_started", run_id="r1")
        assert read_stream(path)[0]["run_id"] == "r1"


# ----------------------------------------------------------------------
# Engine integration: spans in results, sidecar and stream
# ----------------------------------------------------------------------
SUBSET = ["diff-2d", "conj-grad", "fft"]
SUBSET_PARAMS = {k: SMALL_PARAMS[k] for k in SUBSET}


class TestEngineIntegration:
    def run_engine(self, tmp_path, **config):
        store = tmp_path / "runs.jsonl"
        engine = Engine(EngineConfig(store=store, **config))
        results = engine.run(plan_suite(SUBSET, params=SUBSET_PARAMS))
        return engine, results, store

    def test_serial_span_collection_reconciles(self, tmp_path):
        _, results, _ = self.run_engine(tmp_path, spans=True)
        for result in results:
            assert result.spans is not None
            assert result.spans["schema"] == SPAN_SUMMARY_SCHEMA
            assert result.spans["flop_count"] == result.report.flop_count
            assert result.spans["busy_time_s"] == result.report.busy_time

    def test_pool_workers_forward_span_summaries(self, tmp_path):
        _, results, _ = self.run_engine(tmp_path, spans=True, jobs=2)
        for result in results:
            assert result.spans is not None
            assert result.spans["flop_count"] == result.report.flop_count

    def test_span_runs_report_identically_to_plain_runs(self, tmp_path):
        _, plain, _ = self.run_engine(tmp_path / "a")
        _, traced, _ = self.run_engine(tmp_path / "b", spans=True)
        for p, t in zip(plain, traced):
            assert canonical_report_json(
                report_to_dict(p.report)
            ) == canonical_report_json(report_to_dict(t.report))

    def test_stream_lifecycle(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        _, results, _ = self.run_engine(
            tmp_path, stream=events_path, spans=True
        )
        events = read_stream(events_path)
        assert events[0]["kind"] == "run_started"
        assert events[0]["n_jobs"] == len(SUBSET)
        assert events[-1]["kind"] == "run_finished"
        assert events[-1]["ok"] == len(SUBSET)
        finished = [e for e in events if e["kind"] == "job_finished"]
        assert {e["benchmark"] for e in finished} == set(SUBSET)
        for event in finished:
            assert event["status"] == "ok"
            assert event["spans"]["schema"] == SPAN_SUMMARY_SCHEMA
        assert [e["seq"] for e in events] == list(range(len(events)))

    def test_stream_implies_span_collection(self, tmp_path):
        # A live stream is only useful with span summaries on board, so
        # EngineConfig.stream turns collection on even without spans=True.
        assert EngineConfig(stream=tmp_path / "e.jsonl").collect_spans
        assert EngineConfig(spans=True).collect_spans
        assert not EngineConfig().collect_spans
        events_path = tmp_path / "events.jsonl"
        _, results, _ = self.run_engine(tmp_path, stream=events_path)
        assert all(r.spans is not None for r in results)
        finished = [
            e for e in read_stream(events_path)
            if e["kind"] == "job_finished"
        ]
        assert finished
        assert all(
            e["spans"]["schema"] == SPAN_SUMMARY_SCHEMA for e in finished
        )


# ----------------------------------------------------------------------
# CLI: repro profile / repro trace export / repro suite --stream
# ----------------------------------------------------------------------
class TestCLI:
    def test_profile_command(self, tmp_path, capsys):
        chrome = tmp_path / "trace.json"
        folded = tmp_path / "stacks.folded"
        assert main(
            ["profile", "diff-2d", "--param", "nx=16", "--param", "steps=3",
             "--chrome", str(chrome), "--folded", str(folded)]
        ) == 0
        out = capsys.readouterr().out
        assert "profile: diff-2d" in out
        assert "main_loop" in out
        assert validate_chrome_trace(json.loads(chrome.read_text())) == []
        assert "diff-2d;main_loop" in folded.read_text()

    def test_trace_export_from_store(self, tmp_path, capsys):
        store = tmp_path / "runs.jsonl"
        out_path = tmp_path / "trace.json"
        engine = Engine(EngineConfig(store=store))
        engine.run(plan_suite(SUBSET, params=SUBSET_PARAMS))
        assert main(
            ["trace", "export", "latest", "--store", str(store),
             "-o", str(out_path)]
        ) == 0
        assert (
            f"exported {len(SUBSET)} report(s)" in capsys.readouterr().out
        )
        trace = json.loads(out_path.read_text())
        assert validate_chrome_trace(trace) == []
        # One process per stored report.
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert len(pids) == len(SUBSET)

    def test_trace_export_benchmark_filter(self, tmp_path, capsys):
        store = tmp_path / "runs.jsonl"
        out_path = tmp_path / "trace.json"
        engine = Engine(EngineConfig(store=store))
        engine.run(plan_suite(SUBSET, params=SUBSET_PARAMS))
        assert main(
            ["trace", "export", "latest", "--store", str(store),
             "--benchmark", "fft", "-o", str(out_path)]
        ) == 0
        assert "exported 1 report(s)" in capsys.readouterr().out
        names = {
            e["args"]["name"]
            for e in json.loads(out_path.read_text())["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert len(names) == 1 and "fft" in next(iter(names))

    def test_trace_export_unknown_run_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="no run"):
            main(
                ["trace", "export", "zzz", "--store",
                 str(tmp_path / "runs.jsonl")]
            )

    def test_suite_stream_flag(self, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        store = tmp_path / "runs.jsonl"
        assert main(
            ["suite", "--store", str(store), "--stream", str(events_path)]
        ) == 0
        events = read_stream(events_path)
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "run_started" and kinds[-1] == "run_finished"
        assert kinds.count("job_finished") == len(REGISTRY)
        # The stream's run id matches the stored run.
        assert events[0]["run_id"] == RunStore(store).run_ids()[-1]
