"""Tests for the HPF layout algebra (Tables 2 and 5 notation)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.layout.spec import Axis, parse_layout
from repro.machine.model import square_ish_grid


class TestParsing:
    def test_parse_all_parallel(self):
        layout = parse_layout("(:,:)", (4, 8))
        assert layout.axes == (Axis.PARALLEL, Axis.PARALLEL)

    def test_parse_serial_marker(self):
        layout = parse_layout("(:serial,:,:)", (2, 4, 8))
        assert layout.axes == (Axis.SERIAL, Axis.PARALLEL, Axis.PARALLEL)

    def test_parse_without_parens(self):
        layout = parse_layout(":serial,:", (3, 5))
        assert layout.axes == (Axis.SERIAL, Axis.PARALLEL)

    def test_parse_with_spaces(self):
        layout = parse_layout("( :serial , : )", (3, 5))
        assert layout.axes == (Axis.SERIAL, Axis.PARALLEL)

    def test_rank_mismatch_raises(self):
        with pytest.raises(ValueError):
            parse_layout("(:,:)", (4,))

    def test_bad_entry_raises(self):
        with pytest.raises(ValueError):
            parse_layout("(:block)", (4,))

    def test_spec_string_roundtrip(self):
        for spec in ("(:)", "(:serial,:)", "(:,:serial,:)", "(:serial,:serial,:)"):
            shape = tuple(4 for _ in spec.split(","))
            layout = parse_layout(spec, shape)
            again = parse_layout(layout.spec_string(), shape)
            assert again.axes == layout.axes


class TestGeometry:
    def test_size_and_partition(self):
        layout = parse_layout("(:serial,:,:)", (3, 8, 16))
        assert layout.size == 3 * 8 * 16
        assert layout.parallel_axes == (1, 2)
        assert layout.serial_axes == (0,)
        assert layout.parallel_size == 128
        assert layout.serial_size == 3

    def test_proc_grid_serial_axes_get_one(self):
        layout = parse_layout("(:serial,:)", (4, 64))
        grid = layout.proc_grid(8)
        assert grid[0] == 1
        assert grid[1] == 8

    def test_proc_grid_never_exceeds_extent(self):
        layout = parse_layout("(:,:)", (2, 256))
        grid = layout.proc_grid(32)
        assert grid[0] <= 2
        assert grid[1] <= 256

    def test_proc_grid_single_node(self):
        layout = parse_layout("(:,:)", (8, 8))
        assert layout.proc_grid(1) == (1, 1)

    def test_max_local_shape_ceil(self):
        layout = parse_layout("(:)", (10,))
        grid = layout.proc_grid(4)
        assert layout.max_local_shape(4)[0] == math.ceil(10 / grid[0])

    def test_critical_fraction_bounds(self):
        layout = parse_layout("(:,:)", (64, 64))
        f = layout.critical_fraction(16)
        assert 1.0 / 16 <= f <= 1.0

    def test_critical_fraction_single_node_is_one(self):
        layout = parse_layout("(:,:)", (8, 8))
        assert layout.critical_fraction(1) == 1.0

    def test_nodes_used_small_array(self):
        layout = parse_layout("(:)", (2,))
        assert layout.nodes_used(64) <= 2

    @given(
        shape=st.tuples(st.integers(1, 64), st.integers(1, 64)),
        nodes=st.integers(1, 128),
    )
    def test_proc_grid_product_bounded_by_nodes(self, shape, nodes):
        layout = parse_layout("(:,:)", shape)
        grid = layout.proc_grid(nodes)
        assert math.prod(grid) <= nodes

    @given(
        n=st.integers(1, 512),
        nodes=st.integers(1, 64),
    )
    def test_local_blocks_cover_array(self, n, nodes):
        layout = parse_layout("(:)", (n,))
        p = layout.proc_grid(nodes)[0]
        block = layout.block_size(nodes, 0)
        assert p * block >= n


class TestShiftVolumes:
    def test_serial_axis_shift_is_free(self):
        layout = parse_layout("(:serial,:)", (8, 64))
        assert layout.shift_network_elements(16, 0, 1) == 0

    def test_zero_shift_is_free(self):
        layout = parse_layout("(:)", (64,))
        assert layout.shift_network_elements(16, 0, 0) == 0

    def test_full_cycle_shift_is_free(self):
        layout = parse_layout("(:)", (64,))
        assert layout.shift_network_elements(16, 0, 64) == 0

    def test_unit_shift_moves_boundary(self):
        layout = parse_layout("(:)", (64,))
        moved = layout.shift_network_elements(16, 0, 1)
        # 16 blocks of 4: one element per block crosses = 16 elements.
        assert moved == 16

    def test_shift_symmetric_in_direction(self):
        layout = parse_layout("(:,:)", (32, 32))
        assert layout.shift_network_elements(8, 0, 3) == layout.shift_network_elements(
            8, 0, -3
        )

    def test_large_shift_moves_everything(self):
        layout = parse_layout("(:)", (64,))
        block = layout.block_size(16, 0)
        moved = layout.shift_network_elements(16, 0, block)
        assert moved == 64

    def test_single_node_no_traffic(self):
        layout = parse_layout("(:)", (64,))
        assert layout.shift_network_elements(1, 0, 5) == 0

    @given(
        n=st.sampled_from([16, 32, 64, 128]),
        nodes=st.sampled_from([1, 2, 4, 8, 16]),
        shift=st.integers(-200, 200),
    )
    def test_shift_volume_bounded_by_size(self, n, nodes, shift):
        layout = parse_layout("(:)", (n,))
        moved = layout.shift_network_elements(nodes, 0, shift)
        assert 0 <= moved <= n


class TestReduceVolumes:
    def test_reduce_serial_axis_is_free(self):
        layout = parse_layout("(:serial,:)", (8, 64))
        assert layout.reduce_network_elements(16, (0,)) == 0

    def test_reduce_parallel_axis_counts_results(self):
        layout = parse_layout("(:,:)", (32, 64))
        elems = layout.reduce_network_elements(16, (1,))
        assert elems == 32  # one partial result per row

    def test_full_reduction_single_result(self):
        layout = parse_layout("(:,:)", (32, 32))
        assert layout.reduce_network_elements(16, (0, 1)) == 1

    def test_off_node_fraction_range(self):
        layout = parse_layout("(:)", (1024,))
        f = layout.off_node_fraction(32)
        assert 0.0 < f < 1.0
        assert layout.off_node_fraction(1) == 0.0


class TestSquareIshGrid:
    def test_product_equals_nodes(self):
        for nodes in (1, 2, 6, 12, 32, 60, 128):
            for nd in (1, 2, 3):
                grid = square_ish_grid(nodes, nd)
                assert math.prod(grid) == nodes

    def test_descending_order(self):
        grid = square_ish_grid(24, 3)
        assert list(grid) == sorted(grid, reverse=True)

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            square_ish_grid(0, 2)
        with pytest.raises(ValueError):
            square_ish_grid(4, 0)
