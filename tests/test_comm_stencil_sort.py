"""Tests for stencil evaluation and parallel sorting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Session, cm5
from repro.array import from_numpy
from repro.comm.sorting import argsort, sort_array
from repro.comm.stencil import stencil_apply, stencil_shifts
from repro.metrics.patterns import CommPattern


class TestStencilShifts:
    def test_periodic_1d(self, session):
        x = from_numpy(session, np.arange(5.0), "(:)")
        left, center, right = stencil_shifts(x, [-1, 0, 1])
        assert center.np.tolist() == [0, 1, 2, 3, 4]
        assert right.np[0] == 1  # x(i+1)
        assert left.np[0] == 4  # x(i-1), wrapped

    def test_dirichlet_fill(self, session):
        x = from_numpy(session, np.arange(4.0), "(:)")
        (shifted,) = stencil_shifts(x, [1], boundary="dirichlet", fill=-1.0)
        assert shifted.np.tolist() == [1, 2, 3, -1]

    def test_2d_offsets(self, session):
        x = from_numpy(session, np.arange(9.0).reshape(3, 3), "(:,:)")
        (ne,) = stencil_shifts(x, [(1, 1)])
        assert ne.np[0, 0] == x.np[1, 1]

    def test_single_event_many_points(self, trace_session):
        session = trace_session
        x = from_numpy(session, np.arange(27.0).reshape(3, 3, 3), "(:,:,:)")
        stencil_shifts(x, [(-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0)])
        events = [
            e
            for e in session.recorder.root.comm_events
            if e.pattern is CommPattern.STENCIL
        ]
        assert len(events) == 1

    def test_unknown_boundary(self, session):
        x = from_numpy(session, np.arange(3.0), "(:)")
        with pytest.raises(ValueError):
            stencil_shifts(x, [1], boundary="neumann")

    def test_wrong_rank_offset(self, session):
        x = from_numpy(session, np.arange(6.0).reshape(2, 3), "(:,:)")
        with pytest.raises(ValueError):
            stencil_shifts(x, [(1, 1, 1)])


class TestStencilApply:
    def test_laplacian_periodic(self, session):
        x = from_numpy(session, np.sin(np.linspace(0, 2 * np.pi, 8, endpoint=False)), "(:)")
        taps = {(-1,): 1.0, (0,): -2.0, (1,): 1.0}
        out = stencil_apply(x, taps)
        ref = np.roll(x.np, 1) - 2 * x.np + np.roll(x.np, -1)
        assert np.allclose(out.np, ref)

    def test_coefficient_grouping_flops(self, session):
        """Six equal taps charge 5 adds + 1 mul, not 6 muls."""
        x = from_numpy(session, np.ones((4, 4)), "(:,:)")
        taps = {
            (-1, 0): 0.25, (1, 0): 0.25, (0, -1): 0.25, (0, 1): 0.25,
        }
        before = session.recorder.total_flops
        stencil_apply(x, taps)
        charged = session.recorder.total_flops - before
        # group of 4 equal coeffs: 3 adds + 1 mul = 4 per element.
        assert charged == 4 * 16

    def test_empty_taps_raises(self, session):
        x = from_numpy(session, np.ones(4), "(:)")
        with pytest.raises(ValueError):
            stencil_apply(x, {})

    @given(seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_matches_direct_evaluation(self, seed):
        session = Session(cm5(8))
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((6, 6))
        x = from_numpy(session, data, "(:,:)")
        taps = {(0, 0): 2.0, (-1, 0): -1.0, (1, 0): -1.0, (0, 1): 0.5}
        out = stencil_apply(x, taps)
        ref = (
            2.0 * data
            - np.roll(data, 1, 0)
            - np.roll(data, -1, 0)
            + 0.5 * np.roll(data, -1, 1)
        )
        assert np.allclose(out.np, ref)


class TestSorting:
    def test_sort_values(self, session):
        x = from_numpy(session, np.array([3.0, 1.0, 2.0]), "(:)")
        assert sort_array(x).np.tolist() == [1, 2, 3]

    def test_argsort_stable(self, session):
        x = from_numpy(session, np.array([2.0, 1.0, 2.0, 1.0]), "(:)")
        assert argsort(x).np.tolist() == [1, 3, 0, 2]

    def test_sort_axis(self, session):
        x = from_numpy(session, np.array([[3.0, 1.0], [0.0, 2.0]]), "(:,:)")
        assert sort_array(x, axis=1).np.tolist() == [[1, 3], [0, 2]]

    def test_records_sort_event(self, trace_session):
        session = trace_session
        x = from_numpy(session, np.arange(16.0)[::-1].copy(), "(:)")
        sort_array(x)
        ev = session.recorder.root.comm_events[-1]
        assert ev.pattern is CommPattern.SORT
        assert ev.busy_time > 0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100))
    @settings(max_examples=25, deadline=None)
    def test_sort_matches_numpy(self, values):
        session = Session(cm5(8))
        arr = np.array(values)
        out = sort_array(from_numpy(session, arr, "(:)"))
        assert np.array_equal(out.np, np.sort(arr))
