"""repro.obs — span tracing and profiling over the simulated clock.

The observability spine of the reproduction (see docs/OBSERVABILITY.md):

* :class:`SpanCollector` (:mod:`repro.obs.spans`) — attaches to a
  session as a read-only observer and rebuilds the run as hierarchical
  spans and timeline slices on the simulated clock, with totals that
  reconcile bit-exactly against the run's
  :class:`~repro.metrics.report.PerfReport`;
* :mod:`repro.obs.chrome` — Chrome trace-event JSON export
  (Perfetto-loadable), from live collectors or stored reports;
* :mod:`repro.obs.profile` — text profile reports and folded-stack
  flamegraphs;
* :mod:`repro.obs.stream` — JSONL live event stream for engine runs.

Attaching a collector never changes any reported metric; with no
collector attached, the hooks cost one ``is not None`` check.
"""

from repro.obs.chrome import (
    chrome_trace,
    chrome_trace_from_report,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.profile import (
    folded_stacks,
    profile_lines,
    render_profile,
    write_folded,
)
from repro.obs.spans import (
    SPAN_SUMMARY_SCHEMA,
    RegionMirror,
    Slice,
    Span,
    SpanCollector,
)
from repro.obs.stream import (
    STREAM_EVENT_KINDS,
    EventFanout,
    EventStream,
    StreamRead,
    Subscription,
    read_stream,
    read_stream_partial,
    validate_stream,
)

__all__ = [
    "SPAN_SUMMARY_SCHEMA",
    "STREAM_EVENT_KINDS",
    "EventFanout",
    "EventStream",
    "StreamRead",
    "Subscription",
    "RegionMirror",
    "Slice",
    "Span",
    "SpanCollector",
    "chrome_trace",
    "chrome_trace_from_report",
    "folded_stacks",
    "profile_lines",
    "read_stream",
    "read_stream_partial",
    "render_profile",
    "validate_stream",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_folded",
]
