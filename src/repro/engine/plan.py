"""Sweep planning: expand parameter grids into run requests.

Where :mod:`repro.suite.sweeps` *executes* a sweep inline, this module
only *plans* one — a cartesian grid over benchmarks × machines × node
counts × tiers becomes a deduplicated list of
:class:`~repro.engine.jobs.RunRequest`, which the engine can then run
in parallel, cache and persist.  ``sweep_from_results`` closes the loop
by assembling engine results back into the familiar
:class:`~repro.suite.sweeps.SweepResult` so all existing series/table
helpers keep working.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Mapping, Optional, Sequence

from repro.engine.jobs import RunRequest
from repro.versions import VersionTier


def expand_param_grid(
    param_grid: Optional[Mapping[str, Sequence[object]]],
) -> List[Mapping[str, object]]:
    """Cartesian product of per-parameter value lists.

    ``{"nx": [8, 16], "steps": [2]}`` becomes
    ``[{"nx": 8, "steps": 2}, {"nx": 16, "steps": 2}]``.  An empty or
    ``None`` grid yields the single empty combination, so callers can
    always iterate the result.  Axis order follows insertion order of
    the mapping; each axis must be non-empty.
    """
    if not param_grid:
        return [{}]
    axes = list(param_grid.items())
    for key, values in axes:
        if not values:
            raise ValueError(f"param_grid axis {key!r} has no values")
    combos = []
    for combo in itertools.product(*(values for _, values in axes)):
        combos.append({key: value for (key, _), value in zip(axes, combo)})
    return combos


def _dedup(requests: Iterable[RunRequest]) -> List[RunRequest]:
    """Drop duplicate requests (by content hash), preserving order."""
    seen = set()
    out = []
    for request in requests:
        key = request.content_hash()
        if key not in seen:
            seen.add(key)
            out.append(request)
    return out


def expand_grid(
    benchmarks: Sequence[str],
    *,
    machines: Sequence[str] = ("cm5",),
    nodes: Sequence[int] = (32,),
    tiers: Sequence[str] = ("basic",),
    params: Optional[Mapping[str, Mapping[str, object]]] = None,
    common_params: Optional[Mapping[str, object]] = None,
    param_grid: Optional[Mapping[str, Sequence[object]]] = None,
    network: Optional[Mapping[str, float]] = None,
    network_grid: Optional[Mapping[str, Sequence[float]]] = None,
    seed: Optional[int] = None,
    validate: bool = True,
) -> List[RunRequest]:
    """Cartesian benchmarks × machines × nodes × tiers (× params) grid.

    ``params`` maps benchmark name to per-benchmark overrides, merged
    over ``common_params``.  ``param_grid`` adds cartesian *parameter*
    axes — each combination produced by :func:`expand_param_grid` is
    merged over the static parameters, multiplying the plan size by the
    number of combinations (this is how a campaign sweeps problem
    sizes).  ``network`` applies fixed interconnect overrides to every
    request, and ``network_grid`` adds cartesian *network* axes over
    :data:`~repro.engine.jobs.NETWORK_FIELDS` values (grid combinations
    merge over the fixed overrides) — together they sweep machine
    bandwidth/latency parameters the way ``param_grid`` sweeps problem
    sizes.  Benchmarks that do not provide a requested tier are still
    planned (the runner falls back to the tier's merged parameters);
    unknown benchmark names raise unless ``validate`` is False.
    """
    if validate:
        from repro.suite.registry import REGISTRY

        unknown = [name for name in benchmarks if name not in REGISTRY]
        if unknown:
            known = ", ".join(sorted(REGISTRY))
            raise KeyError(
                f"unknown benchmark(s) {', '.join(unknown)}; known: {known}"
            )
    params = params or {}
    combos = expand_param_grid(param_grid)
    net_combos = expand_param_grid(network_grid)
    requests = []
    for machine in machines:
        for node_count in nodes:
            for tier in tiers:
                VersionTier(tier)
                for name in benchmarks:
                    for combo in combos:
                        merged = {
                            **(common_params or {}),
                            **params.get(name, {}),
                            **combo,
                        }
                        for net_combo in net_combos:
                            merged_net = {**(network or {}), **net_combo}
                            requests.append(
                                RunRequest(
                                    benchmark=name,
                                    machine=machine,
                                    nodes=node_count,
                                    tier=tier,
                                    params=merged,
                                    seed=seed,
                                    network=merged_net,
                                )
                            )
    return _dedup(requests)


def plan_suite(
    names: Optional[Iterable[str]] = None,
    *,
    machine: str = "cm5",
    nodes: int = 32,
    tier: str = "basic",
    params: Optional[Mapping[str, Mapping[str, object]]] = None,
    seed: Optional[int] = None,
) -> List[RunRequest]:
    """One request per benchmark, registry order by default.

    Unknown names are *not* rejected here — they surface as a
    ``KeyError`` at execution time, preserving the historical
    ``run_suite`` contract.
    """
    from repro.suite.registry import REGISTRY

    benchmarks = list(names) if names is not None else list(REGISTRY)
    return expand_grid(
        benchmarks,
        machines=(machine,),
        nodes=(nodes,),
        tiers=(tier,),
        params=params,
        seed=seed,
        validate=False,
    )


def machine_sweep_requests(
    benchmark: str,
    node_counts: Sequence[int],
    *,
    machine: str = "cm5",
    tier: str = "basic",
    params: Optional[Mapping[str, object]] = None,
) -> List[RunRequest]:
    """Strong-scaling plan: fixed problem, growing machine."""
    return expand_grid(
        [benchmark],
        machines=(machine,),
        nodes=tuple(node_counts),
        tiers=(tier,),
        params={benchmark: dict(params or {})},
    )


def tier_sweep_requests(
    benchmark: str,
    tiers: Sequence[str],
    *,
    machine: str = "cm5",
    nodes: int = 32,
    params: Optional[Mapping[str, object]] = None,
) -> List[RunRequest]:
    """The Table-1 version study as a request plan."""
    return expand_grid(
        [benchmark],
        machines=(machine,),
        nodes=(nodes,),
        tiers=tuple(tiers),
        params={benchmark: dict(params or {})},
    )


def requests_from_run(store, run_id: str) -> List[RunRequest]:
    """Rebuild the deduplicated request plan of a stored run.

    The replay path of the perf gate: re-executing the returned plan
    (same code, warm or cold cache) produces a run directly comparable
    to ``run_id`` via ``engine check``.  ``run_id`` accepts the same
    references as :meth:`~repro.engine.store.RunStore.resolve`
    (prefix, ``latest``, ``@N``).  Dedup relies on the canonical seed
    encoding of :class:`RunRequest`, so a run recorded before seed
    normalization still replays without aliased duplicates.
    """
    records = store.run_records(run_id)
    return _dedup(
        RunRequest.from_dict(record["request"])
        for record in records
        if record.get("request")
    )


def sweep_from_results(parameter: str, values: Sequence, results):
    """Assemble engine results into a :class:`SweepResult`.

    ``results`` must be in sweep order (the engine preserves request
    order) and all successful; failed points raise so a sweep series
    is never silently truncated or misaligned.
    """
    from repro.suite.sweeps import SweepResult

    results = list(results)
    if len(results) != len(values):
        raise ValueError(
            f"sweep over {len(values)} values got {len(results)} results"
        )
    bad = [r for r in results if not r.ok]
    if bad:
        detail = "; ".join(
            f"{r.request.describe()}: {r.status} {r.error}".strip() for r in bad
        )
        raise RuntimeError(f"sweep contains unsuccessful points: {detail}")
    benchmark = results[0].request.benchmark if results else ""
    sweep = SweepResult(benchmark, parameter, tuple(values))
    sweep.reports = [r.report for r in results]
    return sweep
