"""Content-addressed result cache.

A cached entry is keyed by *(code fingerprint, request hash)*: the
request hash covers everything the run depends on declaratively
(benchmark, machine, nodes, tier, params, seed) and the code
fingerprint covers the implementation — a digest over every ``*.py``
source file of the :mod:`repro` package.  Editing any source file
invalidates the whole cache; unchanged (request, code) pairs are served
from disk without re-simulating.

Entries live under ``<root>/<fingerprint[:16]>/<hash>.json`` and store
the full result record (status, report, wall time), written atomically
via a temporary file so a killed run never leaves a torn entry.
"""

from __future__ import annotations

import hashlib
import json
import os
from functools import lru_cache
from pathlib import Path
from typing import Dict, Optional, Union

from repro.engine.jobs import RunRequest


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 digest over the repro package's Python sources.

    Files are hashed in sorted relative-path order, path and content
    both, so renames and edits alike change the fingerprint.  Cached
    per process: the sources cannot change under a running engine.
    """
    import repro

    package_root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


class ResultCache:
    """Disk cache of finished run records, content-addressed."""

    def __init__(
        self,
        root: Union[str, Path],
        fingerprint: Optional[str] = None,
    ) -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()

    def _entry_path(self, request: RunRequest) -> Path:
        return self.root / self.fingerprint[:16] / f"{request.content_hash()}.json"

    def get(self, request: RunRequest) -> Optional[Dict]:
        """The stored result record, or None on a miss/torn entry."""
        path = self._entry_path(request)
        try:
            with path.open(encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    def put(self, request: RunRequest, record: Dict) -> Path:
        """Store a result record atomically; returns the entry path."""
        path = self._entry_path(request)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(record, sort_keys=True, indent=2), encoding="utf-8"
        )
        os.replace(tmp, path)
        return path

    def __contains__(self, request: RunRequest) -> bool:
        return self._entry_path(request).exists()

    def __len__(self) -> int:
        """Number of entries for the current code fingerprint."""
        bucket = self.root / self.fingerprint[:16]
        if not bucket.is_dir():
            return 0
        return sum(1 for p in bucket.glob("*.json"))

    def clear(self) -> int:
        """Delete entries for the current fingerprint; returns count."""
        bucket = self.root / self.fingerprint[:16]
        removed = 0
        if bucket.is_dir():
            for path in bucket.glob("*.json"):
                path.unlink()
                removed += 1
        return removed
