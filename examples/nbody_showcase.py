#!/usr/bin/env python
"""The eight n-body variants of Table 6, compared.

The paper provides the generic direct N-body solver in eight forms
that differ only in how the all-to-all broadcast is realized
(broadcast / spread / systolic cshift, with and without padding and
Newton's-third-law symmetry).  All eight compute identical forces;
their communication and memory signatures differ — exactly the
trade-off the benchmark exists to expose.
"""

from repro import perf_session
from repro.apps import nbody
from repro.suite.tables import format_table


def main() -> None:
    n = 96
    rows = []
    for variant in nbody.VARIANTS:
        session = perf_session("cm5", 32)
        result = nbody.run(session, n=n, variant=variant)
        rec = session.recorder
        main_loop = rec.root.find("main_loop")
        comm = main_loop.comm_counts_per_iteration()
        comm_str = ", ".join(
            f"{v:g} {k.value}" for k, v in sorted(comm.items(), key=lambda kv: kv[0].value)
        )
        rows.append(
            [
                variant,
                f"{result.iterations}",
                f"{rec.total_flops}",
                f"{rec.busy_time * 1e3:.3f}",
                f"{rec.elapsed_time * 1e3:.3f}",
                f"{main_loop.network_bytes}",
                f"{result.observables['force_error']:.1e}",
                comm_str,
            ]
        )
    print(f"direct 2-D N-body, n = {n} bodies, one force evaluation\n")
    print(
        format_table(
            [
                "variant",
                "iters",
                "FLOPs",
                "busy ms",
                "elapsed ms",
                "net bytes",
                "force err",
                "comm/iter",
            ],
            rows,
        )
    )
    print(
        "\nReading the table: the systolic (cshift) variants trade "
        "latency (one exchange per step) for the spread variants' "
        "bandwidth (the full n x n interaction array at once); the "
        "symmetric variants halve both the arithmetic and the steps."
    )


if __name__ == "__main__":
    main()
