"""Parallel-prefix operations: scans, segmented scans and copy-scans.

The paper charges scans at their sequential FLOP cost (``N - 1`` per
scanned lane, §1.5(1)) and counts each invocation as one ``Scan``
communication event.  Segmented scans and segmented copy-scans are the
workhorses of the particle codes (pic-gather-scatter's 81 scans per
iteration) and the Monte-Carlo branching logic in qmc (paper §4,
class (9)).
"""

from __future__ import annotations


import numpy as np

from repro.array.distarray import DistArray
from repro.metrics.patterns import CommPattern

_SCAN_OPS = {
    "sum": np.cumsum,
    "max": np.maximum.accumulate,
    "min": np.minimum.accumulate,
    "prod": np.cumprod,
}


def scan(
    x: DistArray,
    op: str = "sum",
    axis: int = 0,
    *,
    inclusive: bool = True,
) -> DistArray:
    """Prefix scan along ``axis`` (inclusive by default)."""
    if op not in _SCAN_OPS:
        raise ValueError(f"unknown scan op {op!r}")
    axis = axis % x.ndim
    result = _SCAN_OPS[op](x.data, axis=axis)
    if not inclusive:
        shifted = np.zeros_like(result)
        idx_dst = [slice(None)] * x.ndim
        idx_src = [slice(None)] * x.ndim
        idx_dst[axis] = slice(1, None)
        idx_src[axis] = slice(0, -1)
        shifted[tuple(idx_dst)] = result[tuple(idx_src)]
        result = shifted

    n = x.shape[axis]
    lanes = max(1, x.size // max(1, n))
    x.session.charge_reduction_flops(n, lanes, layout=x.layout)
    _record_scan(x, axis)
    return DistArray(result, x.layout, x.session)


def segmented_scan(
    x: DistArray,
    starts: np.ndarray,
    op: str = "sum",
    *,
    inclusive: bool = True,
) -> DistArray:
    """Segmented prefix scan of a 1-D array.

    ``starts`` is a boolean array marking the first element of each
    segment (element 0 is always a segment start).  The scan restarts
    at every flagged position.
    """
    if x.ndim != 1:
        raise ValueError("segmented_scan supports 1-D arrays")
    flags = np.asarray(starts, dtype=bool).copy()
    if flags.shape != x.shape:
        raise ValueError(f"starts shape {flags.shape} != array shape {x.shape}")
    if flags.size:
        flags[0] = True

    if op == "sum":
        c = np.cumsum(x.data)
        start_idx = np.flatnonzero(flags)
        base = np.where(start_idx > 0, c[np.maximum(start_idx - 1, 0)], 0)
        base[start_idx == 0] = 0
        seg_id = np.cumsum(flags) - 1
        result = c - base[seg_id]
        if not inclusive:
            result = result - x.data
    elif op in ("max", "min"):
        # Reset-to-segment-start via index trickery: compute positions of
        # each segment start, then accumulate within segments by masking.
        seg_id = np.cumsum(flags) - 1
        result = np.empty_like(x.data)
        accum = _SCAN_OPS[op]
        start_idx = np.flatnonzero(flags)
        bounds = np.append(start_idx, x.size)
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            result[lo:hi] = accum(x.data[lo:hi])
        if not inclusive:
            raise ValueError("exclusive segmented max/min scans are undefined")
    else:
        raise ValueError(f"unknown segmented scan op {op!r}")

    x.session.charge_reduction_flops(x.size, 1, layout=x.layout)
    _record_scan(x, 0, detail="segmented")
    return DistArray(result, x.layout, x.session)


def segmented_copy_scan(x: DistArray, starts: np.ndarray) -> DistArray:
    """Propagate each segment's first value across the segment.

    Used by the Monte-Carlo walker-spawning algorithms (paper §4 (9)):
    "algorithms that involve sum-scans, general sends and segmented
    copy scans".
    """
    if x.ndim != 1:
        raise ValueError("segmented_copy_scan supports 1-D arrays")
    flags = np.asarray(starts, dtype=bool).copy()
    if flags.size:
        flags[0] = True
    seg_id = np.cumsum(flags) - 1
    start_idx = np.flatnonzero(flags)
    result = x.data[start_idx[seg_id]]
    _record_scan(x, 0, detail="segmented copy")
    return DistArray(result, x.layout, x.session)


def _record_scan(x: DistArray, axis: int, detail: str = "") -> None:
    itemsize = x.data.itemsize
    if x.layout.is_parallel(axis) and x.layout.blocks(x.session.nodes, axis) > 1:
        # Each tree stage exchanges one partial value per lane.
        lanes = max(1, x.size // max(1, x.shape[axis]))
        net = lanes * itemsize * x.layout.blocks(x.session.nodes, axis)
    else:
        net = 0
    x.session.record_comm(
        CommPattern.SCAN,
        bytes_network=net,
        bytes_local=x.size * itemsize,
        rank=x.ndim,
        detail=detail,
    )
