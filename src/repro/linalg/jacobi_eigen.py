"""Dense symmetric eigenanalysis by the cyclic Jacobi method.

Table 2: ``X(:)`` and ``X(:,:)`` — the matrix is parallel 2-D, the
pairing/rotation vectors parallel 1-D.  Table 4 charges
``6 n^2 + 26 n`` FLOPs per main-loop iteration and, per iteration:
2 CSHIFTs on 1-D arrays (rotating the round-robin tournament
ordering), 2 CSHIFTs on 2-D arrays (aligning the paired column
blocks), 2 Sends (fetching the ``a_pp``/``a_qq``/``a_pq`` entries
through the router) and 4 1-D to 2-D Broadcasts (spreading the
rotation cosines/sines along rows and columns).

Each main-loop iteration applies one *set* of ``n/2`` disjoint
rotations chosen by a chess-tournament ordering; ``n - 1`` iterations
make one full sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.array.distarray import DistArray
from repro.layout.spec import parse_layout
from repro.machine.session import Session
from repro.metrics.flops import FlopKind
from repro.metrics.patterns import CommPattern


@dataclass
class JacobiResult:
    """Sorted eigenvalues (and matching eigenvectors) with sweep
    statistics.  ``eigenvectors[:, k]`` pairs with ``eigenvalues[k]``."""

    eigenvalues: np.ndarray
    iterations: int
    off_norm: float
    eigenvectors: np.ndarray | None = None


def _tournament_step(top: np.ndarray, bot: np.ndarray):
    """One rotation of the round-robin pairing (player 0 fixed)."""
    new_top = np.empty_like(top)
    new_bot = np.empty_like(bot)
    new_top[0] = top[0]
    new_top[1] = bot[0]
    new_top[2:] = top[1:-1]
    new_bot[:-1] = bot[1:]
    new_bot[-1] = top[-1]
    return new_top, new_bot


def jacobi_eigen(
    A: DistArray,
    *,
    tol: float = 1e-10,
    max_sweeps: int = 30,
) -> JacobiResult:
    """Eigenvalues of a symmetric matrix by cyclic Jacobi rotations."""
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError(f"matrix must be square, got {A.shape}")
    n = A.shape[0]
    if n % 2 != 0:
        raise ValueError("jacobi_eigen requires even n (tournament pairing)")
    session = A.session
    M = A.data.astype(np.float64, copy=True)
    if not np.allclose(M, M.T, atol=1e-12):
        raise ValueError("matrix must be symmetric")

    half = n // 2
    V = np.eye(n)  # accumulated rotations -> eigenvectors
    itemsize = M.itemsize
    off = A.layout.off_node_fraction(session.nodes)

    def _off_norm() -> float:
        o = M - np.diag(np.diag(M))
        return float(np.sqrt((o * o).sum()))

    iterations = 0
    off_norm = _off_norm()
    with session.region("main_loop", iterations=1) as region:
        for _ in range(max_sweeps):
            if off_norm <= tol:
                break
            top = np.arange(half)
            bot = np.arange(half, n)
            for _step in range(n - 1):
                p = np.minimum(top, bot)
                q = np.maximum(top, bot)

                # 2 Sends: fetch the pivot entries a_pp, a_qq, a_pq
                # through the router (vector-valued subscripts).
                app = M[p, p]
                aqq = M[q, q]
                apq = M[p, q]
                for detail in ("diag entries", "offdiag entries"):
                    session.record_comm(
                        CommPattern.SEND,
                        bytes_network=round(half * itemsize * off),
                        bytes_local=half * itemsize,
                        rank=2,
                        detail=detail,
                    )

                # Rotation angles: ~26n FLOPs per iteration in the
                # paper's accounting (divisions, square roots).
                with np.errstate(divide="ignore", invalid="ignore"):
                    theta = (aqq - app) / (2.0 * apq)
                    t = np.sign(theta) / (
                        np.abs(theta) + np.sqrt(1.0 + theta * theta)
                    )
                    t = np.where(apq == 0.0, 0.0, t)
                    t = np.where(
                        np.isfinite(t), t, np.zeros_like(t)
                    )
                c = 1.0 / np.sqrt(1.0 + t * t)
                s = t * c
                session.recorder.charge_flops(FlopKind.DIV, 3 * half)
                session.recorder.charge_flops(FlopKind.SQRT, 2 * half)
                session.recorder.charge_flops(FlopKind.ADD, 4 * half)
                session.recorder.charge_flops(FlopKind.MUL, 3 * half)

                # 4 Broadcasts: spread c and s along rows and columns.
                for detail in ("c rows", "s rows", "c cols", "s cols"):
                    session.record_comm(
                        CommPattern.BROADCAST,
                        bytes_network=half * n * itemsize
                        if session.nodes > 1
                        else 0,
                        bytes_local=half * n * itemsize,
                        rank=2,
                        detail=detail,
                    )

                # Apply all n/2 rotations to columns, then rows: the
                # 6 n^2 FLOPs of Table 4.
                colp = M[:, p]
                colq = M[:, q]
                M[:, p] = c * colp - s * colq
                M[:, q] = s * colp + c * colq
                vp = V[:, p]
                vq = V[:, q]
                V[:, p] = c * vp - s * vq
                V[:, q] = s * vp + c * vq
                rowp = M[p, :]
                rowq = M[q, :]
                M[p, :] = c[:, None] * rowp - s[:, None] * rowq
                M[q, :] = s[:, None] * rowp + c[:, None] * rowq
                flops = 6 * n * n
                session.recorder.charge_raw_flops(flops)
                session.recorder.charge_compute_time(
                    session.machine.compute_time(
                        flops * A.layout.critical_fraction(session.nodes),
                        tier=session.tier,
                    )
                )
                # Symmetrize against rounding drift.
                M = 0.5 * (M + M.T)

                # 2 CSHIFTs on 1-D arrays: rotate the tournament, and
                # 2 CSHIFTs on 2-D arrays: realign the paired blocks.
                top, bot = _tournament_step(top, bot)
                for rank, count in ((1, 2), (2, 2)):
                    size = half if rank == 1 else half * n
                    for _ in range(count):
                        session.record_comm(
                            CommPattern.CSHIFT,
                            bytes_network=round(size * itemsize * off),
                            bytes_local=size * itemsize,
                            rank=rank,
                            detail="tournament" if rank == 1 else "block align",
                        )
                iterations += 1
            off_norm = _off_norm()
        region.iterations = max(1, iterations)

    order = np.argsort(np.diag(M))
    eigenvalues = np.diag(M)[order]
    eigenvectors = V[:, order]
    return JacobiResult(
        eigenvalues=eigenvalues,
        iterations=iterations,
        off_norm=off_norm,
        eigenvectors=eigenvectors,
    )


def make_matrix(session: Session, n: int, seed: int = 0) -> DistArray:
    """A random symmetric matrix with Table-2 layouts declared."""
    rng = np.random.default_rng(seed)
    B = rng.standard_normal((n, n))
    A = 0.5 * (B + B.T)
    dA = DistArray(A, parse_layout("(:,:)", A.shape), session, "A")
    # Table 4 memory for jacobi: matrix, rotated copy, pairing and
    # rotation vectors.
    session.declare_memory("A", (n, n), np.float64)
    session.declare_memory("rot", (n, n), np.float64)
    for name in ("top", "bot", "c", "s"):
        session.declare_memory(name, (n // 2,), np.float64)
    return dA
