"""Golden parity: fast-path metrics == trace-mode metrics, suite-wide.

The aggregate-only fast path (the `detail_events=False` default) must
be observationally identical to trace mode for everything a
:class:`PerfReport` captures — FLOP counts, per-pattern communication
counts, bytes, busy/elapsed times, and memory.  Every registered
benchmark is run once in each mode on identical parameters and the
serialized reports are compared field-for-field after a
``report_from_dict`` round-trip (which also pins the serialization
itself).
"""

import numpy as np
import pytest

from repro.array.roll import fast_roll
from repro.metrics.recorder import MetricsRecorder
from repro.metrics.serialize import (
    canonical_report_json,
    report_from_dict,
    report_to_dict,
)
from repro.sessions import open_session
from repro.suite import REGISTRY, run_benchmark

# Small-but-representative sizes so the whole sweep stays fast while
# every benchmark still exercises its main loop and comm patterns.
SMALL_PARAMS = {
    "gather": {"n": 2048, "repeats": 3},
    "scatter": {"n": 2048, "repeats": 3},
    "reduction": {"n": 2048, "repeats": 3},
    "transpose": {"n": 48, "repeats": 3},
    "matrix-vector": {"n": 48, "repeats": 2},
    "lu": {"n": 20},
    "qr": {"m": 24, "n": 12},
    "gauss-jordan": {"n": 20},
    "pcr": {"n": 64},
    "conj-grad": {"n": 96},
    "jacobi": {"n": 10},
    "fft": {"n": 256},
    "boson": {"nx": 6, "nt": 4, "sweeps": 3},
    "diff-1d": {"nx": 48, "steps": 3},
    "diff-2d": {"nx": 16, "steps": 3},
    "diff-3d": {"nx": 10, "steps": 3},
    "ellip-2d": {"nx": 10},
    "fem-3d": {"nx": 2, "iterations": 6},
    "fermion": {"sites": 12, "n": 4, "sweeps": 2},
    "gmo": {"ns": 64, "ntr": 8},
    "ks-spectral": {"nx": 32, "ne": 2, "steps": 3},
    "md": {"n_p": 10, "steps": 3},
    "mdcell": {"nc": 3, "steps": 1},
    "n-body": {"n": 16},
    "pic-simple": {"nx": 8, "n_p": 64, "steps": 1},
    "pic-gather-scatter": {"nx": 8, "n_p": 48, "steps": 1},
    "qcd-kernel": {"nx": 2, "iterations": 1},
    "qmc": {"blocks": 1, "steps_per_block": 6, "n_w": 40},
    "qptransport": {"iterations": 6},
    "rp": {"nx": 4},
    "step4": {"nx": 8, "steps": 1},
    "wave-1d": {"nx": 32, "steps": 3},
}


def _run(name: str, detail_events: bool) -> dict:
    session = open_session("cm5", 32, detail_events=detail_events)
    report = run_benchmark(name, session, **SMALL_PARAMS.get(name, {}))
    return report_to_dict(report)


def test_every_registered_benchmark_is_covered():
    assert set(SMALL_PARAMS) == set(REGISTRY)


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_fast_path_report_matches_detail_mode(name):
    fast = _run(name, detail_events=False)
    detail = _run(name, detail_events=True)
    assert canonical_report_json(fast) == canonical_report_json(detail)
    # Round-trip through report_from_dict: the reconstructed reports
    # must themselves agree field-for-field.
    r_fast = report_to_dict(report_from_dict(fast))
    r_detail = report_to_dict(report_from_dict(detail))
    assert canonical_report_json(r_fast) == canonical_report_json(r_detail)


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_charge_buffer_report_matches_eager_mode(name, monkeypatch):
    """ChargeBuffer on vs off: canonical report JSON byte-identical.

    Batched charge accounting reorders *when* deltas reach the
    recorder (region exit instead of call time), never *what* is
    recorded — the flush replays every charge in original order with
    identical arithmetic, so the serialized report must not move by a
    single byte on any benchmark.
    """
    monkeypatch.setattr(MetricsRecorder, "buffer_charges", False)
    eager = _run(name, detail_events=False)
    monkeypatch.setattr(MetricsRecorder, "buffer_charges", True)
    buffered = _run(name, detail_events=False)
    assert canonical_report_json(eager) == canonical_report_json(buffered)


@pytest.mark.parametrize(
    "shape", [(5,), (4, 6), (3, 4, 5), (0,), (1, 7), (16, 16, 16)]
)
@pytest.mark.parametrize("dtype", [np.float64, np.complex128, np.int64])
def test_fast_roll_matches_np_roll(shape, dtype):
    """The docstring's identity claim for the CSHIFT fast path.

    ``fast_roll`` replaces ``np.roll`` on every comm-primitive and app
    hot path, so it must agree element-for-element across shapes,
    axes, dtypes, zero-length axes and out-of-range/negative shifts.
    """
    rng = np.random.default_rng(len(shape))
    data = rng.standard_normal(shape).astype(dtype)
    for axis in range(len(shape)):
        for shift in (-7, -1, 0, 1, 2, 5, 12):
            got = fast_roll(data, shift, axis=axis)
            np.testing.assert_array_equal(got, np.roll(data, shift, axis=axis))
            assert got is not data  # fresh array, like np.roll
