"""Sharded run-store tests: layout, dispatch, concurrent-writer safety.

The store contract the serve layer relies on: records land in
``shards/<hash-prefix>.jsonl`` with no interleaved lines under
concurrent multi-process appends, stats sidecars are crash-safe
(tmp + atomic rename), and the whole read API (``resolve``,
``run_records``, ``history``, ``diff``) works identically on sharded
and flat stores via ``open_store``.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.engine import (
    Engine,
    EngineConfig,
    RunStore,
    ShardedRunStore,
    new_run_id,
    open_store,
    write_json_atomic,
)
from repro.engine.jobs import RunRequest
from repro.engine.shards import DEFAULT_SHARD_WIDTH, FALLBACK_SHARD


def record(run_id: str, benchmark: str = "fft", index: int = 0) -> dict:
    request = RunRequest(benchmark=benchmark, params={"n": 64 + index})
    return {
        "schema": 2,
        "run_id": run_id,
        "ts": time.time(),
        "index": index,
        "benchmark": benchmark,
        "request": request.to_dict(),
        "request_hash": request.content_hash(),
        "status": "ok",
        "attempts": 1,
        "wall_time_s": 0.01,
        "queue_wait_s": 0.0,
        "compute_time_s": 0.01,
        "error": None,
        "report": {"elapsed_time_s": 1.0},
    }


class TestLayout:
    def test_records_shard_by_hash_prefix(self, tmp_path):
        store = ShardedRunStore(tmp_path / "runs")
        run_id = new_run_id()
        records = [record(run_id, index=i) for i in range(8)]
        store.extend(records)
        for rec in records:
            shard = store.shard_path(rec["request_hash"][:DEFAULT_SHARD_WIDTH])
            assert shard.is_file()
            lines = [
                json.loads(line) for line in shard.read_text().splitlines()
            ]
            assert any(
                r["request_hash"] == rec["request_hash"] for r in lines
            )
        assert store.records() == sorted(
            records, key=lambda r: r["ts"]
        )

    def test_marker_written_and_width_enforced(self, tmp_path):
        root = tmp_path / "runs"
        ShardedRunStore(root, width=3).append(record(new_run_id()))
        marker = json.loads((root / "store.json").read_text())
        assert marker["kind"] == "sharded-run-store"
        assert marker["width"] == 3
        # reopening discovers the stored width
        assert ShardedRunStore(root).width == 3
        with pytest.raises(ValueError, match="shard width"):
            ShardedRunStore(root, width=2)

    def test_bad_width_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedRunStore(tmp_path / "runs", width=0)
        with pytest.raises(ValueError):
            ShardedRunStore(tmp_path / "runs", width=9)

    def test_hashless_record_goes_to_fallback_shard(self, tmp_path):
        store = ShardedRunStore(tmp_path / "runs")
        rec = record(new_run_id())
        del rec["request_hash"]
        store.append(rec)
        assert store.shard_path(FALLBACK_SHARD).is_file()
        assert len(store.records()) == 1

    def test_records_for_hash_reads_one_shard(self, tmp_path):
        store = ShardedRunStore(tmp_path / "runs")
        run_id = new_run_id()
        records = [record(run_id, index=i) for i in range(6)]
        store.extend(records)
        target = records[3]
        found = store.records_for_hash(target["request_hash"])
        assert [r["request_hash"] for r in found] == [target["request_hash"]]


class TestOpenStoreDispatch:
    def test_directory_opens_sharded(self, tmp_path):
        root = tmp_path / "runs"
        ShardedRunStore(root).append(record(new_run_id()))
        store = open_store(root)
        assert isinstance(store, ShardedRunStore)
        assert len(store.records()) == 1

    def test_file_path_keeps_flat_store(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        RunStore(path).append(record(new_run_id()))
        assert isinstance(open_store(path), RunStore)

    def test_fresh_path_defaults_to_flat(self, tmp_path):
        # the historical CLI contract: --store newfile.jsonl stays flat
        assert isinstance(open_store(tmp_path / "new.jsonl"), RunStore)

    def test_read_api_identical_across_flavors(self, tmp_path):
        run_id = new_run_id()
        records = [record(run_id, benchmark=b, index=i)
                   for i, b in enumerate(["fft", "lu", "jacobi"])]
        flat = RunStore(tmp_path / "flat.jsonl")
        flat.extend(records)
        sharded = ShardedRunStore(tmp_path / "sharded")
        sharded.extend(records)
        assert flat.run_ids() == sharded.run_ids() == [run_id]
        assert flat.resolve("latest") == sharded.resolve("latest")
        assert (
            [r["benchmark"] for r in flat.run_records(run_id)]
            == [r["benchmark"] for r in sharded.run_records(run_id)]
            == ["fft", "lu", "jacobi"]
        )
        assert (
            [r["benchmark"] for r in sharded.history(benchmark="lu")]
            == ["lu"]
        )

    def test_stats_sidecar_roundtrip_on_sharded(self, tmp_path):
        store = ShardedRunStore(tmp_path / "runs")
        run_id = new_run_id()
        store.append(record(run_id))
        store.write_stats(run_id, {"jobs": 1, "workers": 2})
        assert store.read_stats(run_id) == {"jobs": 1, "workers": 2}
        assert (tmp_path / "runs" / "stats" / f"{run_id}.json").is_file()


class TestAtomicWrites:
    def test_write_json_atomic_leaves_no_tmp(self, tmp_path):
        target = tmp_path / "deep" / "stats.json"
        write_json_atomic(target, {"a": 1})
        assert json.loads(target.read_text()) == {"a": 1}
        assert list(tmp_path.rglob("*.tmp.*")) == []

    def test_crashed_writer_tmp_not_clobbered(self, tmp_path):
        # tmp names are per-pid: another process's crashed leftover is
        # never reused (and never mistaken for the real document)
        target = tmp_path / "stats.json"
        leftover = target.with_suffix(f".tmp.{os.getpid() + 1}")
        leftover.write_text("{torn")
        write_json_atomic(target, {"v": 1})
        assert json.loads(target.read_text()) == {"v": 1}
        assert leftover.read_text() == "{torn"

    def test_overwrite_is_atomic_replace(self, tmp_path):
        target = tmp_path / "stats.json"
        write_json_atomic(target, {"v": 1})
        write_json_atomic(target, {"v": 2})
        assert json.loads(target.read_text()) == {"v": 2}


def _append_worker(root: str, writer: int, count: int) -> None:
    store = ShardedRunStore(root)
    run_id = f"{writer:013x}-deadbeef"
    for i in range(count):
        store.append(record(run_id, benchmark="fft", index=i))


class TestConcurrentWriters:
    def test_multiprocess_appends_never_tear_lines(self, tmp_path):
        """4 writer processes x 20 appends into one store: every line
        must parse, every record must be present exactly once."""
        root = tmp_path / "runs"
        writers, per_writer = 4, 20
        procs = [
            multiprocessing.Process(
                target=_append_worker, args=(str(root), w, per_writer)
            )
            for w in range(writers)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        store = ShardedRunStore(root)
        records = store.records()
        assert len(records) == writers * per_writer
        by_writer = {}
        for rec in records:
            by_writer.setdefault(rec["run_id"], []).append(rec["index"])
        assert len(by_writer) == writers
        for indices in by_writer.values():
            assert sorted(indices) == list(range(per_writer))

    def test_threaded_appends_through_one_store_object(self, tmp_path):
        import threading

        store = ShardedRunStore(tmp_path / "runs")
        run_id = new_run_id()

        def append_many(offset: int) -> None:
            for i in range(25):
                store.append(record(run_id, index=offset + i))

        threads = [
            threading.Thread(target=append_many, args=(o,))
            for o in (0, 25, 50, 75)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert len(store.records()) == 100


class TestEngineOnShardedStore:
    def test_engine_run_persists_to_existing_directory(self, tmp_path):
        """Pointing EngineConfig.store at a directory (pre-created, as
        `repro serve --store` does) shards the engine's own records."""
        root = tmp_path / "runs"
        root.mkdir()
        engine = Engine(EngineConfig(store=root))
        results = engine.run(
            [RunRequest(benchmark="n-body", params={"n": 16})]
        )
        assert results[0].status == "ok"
        store = open_store(root)
        assert isinstance(store, ShardedRunStore)
        records = store.records()
        assert len(records) == 1
        assert records[0]["report"] is not None
        # sidecar landed in the sharded layout's stats directory
        assert store.read_stats(records[0]["run_id"]) is not None
