"""Table 3: communication of the linear algebra kernels.

Regenerates the pattern-by-rank classification and validates, per
kernel, that the measured communication-event inventory contains
exactly the patterns Table 3 lists.
"""

import pytest

from repro import Session, cm5
from repro.metrics.patterns import CommPattern
from repro.suite import run_benchmark
from repro.suite.tables import table3_comm

from conftest import save_table

#: Table 3 rows: linalg benchmark -> patterns it must (and may) use.
EXPECTED = {
    "matrix-vector": {CommPattern.BROADCAST, CommPattern.REDUCTION},
    "lu": {CommPattern.REDUCTION, CommPattern.BROADCAST},
    "qr": {CommPattern.REDUCTION, CommPattern.BROADCAST},
    "gauss-jordan": {
        CommPattern.REDUCTION,
        CommPattern.BROADCAST,
        CommPattern.SEND,
        CommPattern.GET,
    },
    "pcr": {CommPattern.CSHIFT},
    "conj-grad": {CommPattern.CSHIFT, CommPattern.REDUCTION},
    "jacobi": {CommPattern.CSHIFT, CommPattern.SEND, CommPattern.BROADCAST},
    "fft": {CommPattern.CSHIFT, CommPattern.AAPC, CommPattern.BUTTERFLY},
}

PARAMS = {
    "matrix-vector": {"n": 48, "repeats": 2},
    "lu": {"n": 24},
    "qr": {"m": 32, "n": 16},
    "gauss-jordan": {"n": 24},
    "pcr": {"n": 64},
    "conj-grad": {"n": 96},
    "jacobi": {"n": 12},
    "fft": {"n": 256},
}


def test_table3_regeneration(benchmark, output_dir):
    text = benchmark(table3_comm)
    save_table(output_dir, "table3_comm_patterns", text)
    assert "reduction" in text and "aapc" in text


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_measured_patterns_match_table3(benchmark, name):
    def run():
        session = Session(cm5(32))
        run_benchmark(name, session, **PARAMS[name])
        return set(session.recorder.root.comm_counts())

    measured = benchmark(run)
    assert measured == EXPECTED[name], (
        f"{name}: measured {sorted(p.value for p in measured)}, "
        f"Table 3 expects {sorted(p.value for p in EXPECTED[name])}"
    )
