"""Runtime FLOP/comm sanitizer: charged vs actually-executed.

The static linter proves structure; this module proves *numbers*.  An
:class:`AuditSession` runs a benchmark normally but

* re-views every ``DistArray`` payload as a thin ``np.ndarray``
  subclass whose ``__array_ufunc__`` shadow-counts the NumPy
  operations actually executed on distributed data (and whose
  ``__array_function__`` observes data movement: roll, transpose,
  take, ...), and
* splits the charged side into comparable buckets at the
  :class:`~repro.metrics.recorder.MetricsRecorder` hooks.

Per region the audit then diffs, under the paper's FLOP weights:

``elementwise``
    ``charge_flops`` with ``count > 1`` vs executed ufunc applications.
    Scalar bookkeeping (``count == 1``: CG step coefficients and the
    like, executed on Python floats the wrapper cannot see) is exempt
    and reported separately.
``reduction``
    ``charge_raw_flops`` / ``charge_reduction_flops`` vs executed
    ``ufunc.reduce/accumulate`` at ``N - 1`` ops per result (matching
    ``FlopCounter.add_raw`` semantics).  Boolean reductions (any/all)
    are uncharged by convention and skipped.
``kernel``
    ``Session.charge_kernel`` totals are *declared*: they stand in for
    math executed on raw (unobservable) arrays, e.g. the n-body
    interaction kernel.  They are reported as coverage, not diffed.

**Over-execution** (executed > charged) is uncharged work — a real
accounting bug — and drives the gated discrepancy ratio.
**Under-execution** is reported per bucket: for fully-audited
benchmarks it must be zero; for kernel-style benchmarks it shows up as
the declared-kernel coverage note instead.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.array.distarray import DistArray
from repro.machine.session import Session
from repro.metrics.flops import FlopKind, flop_cost, reduction_flops
from repro.metrics.recorder import MetricsRecorder

#: ufunc name -> FlopKind charged for one application per element.
UFUNC_KINDS: Dict[str, FlopKind] = {
    "add": FlopKind.ADD,
    "subtract": FlopKind.SUB,
    "negative": FlopKind.SUB,
    "conjugate": FlopKind.SUB,
    "multiply": FlopKind.MUL,
    "square": FlopKind.MUL,
    "matmul": FlopKind.MUL,
    "divide": FlopKind.DIV,
    "true_divide": FlopKind.DIV,
    "floor_divide": FlopKind.DIV,
    "reciprocal": FlopKind.DIV,
    "sqrt": FlopKind.SQRT,
    "cbrt": FlopKind.SQRT,
    "exp": FlopKind.EXP,
    "exp2": FlopKind.EXP,
    "expm1": FlopKind.EXP,
    "log": FlopKind.LOG,
    "log2": FlopKind.LOG,
    "log10": FlopKind.LOG,
    "log1p": FlopKind.LOG,
    "sin": FlopKind.TRIG,
    "cos": FlopKind.TRIG,
    "tan": FlopKind.TRIG,
    "arcsin": FlopKind.TRIG,
    "arccos": FlopKind.TRIG,
    "arctan": FlopKind.TRIG,
    "arctan2": FlopKind.TRIG,
    "sinh": FlopKind.TRIG,
    "cosh": FlopKind.TRIG,
    "tanh": FlopKind.TRIG,
    "hypot": FlopKind.TRIG,
    "power": FlopKind.POW,
    "float_power": FlopKind.POW,
    "absolute": FlopKind.ABS,
    "fabs": FlopKind.ABS,
    "maximum": FlopKind.COMPARE,
    "minimum": FlopKind.COMPARE,
    "fmax": FlopKind.COMPARE,
    "fmin": FlopKind.COMPARE,
    "greater": FlopKind.COMPARE,
    "greater_equal": FlopKind.COMPARE,
    "less": FlopKind.COMPARE,
    "less_equal": FlopKind.COMPARE,
    "equal": FlopKind.COMPARE,
    "not_equal": FlopKind.COMPARE,
    "sign": FlopKind.COMPARE,
}

#: ufuncs that move/copy/classify but do not execute FLOPs.
UFUNC_IGNORED = {
    "isnan",
    "isinf",
    "isfinite",
    "signbit",
    "logical_and",
    "logical_or",
    "logical_not",
    "logical_xor",
    "bitwise_and",
    "bitwise_or",
    "bitwise_xor",
    "invert",
    "left_shift",
    "right_shift",
    "rint",
    "floor",
    "ceil",
    "trunc",
    "copysign",
    "nextafter",
    "spacing",
    "mod",
    "remainder",
    "positive",
}

#: array functions counted as data movement (RC003's runtime twin).
#: ``concatenate`` is here because ``repro.array.roll.fast_roll`` spells
#: a circular shift as two slices + concatenate.
MOVEMENT_FUNCS = {
    "roll",
    "concatenate",
    "transpose",
    "swapaxes",
    "moveaxis",
    "rollaxis",
    "take",
    "put",
    "repeat",
}

#: the active audit collector (benchmarks are single-threaded).
_ACTIVE: List["_AuditCollector"] = []


@dataclass
class _RegionTally:
    """Charged-vs-executed accumulators for one region name."""

    # charged
    charged_ops: Dict[Tuple[FlopKind, bool], int] = field(
        default_factory=dict
    )
    scalar_ops: Dict[FlopKind, int] = field(default_factory=dict)
    charged_reduction: int = 0
    declared_kernel: int = 0
    # executed
    executed_ops: Dict[Tuple[FlopKind, bool], int] = field(
        default_factory=dict
    )
    executed_reduction: int = 0
    executed_movement: Dict[str, int] = field(default_factory=dict)
    unmapped: Dict[str, int] = field(default_factory=dict)

    def charged_elementwise_weighted(self) -> int:
        return sum(
            flop_cost(kind, n, complex_valued=cv)
            for (kind, cv), n in self.charged_ops.items()
        )

    def executed_elementwise_weighted(self) -> int:
        return sum(
            flop_cost(kind, n, complex_valued=cv)
            for (kind, cv), n in self.executed_ops.items()
        )

    def over_weighted(self) -> int:
        """Weighted ops executed beyond what was charged (uncharged work)."""
        over = 0
        keys = set(self.charged_ops) | set(self.executed_ops)
        for key in keys:
            kind, cv = key
            extra = self.executed_ops.get(key, 0) - self.charged_ops.get(
                key, 0
            )
            if extra > 0:
                over += flop_cost(kind, extra, complex_valued=cv)
        extra_red = self.executed_reduction - self.charged_reduction
        if extra_red > 0:
            over += extra_red
        return over

    def under_weighted(self) -> int:
        """Weighted charged-but-unobserved elementwise ops."""
        under = 0
        for key, n in self.charged_ops.items():
            kind, cv = key
            missing = n - self.executed_ops.get(key, 0)
            if missing > 0:
                under += flop_cost(kind, missing, complex_valued=cv)
        return under

    def under_reduction(self) -> int:
        return max(0, self.charged_reduction - self.executed_reduction)


class _AuditCollector:
    """Routes charge hooks and execution intercepts into tallies."""

    def __init__(self) -> None:
        self.tallies: Dict[str, _RegionTally] = {}
        self.recorder: Optional[MetricsRecorder] = None

    def _tally(self) -> _RegionTally:
        name = (
            self.recorder.current.name
            if self.recorder is not None
            else "<none>"
        )
        tally = self.tallies.get(name)
        if tally is None:
            tally = self.tallies[name] = _RegionTally()
        return tally

    # -- charged side ---------------------------------------------------
    def note_charge(
        self, kind: FlopKind, count: int, complex_valued: bool
    ) -> None:
        tally = self._tally()
        if count == 1:
            tally.scalar_ops[kind] = tally.scalar_ops.get(kind, 0) + 1
        else:
            key = (kind, complex_valued)
            tally.charged_ops[key] = tally.charged_ops.get(key, 0) + count

    def note_raw(self, flops: int, *, kernel: bool) -> None:
        tally = self._tally()
        if kernel:
            tally.declared_kernel += flops
        else:
            tally.charged_reduction += flops

    # -- executed side --------------------------------------------------
    def note_exec(
        self, kind: FlopKind, count: int, complex_valued: bool
    ) -> None:
        if count <= 0:
            return
        key = (kind, complex_valued)
        tally = self._tally()
        tally.executed_ops[key] = tally.executed_ops.get(key, 0) + count

    def note_exec_reduction(self, ops: int) -> None:
        if ops > 0:
            self._tally().executed_reduction += ops

    def note_movement(self, func_name: str) -> None:
        tally = self._tally()
        tally.executed_movement[func_name] = (
            tally.executed_movement.get(func_name, 0) + 1
        )

    def note_unmapped(self, name: str, count: int) -> None:
        tally = self._tally()
        tally.unmapped[name] = tally.unmapped.get(name, 0) + count


class _AuditArray(np.ndarray):
    """ndarray subclass that shadow-counts executed operations.

    Arithmetic is delegated to plain ndarray views (no recursion, no
    behavior change); when an ``out=`` argument is supplied the
    *original* out object is returned so identity checks in callers
    (e.g. ``repro.array.fused._finish``) keep working.
    """

    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        out = kwargs.get("out")
        plain_inputs = tuple(
            i.view(np.ndarray) if isinstance(i, _AuditArray) else i
            for i in inputs
        )
        if out is not None:
            kwargs["out"] = tuple(
                o.view(np.ndarray) if isinstance(o, _AuditArray) else o
                for o in out
            )
        result = getattr(ufunc, method)(*plain_inputs, **kwargs)
        if _ACTIVE:
            _count_ufunc(_ACTIVE[-1], ufunc, method, plain_inputs, result)
        if out is not None:
            return out[0] if len(out) == 1 else out
        if isinstance(result, np.ndarray) and not isinstance(
            result, _AuditArray
        ):
            return result.view(_AuditArray)
        return result

    def __array_function__(self, func, types, args, kwargs):
        if _ACTIVE and func.__name__ in MOVEMENT_FUNCS:
            _ACTIVE[-1].note_movement(func.__name__)
        return super().__array_function__(func, types, args, kwargs)


def _result_size(result) -> int:
    if isinstance(result, tuple):
        result = result[0]
    if isinstance(result, np.ndarray):
        return int(result.size)
    return 1


def _count_ufunc(
    collector: _AuditCollector, ufunc, method: str, inputs, result
) -> None:
    name = ufunc.__name__
    if name in UFUNC_IGNORED:
        return
    first = next((i for i in inputs if isinstance(i, np.ndarray)), None)
    if method in ("reduce", "accumulate", "reduceat"):
        if first is None or first.dtype.kind == "b":
            return  # any/all-style reductions are uncharged by convention
        if method == "accumulate":
            lanes = first.size // max(1, first.shape[0]) or 1
            ops = first.size - lanes
        else:
            ops = first.size - _result_size(result)
        collector.note_exec_reduction(ops)
        return
    if method not in ("__call__", "outer"):
        return
    kind = UFUNC_KINDS.get(name)
    if name == "power" or name == "float_power":
        exponent = inputs[1] if len(inputs) > 1 else None
        if isinstance(exponent, (int, float)) and exponent == 2:
            kind = FlopKind.MUL
    n = _result_size(result)
    if kind is None:
        collector.note_unmapped(name, n)
        return
    complex_valued = False
    res0 = result[0] if isinstance(result, tuple) else result
    if isinstance(res0, np.ndarray) and res0.dtype.kind == "c":
        complex_valued = True
    elif first is not None and first.dtype.kind == "c":
        complex_valued = True
    collector.note_exec(kind, n, complex_valued)


class _AuditRecorder(MetricsRecorder):
    """Recorder that mirrors every charge into the audit collector.

    Charge buffering is disabled: the audit's note hooks fire inside
    the overridden ``charge_*`` methods, and keeping the underlying
    accounting eager guarantees the shadow counters and the recorder
    state advance in lockstep — the audit sees buffered charge sites
    (``ChargeBuffer`` users route through these same methods) without
    ever racing a deferred flush.
    """

    buffer_charges = False

    def __init__(self, collector: _AuditCollector) -> None:
        super().__init__()
        self.collector = collector
        self.kernel_depth = 0
        collector.recorder = self

    def charge_flops(
        self, kind: FlopKind, count: int, *, complex_valued: bool = False
    ) -> None:
        super().charge_flops(kind, count, complex_valued=complex_valued)
        self.collector.note_charge(kind, count, complex_valued)

    def charge_raw_flops(self, flops: int) -> None:
        super().charge_raw_flops(flops)
        self.collector.note_raw(flops, kernel=self.kernel_depth > 0)

    def charge_reduction(self, n_elements: int, n_results: int = 1) -> None:
        super().charge_reduction(n_elements, n_results)
        self.collector.note_raw(
            reduction_flops(n_elements, n_results), kernel=False
        )


class AuditSession(Session):
    """A session whose run is shadow-audited.

    Use via :func:`audit_benchmark` or directly::

        session = AuditSession(machine)
        with session.auditing():
            run_benchmark("diff-1d", session)
        report = session.audit_report()
    """

    def __init__(self, machine, *, tier=None, **kwargs) -> None:
        collector = _AuditCollector()
        recorder = _AuditRecorder(collector)
        if tier is not None:
            kwargs["tier"] = tier
        super().__init__(machine, recorder=recorder, **kwargs)
        self.collector = collector

    def charge_kernel(self, flops: int, **kwargs) -> None:
        rec = self.recorder
        rec.kernel_depth += 1
        try:
            super().charge_kernel(flops, **kwargs)
        finally:
            rec.kernel_depth -= 1

    @contextmanager
    def auditing(self) -> Iterator[None]:
        """Activate payload interception for the duration of a run."""
        with _audit_scope(self.collector):
            yield

    def audit_report(self, benchmark: str = "") -> "AuditReport":
        """Build the charged-vs-executed report for this session."""
        return AuditReport.from_collector(
            self.collector, benchmark=benchmark
        )


@contextmanager
def _audit_scope(collector: _AuditCollector) -> Iterator[None]:
    """Patch DistArray so payloads are audited and ``.np`` is exempt."""
    orig_init = DistArray.__init__
    orig_np = DistArray.np

    def audit_init(self, data, layout, session, name: str = "") -> None:
        orig_init(self, data, layout, session, name)
        payload = self.data
        if (
            isinstance(payload, np.ndarray)
            and not isinstance(payload, _AuditArray)
            and payload.dtype.kind in "fc"
        ):
            self.data = payload.view(_AuditArray)

    def plain_np(self) -> np.ndarray:
        payload = self.data
        if isinstance(payload, _AuditArray):
            return payload.view(np.ndarray)
        return payload

    DistArray.__init__ = audit_init  # type: ignore[method-assign]
    DistArray.np = property(plain_np)  # type: ignore[assignment]
    _ACTIVE.append(collector)
    try:
        yield
    finally:
        _ACTIVE.pop()
        DistArray.__init__ = orig_init  # type: ignore[method-assign]
        DistArray.np = orig_np  # type: ignore[assignment]


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass
class RegionAudit:
    """Charged-vs-executed summary for one region."""

    name: str
    charged_elementwise: int
    executed_elementwise: int
    charged_reduction: int
    executed_reduction: int
    declared_kernel: int
    scalar_exempt_ops: int
    over: int
    under_elementwise: int
    under_reduction: int
    movement_observed: int
    comm_recorded: int
    unmapped: Dict[str, int]

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "charged_elementwise": self.charged_elementwise,
            "executed_elementwise": self.executed_elementwise,
            "charged_reduction": self.charged_reduction,
            "executed_reduction": self.executed_reduction,
            "declared_kernel": self.declared_kernel,
            "scalar_exempt_ops": self.scalar_exempt_ops,
            "over": self.over,
            "under_elementwise": self.under_elementwise,
            "under_reduction": self.under_reduction,
            "movement_observed": self.movement_observed,
            "comm_recorded": self.comm_recorded,
            "unmapped": dict(self.unmapped),
        }


@dataclass
class AuditReport:
    """Whole-run sanitizer verdict.

    ``over_pct`` is the gated metric: weighted FLOPs executed on
    distributed payloads but never charged, as a percentage of all
    charged FLOPs.  ``under_pct`` covers charged-but-unobserved
    elementwise work (should be zero for fully-audited benchmarks;
    declared kernels are excluded by construction).
    """

    benchmark: str
    regions: List[RegionAudit]

    @classmethod
    def from_collector(
        cls, collector: _AuditCollector, benchmark: str = ""
    ) -> "AuditReport":
        regions: List[RegionAudit] = []
        comm_counts: Dict[str, int] = {}
        if collector.recorder is not None:
            for region in collector.recorder.root.walk():
                comm_counts[region.name] = (
                    comm_counts.get(region.name, 0) + region.comm_count
                )
        for name, tally in sorted(collector.tallies.items()):
            regions.append(
                RegionAudit(
                    name=name,
                    charged_elementwise=tally.charged_elementwise_weighted(),
                    executed_elementwise=(
                        tally.executed_elementwise_weighted()
                    ),
                    charged_reduction=tally.charged_reduction,
                    executed_reduction=tally.executed_reduction,
                    declared_kernel=tally.declared_kernel,
                    scalar_exempt_ops=sum(tally.scalar_ops.values()),
                    over=tally.over_weighted(),
                    under_elementwise=tally.under_weighted(),
                    under_reduction=tally.under_reduction(),
                    movement_observed=sum(
                        tally.executed_movement.values()
                    ),
                    comm_recorded=comm_counts.get(name, 0),
                    unmapped=dict(tally.unmapped),
                )
            )
        return cls(benchmark=benchmark, regions=regions)

    # -- totals ---------------------------------------------------------
    @property
    def charged_total(self) -> int:
        return sum(
            r.charged_elementwise + r.charged_reduction + r.declared_kernel
            for r in self.regions
        )

    @property
    def executed_total(self) -> int:
        return sum(
            r.executed_elementwise + r.executed_reduction
            for r in self.regions
        )

    @property
    def over_total(self) -> int:
        return sum(r.over for r in self.regions)

    @property
    def under_total(self) -> int:
        return sum(r.under_elementwise for r in self.regions)

    @property
    def kernel_total(self) -> int:
        return sum(r.declared_kernel for r in self.regions)

    @property
    def over_pct(self) -> float:
        """Uncharged executed work as a % of charged FLOPs (gated)."""
        return 100.0 * self.over_total / max(1, self.charged_total)

    @property
    def under_pct(self) -> float:
        """Charged-but-unobserved elementwise work as a % of charged."""
        return 100.0 * self.under_total / max(1, self.charged_total)

    @property
    def unmapped_total(self) -> int:
        return sum(sum(r.unmapped.values()) for r in self.regions)

    def ok(self, tolerance_pct: float, *, strict: bool = False) -> bool:
        """Gate verdict: over-execution within tolerance.

        ``strict`` additionally gates under-execution and unmapped
        ufuncs — only meaningful for benchmarks whose math is fully
        observable (no ``charge_kernel`` on raw arrays).
        """
        if self.over_pct > tolerance_pct:
            return False
        if strict and (
            self.under_pct > tolerance_pct or self.unmapped_total > 0
        ):
            return False
        return True

    def table(self) -> str:
        """Human-readable per-region report."""
        lines: List[str] = []
        header = (
            f"{'region':<18} {'charged':>12} {'executed':>12} "
            f"{'kernel':>10} {'over':>8} {'under':>8} "
            f"{'moves':>6} {'comm':>6}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for r in self.regions:
            lines.append(
                f"{r.name:<18} "
                f"{r.charged_elementwise + r.charged_reduction:>12} "
                f"{r.executed_elementwise + r.executed_reduction:>12} "
                f"{r.declared_kernel:>10} {r.over:>8} "
                f"{r.under_elementwise + r.under_reduction:>8} "
                f"{r.movement_observed:>6} {r.comm_recorded:>6}"
            )
        lines.append(
            f"total charged={self.charged_total} "
            f"executed={self.executed_total} "
            f"declared-kernel={self.kernel_total} "
            f"over={self.over_total} ({self.over_pct:.3f}%) "
            f"under={self.under_total} ({self.under_pct:.3f}%)"
        )
        if self.unmapped_total:
            names = sorted(
                {n for r in self.regions for n in r.unmapped}
            )
            lines.append(
                f"warning: {self.unmapped_total} op(s) from unmapped "
                f"ufunc(s): {', '.join(names)}"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "charged_total": self.charged_total,
            "executed_total": self.executed_total,
            "kernel_total": self.kernel_total,
            "over_total": self.over_total,
            "over_pct": self.over_pct,
            "under_total": self.under_total,
            "under_pct": self.under_pct,
            "unmapped_total": self.unmapped_total,
            "regions": [r.to_dict() for r in self.regions],
        }


def audit_benchmark(
    name: str,
    machine=None,
    *,
    params: Optional[Dict[str, object]] = None,
    tier=None,
) -> AuditReport:
    """Run one registered benchmark under the sanitizer.

    Returns the :class:`AuditReport`; the benchmark executes exactly as
    in a normal run (the audit wrapper delegates all arithmetic), so
    its reported metrics are unchanged.
    """
    from repro.machine.presets import cm5
    from repro.suite.runner import run_benchmark

    if machine is None:
        machine = cm5(32)
    session = AuditSession(machine, tier=tier)
    with session.auditing():
        run_benchmark(name, session, **(params or {}))
    return session.audit_report(benchmark=name)
