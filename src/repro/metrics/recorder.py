"""Hierarchical metrics recorder.

Benchmarks execute inside a :class:`MetricsRecorder` session owned by
the simulated machine.  The recorder keeps a stack of named
:class:`Region` s (e.g. ``setup`` / ``main_loop`` / ``solve``), because
the paper reports metrics for code *segments* of several benchmarks
(boson, fem-3D, md, qr, lu, ...) rather than only whole programs.

Every region accumulates

* FLOPs (via :class:`repro.metrics.flops.FlopCounter`),
* communication statistics (:class:`CommStats`, one accumulator per
  distinct ``(pattern, rank, detail)`` stream),
* simulated compute time and communication busy/idle time.

Communication is accounted in aggregate by default: each collective
bumps an accumulator, and ``comm_busy`` / ``comm_idle`` are O(1)
running sums.  Opening the recorder with ``detail_events=True`` (trace
mode) additionally keeps the full per-event :class:`CommEvent` list for
:mod:`repro.analysis.trace` — both modes report identical metrics.

Busy time is the non-idle execution time (compute plus the
bandwidth-bound portion of communication); elapsed time adds network
latency and synchronization idle time, mirroring the paper's
busy/elapsed dichotomy.

An optional :attr:`MetricsRecorder.observer` (duck-typed; see
:class:`repro.obs.SpanCollector`) is notified of every region
enter/exit, FLOP charge, compute charge and communication event.  All
hooks sit behind a single ``is not None`` check, so the default
(unobserved) path pays one attribute load per charge and nothing else —
observation never mutates recorder state, keeping reported metrics
byte-identical with and without a collector attached.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.metrics.chargebuffer import ChargeBuffer
from repro.metrics.flops import FlopCounter, FlopKind, reduction_flops
from repro.metrics.memory import MemoryLedger
from repro.metrics.patterns import CommPattern

#: Kill switch for batched charge accounting (``REPRO_CHARGE_BUFFER=0``
#: forces every charge onto the eager per-call path).  Read once at
#: import; tests toggle :attr:`MetricsRecorder.buffer_charges` instead.
_BUFFER_ENABLED = os.environ.get("REPRO_CHARGE_BUFFER", "1").lower() not in (
    "0",
    "false",
    "no",
)

_CHARGE_METRICS: Optional[Dict] = None


def _charge_metrics() -> Dict:
    """Charge-buffer telemetry on the process-global registry.

    Deferred import: :mod:`repro.obs` pulls in :mod:`repro.metrics`
    modules, so a top-level import here would cycle.  Resolved once and
    cached; these counters record wall-clock bookkeeping only and never
    touch any simulated metric.
    """
    global _CHARGE_METRICS
    if _CHARGE_METRICS is None:
        from repro.obs import telemetry

        registry = telemetry.get_registry()
        _CHARGE_METRICS = {
            "enabled": telemetry.enabled,
            "flushes": registry.counter(
                "repro_charge_flushes_total",
                "Non-empty charge-buffer flushes.",
            ),
            "entries": registry.histogram(
                "repro_charge_flush_entries",
                "Buffered entries drained per non-empty flush.",
                buckets=telemetry.SIZE_BUCKETS,
            ),
            "disengaged": registry.counter(
                "repro_charge_disengaged_total",
                "Region transitions where buffering could not engage.",
                ["reason"],
            ),
        }
    return _CHARGE_METRICS


@dataclass(frozen=True)
class CommEvent:
    """One collective-communication occurrence.

    ``bytes_network`` counts bytes that cross node boundaries under the
    array's layout; ``bytes_local`` counts intra-node data motion (e.g.
    a cshift along a serial axis moves memory but no messages).
    """

    pattern: CommPattern
    bytes_network: int
    bytes_local: int = 0
    nodes: int = 1
    busy_time: float = 0.0
    idle_time: float = 0.0
    rank: Optional[int] = None
    detail: str = ""

    @property
    def elapsed_time(self) -> float:
        """Busy plus idle seconds."""
        return self.busy_time + self.idle_time


#: Accumulator key: one stream per ``(pattern, rank, detail)``.
CommKey = Tuple[CommPattern, Optional[int], str]


def _dropped_events_error(accessor: str, dropped: int) -> RuntimeError:
    """Uniform error for per-event accessors hit on the fast path."""
    return RuntimeError(
        f"{accessor}: {dropped} communication event(s) were recorded in "
        "aggregate-only mode and dropped; open the session in trace "
        "mode with Session(detail_events=True) or "
        "repro.sessions.trace_session() to keep per-event traces"
    )


class CommStats:
    """Aggregated statistics for one ``(pattern, rank, detail)`` stream."""

    __slots__ = (
        "pattern",
        "rank",
        "detail",
        "count",
        "bytes_network",
        "bytes_local",
        "busy_time",
        "idle_time",
    )

    def __init__(
        self, pattern: CommPattern, rank: Optional[int], detail: str
    ) -> None:
        self.pattern = pattern
        self.rank = rank
        self.detail = detail
        self.count = 0
        self.bytes_network = 0
        self.bytes_local = 0
        self.busy_time = 0.0
        self.idle_time = 0.0

    @property
    def elapsed_time(self) -> float:
        """Busy plus idle seconds over all occurrences."""
        return self.busy_time + self.idle_time

    def __repr__(self) -> str:
        return (
            f"CommStats({self.pattern.value!r}, count={self.count}, "
            f"bytes_network={self.bytes_network})"
        )


class Region:
    """A named measurement region; nests to form a tree."""

    def __init__(
        self, name: str, iterations: int = 1, *, detail_events: bool = False
    ) -> None:
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.name = name
        self.iterations = iterations
        self.detail_events = detail_events
        self.flops = FlopCounter()
        self.comm_stats: Dict[CommKey, CommStats] = {}
        #: populated only when ``detail_events`` is set (trace mode);
        #: read through the guarded :attr:`comm_events` property
        self._events: List[CommEvent] = []
        self.compute_busy = 0.0
        self.children: List["Region"] = []
        self._comm_count = 0
        self._comm_busy = 0.0
        self._comm_idle = 0.0
        self._bytes_network = 0
        self._bytes_local = 0

    # -- recording -------------------------------------------------------
    def add_comm(
        self,
        pattern: CommPattern,
        *,
        bytes_network: int = 0,
        bytes_local: int = 0,
        nodes: int = 1,
        busy_time: float = 0.0,
        idle_time: float = 0.0,
        rank: Optional[int] = None,
        detail: str = "",
    ) -> Optional[CommEvent]:
        """Account one collective; returns the event only in trace mode."""
        key = (pattern, rank, detail)
        stats = self.comm_stats.get(key)
        if stats is None:
            stats = self.comm_stats[key] = CommStats(pattern, rank, detail)
        stats.count += 1
        stats.bytes_network += bytes_network
        stats.bytes_local += bytes_local
        stats.busy_time += busy_time
        stats.idle_time += idle_time
        self._comm_count += 1
        self._comm_busy += busy_time
        self._comm_idle += idle_time
        self._bytes_network += bytes_network
        self._bytes_local += bytes_local
        if not self.detail_events:
            return None
        event = CommEvent(
            pattern=pattern,
            bytes_network=bytes_network,
            bytes_local=bytes_local,
            nodes=nodes,
            busy_time=busy_time,
            idle_time=idle_time,
            rank=rank,
            detail=detail,
        )
        self._events.append(event)
        return event

    def record_comm(self, event: CommEvent) -> None:
        """Account an already-built :class:`CommEvent`."""
        key = (event.pattern, event.rank, event.detail)
        stats = self.comm_stats.get(key)
        if stats is None:
            stats = self.comm_stats[key] = CommStats(
                event.pattern, event.rank, event.detail
            )
        stats.count += 1
        stats.bytes_network += event.bytes_network
        stats.bytes_local += event.bytes_local
        stats.busy_time += event.busy_time
        stats.idle_time += event.idle_time
        self._comm_count += 1
        self._comm_busy += event.busy_time
        self._comm_idle += event.idle_time
        self._bytes_network += event.bytes_network
        self._bytes_local += event.bytes_local
        if self.detail_events:
            self._events.append(event)

    # -- local (exclusive of children) ---------------------------------
    @property
    def comm_events(self) -> List[CommEvent]:
        """Per-event history of this region (exclusive; trace mode).

        Raises if events were recorded but dropped because the recorder
        ran on the aggregate-only fast path; the exception names the
        exact flags (``Session(detail_events=True)`` /
        ``repro.sessions.trace_session``) that retain them.
        """
        dropped = self._comm_count - len(self._events)
        if dropped:
            raise _dropped_events_error("Region.comm_events", dropped)
        return self._events

    @property
    def comm_count(self) -> int:
        """Number of collectives recorded in this region (exclusive)."""
        return self._comm_count

    @property
    def comm_busy(self) -> float:
        """Bandwidth-bound communication seconds in this region."""
        return self._comm_busy

    @property
    def comm_idle(self) -> float:
        """Latency/synchronization seconds in this region."""
        return self._comm_idle

    # -- aggregate (inclusive of children) ------------------------------
    def walk(self) -> Iterator["Region"]:
        """Depth-first iteration over this region and descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def total_flops(self) -> int:
        """FLOPs including child regions."""
        return sum(r.flops.total for r in self.walk())

    @property
    def total_comm_count(self) -> int:
        """Number of collectives recorded, including children's."""
        return sum(r._comm_count for r in self.walk())

    @property
    def total_comm_events(self) -> List[CommEvent]:
        """All communication events, including children's (trace mode).

        Raises if events were dropped because the recorder ran in the
        default aggregate-only fast path; open the session with
        ``detail_events=True`` to retain per-event traces.
        """
        out: List[CommEvent] = []
        dropped = 0
        for r in self.walk():
            out.extend(r._events)
            dropped += r._comm_count - len(r._events)
        if dropped:
            raise _dropped_events_error("Region.total_comm_events", dropped)
        return out

    @property
    def busy_time(self) -> float:
        """Non-idle execution time: compute + bandwidth-bound comm."""
        return sum(r.compute_busy + r._comm_busy for r in self.walk())

    @property
    def elapsed_time(self) -> float:
        """Total execution time: busy + latency/synchronization idle."""
        return self.busy_time + sum(r._comm_idle for r in self.walk())

    @property
    def network_bytes(self) -> int:
        """Total bytes crossing node boundaries."""
        return sum(r._bytes_network for r in self.walk())

    def comm_counts(self) -> Dict[CommPattern, int]:
        """Occurrences of each pattern within this region (inclusive)."""
        counts: Dict[CommPattern, int] = {}
        for r in self.walk():
            for stats in r.comm_stats.values():
                counts[stats.pattern] = (
                    counts.get(stats.pattern, 0) + stats.count
                )
        return counts

    def comm_counts_per_iteration(self) -> Dict[CommPattern, float]:
        """Pattern counts divided by this region's iteration count."""
        return {p: c / self.iterations for p, c in self.comm_counts().items()}

    @property
    def flops_per_iteration(self) -> float:
        """Inclusive FLOPs divided by iteration count."""
        return self.total_flops / self.iterations

    def find(self, name: str) -> Optional["Region"]:
        """Locate a descendant region by name (depth-first)."""
        for r in self.walk():
            if r.name == name:
                return r
        return None

    def __repr__(self) -> str:
        return (
            f"Region({self.name!r}, iters={self.iterations}, "
            f"flops={self.total_flops}, comm={self.total_comm_count})"
        )


@dataclass
class MetricsRecorder:
    """Accumulates metrics for one benchmark run.

    ``detail_events=True`` (trace mode) retains the full per-event
    :class:`CommEvent` lists on every region; the default fast path
    keeps only the :class:`CommStats` accumulators, which carry all the
    information the :class:`~repro.metrics.report.PerfReport` needs.
    """

    root: Region = field(default_factory=lambda: Region("benchmark"))
    memory: MemoryLedger = field(default_factory=MemoryLedger)
    detail_events: bool = False
    #: Optional span observer (e.g. :class:`repro.obs.SpanCollector`).
    #: Observers are read-only listeners: they may not alter any
    #: accounting, so attaching one leaves every metric bit-identical.
    observer: Optional[object] = None

    #: Class-level opt-out for batched charge accounting.  When true
    #: (the default unless ``REPRO_CHARGE_BUFFER=0``), charges made
    #: inside regions are enqueued into a :class:`ChargeBuffer` and
    #: flushed in aggregate at each region transition — bit-identical
    #: to eager charging (see ``repro.metrics.chargebuffer``).  The
    #: runtime sanitizer's audit recorder sets this to ``False``.
    buffer_charges = _BUFFER_ENABLED

    def __post_init__(self) -> None:
        if self.detail_events:
            self.root.detail_events = True
        self._stack: List[Region] = [self.root]
        self._buffer = ChargeBuffer()
        #: the active buffer — ``None`` whenever charges must be eager
        #: (root region, observer attached, trace mode, buffering off)
        self._buf: Optional[ChargeBuffer] = None

    def _refresh_buffer_state(self) -> None:
        """Recompute whether charges should buffer, after any transition.

        Buffering engages only inside regions (root-level charges stay
        eager so ``charge → read`` sequences outside any region keep
        their historical immediacy), with no observer attached (span
        collectors must see every charge as it happens for ``repro.obs``
        reconciliation to stay bit-exact) and outside trace mode.
        """
        if (
            self.buffer_charges
            and len(self._stack) > 1
            and self.observer is None
            and not self.detail_events
        ):
            self._buf = self._buffer
        else:
            self._buf = None
            # inside a region, eager charging is a *disengage* worth
            # counting (root-level eager is just normal operation)
            if len(self._stack) > 1:
                metrics = _charge_metrics()
                if metrics["enabled"]():
                    if not self.buffer_charges:
                        reason = "disabled"
                    elif self.observer is not None:
                        reason = "observer"
                    else:
                        reason = "trace"
                    metrics["disengaged"].labels(reason=reason).inc()

    def flush_charges(self) -> None:
        """Drain pending buffered charges into the current region."""
        buf = self._buf
        if buf is not None and buf:
            metrics = _charge_metrics()
            if metrics["enabled"]():
                metrics["flushes"].inc()
                metrics["entries"].observe(buf.entries())
            buf.flush_into(self._stack[-1])

    @property
    def current(self) -> Region:
        """Innermost open region."""
        return self._stack[-1]

    @property
    def has_activity(self) -> bool:
        """Whether anything has been recorded yet.

        A fresh recorder has no child regions, no FLOPs, no simulated
        time, no communication events and no memory declarations;
        :func:`repro.suite.runner.run_benchmark` requires one so the
        report's totals describe a single benchmark.
        """
        self.flush_charges()
        root = self.root
        return bool(
            root.children
            or root.total_flops
            or root.comm_count
            or root.compute_busy
            or self.memory.declarations
        )

    @contextmanager
    def region(self, name: str, iterations: int = 1) -> Iterator[Region]:
        """Open a nested measurement region.

        Re-entering a region name under the same parent accumulates into
        the existing region (so per-timestep loops can wrap their body
        in ``with recorder.region("step"):`` without creating thousands
        of children); pass distinct names for distinct segments.
        """
        self.flush_charges()
        parent = self.current
        existing = next((c for c in parent.children if c.name == name), None)
        if existing is not None:
            region = existing
            region.iterations += iterations
        else:
            region = Region(
                name, iterations, detail_events=self.detail_events
            )
            parent.children.append(region)
        self._stack.append(region)
        self._refresh_buffer_state()
        obs = self.observer
        if obs is not None:
            obs.on_region_enter(region)
        try:
            yield region
        finally:
            self.flush_charges()
            popped = self._stack.pop()
            assert popped is region, "unbalanced region stack"
            self._refresh_buffer_state()
            if obs is not None:
                obs.on_region_exit(region)

    # -- charging -------------------------------------------------------
    def charge_flops(
        self, kind: FlopKind, count: int, *, complex_valued: bool = False
    ) -> None:
        """Record operations of one kind in the current region."""
        buf = self._buf
        if buf is not None:
            buf.add_flops(kind, count, complex_valued)
            return
        self.current.flops.add(kind, count, complex_valued=complex_valued)
        obs = self.observer
        if obs is not None:
            obs.on_flops(
                self.current, kind, count, complex_valued=complex_valued
            )

    def charge_raw_flops(self, flops: int) -> None:
        """Record pre-weighted FLOPs in the current region."""
        buf = self._buf
        if buf is not None:
            buf.add_raw(flops)
            return
        self.current.flops.add_raw(flops)
        obs = self.observer
        if obs is not None:
            obs.on_raw_flops(self.current, flops)

    def charge_reduction(self, n_elements: int, n_results: int = 1) -> None:
        """Charge a reduction at its sequential cost of ``N - 1``."""
        flops = reduction_flops(n_elements, n_results)
        buf = self._buf
        if buf is not None:
            buf.add_raw(flops)
            return
        self.current.flops.add_raw(flops)
        obs = self.observer
        if obs is not None:
            obs.on_raw_flops(self.current, flops)

    def charge_compute_time(self, seconds: float) -> None:
        """Add simulated compute seconds to the current region."""
        if seconds < 0:
            raise ValueError(f"negative compute time: {seconds}")
        buf = self._buf
        if buf is not None:
            buf.add_compute(seconds)
            return
        self.current.compute_busy += seconds
        obs = self.observer
        if obs is not None:
            obs.on_compute(self.current, seconds)

    def charge_comm(
        self,
        pattern: CommPattern,
        *,
        bytes_network: int = 0,
        bytes_local: int = 0,
        nodes: int = 1,
        busy_time: float = 0.0,
        idle_time: float = 0.0,
        rank: Optional[int] = None,
        detail: str = "",
    ) -> Optional[CommEvent]:
        """Account one collective; the buffered twin of ``Region.add_comm``.

        Returns the :class:`CommEvent` only in trace mode (which is
        always eager); buffered and eager fast-path calls return
        ``None``, matching the session's ``record_comm`` contract.
        """
        buf = self._buf
        if buf is not None:
            buf.add_comm(
                pattern,
                rank,
                detail,
                bytes_network=bytes_network,
                bytes_local=bytes_local,
                busy_time=busy_time,
                idle_time=idle_time,
            )
            return None
        return self.current.add_comm(
            pattern,
            bytes_network=bytes_network,
            bytes_local=bytes_local,
            nodes=nodes,
            busy_time=busy_time,
            idle_time=idle_time,
            rank=rank,
            detail=detail,
        )

    def record_comm(self, event: CommEvent) -> None:
        """Account a communication event in the current region."""
        self.flush_charges()
        self.current.record_comm(event)
        obs = self.observer
        if obs is not None:
            obs.on_comm(
                self.current,
                event.pattern,
                bytes_network=event.bytes_network,
                bytes_local=event.bytes_local,
                busy_time=event.busy_time,
                idle_time=event.idle_time,
                rank=event.rank,
                detail=event.detail,
            )

    # -- convenience ----------------------------------------------------
    @property
    def total_flops(self) -> int:
        """FLOPs accumulated over the whole run."""
        self.flush_charges()
        return self.root.total_flops

    @property
    def busy_time(self) -> float:
        """Non-idle seconds over the whole run."""
        self.flush_charges()
        return self.root.busy_time

    @property
    def elapsed_time(self) -> float:
        """Total simulated seconds over the whole run."""
        self.flush_charges()
        return self.root.elapsed_time
