"""Tests for the physics application codes: boson, fermion, qcd-kernel,
qmc, ks-spectral, gmo."""

import numpy as np
import pytest

from repro import Session, cm5
from repro.apps import boson, fermion, gmo, ks_spectral, qcd_kernel, qmc
from repro.metrics.patterns import CommPattern


def _main(session):
    return session.recorder.root.find("main_loop")


class TestBoson:
    def test_factorized_limit_matches_exact(self):
        """At K = J = 0 sites decouple; <n> matches exact enumeration."""
        session = Session(cm5(16))
        r = boson.run(session, nx=12, nt=4, sweeps=150, J=0.0, K=0.0, seed=7)
        assert r.observables["mean_occupation"] == pytest.approx(
            r.observables["exact_factorized_mean"], rel=0.08
        )

    def test_acceptance_reasonable(self, session):
        r = boson.run(session, nx=8, nt=4, sweeps=10)
        assert 0.05 < r.observables["acceptance"] < 0.95

    def test_occupations_bounded(self, session):
        r = boson.run(session, nx=8, nt=4, sweeps=10, n_max=5)
        n = r.state["n"]
        assert n.min() >= 0 and n.max() <= 5

    def test_38_cshifts_per_sweep(self, session):
        """Table 6: 38 CSHIFTs per iteration."""
        boson.run(session, nx=8, nt=4, sweeps=5)
        per = _main(session).comm_counts_per_iteration()
        assert per[CommPattern.CSHIFT] == pytest.approx(38.0)

    def test_strided_access(self, session):
        r = boson.run(session, nx=8, nt=4, sweeps=2)
        assert r.local_access.value == "strided"


class TestFermion:
    def test_matmuls_match_reference(self, session):
        r = fermion.run(session, sites=24, n=6, sweeps=4)
        assert r.observables["matmul_error"] < 1e-12

    def test_no_communication(self, session):
        """fermion is embarrassingly parallel (paper §4)."""
        fermion.run(session, sites=16, n=4, sweeps=3)
        assert _main(session).comm_counts() == {}

    def test_flop_count_cubic(self, session):
        sites, n, sweeps = 8, 4, 2
        fermion.run(session, sites=sites, n=n, sweeps=sweeps)
        assert _main(session).total_flops == 4 * n**3 * sites * sweeps


class TestQcdKernel:
    def test_unit_gauge_matches_central_difference(self, session):
        r = qcd_kernel.run(session, nx=4, iterations=1, unit_gauge=True)
        assert r.observables["reference_error"] < 1e-12

    def test_random_gauge_matches_reference(self, session):
        r = qcd_kernel.run(session, nx=4, iterations=2)
        assert r.observables["reference_error"] < 1e-12

    def test_anti_hermiticity(self, session):
        """Staggered D-slash is anti-Hermitian: Re(v* D v) = 0."""
        r = qcd_kernel.run(session, nx=4, iterations=3)
        assert r.observables["anti_hermiticity"] < 1e-10

    def test_su3_links_are_unitary(self):
        rng = np.random.default_rng(0)
        U = qcd_kernel.random_su3(rng, (5,))
        eye = np.einsum("sab,scb->sac", U, np.conj(U))
        assert np.allclose(eye, np.eye(3)[None], atol=1e-12)
        assert np.allclose(np.linalg.det(U), 1.0, atol=1e-12)

    def test_flops_606_per_site(self, session):
        nx = 4
        qcd_kernel.run(session, nx=nx, iterations=3)
        per = _main(session).flops_per_iteration
        assert per == 606 * nx**4

    def test_eight_cshifts_per_application(self, session):
        """Our implementation issues 8 (paper pairs faces into 4)."""
        qcd_kernel.run(session, nx=4, iterations=2)
        per = _main(session).comm_counts_per_iteration()
        assert per[CommPattern.CSHIFT] == pytest.approx(8.0)

    def test_staggered_phases(self):
        eta = qcd_kernel.staggered_phases((2, 2, 2, 2))
        assert np.all(eta[0] == 1.0)  # eta_0 = 1 everywhere
        assert set(np.unique(eta)) <= {-1.0, 1.0}


class TestQMC:
    def test_ground_state_energy(self):
        """DMC growth energy ~ 0.5 n_p n_d for harmonic oscillators."""
        session = Session(cm5(16))
        r = qmc.run(
            session, n_p=2, n_d=3, n_w=400, blocks=4,
            steps_per_block=60, dt=0.01, seed=11,
        )
        assert r.observables["relative_error"] < 0.15

    def test_population_survives(self, session):
        r = qmc.run(session, blocks=2, steps_per_block=20, n_w=100)
        assert r.observables["final_population"] > 10

    def test_comm_budget_per_step(self, session):
        """Table 6: (np nd + 4) Scans, (np nd + 1) Sends, 8 Reductions."""
        n_p, n_d = 2, 3
        qmc.run(session, n_p=n_p, n_d=n_d, blocks=1, steps_per_block=10, n_w=50)
        per = _main(session).comm_counts_per_iteration()
        assert per[CommPattern.SCAN] == pytest.approx(n_p * n_d + 4)
        assert per[CommPattern.SEND] == pytest.approx(n_p * n_d + 1)
        assert per[CommPattern.REDUCTION] == pytest.approx(8.0)
        assert per[CommPattern.SPREAD] == pytest.approx(1.0)


class TestKSSpectral:
    def test_matches_dense_reference(self, session):
        r = ks_spectral.run(session, nx=64, ne=3, steps=6)
        assert r.observables["reference_error"] < 1e-10

    def test_solution_bounded(self, session):
        r = ks_spectral.run(session, nx=64, ne=2, steps=20)
        assert r.observables["max_abs"] < 50.0

    def test_eight_ffts_per_step(self, session):
        """Table 6: 8 1-D FFTs on 2-D arrays per iteration."""
        ks_spectral.run(session, nx=32, ne=2, steps=4)
        per = _main(session).comm_counts_per_iteration()
        assert per[CommPattern.BUTTERFLY] == pytest.approx(8.0)

    def test_ensemble_members_independent(self, session):
        r = ks_spectral.run(session, nx=32, ne=4, steps=3)
        u_hat = r.state["u_hat"]
        # Different initial amplitudes must stay different.
        assert not np.allclose(u_hat[0], u_hat[1])


class TestGMO:
    def test_interpolation_matches_reference(self, session):
        r = gmo.run(session, ns=128, ntr=16)
        assert r.observables["interpolation_error"] < 1e-12

    def test_no_communication(self, session):
        """gmo is embarrassingly parallel (paper §4)."""
        gmo.run(session, ns=64, ntr=8)
        assert _main(session).comm_counts() == {}

    def test_six_flops_per_point(self, session):
        ns, ntr, nvec = 64, 8, 3
        gmo.run(session, ns=ns, ntr=ntr, nvec=nvec)
        per = _main(session).flops_per_iteration
        assert per == 6 * ns * ntr

    def test_zero_shift_is_identity(self):
        panel = gmo.make_panel(64, 4)
        out = gmo.reference_moveout(panel, np.zeros(4), 0.004)
        # Interior samples are untouched by a zero moveout.
        assert np.allclose(out[:-1], panel[:-1])

    def test_ricker_peak_at_zero(self):
        t = np.linspace(-0.1, 0.1, 201)
        w = gmo.ricker(t, 25.0)
        assert np.argmax(w) == 100
