"""Observability layer tests: RunStats aggregation and the perf gate.

The acceptance bar: a real stored run yields throughput, queue-wait,
utilization, cache-hit rate and retry/timeout counts; an identical
rerun passes ``compare_benchmarks`` cleanly; a doctored baseline (or a
metric drifted beyond tolerance) fails it, direction-aware.
"""

import json

import pytest

from repro.engine import (
    Engine,
    EngineConfig,
    RunStats,
    RunStore,
    compare_benchmarks,
    plan_suite,
    stats_from_records,
    trajectory_point,
)
from repro.engine.executor import ENV_INJECT_FAIL
from repro.engine.stats import (
    STATS_SCHEMA_VERSION,
    JobStats,
    baseline_benchmarks,
    load_baseline_file,
)

SUBSET = ["fft", "lu", "gmo"]
SUBSET_PARAMS = {
    "fft": {"n": 64},
    "lu": {"n": 16},
    "gmo": {"ns": 128, "ntr": 16},
}


def run_with_store(tmp_path, **config):
    store_path = tmp_path / "runs.jsonl"
    engine = Engine(EngineConfig(store=store_path, **config))
    results = engine.run(plan_suite(SUBSET, params=SUBSET_PARAMS))
    return engine, results, RunStore(store_path)


class TestStatsAccumulator:
    """The serve layer's incremental aggregator must match the batch
    ``stats_from_results`` fold over the same results."""

    def test_matches_batch_aggregation(self, tmp_path):
        from repro.engine.stats import StatsAccumulator, stats_from_results

        _, results, _ = run_with_store(tmp_path)
        acc = StatsAccumulator("run", workers=1)
        for result in results:
            acc.add(result)
        snapshot = acc.snapshot(duration_s=2.0)
        batch = stats_from_results("run", results, workers=1, duration_s=2.0)
        assert snapshot.to_dict() == batch.to_dict()

    def test_keep_jobs_truncates_only_the_job_table(self, tmp_path):
        from repro.engine.stats import StatsAccumulator

        _, results, _ = run_with_store(tmp_path)
        acc = StatsAccumulator("run", workers=1, keep_jobs=1)
        for result in results:
            acc.add(result)
        snapshot = acc.snapshot(duration_s=1.0)
        # only the newest per-job row is retained ...
        assert len(snapshot.jobs) == 1
        assert snapshot.jobs[0].benchmark == SUBSET[-1]
        # ... every aggregate still covers all results
        assert snapshot.n_jobs == len(SUBSET)
        assert snapshot.status_counts == {"ok": 3}
        assert set(snapshot.benchmarks) == set(SUBSET)


class TestRunStatsFromEngine:
    def test_fresh_run_scheduler_metrics(self, tmp_path):
        engine, results, store = run_with_store(tmp_path)
        stats = engine.last_run_stats
        assert stats.n_jobs == len(SUBSET)
        assert stats.status_counts == {"ok": 3}
        assert stats.workers == 1
        assert stats.duration_s > 0
        assert stats.throughput_jobs_per_s > 0
        assert stats.compute_total_s > 0
        assert stats.compute_max_s <= stats.compute_total_s
        assert stats.cache_hits == 0 and stats.cache_hit_rate == 0.0
        assert stats.retries == 0 and stats.timeouts == 0
        assert stats.attempts_histogram == {1: 3}
        assert 0 < stats.worker_utilization <= 1.0
        assert stats.phases["execute_s"] > 0
        assert [job.benchmark for job in stats.jobs] == SUBSET
        # Serial queue wait: later jobs waited behind earlier ones.
        assert stats.jobs[-1].queue_wait_s >= stats.jobs[0].queue_wait_s
        assert set(stats.benchmarks) == set(SUBSET)
        for metrics in stats.benchmarks.values():
            assert metrics["flop_count"] > 0
            assert metrics["busy_time_s"] > 0

    def test_warm_cache_run_hit_rate(self, tmp_path):
        cache = tmp_path / "cache"
        run_with_store(tmp_path, cache_dir=cache)
        engine, _, _ = run_with_store(tmp_path, cache_dir=cache)
        stats = engine.last_run_stats
        assert stats.status_counts == {"cached": 3}
        assert stats.cache_hit_rate == 1.0
        # Cached jobs never touch a worker.
        assert stats.compute_total_s == 0.0
        assert stats.benchmarks  # cached reports still feed the gate

    def test_retry_histogram_counts_attempts(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_INJECT_FAIL, "fft:2")
        engine, _, _ = run_with_store(tmp_path, retries=3, backoff=0.0)
        stats = engine.last_run_stats
        assert stats.retries == 2
        assert stats.attempts_histogram == {1: 2, 3: 1}
        assert stats.timeouts == 0

    def test_pool_run_reports_worker_count(self, tmp_path):
        engine, _, _ = run_with_store(tmp_path, jobs=2)
        stats = engine.last_run_stats
        assert stats.workers == 2
        assert 0 < stats.worker_utilization <= 1.0

    def test_sidecar_written_and_roundtrips(self, tmp_path):
        engine, _, store = run_with_store(tmp_path)
        sidecar = store.read_stats("latest")
        assert sidecar is not None
        rebuilt = RunStats.from_dict(sidecar)
        assert rebuilt.run_id == engine.last_run_stats.run_id
        assert rebuilt.n_jobs == engine.last_run_stats.n_jobs
        assert rebuilt.attempts_histogram == {1: 3}
        assert rebuilt.jobs[0].benchmark == "fft"
        assert rebuilt.table()  # renders

    def test_stats_from_records_fallback(self, tmp_path):
        """A store without a sidecar still yields scheduler stats."""
        engine, _, store = run_with_store(tmp_path)
        stats = stats_from_records(store.run_records("latest"))
        assert stats.run_id == engine.last_run_stats.run_id
        assert stats.n_jobs == 3
        assert stats.workers is None  # not recoverable from records
        assert stats.worker_utilization is None
        assert stats.compute_total_s > 0
        assert stats.benchmarks.keys() == engine.last_run_stats.benchmarks.keys()


class TestSidecarSchemaTolerance:
    """from_dict must survive other schema generations gracefully."""

    def v1_record(self):
        """A pre-spans (schema 1) sidecar as PR 4 wrote it."""
        return {
            "schema": 1,
            "run_id": "run-v1",
            "n_jobs": 1,
            "workers": 1,
            "duration_s": 0.5,
            "status_counts": {"ok": 1},
            "attempts_histogram": {"1": 1},
            "jobs": [
                {
                    "benchmark": "fft",
                    "status": "ok",
                    "attempts": 1,
                    "queue_wait_s": 0.0,
                    "compute_time_s": 0.1,
                    "wall_time_s": 0.1,
                }
            ],
            "benchmarks": {"fft": {"busy_time_s": 1.0}},
        }

    def test_v1_sidecar_loads_with_spans_defaulted(self):
        stats = RunStats.from_dict(self.v1_record())
        assert stats.run_id == "run-v1"
        assert stats.jobs[0].spans is None
        assert stats.table()  # renders without a span section

    def test_unknown_keys_from_newer_minor_are_dropped(self):
        record = self.v1_record()
        record["gpu_seconds"] = 12.0  # hypothetical future addition
        record["jobs"][0]["gpu_seconds"] = 12.0
        stats = RunStats.from_dict(record)
        assert stats.jobs[0].benchmark == "fft"
        assert not hasattr(stats, "gpu_seconds")

    def test_newer_schema_rejected_with_clear_message(self):
        record = self.v1_record()
        record["schema"] = STATS_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer than this reader"):
            RunStats.from_dict(record)
        with pytest.raises(ValueError, match="upgrade repro"):
            RunStats.from_dict(record)

    def test_spans_roundtrip_and_surface_in_table(self):
        record = self.v1_record()
        record["schema"] = STATS_SCHEMA_VERSION
        record["jobs"][0]["spans"] = {
            "schema": 1,
            "spans": 2,
            "iterations": 8,
            "busy_time_s": 0.25,
            "elapsed_time_s": 0.5,
            "flop_count": 1234,
            "network_bytes": 5678,
        }
        stats = RunStats.from_dict(record)
        assert stats.jobs[0].spans["iterations"] == 8
        table = stats.table()
        assert "1/1 jobs traced" in table
        assert "1,234" in table
        assert "Sim busy (s)" in table

    def test_engine_span_run_sidecar_has_spans(self, tmp_path):
        engine, results, store = run_with_store(tmp_path, spans=True)
        assert all(r.spans is not None for r in results)
        sidecar = store.read_stats("latest")
        rebuilt = RunStats.from_dict(sidecar)
        assert all(isinstance(j.spans, dict) for j in rebuilt.jobs)
        assert all(
            j.spans["flop_count"]
            == engine.last_run_stats.benchmarks[j.benchmark]["flop_count"]
            for j in rebuilt.jobs
        ), "span FLOP totals must reconcile with the report metrics"
        assert "jobs traced" in rebuilt.table()

    def test_untraced_run_has_no_span_payload(self, tmp_path):
        _, results, store = run_with_store(tmp_path)
        assert all(r.spans is None for r in results)
        rebuilt = RunStats.from_dict(store.read_stats("latest"))
        assert all(j.spans is None for j in rebuilt.jobs)
        assert "jobs traced" not in rebuilt.table()

    def test_jobstats_dataclass_accepts_missing_spans(self):
        job = JobStats(
            benchmark="fft", status="ok", attempts=1,
            queue_wait_s=0.0, compute_time_s=0.1, wall_time_s=0.1,
        )
        assert job.spans is None


class TestCompareBenchmarks:
    BASE = {
        "fft": {"busy_time_s": 1.0, "elapsed_time_s": 2.0,
                "flop_count": 1000, "busy_floprate_mflops": 10.0},
        "lu": {"busy_time_s": 0.5, "elapsed_time_s": 1.0,
               "flop_count": 500, "busy_floprate_mflops": 20.0},
    }

    def test_identical_runs_pass(self):
        report = compare_benchmarks(self.BASE, self.BASE, tolerance_pct=5.0)
        assert report.ok
        assert len(report.rows) == 8
        assert report.regressions == []
        assert "OK" in report.table()

    def test_slower_time_beyond_tolerance_fails(self):
        current = {k: dict(v) for k, v in self.BASE.items()}
        current["fft"]["busy_time_s"] = 1.2  # +20% > 5%
        report = compare_benchmarks(current, self.BASE, tolerance_pct=5.0)
        assert not report.ok
        (row,) = report.regressions
        assert (row.benchmark, row.metric) == ("fft", "busy_time_s")
        assert row.delta_pct == pytest.approx(20.0)
        assert "REGRESSED" in report.table()

    def test_drift_within_tolerance_passes(self):
        current = {k: dict(v) for k, v in self.BASE.items()}
        current["fft"]["busy_time_s"] = 1.04  # +4% < 5%
        assert compare_benchmarks(current, self.BASE, 5.0).ok

    def test_rate_metrics_regress_downward(self):
        current = {k: dict(v) for k, v in self.BASE.items()}
        current["lu"]["busy_floprate_mflops"] = 15.0  # -25% rate
        report = compare_benchmarks(current, self.BASE, tolerance_pct=5.0)
        (row,) = report.regressions
        assert (row.benchmark, row.metric) == ("lu", "busy_floprate_mflops")
        # A rate *increase* is an improvement, never a regression.
        current["lu"]["busy_floprate_mflops"] = 40.0
        assert compare_benchmarks(current, self.BASE, 5.0).ok

    def test_missing_benchmark_fails_gate(self):
        current = {"fft": dict(self.BASE["fft"])}
        report = compare_benchmarks(current, self.BASE, tolerance_pct=5.0)
        assert not report.ok
        assert report.missing == ["lu"]

    def test_added_benchmark_is_informational(self):
        current = {k: dict(v) for k, v in self.BASE.items()}
        current["qr"] = {"busy_time_s": 1.0}
        report = compare_benchmarks(current, self.BASE, tolerance_pct=5.0)
        assert report.ok
        assert report.added == ["qr"]

    def test_extra_benchmarks_are_reported_and_sorted(self):
        """The one-sided iteration bug: benchmarks only in *current*
        must surface, not vanish because the loop walked the baseline."""
        current = {k: dict(v) for k, v in self.BASE.items()}
        current["zz"] = {"busy_time_s": 1.0}
        current["aa"] = {"busy_time_s": 1.0}
        report = compare_benchmarks(current, self.BASE, tolerance_pct=5.0)
        assert report.extra == ["aa", "zz"]
        assert report.added == report.extra  # back-compat alias
        assert "extra vs baseline" in report.table()

    def test_extra_fails_gate_only_under_strict(self):
        current = {k: dict(v) for k, v in self.BASE.items()}
        current["qr"] = {"busy_time_s": 1.0}
        lax = compare_benchmarks(current, self.BASE, tolerance_pct=5.0)
        assert lax.ok
        strict = compare_benchmarks(
            current, self.BASE, tolerance_pct=5.0, strict=True
        )
        assert not strict.ok
        assert strict.extra == ["qr"]
        assert "FAIL" in strict.table()

    def test_strict_without_extra_still_passes(self):
        report = compare_benchmarks(
            self.BASE, self.BASE, tolerance_pct=5.0, strict=True
        )
        assert report.ok


class TestTrajectoryPoint:
    def test_point_shape_and_baseline_reuse(self, tmp_path):
        engine, _, _ = run_with_store(tmp_path)
        point = trajectory_point(engine.last_run_stats)
        assert point["schema"] == STATS_SCHEMA_VERSION
        assert point["kind"] == "bench"
        assert set(point["benchmarks"]) == set(SUBSET)
        assert point["engine"]["n_jobs"] == 3
        assert point["engine"]["throughput_jobs_per_s"] > 0
        # A trajectory point is itself a valid check baseline.
        assert baseline_benchmarks(point) == point["benchmarks"]
        path = tmp_path / "BENCH_point.json"
        path.write_text(json.dumps(point))
        loaded = load_baseline_file(path)
        report = compare_benchmarks(
            engine.last_run_stats.benchmarks, loaded, tolerance_pct=0.0
        )
        assert report.ok  # identical metrics even at zero tolerance

    def test_bare_mapping_accepted_as_baseline(self):
        bare = {"fft": {"busy_time_s": 1.0}}
        assert baseline_benchmarks(bare) == bare


class TestLatencyHistogramSection:
    def test_table_has_queue_wait_and_compute_histograms(self, tmp_path):
        engine, _, _ = run_with_store(tmp_path)
        table = engine.last_run_stats.table()
        assert "queue-wait histogram" in table
        assert "compute histogram" in table
        assert "#" in table  # at least one bar drawn

    def test_cached_only_run_skips_the_section(self, tmp_path):
        from repro.engine import EngineConfig, plan_suite

        cache_dir = tmp_path / "cache"
        Engine(EngineConfig(cache_dir=cache_dir)).run(
            plan_suite(SUBSET, params=SUBSET_PARAMS)
        )
        engine = Engine(EngineConfig(cache_dir=cache_dir))
        engine.run(plan_suite(SUBSET, params=SUBSET_PARAMS))
        stats = engine.last_run_stats
        assert stats.status_counts == {"cached": 3}
        assert "queue-wait histogram" not in stats.table()

    def test_histogram_lines_share_exposition_buckets(self):
        from repro.engine.stats import latency_histogram_lines

        lines = latency_histogram_lines(
            "queue-wait histogram", [0.0002, 0.0002, 0.004, 120.0]
        )
        assert lines[0] == "  queue-wait histogram (4 jobs)"
        body = "\n".join(lines)
        assert "<=0.00025s" in body
        assert "<=0.005s" in body
        assert ">60s" in body
        # empty buckets are skipped: only 3 bucket rows + header
        assert len(lines) == 4
