"""Tests for the CYCLIC distribution extension (HPF DISTRIBUTE)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Session, cm5
from repro.array import from_numpy
from repro.comm.primitives import cshift, reduce_array
from repro.layout.spec import Axis, Distribution, Layout, parse_layout


class TestParsing:
    def test_cyclic_entry(self):
        layout = parse_layout("(:cyclic,:)", (8, 8))
        assert layout.axes == (Axis.PARALLEL, Axis.PARALLEL)
        assert layout.dist == (Distribution.CYCLIC, Distribution.BLOCK)

    def test_spec_string_roundtrip(self):
        layout = parse_layout("(:serial,:cyclic,:)", (2, 8, 8))
        assert layout.spec_string() == "(:serial,:cyclic,:)"
        again = parse_layout(layout.spec_string(), (2, 8, 8))
        assert again.dist == layout.dist

    def test_default_dist_is_block(self):
        layout = parse_layout("(:serial,:)", (4, 8))
        assert layout.dist == (Distribution.NONE, Distribution.BLOCK)

    def test_serial_axis_cannot_be_cyclic(self):
        with pytest.raises(ValueError):
            Layout((4,), (Axis.SERIAL,), (Distribution.CYCLIC,))

    def test_parallel_axis_needs_distribution(self):
        with pytest.raises(ValueError):
            Layout((4,), (Axis.PARALLEL,), (Distribution.NONE,))

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            Layout((4, 4), (Axis.PARALLEL, Axis.PARALLEL), (Distribution.BLOCK,))


class TestShiftVolumes:
    def test_cyclic_unit_shift_moves_everything(self):
        block = parse_layout("(:)", (64,))
        cyclic = parse_layout("(:cyclic)", (64,))
        assert cyclic.shift_network_elements(16, 0, 1) == 64
        assert block.shift_network_elements(16, 0, 1) == 16

    def test_cyclic_multiple_of_p_shift_is_free(self):
        cyclic = parse_layout("(:cyclic)", (64,))
        p = cyclic.proc_grid(16)[0]
        assert cyclic.shift_network_elements(16, 0, p) == 0

    def test_cyclic_zero_shift_free(self):
        cyclic = parse_layout("(:cyclic)", (64,))
        assert cyclic.shift_network_elements(16, 0, 0) == 0

    def test_single_node_cyclic_free(self):
        cyclic = parse_layout("(:cyclic)", (64,))
        assert cyclic.shift_network_elements(1, 0, 3) == 0

    @given(shift=st.integers(-64, 64), nodes=st.sampled_from([2, 4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_cyclic_volume_all_or_nothing(self, shift, nodes):
        cyclic = parse_layout("(:cyclic)", (64,))
        moved = cyclic.shift_network_elements(nodes, 0, shift)
        assert moved in (0, 64)


class TestSemantics:
    """Data values are distribution-independent; only costs change."""

    def test_cshift_same_result_both_distributions(self, session):
        data = np.arange(16.0)
        b = cshift(from_numpy(session, data, "(:)"), 3)
        c = cshift(from_numpy(session, data, "(:cyclic)"), 3)
        assert np.array_equal(b.np, c.np)

    def test_reduce_same_result(self, session):
        data = np.arange(10.0)
        b = reduce_array(from_numpy(session, data, "(:)"), "sum")
        c = reduce_array(from_numpy(session, data, "(:cyclic)"), "sum")
        assert b == c

    def test_cyclic_cshift_costs_more(self):
        data = np.arange(1 << 14, dtype=float)
        s_block = Session(cm5(32))
        cshift(from_numpy(s_block, data, "(:)"), 1)
        s_cyc = Session(cm5(32))
        cshift(from_numpy(s_cyc, data, "(:cyclic)"), 1)
        assert (
            s_cyc.recorder.root.network_bytes
            > s_block.recorder.root.network_bytes
        )
        assert s_cyc.recorder.busy_time > s_block.recorder.busy_time

    def test_stencil_on_cyclic_layout(self, session):
        """A 5-point stencil works on cyclic layouts but pays full
        traffic — the ablation the benchmark harness quantifies."""
        from repro.comm.stencil import stencil_apply

        data = np.arange(64.0).reshape(8, 8)
        taps = {(0, 0): 1.0, (1, 0): 0.25, (-1, 0): 0.25}
        b = stencil_apply(from_numpy(session, data, "(:,:)"), taps)
        c = stencil_apply(from_numpy(session, data, "(:cyclic,:cyclic)"), taps)
        assert np.allclose(b.np, c.np)
