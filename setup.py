"""Legacy setup shim.

The project is configured in ``pyproject.toml``; this file exists only
so ``pip install -e .`` works in offline environments without the
``wheel`` package (legacy ``setup.py develop`` editable path).
"""

from setuptools import setup

setup()
