#!/usr/bin/env python
"""Analyzing the whole suite: grain sizes, boundedness, pattern mixes.

The paper's tables are "a primary guide in selecting the appropriate
code (or group of codes) from the entire benchmark suite, according to
a given set of goals and criteria" (§1).  This example runs all 32
benchmarks, classifies each as compute-, latency- or bandwidth-bound
on the CM-5 model, and prints a per-pattern communication profile of
one representative code.
"""

from repro import perf_session, trace_session
from repro.analysis.ratios import comm_to_comp_ratio
from repro.analysis.trace import trace_summary
from repro.suite import run_benchmark, run_suite
from repro.suite.tables import format_table

SMALL = {
    "gather": {"n": 2048, "repeats": 3},
    "scatter": {"n": 2048, "repeats": 3},
    "reduction": {"n": 2048, "repeats": 3},
    "transpose": {"n": 48, "repeats": 3},
    "matrix-vector": {"n": 48, "repeats": 2},
    "lu": {"n": 20},
    "qr": {"m": 24, "n": 12},
    "gauss-jordan": {"n": 20},
    "pcr": {"n": 64},
    "conj-grad": {"n": 96},
    "jacobi": {"n": 10},
    "fft": {"n": 256},
    "boson": {"nx": 6, "nt": 4, "sweeps": 3},
    "diff-1d": {"nx": 48, "steps": 3},
    "diff-2d": {"nx": 16, "steps": 3},
    "diff-3d": {"nx": 10, "steps": 3},
    "ellip-2d": {"nx": 10},
    "fem-3d": {"nx": 2, "iterations": 6},
    "fermion": {"sites": 12, "n": 4, "sweeps": 2},
    "gmo": {"ns": 64, "ntr": 8},
    "ks-spectral": {"nx": 32, "ne": 2, "steps": 3},
    "md": {"n_p": 10, "steps": 3},
    "mdcell": {"nc": 3, "steps": 1},
    "n-body": {"n": 16},
    "pic-simple": {"nx": 8, "n_p": 64, "steps": 1},
    "pic-gather-scatter": {"nx": 8, "n_p": 48, "steps": 1},
    "qcd-kernel": {"nx": 2, "iterations": 1},
    "qmc": {"blocks": 1, "steps_per_block": 6, "n_w": 40},
    "qptransport": {"iterations": 6},
    "rp": {"nx": 4},
    "step4": {"nx": 8, "steps": 1},
    "wave-1d": {"nx": 32, "steps": 3},
}


def main() -> None:
    reports = run_suite(lambda: perf_session("cm5", 32), params=SMALL)
    rows = []
    for name in sorted(reports):
        summary = comm_to_comp_ratio(reports[name])
        rows.append(
            [
                name,
                f"{summary.ops_per_point:.1f}",
                f"{summary.comm_events_per_iteration:.1f}",
                "inf"
                if summary.flops_per_comm_event == float("inf")
                else f"{summary.flops_per_comm_event:.0f}",
                f"{100 * summary.busy_fraction:.0f}%",
                summary.classify(),
            ]
        )
    print("suite grain-size / boundedness analysis (CM-5/32)\n")
    print(
        format_table(
            [
                "benchmark",
                "ops/point",
                "comm/iter",
                "FLOPs/event",
                "busy frac",
                "class",
            ],
            rows,
        )
    )

    print("\n\ncommunication profile of pic-gather-scatter:\n")
    # The per-event trace summary needs trace mode (detail_events=True).
    session = trace_session("cm5", 32)
    run_benchmark("pic-gather-scatter", session, nx=8, n_p=64, steps=1)
    print(trace_summary(session.recorder))


if __name__ == "__main__":
    main()
