"""Tests for fem-3D and qptransport."""

import numpy as np
import pytest

from repro import Session, cm5
from repro.apps import fem3d, qptransport
from repro.metrics.patterns import CommPattern


def _main(session):
    return session.recorder.root.find("main_loop")


class TestFEM3D:
    def test_mesh_element_count(self):
        mesh = fem3d.box_mesh(2, 3, 4)
        assert mesh.n_e == 5 * 2 * 3 * 4
        assert mesh.n_v == 3 * 4 * 5

    def test_elements_reference_valid_vertices(self):
        mesh = fem3d.box_mesh(2, 2, 2)
        assert mesh.elements.min() >= 0
        assert mesh.elements.max() < mesh.n_v

    def test_stiffness_rows_sum_to_zero(self):
        """Constant fields are in the kernel of the Laplace stiffness."""
        mesh = fem3d.box_mesh(2, 2, 2)
        K = fem3d.element_stiffness(mesh)
        assert np.allclose(K.sum(axis=2), 0.0, atol=1e-12)

    def test_stiffness_symmetric_psd(self):
        mesh = fem3d.box_mesh(2, 2, 2)
        K = fem3d.element_stiffness(mesh)
        assert np.allclose(K, np.transpose(K, (0, 2, 1)))
        for e in range(0, mesh.n_e, 7):
            assert np.linalg.eigvalsh(K[e]).min() > -1e-12

    def test_matrix_free_operator_matches_assembly(self, session):
        r = fem3d.run(session, nx=2, iterations=2)
        assert r.observables["operator_error"] < 1e-10

    def test_jacobi_converges(self, session):
        r = fem3d.run(session, nx=3, iterations=60)
        assert r.observables["residual_reduction"] < 1e-3

    def test_gather_scatter_per_iteration(self, session):
        """Table 6: 1 Gather + 1 Scatter w/ combine per iteration."""
        fem3d.run(session, nx=2, iterations=8)
        per = _main(session).comm_counts_per_iteration()
        assert per[CommPattern.GATHER] == 1.0
        assert per[CommPattern.SCATTER_COMBINE] == 1.0

    def test_flops_18_per_vertex_element(self, session):
        r = fem3d.run(session, nx=2, iterations=5)
        per = _main(session).flops_per_iteration
        n_e = int(r.observables["n_elements"])
        assert per == 18 * 4 * n_e

    def test_solution_solves_system(self, session):
        r = fem3d.run(session, nx=2, iterations=400)
        op = r.state["operator"]
        A = fem3d.assemble_dense(r.state["mesh"], op.K, op.mass)
        ref = np.linalg.solve(A, r.state["f"])
        assert np.allclose(r.state["u"], ref, atol=1e-4)


class TestQPTransport:
    def test_constraints_satisfied(self, session):
        r = qptransport.run(session, iterations=100)
        assert r.observables["supply_violation"] < 1e-6
        assert r.observables["demand_violation"] < 1e-6

    def test_min_norm_solution(self, session):
        """Alternating projection from zero converges to the
        minimum-norm feasible plan."""
        r = qptransport.run(session, iterations=200)
        assert r.observables["min_norm_error"] < 1e-6

    def test_balanced_problem_generator(self):
        src, dst, supply, demand = qptransport.make_problem(6, 5, 0.3, seed=1)
        assert supply.sum() == pytest.approx(demand.sum())
        assert len(src) == len(dst)
        # Every node touched by at least one edge.
        assert set(src) == set(range(6))
        assert set(dst) == set(range(5))

    def test_comm_budget(self, session):
        """Table 6: 10 Scatters, 1 Sort, 5 Scans, 1 CSHIFT, 1 EOSHIFT,
        3 Reductions per iteration."""
        qptransport.run(session, iterations=20)
        per = _main(session).comm_counts_per_iteration()
        assert per[CommPattern.SCATTER] == 10.0
        assert per[CommPattern.SORT] == 1.0
        assert per[CommPattern.SCAN] == 5.0
        assert per[CommPattern.CSHIFT] == 1.0
        assert per[CommPattern.EOSHIFT] == 1.0
        assert per[CommPattern.REDUCTION] == 3.0

    def test_least_norm_reference_consistent(self):
        src, dst, supply, demand = qptransport.make_problem(4, 4, 0.5, seed=2)
        x = qptransport.least_norm_reference(src, dst, supply, demand)
        row = np.zeros(4)
        np.add.at(row, src, x)
        assert np.allclose(row, supply, atol=1e-9)

    def test_objective_decreasing_norm(self, session):
        qptransport.run(session, iterations=4)
        session2 = Session(cm5(32))
        r_long = qptransport.run(session2, iterations=100)
        ref_norm = float((r_long.state["reference"] ** 2).sum())
        assert r_long.observables["objective"] == pytest.approx(ref_norm, rel=1e-6)
