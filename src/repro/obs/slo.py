"""Declarative service-level objectives evaluated from a scrape.

An SLO spec is a small JSON document gating on telemetry the same way
``engine check`` gates on benchmark metric drift::

    {
      "schema": 1,
      "name": "serve-ci",
      "objectives": [
        {"id": "submit-p99",
         "metric": "repro_serve_request_latency_seconds",
         "labels": {"endpoint": "/submit"},
         "stat": "p99", "op": "<=", "threshold": 2.5},
        {"id": "dedupe-floor",
         "ratio": {
           "num": {"metric": "repro_serve_submissions_total",
                   "labels": {"outcome": "coalesced"}},
           "den": {"metric": "repro_serve_submissions_total",
                   "labels": {"outcome": "submitted"}}},
         "op": ">=", "threshold": 0.2},
        {"id": "no-restarts",
         "metric": "repro_serve_pool_restarts_total",
         "stat": "value", "op": "==", "threshold": 0}
      ]
    }

Objectives select series by metric name plus a label *subset* (matching
series are summed), reduce them with a ``stat`` — ``value`` (counters
and gauges), ``sum`` / ``count`` / ``mean`` / ``p50`` / ``p90`` /
``p99`` (histograms) — or a ``ratio`` of two selectors, and compare
against ``threshold`` with ``op``.  Histogram quantiles are
conservative upper bounds (the bucket boundary covering the rank).
Evaluation consumes a families snapshot, so a live registry and a saved
``/metrics`` scrape are interchangeable inputs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from repro.obs.expo import histogram_quantile, histogram_stats, series_value

SLO_SCHEMA_VERSION = 1

_OPS = {
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "==": lambda a, b: a == b,
}

_HIST_STATS = ("sum", "count", "mean", "p50", "p90", "p99")
_QUANTILES = {"p50": 0.50, "p90": 0.90, "p99": 0.99}


class SLOSpecError(ValueError):
    """The SLO spec file is malformed."""


@dataclass
class Objective:
    id: str
    op: str
    threshold: float
    description: str = ""
    metric: Optional[str] = None
    labels: Dict[str, str] = field(default_factory=dict)
    stat: str = "value"
    ratio: Optional[Dict[str, Dict]] = None


@dataclass
class ObjectiveResult:
    objective: Objective
    observed: Optional[float]
    ok: bool
    note: str = ""


@dataclass
class SLOReport:
    name: str
    results: List[ObjectiveResult]

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def table(self) -> str:
        lines = [f"SLO report: {self.name}"]
        header = f"{'objective':<24} {'observed':>12} {'target':>16} verdict"
        lines.append(header)
        lines.append("-" * len(header))
        for result in self.results:
            objective = result.objective
            observed = (
                "absent" if result.observed is None
                else _fmt(result.observed)
            )
            target = f"{objective.op} {_fmt(objective.threshold)}"
            verdict = "ok" if result.ok else "FAIL"
            if result.note:
                verdict += f"  ({result.note})"
            lines.append(
                f"{objective.id:<24} {observed:>12} {target:>16} {verdict}"
            )
        lines.append(
            f"{len(self.results)} objectives, "
            f"{sum(1 for r in self.results if not r.ok)} failing"
        )
        return "\n".join(lines)


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.6g}"


def _parse_selector(raw: Mapping, where: str) -> Dict:
    if not isinstance(raw, dict) or "metric" not in raw:
        raise SLOSpecError(f"{where}: selector needs a 'metric'")
    labels = raw.get("labels", {})
    if not isinstance(labels, dict):
        raise SLOSpecError(f"{where}: labels must be an object")
    return {
        "metric": str(raw["metric"]),
        "labels": {str(k): str(v) for k, v in labels.items()},
    }


def load_slo_spec(path: Path) -> Dict:
    """Load and validate an SLO spec file; returns the parsed spec."""
    try:
        raw = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SLOSpecError(f"cannot read SLO spec {path}: {exc}") from exc
    return validate_slo_spec(raw)


def validate_slo_spec(raw: Mapping) -> Dict:
    if not isinstance(raw, Mapping):
        raise SLOSpecError("spec must be a JSON object")
    if raw.get("schema") != SLO_SCHEMA_VERSION:
        raise SLOSpecError(
            f"unsupported schema {raw.get('schema')!r} "
            f"(expected {SLO_SCHEMA_VERSION})"
        )
    objectives_raw = raw.get("objectives")
    if not isinstance(objectives_raw, list) or not objectives_raw:
        raise SLOSpecError("spec needs a non-empty 'objectives' list")
    seen_ids = set()
    objectives: List[Objective] = []
    for index, entry in enumerate(objectives_raw):
        where = f"objectives[{index}]"
        if not isinstance(entry, Mapping):
            raise SLOSpecError(f"{where}: must be an object")
        objective_id = str(entry.get("id", ""))
        if not objective_id:
            raise SLOSpecError(f"{where}: missing id")
        if objective_id in seen_ids:
            raise SLOSpecError(f"{where}: duplicate id {objective_id!r}")
        seen_ids.add(objective_id)
        op = entry.get("op")
        if op not in _OPS:
            raise SLOSpecError(f"{where}: bad op {op!r}")
        if "threshold" not in entry:
            raise SLOSpecError(f"{where}: missing threshold")
        threshold = float(entry["threshold"])
        if "ratio" in entry:
            if "metric" in entry:
                raise SLOSpecError(f"{where}: metric and ratio are exclusive")
            ratio_raw = entry["ratio"]
            if not isinstance(ratio_raw, Mapping) or set(ratio_raw) != {"num", "den"}:
                raise SLOSpecError(f"{where}: ratio needs num and den")
            objectives.append(
                Objective(
                    id=objective_id,
                    op=op,
                    threshold=threshold,
                    description=str(entry.get("description", "")),
                    ratio={
                        "num": _parse_selector(ratio_raw["num"], where),
                        "den": _parse_selector(ratio_raw["den"], where),
                    },
                )
            )
            continue
        selector = _parse_selector(entry, where)
        stat = str(entry.get("stat", "value"))
        if stat != "value" and stat not in _HIST_STATS:
            raise SLOSpecError(f"{where}: bad stat {stat!r}")
        objectives.append(
            Objective(
                id=objective_id,
                op=op,
                threshold=threshold,
                description=str(entry.get("description", "")),
                metric=selector["metric"],
                labels=selector["labels"],
                stat=stat,
            )
        )
    return {
        "schema": SLO_SCHEMA_VERSION,
        "name": str(raw.get("name", "slo")),
        "objectives": objectives,
    }


def _observe(objective: Objective, families: Mapping) -> ObjectiveResult:
    if objective.ratio is not None:
        numerator = series_value(
            families,
            objective.ratio["num"]["metric"],
            objective.ratio["num"]["labels"],
        )
        denominator = series_value(
            families,
            objective.ratio["den"]["metric"],
            objective.ratio["den"]["labels"],
        )
        if denominator == 0:
            # a ratio over nothing is vacuously healthy: no traffic
            # means the floor cannot have been violated
            return ObjectiveResult(
                objective, None, True, note="denominator 0, skipped"
            )
        return _compare(objective, numerator / denominator)

    family = families.get(objective.metric)
    if family is None:
        return ObjectiveResult(
            objective, None, False, note="metric absent from scrape"
        )
    if objective.stat == "value":
        return _compare(
            objective,
            series_value(families, objective.metric, objective.labels),
        )
    stats = histogram_stats(families, objective.metric, objective.labels)
    if stats is None:
        if family["type"] != "histogram":
            return ObjectiveResult(
                objective, None, False,
                note=f"stat {objective.stat!r} needs a histogram",
            )
        # declared histogram with zero observations: vacuously healthy
        return ObjectiveResult(
            objective, None, True, note="no observations, skipped"
        )
    if objective.stat == "sum":
        return _compare(objective, stats["sum"])
    if objective.stat == "count":
        return _compare(objective, stats["count"])
    if objective.stat == "mean":
        if stats["count"] == 0:
            return ObjectiveResult(
                objective, None, True, note="no observations, skipped"
            )
        return _compare(objective, stats["sum"] / stats["count"])
    return _compare(
        objective, histogram_quantile(stats, _QUANTILES[objective.stat])
    )


def _compare(objective: Objective, observed: float) -> ObjectiveResult:
    return ObjectiveResult(
        objective, observed, _OPS[objective.op](observed, objective.threshold)
    )


def evaluate_slos(spec: Mapping, families: Mapping) -> SLOReport:
    """Evaluate every objective of a validated spec against a snapshot."""
    return SLOReport(
        name=spec["name"],
        results=[_observe(obj, families) for obj in spec["objectives"]],
    )


__all__ = [
    "Objective",
    "ObjectiveResult",
    "SLOReport",
    "SLOSpecError",
    "SLO_SCHEMA_VERSION",
    "evaluate_slos",
    "load_slo_spec",
    "validate_slo_spec",
]
