"""Regenerate the paper's Tables 1-8.

Tables 1, 2, 3, 5, 7 and 8 are *structural* — they describe the suite
itself and regenerate from the registry metadata.  Tables 4 and 6 are
*quantitative* — per-iteration FLOP counts, memory and communication —
and regenerate from instrumented runs compared against the analytic
formulas of :mod:`repro.suite.analytic`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.machine.session import Session
from repro.metrics.patterns import CommPattern
from repro.suite import analytic
from repro.suite.registry import REGISTRY
from repro.suite.runner import run_benchmark
from repro.versions import VersionTier


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Plain-text table with aligned columns."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    def fmt(cells):  # noqa: D103 - local helper
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
def table1_versions() -> str:
    """Table 1: benchmark suite code versions."""
    tiers = list(VersionTier)
    headers = ["Benchmark"] + [t.value for t in tiers]
    rows = []
    for name in sorted(REGISTRY):
        spec = REGISTRY[name]
        rows.append(
            [name] + ["x" if t in spec.versions else "" for t in tiers]
        )
    return format_table(headers, rows)


def _layout_table(group_filter) -> str:
    headers = ["Code", "1-D", "2-D", "3-D", "4-D+"]
    rows = []
    for name in sorted(REGISTRY):
        spec = REGISTRY[name]
        if not group_filter(spec.group):
            continue
        by_rank = {1: [], 2: [], 3: [], 4: []}
        for layout in spec.layouts:
            rank = layout.count(":") - layout.count(":serial") + layout.count(":serial")
            rank = len([e for e in layout.strip("()").split(",") if e.strip()])
            by_rank[min(rank, 4)].append(layout)
        rows.append(
            [name]
            + [" ".join(by_rank[r]) for r in (1, 2, 3, 4)]
        )
    return format_table(headers, rows)


def table2_layouts() -> str:
    """Table 2: data representation/layout, linear algebra kernels."""
    return _layout_table(lambda g: g == "linalg")


def table5_layouts() -> str:
    """Table 5: data representation/layout, application codes."""
    return _layout_table(lambda g: g == "app")


def _comm_table(group_filter) -> str:
    patterns = sorted(
        {
            p
            for spec in REGISTRY.values()
            if group_filter(spec.group)
            for p in spec.comm_patterns
        },
        key=lambda p: p.value,
    )
    headers = ["Pattern"] + ["1-D", "2-D", "3-D", "4-D+"]
    rows = []
    for p in patterns:
        cells = {1: [], 2: [], 3: [], 4: []}
        for name in sorted(REGISTRY):
            spec = REGISTRY[name]
            if not group_filter(spec.group):
                continue
            for rank in spec.comm_patterns.get(p, ()):
                cells[min(rank, 4)].append(name)
        rows.append(
            [p.value] + [" ".join(cells[r]) for r in (1, 2, 3, 4)]
        )
    return format_table(headers, rows)


def table3_comm() -> str:
    """Table 3: communication of linear algebra kernels."""
    return _comm_table(lambda g: g in ("linalg", "comm"))


def table7_comm() -> str:
    """Table 7: communication patterns in application codes."""
    return _comm_table(lambda g: g == "app")


def table8_techniques() -> str:
    """Table 8: implementation techniques for stencil/gather/scatter/AABC."""
    headers = ["Pattern", "Code", "Implementation technique"]
    rows = []
    for name in sorted(REGISTRY):
        spec = REGISTRY[name]
        for pattern, technique in spec.techniques.items():
            rows.append([pattern, name, technique])
    return format_table(headers, rows)


# ---------------------------------------------------------------------------
# Tables 4 and 6: measured vs analytic.
# ---------------------------------------------------------------------------
MeasuredRow = Tuple[str, float, float, Dict[CommPattern, float]]


def measure(
    name: str,
    session_factory: Callable[[], Session],
    params: Optional[dict] = None,
    segment: Optional[str] = None,
) -> MeasuredRow:
    """Run one benchmark and extract (flops/iter, memory, comm/iter).

    ``segment`` narrows the measurement to one named code segment —
    the paper reports ``lu``/``qr`` factorization and solution
    separately (§1.5), so their Table-4 rows are per-segment.
    """
    session = session_factory()
    report = run_benchmark(name, session, **(params or {}))
    if segment is None:
        # Prefer the main_loop segment: several benchmarks verify their
        # numerics outside the loop, and the paper's per-iteration
        # attributes describe the main loop only.
        if any(s.name == "main_loop" for s in report.segments):
            segment = "main_loop"
    if segment is not None:
        seg = report.segment(segment)
        return (
            f"{name}:{segment}" if segment != "main_loop" else name,
            seg.flops_per_iteration,
            float(report.memory_bytes),
            seg.comm_per_iteration(),
        )
    return (
        name,
        report.flops_per_iteration,
        float(report.memory_bytes),
        report.comm_per_iteration(),
    )


def _comm_str(comm: Dict[CommPattern, float]) -> str:
    return ", ".join(
        f"{v:g} {k.value}" for k, v in sorted(comm.items(), key=lambda kv: kv[0].value)
    )


def comparison_table(
    entries: List[Tuple[MeasuredRow, analytic.AnalyticRow]]
) -> str:
    """Side-by-side measured vs paper-analytic table."""
    headers = [
        "Code",
        "FLOPs/iter (meas)",
        "FLOPs/iter (paper)",
        "Memory (meas)",
        "Memory (paper)",
        "Comm/iter (meas)",
        "Comm/iter (paper)",
    ]
    rows = []
    for (name, flops, mem, comm), ref in entries:
        rows.append(
            [
                name,
                f"{flops:.0f}",
                f"{ref.flops_per_iteration:.0f}",
                f"{mem:.0f}",
                f"{ref.memory_bytes:.0f}",
                _comm_str(comm),
                _comm_str(ref.comm_per_iteration),
            ]
        )
    return format_table(headers, rows)


def table4_linalg(session_factory: Callable[[], Session]) -> str:
    """Table 4: computation/communication ratios, linear algebra."""
    n = 64
    entries = [
        (
            measure("matrix-vector", session_factory, {"n": n, "m": n, "repeats": 2}),
            analytic.matvec(n, n),
        ),
        (
            measure("lu", session_factory, {"n": 32}, segment="factor"),
            analytic.lu_factor(32, 1),
        ),
        (
            measure("lu", session_factory, {"n": 32}, segment="solve"),
            analytic.lu_solve(32, 1),
        ),
        (
            measure("qr", session_factory, {"m": 48, "n": 24}, segment="factor"),
            analytic.qr_factor(48, 24),
        ),
        (
            measure("qr", session_factory, {"m": 48, "n": 24}, segment="solve"),
            analytic.qr_solve(48, 24),
        ),
        (
            measure("gauss-jordan", session_factory, {"n": 32}),
            analytic.gauss_jordan(32),
        ),
        (
            measure("pcr", session_factory, {"n": 64, "variant": 1}),
            analytic.pcr(64, 1),
        ),
        (
            measure("conj-grad", session_factory, {"n": 128}),
            analytic.conj_grad(128),
        ),
        (measure("jacobi", session_factory, {"n": 16}), analytic.jacobi(16)),
        (
            measure("fft", session_factory, {"n": 256, "dims": 1}),
            analytic.fft(256, 1),
        ),
    ]
    return comparison_table(entries)


def table6_apps(session_factory: Callable[[], Session]) -> str:
    """Table 6: computation/communication ratios, application codes."""
    entries = [
        (
            measure("boson", session_factory, {"nx": 8, "nt": 4, "sweeps": 4}),
            analytic.boson(4, 8, 8),
        ),
        (
            measure("diff-1d", session_factory, {"nx": 64, "steps": 3}),
            analytic.diff1d(64, 32),
        ),
        (
            measure("diff-2d", session_factory, {"nx": 32, "steps": 4}),
            analytic.diff2d(32),
        ),
        (
            measure("diff-3d", session_factory, {"nx": 12, "steps": 3}),
            analytic.diff3d(12, 12, 12),
        ),
        (
            measure("ellip-2d", session_factory, {"nx": 12}),
            analytic.ellip2d(12, 12),
        ),
        (
            measure("fem-3d", session_factory, {"nx": 2, "iterations": 10}),
            analytic.fem3d(4, 40, 27),
        ),
        (
            measure("md", session_factory, {"n_p": 16, "steps": 4}),
            analytic.md(16),
        ),
        (
            measure("mdcell", session_factory, {"nc": 4, "steps": 2}),
            analytic.mdcell(1.0, 64, 4, 4, 4),
        ),
        (
            measure("n-body", session_factory, {"n": 16, "variant": "spread"}),
            analytic.nbody(16, "spread"),
        ),
        (
            measure(
                "pic-simple",
                session_factory,
                {"nx": 16, "n_p": 128, "steps": 2},
            ),
            analytic.pic_simple(128, 16, 16),
        ),
        (
            measure(
                "pic-gather-scatter",
                session_factory,
                {"nx": 8, "n_p": 64, "steps": 2},
            ),
            analytic.pic_gather_scatter(64, 8),
        ),
        (
            measure("qcd-kernel", session_factory, {"nx": 4, "iterations": 2}),
            analytic.qcd_kernel(4, 4, 4, 4),
        ),
        (
            measure(
                "qmc",
                session_factory,
                {"blocks": 1, "steps_per_block": 10, "n_w": 50},
            ),
            analytic.qmc(2, 3, 50, 2),
        ),
        (
            measure("qptransport", session_factory, {"iterations": 10}),
            analytic.qptransport(33),
        ),
        (
            measure("rp", session_factory, {"nx": 6}),
            analytic.rp(6, 6, 6),
        ),
        (
            measure("step4", session_factory, {"nx": 12, "steps": 2}),
            analytic.step4(12, 12),
        ),
        (
            measure("wave-1d", session_factory, {"nx": 64, "steps": 4}),
            analytic.wave1d(64),
        ),
        (
            measure("ks-spectral", session_factory, {"nx": 32, "ne": 2, "steps": 3}),
            analytic.ks_spectral(32, 2),
        ),
        (
            measure("gmo", session_factory, {"ns": 128, "ntr": 16}),
            analytic.gmo(128 * 16),
        ),
        (
            measure("fermion", session_factory, {"sites": 16, "n": 4, "sweeps": 2}),
            analytic.AnalyticRow("fermion", float("nan"), float("nan"), {}),
        ),
    ]
    return comparison_table(entries)
