"""Tridiagonal solution by the conjugate gradient method.

Table 2: ``X(:)`` — a single system, all vectors parallel 1-D.
Table 4 charges ``15 n`` FLOPs, 4 CSHIFTs and 3 Reductions per
iteration, with a memory footprint of ``40 n`` bytes double — exactly
five n-vectors (x, r, s, p, q), which identifies the implementation:
the matrix is a *constant-coefficient* (stencil) periodic tridiagonal
operator and is never stored, and the solver is CG on the normal
equations (CGNR) so that nonsymmetric coefficient triples are handled
— each iteration applies both ``A`` (2 CSHIFTs) and ``A^T``
(2 CSHIFTs) and takes three inner products.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.array.distarray import DistArray
from repro.array.fused import axpy, linear_combine
from repro.comm.primitives import cshift, reduce_array
from repro.layout.spec import parse_layout
from repro.machine.session import Session
from repro.metrics.flops import FlopKind


@dataclass
class CGResult:
    """Solution vector with iteration count and final residual."""

    x: DistArray
    iterations: int
    residual_norm: float


def _apply(lo: float, di: float, up: float, v: DistArray) -> DistArray:
    """``(A v)_i = lo*v_(i-1) + di*v_i + up*v_(i+1)`` (periodic)."""
    vm = cshift(v, -1)  # v_(i-1)
    vp = cshift(v, +1)  # v_(i+1)
    return linear_combine((di, v), (lo, vm), (up, vp))


def cg_tridiagonal(
    session: Session,
    f: DistArray,
    *,
    lower: float = -1.0,
    diag: float = 4.0,
    upper: float = -1.0,
    tol: float = 1e-10,
    max_iter: Optional[int] = None,
) -> CGResult:
    """Solve the periodic constant-coefficient tridiagonal system.

    Uses CGNR: minimizes ``||A x - f||`` via CG on ``A^T A``, which
    converges for any nonsingular coefficient triple, symmetric or not.
    """
    n = f.size
    if max_iter is None:
        max_iter = 2 * n
    x = DistArray(np.zeros(n), f.layout, session, "x")
    # r = f - A x = f initially.
    r = f.copy("r")
    # s = A^T r (A^T has lower/upper swapped).
    s = _apply(upper, diag, lower, r)
    p = s.copy("p")
    gamma = reduce_array(s * s, "sum")

    for name in ("x", "r", "s", "p", "q"):
        session.declare_memory(name, (n,), np.float64)

    it = 0
    res = float(np.sqrt(reduce_array(r * r, "sum")))
    with session.region("main_loop", iterations=1) as region:
        while it < max_iter and res > tol:
            with session.iteration(it):
                q = _apply(lower, diag, upper, p)  # 2 CSHIFTs, 5n FLOPs
                qq = reduce_array(q * q, "sum")  # Reduction 1
                if qq == 0.0:
                    break
                alpha = gamma / qq
                session.recorder.charge_flops(FlopKind.DIV, 1)
                axpy(alpha, p, x, out=x)  # x += alpha * p
                axpy(alpha, q, r, subtract=True, out=r)  # r -= alpha * q
                s = _apply(upper, diag, lower, r)  # 2 CSHIFTs
                gamma_new = reduce_array(s * s, "sum")  # Reduction 2
                beta = gamma_new / gamma if gamma else 0.0
                session.recorder.charge_flops(FlopKind.DIV, 1)
                p = axpy(beta, p, s)  # s + beta * p
                gamma = gamma_new
                res = float(np.sqrt(reduce_array(r * r, "sum")))  # Reduction 3
                session.recorder.charge_flops(FlopKind.SQRT, 1)
                it += 1
        region.iterations = max(1, it)
    return CGResult(x=x, iterations=it, residual_norm=res)


def make_rhs(session: Session, n: int, seed: int = 0) -> DistArray:
    """A random right-hand side with the Table-2 layout."""
    rng = np.random.default_rng(seed)
    f = rng.standard_normal(n)
    return DistArray(f, parse_layout("(:)", (n,)), session, "f")


def reference_solve(n, lower, diag, upper, f):
    """Periodic constant-coefficient tridiagonal reference.

    The matrix is circulant (first column ``[diag, lower, 0, ...,
    upper]``, with overlapping corners summed for n <= 2), so it
    diagonalizes in the Fourier basis: solve in O(n log n) instead of
    building and factoring the dense n x n operator.
    """
    c = np.zeros(n)
    c[0] += diag
    c[1 % n] += lower
    c[(n - 1) % n] += upper
    eig = np.fft.fft(c)
    x = np.fft.ifft(np.fft.fft(np.asarray(f, dtype=float)) / eig)
    return x.real
