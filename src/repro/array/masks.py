"""Mask handling with HPF execution semantics (paper §1.4).

HPF evaluates masked expressions over the *entire* array and applies
the mask only at assignment.  The DPF performance analysis therefore
charges unmasked FLOP counts; these helpers preserve that behaviour:
``where`` selects between two fully-computed operands, charging only
the selection move, because the operands were charged when computed.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.array.distarray import DistArray, Scalar


def where(
    mask: DistArray,
    if_true: Union[DistArray, Scalar],
    if_false: Union[DistArray, Scalar],
) -> DistArray:
    """Elementwise selection (``WHERE`` / merge).

    Both branch operands must already be fully evaluated — this is the
    HPF semantics the paper's FLOP counts assume.  The selection itself
    moves data but performs no floating-point arithmetic.
    """
    t = if_true.data if isinstance(if_true, DistArray) else if_true
    f = if_false.data if isinstance(if_false, DistArray) else if_false
    result = np.where(mask.data, t, f)
    return DistArray(result, mask.layout, mask.session)


def merge(
    if_true: Union[DistArray, Scalar],
    if_false: Union[DistArray, Scalar],
    mask: DistArray,
) -> DistArray:
    """Fortran-90 ``MERGE(tsource, fsource, mask)`` argument order."""
    return where(mask, if_true, if_false)


def assign_where(target: DistArray, mask: DistArray, value) -> None:
    """Masked assignment: ``WHERE (mask) target = value``."""
    if mask.shape != target.shape:
        raise ValueError(f"mask shape {mask.shape} != target shape {target.shape}")
    v = value.data if isinstance(value, DistArray) else value
    if np.isscalar(v):
        target.data[mask.data] = v
    else:
        target.data[mask.data] = np.broadcast_to(v, target.shape)[mask.data]
