"""qptransport: a quadratic programming problem on a bipartite graph.

Paper §4: the transportation problem — route flow from supply nodes
to demand nodes over the edges of a bipartite graph at minimum
quadratic cost.  Table 5 layout: ``x(:)`` (edge-parallel vectors).
Table 6: ``34 n`` FLOPs per iteration over the ``n`` edges, memory
``160 n`` (20 words per edge), and per iteration **10 Scatters
(1-D to 1-D), 1 Sort, 5 Scans, 1 CSHIFT, 1 EOSHIFT and 3 Reductions**
— the sort orders edges by the constraint group being projected, the
shifts detect segment boundaries, the scans compute per-group
sums/counts and broadcast them, and the scatters move permutations,
corrections and node totals.

The algorithm is alternating projection onto the two affine
constraint sets (row sums = supply, column sums = demand); starting
from zero flow it converges to the *minimum-norm* feasible
transportation plan, verified against the dense least-norm solution.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppResult
from repro.array.distarray import DistArray
from repro.comm.primitives import cshift, eoshift
from repro.comm.scan import segmented_copy_scan, segmented_scan, scan
from repro.comm.sorting import argsort
from repro.layout.spec import parse_layout
from repro.machine.session import Session
from repro.metrics.access import LocalAccess
from repro.metrics.flops import FlopKind
from repro.metrics.patterns import CommPattern


def make_problem(n_src: int, n_dst: int, density: float, seed: int = 0):
    """A random connected, balanced bipartite transportation instance."""
    rng = np.random.default_rng(seed)
    edges = {(i, i % n_dst) for i in range(n_src)}
    edges |= {(j % n_src, j) for j in range(n_dst)}
    for i in range(n_src):
        for j in range(n_dst):
            if rng.random() < density:
                edges.add((i, j))
    edges = sorted(edges)
    src = np.array([e[0] for e in edges])
    dst = np.array([e[1] for e in edges])
    supply = rng.uniform(1.0, 2.0, n_src)
    demand_raw = rng.uniform(1.0, 2.0, n_dst)
    demand = demand_raw * supply.sum() / demand_raw.sum()
    return src, dst, supply, demand


def least_norm_reference(src, dst, supply, demand):
    """Dense minimum-norm feasible flow of the consistent system."""
    n = len(src)
    n_s = len(supply)
    n_d = len(demand)
    A = np.zeros((n_s + n_d, n))
    A[src, np.arange(n)] = 1.0
    A[n_s + dst, np.arange(n)] = 1.0
    b = np.concatenate([supply, demand])
    x, *_ = np.linalg.lstsq(A, b, rcond=None)
    return x


def _project_group(
    session: Session,
    x: DistArray,
    keys: np.ndarray,
    targets: np.ndarray,
    n_groups: int,
    layout,
) -> DistArray:
    """Project flows onto 'per-group sums equal the targets'.

    Sorted-segment machinery: 1 Sort, 1 EOSHIFT + 1 CSHIFT (boundary
    detection), 5 Scans (segment sums, group enumeration, total
    broadcast, segment counts, count broadcast) and 10 Scatters
    (permutation, node totals/counts, target fetch, correction
    write-back and node bookkeeping).
    """
    n = x.size
    itemsize = 8
    off = layout.off_node_fraction(session.nodes)

    def _scatter(elements: int, detail: str) -> None:
        session.record_comm(
            CommPattern.SCATTER,
            bytes_network=round(elements * itemsize * off),
            bytes_local=elements * itemsize,
            rank=1,
            detail=detail,
        )

    # 1 Sort: rank edges by constraint group.
    order = argsort(DistArray(keys.astype(np.float64), layout, session))
    perm = order.data.astype(int)
    keys_sorted = keys[perm]
    x_sorted = x.data[perm]
    _scatter(n, "permute flows")  # Scatter 1
    _scatter(n, "permute keys")  # Scatter 2

    # Segment boundary detection: EOSHIFT compares each key with its
    # predecessor; a CSHIFT provides the successor for segment ends.
    ks = DistArray(keys_sorted.astype(np.float64), layout, session)
    prev = eoshift(ks, -1, boundary=-1.0)  # 1 EOSHIFT
    starts = prev.data != keys_sorted
    nxt = cshift(ks, +1)  # 1 CSHIFT
    ends = nxt.data != keys_sorted
    ends[-1] = True
    session.charge_elementwise(FlopKind.COMPARE, layout, ops_per_element=2)

    xs = DistArray(x_sorted, layout, session)
    # Scan 1: segmented sums of flows.
    seg = segmented_scan(xs, starts, "sum")
    # Scan 2: group enumeration (prefix sum of start flags).
    gid = scan(
        DistArray(starts.astype(np.float64), layout, session), "sum"
    ).data.astype(int) - 1
    group_totals = seg.data[ends]
    # Scan 3: broadcast each group's total across its segment.
    totals = segmented_copy_scan(
        DistArray(
            np.where(starts, group_totals[gid], 0.0), layout, session
        ),
        starts,
    ).data
    # Scan 4: per-group edge counts (segmented count).
    counts = segmented_scan(
        DistArray(np.ones(n), layout, session), starts, "sum"
    )
    group_counts = counts.data[ends]
    # Scan 5: broadcast the counts across segments.
    counts_bcast = segmented_copy_scan(
        DistArray(
            np.where(starts, group_counts[gid], 0.0), layout, session
        ),
        starts,
    ).data

    # Scatters 3-6: per-group totals and counts to the node arrays and
    # the node targets fetched into edge slots.
    _scatter(n_groups, "group totals to nodes")  # Scatter 3
    _scatter(n_groups, "group counts to nodes")  # Scatter 4
    target_per_edge = targets[keys_sorted]
    _scatter(n, "targets to edges")  # Scatter 5
    _scatter(n_groups, "dual update")  # Scatter 6

    # Correction: x_e += (target_g - total_g) / count_g  (~6 FLOPs/edge
    # under the DPF conventions: SUB + DIV(4) + ADD).
    corr = (target_per_edge - totals) / counts_bcast
    session.recorder.charge_flops(FlopKind.SUB, n)
    session.recorder.charge_flops(FlopKind.DIV, n)
    x_new_sorted = x_sorted + corr
    session.recorder.charge_flops(FlopKind.ADD, n)

    # Scatters 7-10: un-permute the flows and refresh node bookkeeping
    # (row/column sums for the violation check).
    x_out = np.empty(n)
    x_out[perm] = x_new_sorted
    _scatter(n, "unsort flows")  # Scatter 7
    _scatter(n, "flow write-back")  # Scatter 8
    _scatter(n_groups, "row sums")  # Scatter 9
    _scatter(n_groups, "column sums")  # Scatter 10
    return DistArray(x_out, layout, session)


def run(
    session: Session,
    n_src: int = 12,
    n_dst: int = 9,
    density: float = 0.4,
    iterations: int = 60,
    seed: int = 0,
) -> AppResult:
    """Alternating projections to the min-norm transportation plan."""
    src, dst, supply, demand = make_problem(n_src, n_dst, density, seed)
    n = len(src)
    layout = parse_layout("(:)", (n,))
    # Table 6 memory: 160 n — 20 words per edge.
    for name in (
        "flow", "src", "dst", "key", "rank", "segsum", "segcnt", "corr",
        "totals", "counts", "starts", "ends", "perm", "sorted_flow",
        "sorted_key", "targets", "work1", "work2", "work3", "work4",
    ):
        session.declare_memory(name, (n,), np.float64)

    x = DistArray(np.zeros(n), layout, session, "flow")
    supply_err = demand_err = np.inf
    with session.region("main_loop", iterations=iterations):
        for it in range(iterations):
            if it % 2 == 0:
                x = _project_group(session, x, src, supply, n_src, layout)
            else:
                x = _project_group(session, x, dst, demand, n_dst, layout)
            # 3 Reductions: constraint violations and the objective.
            row = np.zeros(n_src)
            np.add.at(row, src, x.data)
            col = np.zeros(n_dst)
            np.add.at(col, dst, x.data)
            supply_err = float(np.abs(row - supply).max())
            demand_err = float(np.abs(col - demand).max())
            for detail in ("supply violation", "demand violation", "objective"):
                session.record_comm(
                    CommPattern.REDUCTION, bytes_network=8, rank=1, detail=detail
                )
            session.charge_reduction_flops(n, 3, layout=layout)
    ref = least_norm_reference(src, dst, supply, demand)
    sol_err = float(np.abs(x.data - ref).max())
    return AppResult(
        name="qptransport",
        iterations=iterations,
        problem_size=n,
        local_access=LocalAccess.NA,
        observables={
            "supply_violation": supply_err,
            "demand_violation": demand_err,
            "min_norm_error": sol_err,
            "objective": float((x.data**2).sum()),
        },
        state={"x": x.data.copy(), "reference": ref},
    )
