"""FLOP-count conventions of the DPF suite (paper §1.5, attribute (1)).

The paper adopts the operation costs suggested by Hennessy & Patterson:

* one FLOP for real addition, subtraction and multiplication,
* four FLOPs for division and square root,
* eight FLOPs for logarithmic and trigonometric (and other
  transcendental) functions,
* reductions and parallel-prefix operations over ``N`` elements are
  counted at their sequential cost of ``N - 1`` operations.

Complex arithmetic is charged at its real-operation decomposition
(a complex add is two real adds; a complex multiply is four real
multiplies plus two real adds, i.e. six FLOPs).

Masked computations follow HPF execution semantics (paper §1.4): the
*entire* array participates, so FLOPs are charged for every element
regardless of the mask.
"""

from __future__ import annotations

from collections import Counter
from enum import Enum
from typing import Iterable, Mapping


class FlopKind(str, Enum):
    """Categories of floating-point operations with distinct costs."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    SQRT = "sqrt"
    LOG = "log"
    EXP = "exp"
    TRIG = "trig"
    POW = "pow"
    COMPARE = "compare"
    ABS = "abs"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlopKind.{self.name}"


#: Cost in FLOPs of one scalar operation of each kind.
FLOP_COSTS: Mapping[FlopKind, int] = {
    FlopKind.ADD: 1,
    FlopKind.SUB: 1,
    FlopKind.MUL: 1,
    FlopKind.DIV: 4,
    FlopKind.SQRT: 4,
    FlopKind.LOG: 8,
    FlopKind.EXP: 8,
    FlopKind.TRIG: 8,
    FlopKind.POW: 8,
    # Comparisons and absolute values are charged as one FLOP, the
    # convention used for the pivot searches in lu/gauss-jordan.
    FlopKind.COMPARE: 1,
    FlopKind.ABS: 1,
}


def flop_cost(kind: FlopKind, count: int = 1, *, complex_valued: bool = False) -> int:
    """Return the FLOP cost of ``count`` scalar operations of ``kind``.

    ``complex_valued`` applies the complex-arithmetic decomposition:
    adds/subs double, multiplies cost six real FLOPs, divisions are
    charged at the cost of a complex reciprocal-multiply (two real
    divisions plus a complex multiply and the denominator norm).
    """
    if count < 0:
        raise ValueError(f"operation count must be non-negative, got {count}")
    base = FLOP_COSTS[kind]
    if not complex_valued:
        return base * count
    if kind in (FlopKind.ADD, FlopKind.SUB):
        return 2 * count
    if kind is FlopKind.MUL:
        return 6 * count
    if kind is FlopKind.DIV:
        # (a+bi)/(c+di): norm (3 flops) + 2 real divisions + complex*real
        # scaling (2 muls) + complex multiply by conjugate (6 flops).
        return (3 + 2 * FLOP_COSTS[FlopKind.DIV] + 2 + 6) * count
    # Transcendentals on complex arguments: charged at twice the real cost.
    return 2 * base * count


class FlopCounter:
    """Accumulates FLOPs by :class:`FlopKind`.

    The counter stores raw *operation* counts per kind; :attr:`total`
    applies the DPF cost table.  Counters add like vectors, which lets
    the recorder aggregate child regions into their parents.
    """

    __slots__ = ("_ops", "_weighted", "_weighted_ops")

    def __init__(self) -> None:
        self._ops: Counter[FlopKind] = Counter()
        self._weighted: int = 0
        self._weighted_ops: Counter[FlopKind] = Counter()

    def add(self, kind: FlopKind, count: int, *, complex_valued: bool = False) -> None:
        """Record ``count`` scalar operations of ``kind``."""
        if count < 0:
            raise ValueError(f"operation count must be non-negative, got {count}")
        if count == 0:
            return
        self._ops[kind] += count
        cost = flop_cost(kind, count, complex_valued=complex_valued)
        self._weighted += cost
        self._weighted_ops[kind] += cost

    def add_raw(self, flops: int) -> None:
        """Record pre-weighted FLOPs (used for reductions: ``N - 1``)."""
        if flops < 0:
            raise ValueError(f"flop count must be non-negative, got {flops}")
        self._ops[FlopKind.ADD] += flops
        self._weighted += flops
        self._weighted_ops[FlopKind.ADD] += flops

    def merge(self, other: "FlopCounter") -> None:
        """Fold another counter into this one."""
        self._ops.update(other._ops)
        self._weighted += other._weighted
        self._weighted_ops.update(other._weighted_ops)

    @property
    def total(self) -> int:
        """Total FLOPs under the DPF cost conventions."""
        return self._weighted

    @property
    def operations(self) -> Mapping[FlopKind, int]:
        """Raw operation counts by kind (not cost-weighted)."""
        return dict(self._ops)

    @property
    def weighted_by_kind(self) -> Mapping[FlopKind, int]:
        """Cost-weighted FLOPs by kind; sums exactly to :attr:`total`.

        Complex-valued charges land under their scalar kind at the
        complex decomposition cost, so the per-kind values always
        reconcile with the DPF total — the invariant the campaign
        roofline report is built on.
        """
        return dict(self._weighted_ops)

    def copy(self) -> "FlopCounter":
        """Independent copy of this counter."""
        out = FlopCounter()
        out._ops = Counter(self._ops)
        out._weighted = self._weighted
        out._weighted_ops = Counter(self._weighted_ops)
        return out

    def __bool__(self) -> bool:
        return self._weighted > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlopCounter):
            return NotImplemented
        return self._ops == other._ops and self._weighted == other._weighted

    def __repr__(self) -> str:
        parts = ", ".join(f"{k.value}={v}" for k, v in sorted(self._ops.items()))
        return f"FlopCounter(total={self._weighted}, {parts})"


def reduction_flops(n_elements: int, n_results: int = 1) -> int:
    """Sequential FLOP count of a reduction: ``N - 1`` per result.

    ``n_elements`` is the number of elements combined *per result*;
    reducing an ``(m, n)`` array along its second axis yields
    ``n_results = m`` results of ``n_elements = n`` each.
    """
    if n_elements <= 0 or n_results <= 0:
        return 0
    return (n_elements - 1) * n_results


def scan_flops(n_elements: int, n_results: int = 1) -> int:
    """Sequential FLOP count of a prefix scan: ``N - 1`` per scanned lane."""
    return reduction_flops(n_elements, n_results)


def merge_counters(counters: Iterable[FlopCounter]) -> FlopCounter:
    """Sum an iterable of counters into a fresh one."""
    out = FlopCounter()
    for c in counters:
        out.merge(c)
    return out
