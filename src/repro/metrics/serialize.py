"""Serialization of performance reports (JSON/CSV).

The original suite wrote per-benchmark output files with the §1.5
metrics; these helpers provide the modern equivalents for downstream
tooling: a JSON document per report and CSV rows for whole-suite runs.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterable, List

from repro.metrics.report import PerfReport


def report_to_dict(report: PerfReport) -> Dict:
    """A JSON-safe dictionary of every §1.5 metric."""
    return {
        "benchmark": report.benchmark,
        "version": report.version,
        "problem_size": report.problem_size,
        "iterations": report.iterations,
        "busy_time_s": report.busy_time,
        "elapsed_time_s": report.elapsed_time,
        "busy_floprate_mflops": report.busy_floprate_mflops,
        "elapsed_floprate_mflops": report.elapsed_floprate_mflops,
        "flop_count": report.flop_count,
        "flops_per_iteration": report.flops_per_iteration,
        "ops_per_point": report.ops_per_point,
        "memory_bytes": report.memory_bytes,
        "memory_by_tag": {
            tag.value: nbytes for tag, nbytes in report.memory_by_tag.items()
        },
        "arithmetic_efficiency": report.arithmetic_efficiency,
        "local_access": report.local_access.value,
        "network_bytes": report.network_bytes,
        "comm_counts": {
            pattern.value: count for pattern, count in report.comm_counts.items()
        },
        "comm_per_iteration": {
            pattern.value: count
            for pattern, count in report.comm_per_iteration().items()
        },
        "segments": [
            {
                "name": seg.name,
                "iterations": seg.iterations,
                "flop_count": seg.flop_count,
                "busy_time_s": seg.busy_time,
                "elapsed_time_s": seg.elapsed_time,
                "busy_floprate_mflops": seg.busy_floprate_mflops,
            }
            for seg in report.segments
        ],
        "observables": dict(report.extra),
    }


def report_to_json(report: PerfReport, indent: int = 2) -> str:
    """JSON document of one report (see report_to_dict)."""
    return json.dumps(report_to_dict(report), indent=indent, sort_keys=True)


#: columns of the CSV summary, in order.
CSV_FIELDS: List[str] = [
    "benchmark",
    "version",
    "problem_size",
    "iterations",
    "busy_time_s",
    "elapsed_time_s",
    "busy_floprate_mflops",
    "elapsed_floprate_mflops",
    "flop_count",
    "memory_bytes",
    "network_bytes",
    "arithmetic_efficiency",
    "local_access",
]


def reports_to_csv(reports: Iterable[PerfReport]) -> str:
    """A CSV summary, one row per report (suite-run output)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=CSV_FIELDS)
    writer.writeheader()
    for report in reports:
        record = report_to_dict(report)
        writer.writerow({field: record[field] for field in CSV_FIELDS})
    return buffer.getvalue()
