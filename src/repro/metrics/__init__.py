"""Performance-evaluation subsystem (paper §1.5).

The DPF paper characterizes every benchmark by busy/elapsed time, FLOP
rates, FLOP count, memory usage, communication patterns and counts, and
local-memory-access classification.  This subpackage provides:

* :mod:`repro.metrics.flops` — the FLOP accounting conventions
  (add/sub/mul = 1, div/sqrt = 4, log/trig = 8, reduction = N-1).
* :mod:`repro.metrics.access` — the local-memory-access classification
  (``N/A`` / ``direct`` / ``indirect`` / ``strided``).
* :mod:`repro.metrics.memory` — user-declared memory accounting and the
  paper's ``4(s)/8(d)`` size notation.
* :mod:`repro.metrics.recorder` — the hierarchical region recorder that
  accumulates FLOPs, communication events and simulated time.
* :mod:`repro.metrics.report` — :class:`PerfReport`, the per-benchmark
  output record mirroring the paper's reported metrics.
"""

from repro.metrics.access import DEFAULT_ACCESS_PENALTY, LocalAccess
from repro.metrics.flops import (
    FLOP_COSTS,
    FlopCounter,
    FlopKind,
    flop_cost,
    reduction_flops,
    scan_flops,
)
from repro.metrics.memory import MemoryLedger, TypeTag, format_bytes_symbolic
from repro.metrics.patterns import CommPattern, PatternGroup
from repro.metrics.recorder import CommEvent, MetricsRecorder, Region
from repro.metrics.report import PerfReport, SegmentReport

__all__ = [
    "DEFAULT_ACCESS_PENALTY",
    "FLOP_COSTS",
    "CommEvent",
    "CommPattern",
    "FlopCounter",
    "FlopKind",
    "LocalAccess",
    "MemoryLedger",
    "MetricsRecorder",
    "PatternGroup",
    "PerfReport",
    "Region",
    "SegmentReport",
    "TypeTag",
    "flop_cost",
    "format_bytes_symbolic",
    "reduction_flops",
    "scan_flops",
]
