"""Matrix-vector multiplication, four layout variants (Table 2).

The dominating computation is ``y = A @ x`` for ``i`` independent
instances; Table 4 charges ``2 n m i`` FLOPs per iteration (``8 n m i``
for complex data), ``1 Broadcast + 1 Reduction`` per iteration and
*direct* local memory access.

The four variants exercise different distributions of the same
computation (Table 2):

1. ``x(:)``, ``A(:,:)`` — single instance, all axes parallel;
2. ``x(:,:)``, ``A(:,:,:)`` — ``i`` instances, all axes parallel;
3. ``x(:serial,:)``, ``A(:serial,:serial,:)`` — matrix axes serial,
   instances parallel (each node owns whole matrices);
4. ``x(:,:)``, ``A(:serial,:,:)`` — rows serial, columns and instances
   parallel.

The algorithm is identical in all variants — broadcast the vector
along the row axis, multiply elementwise, reduce along the column
axis — but the communication volumes differ with the layout, which is
precisely what the benchmark probes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.array.distarray import DistArray
from repro.layout.spec import Layout
from repro.machine.session import Session
from repro.metrics.access import LocalAccess
from repro.metrics.patterns import CommPattern

#: layout specs per variant: (vector_spec, matrix_spec); the matrix
#: spec lists (instance?, row, column) axes, the vector (instance?,
#: column).
VARIANT_LAYOUTS = {
    1: ("(:)", "(:,:)"),
    2: ("(:,:)", "(:,:,:)"),
    3: ("(:serial,:)", "(:serial,:serial,:)"),
    4: ("(:,:)", "(:serial,:,:)"),
}


def matvec(A: DistArray, x: DistArray) -> DistArray:
    """``y = A @ x`` over the trailing two axes of ``A``.

    ``A`` has shape ``(..., m, n)`` (instance axes leading) and ``x``
    shape ``(..., n)``.  Charged per the paper: one broadcast of the
    vector across rows, ``n*m`` multiplies, one reduction along the
    column axis at ``n - 1`` adds per output element.
    """
    if A.ndim < 2:
        raise ValueError("matrix operand must have rank >= 2")
    if x.ndim != A.ndim - 1:
        raise ValueError(
            f"vector rank {x.ndim} incompatible with matrix rank {A.ndim}"
        )
    *inst, m, n = A.shape
    if x.shape != (*inst, n):
        raise ValueError(f"shape mismatch: A {A.shape} @ x {x.shape}")
    session = A.session

    # Broadcast x along the row axis of A (1 Broadcast, Table 4): on
    # the CM this is a spread of the source vector to every row block.
    x_bcast = np.broadcast_to(
        np.expand_dims(x.data, axis=-2), A.shape
    )
    row_axis = A.ndim - 2
    replicated = A.size - x.size
    distributed = A.layout.blocks(session.nodes, row_axis) > 1
    session.record_comm(
        CommPattern.BROADCAST,
        bytes_network=replicated * x.data.itemsize if distributed else 0,
        bytes_local=A.size * x.data.itemsize,
        rank=x.ndim,
        detail="vector across rows",
    )

    # Elementwise products: n*m*i multiplies, direct access.
    prod = A.data * x_bcast
    session.charge_elementwise(
        _mul_kind(), A.layout, complex_valued=A.is_complex or x.is_complex,
        access=LocalAccess.DIRECT,
    )

    # Reduction along the column axis: (n-1) adds per output element.
    y = prod.sum(axis=-1)
    n_results = max(1, A.size // n)
    if A.is_complex or x.is_complex:
        session.recorder.charge_raw_flops(2 * (n - 1) * n_results)
    else:
        session.recorder.charge_raw_flops((n - 1) * n_results)
    col_axis = A.ndim - 1
    net_elems = A.layout.reduce_network_elements(session.nodes, (col_axis,))
    session.record_comm(
        CommPattern.REDUCTION,
        bytes_network=net_elems * A.data.itemsize,
        rank=A.ndim,
        detail="row sums",
    )
    # Compute time of the reduction adds.
    session.recorder.charge_compute_time(
        session.machine.compute_time(
            (n - 1) * n_results * A.layout.critical_fraction(session.nodes),
            tier=session.tier,
            access=LocalAccess.DIRECT,
        )
    )

    y_axes = tuple(a for i, a in enumerate(A.layout.axes) if i != col_axis)
    return DistArray(y, Layout(y.shape, y_axes), session)


def make_operands(
    session: Session,
    variant: int,
    n: int,
    m: int | None = None,
    instances: int = 1,
    dtype=np.float64,
    seed: int = 0,
) -> Tuple[DistArray, DistArray]:
    """Construct ``(A, x)`` with the variant's Table-2 layout."""
    if variant not in VARIANT_LAYOUTS:
        raise ValueError(f"variant must be 1..4, got {variant}")
    m = n if m is None else m
    rng = np.random.default_rng(seed)

    def _rand(shape):
        data = rng.standard_normal(shape)
        if np.dtype(dtype).kind == "c":
            data = data + 1j * rng.standard_normal(shape)
        return data.astype(dtype)

    vec_spec, mat_spec = VARIANT_LAYOUTS[variant]
    if variant == 1:
        A = DistArray(_rand((m, n)), _parse(mat_spec, (m, n)), session, "A")
        x = DistArray(_rand((n,)), _parse(vec_spec, (n,)), session, "x")
    else:
        A = DistArray(
            _rand((instances, m, n)), _parse(mat_spec, (instances, m, n)), session, "A"
        )
        x = DistArray(
            _rand((instances, n)), _parse(vec_spec, (instances, n)), session, "x"
        )
    # Memory per Table 4: x (n), A (nm), y (m) per instance.
    session.declare_memory("x", x.shape, dtype)
    session.declare_memory("A", A.shape, dtype)
    y_shape = A.shape[:-1]
    session.declare_memory("y", y_shape, dtype)
    return A, x


def _parse(spec: str, shape) -> Layout:
    from repro.layout.spec import parse_layout

    return parse_layout(spec, shape)


def _mul_kind():
    from repro.metrics.flops import FlopKind

    return FlopKind.MUL
