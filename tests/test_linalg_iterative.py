"""Tests for PCR, conjugate gradients, Jacobi eigenanalysis and FFT."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Session, cm5
from repro.array import from_numpy
from repro.linalg.conj_grad import cg_tridiagonal, make_rhs
from repro.linalg.conj_grad import reference_solve as cg_reference
from repro.linalg.fft import fft, fft2, fft3, fft_along, ifft
from repro.linalg.jacobi_eigen import jacobi_eigen, make_matrix
from repro.linalg.pcr import make_systems, pcr_solve
from repro.linalg.pcr import reference_solve as pcr_reference
from repro.metrics.patterns import CommPattern


class TestPCR:
    @pytest.mark.parametrize("variant,instances", [(1, None), (2, (3,)), (3, (2, 2))])
    def test_layout_variants_solve(self, session, variant, instances):
        a, b, c, f = make_systems(session, n=32, instances=instances, nrhs=2)
        x = pcr_solve(a, b, c, f)
        ref = pcr_reference(a.np, b.np, c.np, f.np)
        assert np.allclose(x.np, ref, atol=1e-8)

    def test_periodic_systems(self, session):
        a, b, c, f = make_systems(session, n=16, periodic=True, seed=5)
        x = pcr_solve(a, b, c, f)
        ref = pcr_reference(a.np, b.np, c.np, f.np)
        assert np.allclose(x.np, ref, atol=1e-8)

    def test_cshift_budget(self, session):
        """Table 4: 2r + 4 CSHIFTs per reduction step."""
        r = 3
        a, b, c, f = make_systems(session, n=64, nrhs=r)
        pcr_solve(a, b, c, f)
        per = session.recorder.root.find("main_loop").comm_counts_per_iteration()
        assert per[CommPattern.CSHIFT] == pytest.approx(2 * r + 4)

    def test_iteration_count_logarithmic(self, session):
        a, b, c, f = make_systems(session, n=128)
        pcr_solve(a, b, c, f)
        assert session.recorder.root.find("main_loop").iterations == 7

    def test_shape_mismatch_raises(self, session):
        a, b, c, f = make_systems(session, n=8)
        a2, *_ = make_systems(session, n=16)
        with pytest.raises(ValueError):
            pcr_solve(a2, b, c, f)

    @given(n=st.sampled_from([4, 8, 16, 32]), seed=st.integers(0, 30))
    @settings(max_examples=15, deadline=None)
    def test_random_diagonally_dominant(self, n, seed):
        session = Session(cm5(8))
        a, b, c, f = make_systems(session, n=n, seed=seed)
        x = pcr_solve(a, b, c, f)
        ref = pcr_reference(a.np, b.np, c.np, f.np)
        assert np.allclose(x.np, ref, atol=1e-7)


class TestConjGrad:
    def test_symmetric_solve(self, session):
        f = make_rhs(session, 64, seed=1)
        res = cg_tridiagonal(session, f, lower=-1.0, diag=4.0, upper=-1.0)
        ref = cg_reference(64, -1.0, 4.0, -1.0, f.np)
        assert np.allclose(res.x.np, ref, atol=1e-7)

    def test_nonsymmetric_solve_cgnr(self, session):
        f = make_rhs(session, 48, seed=2)
        res = cg_tridiagonal(session, f, lower=-1.5, diag=4.0, upper=-0.5)
        ref = cg_reference(48, -1.5, 4.0, -0.5, f.np)
        assert np.allclose(res.x.np, ref, atol=1e-6)

    def test_comm_budget(self, session):
        """Table 4: 4 CSHIFTs and 3 Reductions per iteration."""
        f = make_rhs(session, 128)
        cg_tridiagonal(session, f)
        per = session.recorder.root.find("main_loop").comm_counts_per_iteration()
        assert per[CommPattern.CSHIFT] == pytest.approx(4.0, abs=0.2)
        assert per[CommPattern.REDUCTION] == pytest.approx(3.0, abs=0.2)

    def test_memory_is_five_vectors(self, session):
        """Table 4: 40 n bytes double = five n-vectors."""
        n = 64
        f = make_rhs(session, n)
        before = session.recorder.memory.total_bytes
        cg_tridiagonal(session, f)
        assert session.recorder.memory.total_bytes - before == 40 * n

    def test_converges_quickly_for_dominant_diag(self, session):
        f = make_rhs(session, 256)
        res = cg_tridiagonal(session, f, diag=10.0)
        assert res.iterations < 30
        assert res.residual_norm < 1e-9


class TestJacobiEigen:
    def test_eigenvalues(self, session):
        A = make_matrix(session, 12, seed=0)
        res = jacobi_eigen(A)
        ref = np.sort(np.linalg.eigvalsh(A.np))
        assert np.allclose(res.eigenvalues, ref, atol=1e-8)

    def test_diagonal_matrix_immediate(self, session):
        from repro.array.distarray import DistArray
        from repro.layout.spec import parse_layout

        D = np.diag([3.0, 1.0, 4.0, 1.5])
        A = DistArray(D, parse_layout("(:,:)", D.shape), session)
        res = jacobi_eigen(A)
        assert np.allclose(res.eigenvalues, np.sort(np.diag(D)))

    def test_comm_budget(self, session):
        """Table 4: 4 CSHIFTs, 2 Sends, 4 Broadcasts per iteration."""
        A = make_matrix(session, 8, seed=1)
        jacobi_eigen(A)
        per = session.recorder.root.find("main_loop").comm_counts_per_iteration()
        assert per[CommPattern.CSHIFT] == pytest.approx(4.0)
        assert per[CommPattern.SEND] == pytest.approx(2.0)
        assert per[CommPattern.BROADCAST] == pytest.approx(4.0)

    def test_odd_size_rejected(self, session):
        from repro.array.distarray import DistArray
        from repro.layout.spec import parse_layout

        M = np.eye(5)
        with pytest.raises(ValueError):
            jacobi_eigen(DistArray(M, parse_layout("(:,:)", M.shape), session))

    def test_asymmetric_rejected(self, session):
        from repro.array.distarray import DistArray
        from repro.layout.spec import parse_layout

        M = np.array([[1.0, 2.0], [0.0, 1.0]])
        with pytest.raises(ValueError):
            jacobi_eigen(DistArray(M, parse_layout("(:,:)", M.shape), session))

    @given(n=st.sampled_from([4, 6, 8, 10]), seed=st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_random_symmetric(self, n, seed):
        session = Session(cm5(8))
        A = make_matrix(session, n, seed=seed)
        res = jacobi_eigen(A)
        ref = np.sort(np.linalg.eigvalsh(A.np))
        assert np.allclose(res.eigenvalues, ref, atol=1e-7)


class TestFFT:
    def test_forward_matches_numpy(self, session):
        x = from_numpy(session, np.random.default_rng(0).standard_normal(128) + 0j, "(:)")
        assert np.allclose(fft(x).np, np.fft.fft(x.np))

    def test_inverse_roundtrip(self, session):
        x = from_numpy(session, np.random.default_rng(1).standard_normal(64) + 0j, "(:)")
        assert np.allclose(ifft(fft(x)).np, x.np)

    def test_parseval(self, session):
        data = np.random.default_rng(2).standard_normal(256)
        x = from_numpy(session, data + 0j, "(:)")
        F = fft(x).np
        assert np.sum(np.abs(F) ** 2) / 256 == pytest.approx(np.sum(data**2))

    def test_2d_matches_numpy(self, session):
        d = np.random.default_rng(3).standard_normal((16, 32)) + 0j
        x = from_numpy(session, d, "(:,:)")
        assert np.allclose(fft2(x).np, np.fft.fft2(d))

    def test_3d_matches_numpy(self, session):
        d = np.random.default_rng(4).standard_normal((8, 4, 16)) + 0j
        x = from_numpy(session, d, "(:,:,:)")
        assert np.allclose(fft3(x).np, np.fft.fftn(d))

    def test_2d_inverse_roundtrip(self, session):
        d = np.random.default_rng(5).standard_normal((8, 8)) + 0j
        x = from_numpy(session, d, "(:,:)")
        assert np.allclose(fft2(fft2(x), inverse=True).np, d)

    def test_non_power_of_two_rejected(self, session):
        x = from_numpy(session, np.zeros(12, dtype=complex), "(:)")
        with pytest.raises(ValueError):
            fft(x)

    def test_wrong_rank_rejected(self, session):
        x = from_numpy(session, np.zeros((4, 4), dtype=complex), "(:,:)")
        with pytest.raises(ValueError):
            fft(x)

    def test_per_stage_flops_5n(self, session):
        """Table 4: exactly 5n FLOPs per butterfly stage."""
        n = 512
        x = from_numpy(session, np.ones(n, dtype=complex), "(:)")
        fft(x)
        main = session.recorder.root.find("main_loop")
        assert main.flops_per_iteration == pytest.approx(5 * n)

    def test_per_stage_comm(self, session):
        """Table 4: 2 CSHIFTs + 1 AAPC per stage."""
        x = from_numpy(session, np.ones(256, dtype=complex), "(:)")
        fft(x)
        per = session.recorder.root.find("main_loop").comm_counts_per_iteration()
        assert per[CommPattern.CSHIFT] == pytest.approx(2.0)
        assert per[CommPattern.AAPC] == pytest.approx(1.0)

    def test_fft_along_axis(self, session):
        d = np.random.default_rng(6).standard_normal((4, 32)) + 0j
        x = from_numpy(session, d, "(:,:)")
        out = fft_along(x, 1)
        assert np.allclose(out.np, np.fft.fft(d, axis=1))

    @given(
        log_n=st.integers(1, 8),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=20, deadline=None)
    def test_power_of_two_sizes(self, log_n, seed):
        session = Session(cm5(8))
        n = 1 << log_n
        rng = np.random.default_rng(seed)
        d = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        x = from_numpy(session, d, "(:)")
        assert np.allclose(fft(x).np, np.fft.fft(d), atol=1e-9 * n)


class TestJacobiEigenvectors:
    def test_eigen_decomposition_residual(self, session):
        A = make_matrix(session, 10, seed=3)
        res = jacobi_eigen(A)
        V, lam = res.eigenvectors, res.eigenvalues
        assert np.abs(A.np @ V - V * lam[None, :]).max() < 1e-9

    def test_eigenvectors_orthonormal(self, session):
        A = make_matrix(session, 8, seed=4)
        V = jacobi_eigen(A).eigenvectors
        assert np.allclose(V.T @ V, np.eye(8), atol=1e-10)

    def test_eigenvector_order_matches_values(self, session):
        A = make_matrix(session, 6, seed=5)
        res = jacobi_eigen(A)
        rayleigh = np.einsum("ik,ij,jk->k", res.eigenvectors, A.np, res.eigenvectors)
        assert np.allclose(rayleigh, res.eigenvalues, atol=1e-9)
