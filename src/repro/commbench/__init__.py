"""Library functions for communication (paper §2).

Four benchmarks measure particular communication patterns unbundled
from computation: ``gather`` and ``reduction`` (many-to-one),
``scatter`` (one-to-many), and ``transpose`` (an all-to-all
personalized communication that "may be used to confirm advertised
bisection bandwidths").  Except for reduction these perform no
floating-point operations, so no FLOP count is produced (paper §2).
"""

from repro.commbench.drivers import (
    gather_benchmark,
    reduction_benchmark,
    scatter_benchmark,
    transpose_benchmark,
)

__all__ = [
    "gather_benchmark",
    "reduction_benchmark",
    "scatter_benchmark",
    "transpose_benchmark",
]
