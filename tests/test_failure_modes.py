"""Failure-injection tests: invalid inputs and degenerate cases across
the public API must fail loudly (or degrade gracefully), never return
silently wrong results."""

import numpy as np
import pytest

from repro.array import from_numpy, zeros
from repro.array.distarray import DistArray
from repro.comm.gather_scatter import gather, scatter
from repro.comm.primitives import cshift, reduce_array, spread
from repro.layout.spec import Layout, parse_layout
from repro.suite import run_benchmark


class TestDegenerateShapes:
    def test_empty_array_ops(self, session):
        x = zeros(session, (0,), "(:)")
        y = x + 1.0
        assert y.size == 0
        assert session.recorder.total_flops == 0

    def test_empty_reduce(self, session):
        x = zeros(session, (0,), "(:)")
        assert reduce_array(x, "sum") == 0.0

    def test_single_element_cshift(self, session):
        x = from_numpy(session, np.array([7.0]), "(:)")
        assert cshift(x, 5).np.tolist() == [7.0]

    def test_scalar_rank_layout(self):
        layout = Layout((), ())
        assert layout.size == 1
        assert layout.critical_fraction(8) == 1.0

    def test_spread_zero_copies_like_empty(self, session):
        x = from_numpy(session, np.arange(3.0), "(:)")
        out = spread(x, 0, 0)
        assert out.shape == (0, 3)


class TestBadIndices:
    def test_gather_out_of_bounds(self, session):
        src = from_numpy(session, np.arange(4.0), "(:)")
        with pytest.raises(IndexError):
            gather(src, np.array([10]))

    def test_scatter_out_of_bounds(self, session):
        dest = zeros(session, (4,), "(:)")
        vals = from_numpy(session, np.ones(1), "(:)")
        with pytest.raises(IndexError):
            scatter(dest, np.array([9]), vals)


class TestNumericalDegeneracy:
    def test_lu_zero_matrix(self, session):
        from repro.linalg.lu import lu_factor

        M = DistArray(
            np.zeros((1, 4, 4)), parse_layout("(:,:,:)", (1, 4, 4)), session
        )
        with pytest.raises(np.linalg.LinAlgError):
            lu_factor(M)

    def test_qr_zero_column_handled(self, session):
        """A zero column yields tau = 0 but the factorization finishes."""
        from repro.linalg.qr import qr_factor

        M = np.ones((6, 3))
        M[:, 1] = 0.0
        A = DistArray(M, parse_layout("(:,:)", (6, 3)), session)
        fact = qr_factor(A)
        assert fact.tau.shape == (3,)

    def test_cg_zero_rhs_converges_immediately(self, session):
        from repro.linalg.conj_grad import cg_tridiagonal

        f = DistArray(np.zeros(32), parse_layout("(:)", (32,)), session)
        res = cg_tridiagonal(session, f)
        assert res.iterations == 0
        assert np.allclose(res.x.np, 0.0)

    def test_pcr_weak_diagonal_still_consistent(self, session):
        """PCR on a barely-dominant system still matches the dense
        reference (accuracy, not stability, is the contract)."""
        from repro.linalg.pcr import make_systems, pcr_solve, reference_solve

        a, b, c, f = make_systems(session, n=16, seed=4)
        b.data[...] = 2.05  # |b| slightly > |a| + |c|
        x = pcr_solve(a, b, c, f)
        ref = reference_solve(a.np, b.np, c.np, f.np)
        assert np.allclose(x.np, ref, atol=1e-6)


class TestBenchmarkParameterValidation:
    def test_nbody_bad_variant(self, session):
        with pytest.raises(ValueError):
            run_benchmark("n-body", session, n=8, variant="nope")

    def test_matvec_bad_variant(self, session):
        with pytest.raises(ValueError):
            run_benchmark("matrix-vector", session, variant=99)

    def test_fft_non_power_of_two(self, session):
        with pytest.raises(ValueError):
            run_benchmark("fft", session, n=100)

    def test_jacobi_odd_size(self, session):
        with pytest.raises(ValueError):
            run_benchmark("jacobi", session, n=7)

    def test_unknown_kwarg_rejected(self, session):
        with pytest.raises(TypeError):
            run_benchmark("gmo", session, bogus_param=1)


class TestRecorderMisuse:
    def test_report_on_empty_session(self, session):
        from repro.metrics.access import LocalAccess
        from repro.metrics.report import PerfReport

        rep = PerfReport.from_recorder(
            "empty", "basic", session.recorder,
            problem_size=1, local_access=LocalAccess.NA,
        )
        assert rep.flop_count == 0
        assert rep.busy_time == 0.0

    def test_negative_region_iterations(self, session):
        with pytest.raises(ValueError):
            with session.region("bad", iterations=0):
                pass
