"""Stdlib HTTP client for the run server.

:class:`ServeClient` is what ``repro submit`` / ``repro watch`` and the
test-suite drive the server with — one short-lived
``http.client.HTTPConnection`` per call (the server closes connections
after each response), plus a streaming reader for ``/events``.

Backpressure is part of the protocol, so it is part of the client: a
429 raises :class:`ServeError` carrying the server's ``Retry-After``,
and :meth:`ServeClient.submit` can honor it automatically
(``busy_retries``) so a fleet of clients self-paces against a bounded
queue instead of failing.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, Optional, Union
from urllib.parse import quote

from repro.engine.jobs import RunRequest


class ServeError(RuntimeError):
    """A non-2xx answer from the server."""

    def __init__(
        self,
        message: str,
        *,
        status: int = 0,
        retry_after: Optional[float] = None,
        body: Optional[Dict] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        #: seconds the server asked us to back off (429 responses)
        self.retry_after = retry_after
        self.body = body or {}

    @property
    def busy(self) -> bool:
        """Whether this is retryable backpressure, not a hard error."""
        return self.status == 429


class ServeClient:
    """Minimal blocking client of one ``repro serve`` instance."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        client_id: Optional[str] = None,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.client_id = client_id
        self.timeout = timeout

    # -- transport ------------------------------------------------------
    def _headers(self) -> Dict[str, str]:
        headers = {"Accept": "application/json"}
        if self.client_id:
            headers["X-Client-Id"] = self.client_id
        return headers

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict] = None,
        *,
        timeout: Optional[float] = None,
    ) -> Dict:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            headers = self._headers()
            encoded = None
            if body is not None:
                encoded = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=encoded, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except json.JSONDecodeError:
                payload = {"error": raw.decode("utf-8", "replace")[:200]}
            if response.status >= 400:
                retry_after = response.headers.get("Retry-After")
                raise ServeError(
                    payload.get("error", f"HTTP {response.status}"),
                    status=response.status,
                    retry_after=(
                        float(retry_after) if retry_after is not None else None
                    ),
                    body=payload,
                )
            return payload
        finally:
            conn.close()

    # -- endpoints ------------------------------------------------------
    def health(self) -> Dict:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def stats(self) -> Dict:
        """``GET /stats`` — scheduler counters and queue state."""
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """``GET /metrics`` — raw Prometheus text exposition.

        Unlike the JSON endpoints this returns the body verbatim;
        feed it to :func:`repro.obs.expo.parse_exposition`.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", "/metrics", headers=self._headers())
            response = conn.getresponse()
            raw = response.read()
            if response.status != 200:
                raise ServeError(
                    f"HTTP {response.status} on /metrics: "
                    f"{raw.decode('utf-8', 'replace')[:200]}",
                    status=response.status,
                )
            return raw.decode("utf-8")
        finally:
            conn.close()

    def submit(
        self,
        request: Union[RunRequest, Dict],
        *,
        wait: bool = True,
        timeout: Optional[float] = None,
        busy_retries: int = 0,
    ) -> Dict:
        """``POST /submit`` one run request; returns the job payload.

        ``request`` may be a :class:`RunRequest` or its dictionary
        form.  With ``wait`` (default) the call blocks until the job
        completes and the payload carries the canonical ``report``.
        ``busy_retries`` re-submits after a 429, sleeping the server's
        ``Retry-After`` between tries — the polite loop every load
        generator should run.
        """
        if isinstance(request, RunRequest):
            request = request.to_dict()
        body: Dict[str, object] = {"request": dict(request), "wait": wait}
        if timeout is not None:
            body["timeout"] = timeout
        attempts = 0
        while True:
            try:
                return self._request("POST", "/submit", body)
            except ServeError as exc:
                if not exc.busy or attempts >= busy_retries:
                    raise
                attempts += 1
                time.sleep(min(5.0, exc.retry_after or 0.05))

    def result(
        self,
        request_hash: str,
        *,
        wait: bool = False,
        timeout: Optional[float] = None,
    ) -> Dict:
        """``GET /result/<hash>`` — fetch a job by request hash."""
        path = f"/result/{quote(request_hash)}"
        params = []
        if wait:
            params.append("wait=1")
        if timeout is not None:
            params.append(f"timeout={timeout:g}")
        if params:
            path += "?" + "&".join(params)
        return self._request("GET", path)

    def watch(
        self,
        *,
        count: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Iterator[Dict]:
        """``GET /events`` — yield live events as they are emitted.

        A long-lived generator over the ndjson stream; ends when the
        server shuts down, the connection drops, or ``count`` events
        have arrived.
        """
        path = "/events" if count is None else f"/events?count={count}"
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            conn.request("GET", path, headers=self._headers())
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                raise ServeError(
                    f"HTTP {response.status} on /events: "
                    f"{raw.decode('utf-8', 'replace')[:200]}",
                    status=response.status,
                )
            while True:
                try:
                    line = response.readline()
                except (TimeoutError, OSError):
                    # no event within the socket timeout (or the server
                    # went away): the stream is over for this watcher
                    return
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    def shutdown(self) -> Dict:
        """``POST /shutdown`` — ask the server to stop."""
        return self._request("POST", "/shutdown")


__all__ = ["ServeClient", "ServeError"]
