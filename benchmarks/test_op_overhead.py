"""Per-operation dispatch cost of the instrumented array layer.

These microbenchmarks isolate the *overhead* each simulated operation
adds on top of the raw numpy work: operator dispatch in
``DistArray._binary``, fused-kernel dispatch in :mod:`repro.array.fused`,
aggregate vs trace-mode comm accounting, and the memoized network/layout
cost models.  Compare pairs (operator expression vs fused call, fast vs
trace session) to read the fast path's effect directly; absolute times
also feed the CI artifact uploaded by the ``perf-fastpath`` job.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_op_overhead.py

(see docs/PERF.md for how to interpret the numbers).
"""

import numpy as np
import pytest

from repro.array import axpy, from_numpy, stencil_combine
from repro.comm.primitives import cshift
from repro.layout.spec import parse_layout
from repro.metrics.patterns import CommPattern
from repro.sessions import perf_session, trace_session

N = 1 << 14


@pytest.fixture
def triple():
    session = perf_session("cm5", 32)
    x = from_numpy(session, np.arange(float(N)), "(:)")
    y = from_numpy(session, np.ones(N), "(:)")
    z = from_numpy(session, np.full(N, 2.0), "(:)")
    return x, y, z


def test_operator_expression_axpy(benchmark, triple):
    """Baseline: a*x + y via DistArray operators (two temporaries)."""
    x, y, _ = triple
    out = benchmark(lambda: 3.0 * x + y)
    assert out.size == N


def test_fused_axpy(benchmark, triple):
    """Same charge sequence through the fused kernel (one temporary)."""
    x, y, _ = triple
    out = benchmark(lambda: axpy(3.0, x, y))
    assert out.size == N


def test_fused_axpy_out(benchmark, triple):
    """Allocation-free: axpy into a preallocated destination."""
    x, y, z = triple
    out = benchmark(lambda: axpy(3.0, x, y, out=z))
    assert out is z


def test_operator_stencil_combine(benchmark, triple):
    """Baseline: uc + s*(um - 2*uc + up) via operators."""
    x, y, z = triple
    out = benchmark(lambda: x + 0.25 * (y - 2.0 * x + z))
    assert out.size == N


def test_fused_stencil_combine(benchmark, triple):
    x, y, z = triple
    out = benchmark(lambda: stencil_combine(x, y, z, 0.25))
    assert out.size == N


def test_comm_accounting_fast(benchmark):
    """Aggregate-only accounting: O(1) state per (pattern, rank, detail)."""

    def run():
        session = perf_session("cm5", 32)
        for _ in range(1000):
            session.record_comm(
                CommPattern.CSHIFT, bytes_network=4096, bytes_local=4096
            )
        return session.recorder.root.comm_count

    assert benchmark(run) == 1000


def test_comm_accounting_trace(benchmark):
    """Trace mode: one frozen CommEvent appended per collective."""

    def run():
        session = trace_session("cm5", 32)
        for _ in range(1000):
            session.record_comm(
                CommPattern.CSHIFT, bytes_network=4096, bytes_local=4096
            )
        return len(session.recorder.root.comm_events)

    assert benchmark(run) == 1000


def test_comm_busy_property_is_o1(benchmark):
    """Reading comm_busy must not re-walk per-event state."""
    session = perf_session("cm5", 32)
    for _ in range(10_000):
        session.record_comm(CommPattern.CSHIFT, bytes_network=64)

    total = benchmark(lambda: session.recorder.root.comm_busy)
    assert total > 0.0


def test_cshift_dispatch(benchmark):
    """End-to-end per-op cost of one instrumented collective."""
    session = perf_session("cm5", 32)
    x = from_numpy(session, np.arange(float(N)), "(:)")
    out = benchmark(lambda: cshift(x, 1))
    assert out.size == N


def test_parse_layout_memoized(benchmark):
    """Repeated (spec, shape) parses are served from the cache."""
    out = benchmark(lambda: parse_layout("(:serial,:,:)", (8, 64, 64)))
    assert out.shape == (8, 64, 64)


def test_network_cost_memoized(benchmark):
    """Identical (pattern, bytes, nodes) tuples skip re-pricing."""
    session = perf_session("cm5", 32)
    network = session.machine.network

    def run():
        total = 0.0
        for _ in range(1000):
            total += network.cost(
                CommPattern.CSHIFT, bytes_network=4096, nodes=session.nodes
            ).busy
        return total

    assert benchmark(run) > 0.0
