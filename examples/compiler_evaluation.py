#!/usr/bin/env python
"""The suite's intended use: evaluating data-parallel environments.

"The goal in developing the DPF benchmark suite was to produce a means
for evaluating such high performance software suites" (paper §1.1).
Here we compare three environments on a representative subset:

* a CM-5 partition with *basic* compiler-generated code,
* the same CM-5 with *CMSSL*-quality library code,
* a commodity cluster (fast nodes, thin network) with basic code.

The per-benchmark busy/elapsed times show where each environment wins
and by how much: library code recovers node performance on the CM-5,
and the (much newer) cluster's advantage is largest on
compute-dominated codes and narrows on latency-sensitive,
communication-rich ones — the suite separates the two effects.
"""

from repro import VersionTier, perf_session
from repro.suite import run_suite
from repro.suite.tables import format_table

SUBSET = {
    "diff-3d": {"nx": 16, "steps": 4},
    "ellip-2d": {"nx": 16},
    "fft": {"n": 1024},
    "matrix-vector": {"n": 96, "repeats": 2},
    "transpose": {"n": 128, "repeats": 3},
    "qcd-kernel": {"nx": 4, "iterations": 2},
    "pic-gather-scatter": {"nx": 8, "n_p": 128, "steps": 1},
}

ENVIRONMENTS = {
    "CM-5/32 basic": lambda: perf_session("cm5", 32, tier=VersionTier.BASIC),
    "CM-5/32 cmssl": lambda: perf_session("cm5", 32, tier=VersionTier.CMSSL),
    "cluster/16 basic": lambda: perf_session(
        "cluster", 16, tier=VersionTier.BASIC
    ),
}


def main() -> None:
    all_reports = {
        env: run_suite(factory, names=SUBSET, params=SUBSET)
        for env, factory in ENVIRONMENTS.items()
    }
    rows = []
    for name in SUBSET:
        cells = [name]
        for env in ENVIRONMENTS:
            rep = all_reports[env][name]
            cells.append(f"{rep.elapsed_time * 1e3:.3f}")
        best_env = min(
            ENVIRONMENTS, key=lambda e: all_reports[e][name].elapsed_time
        )
        cells.append(best_env)
        rows.append(cells)
    print("elapsed time (ms) per environment\n")
    print(
        format_table(
            ["benchmark", *ENVIRONMENTS.keys(), "winner"], rows
        )
    )
    print()
    # Arithmetic efficiencies on the CM-5, basic vs cmssl.
    rows = []
    for name in SUBSET:
        basic = all_reports["CM-5/32 basic"][name]
        cmssl = all_reports["CM-5/32 cmssl"][name]
        if basic.flop_count == 0:
            continue
        rows.append(
            [
                name,
                f"{100 * basic.arithmetic_efficiency:.2f}%",
                f"{100 * cmssl.arithmetic_efficiency:.2f}%",
            ]
        )
    print("arithmetic efficiency (busy rate / peak), CM-5/32\n")
    print(format_table(["benchmark", "basic", "cmssl"], rows))


if __name__ == "__main__":
    main()
