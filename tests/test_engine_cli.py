"""CLI coverage of the execution engine.

``suite``/``tables`` engine flags (--jobs, --cache-dir, --store,
--retries, --trace), the ``engine runs/history/diff`` inspection
commands, and the fixed-node-preset ``--nodes`` conflict check.
"""

import json

import pytest

from repro.cli import main
from repro.engine import RunStore
from repro.engine.executor import ENV_INJECT_FAIL


@pytest.fixture
def stored_suite(tmp_path, capsys):
    """Run the suite twice against one cache/store; return paths."""
    store = tmp_path / "runs.jsonl"
    cache = tmp_path / "cache"
    argv = [
        "suite", "--store", str(store), "--cache-dir", str(cache),
    ]
    assert main(argv) == 0
    assert main(argv) == 0
    capsys.readouterr()
    return store, cache


class TestSuiteFlags:
    def test_suite_reports_engine_summary(self, tmp_path, capsys):
        store = tmp_path / "runs.jsonl"
        assert main(["suite", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "Status" in out
        assert "engine: 32 jobs" in out
        assert "ok=32" in out
        assert len(RunStore(store).records()) == 32

    def test_second_run_all_cached(self, stored_suite, capsys):
        store, cache = stored_suite
        assert main(
            ["suite", "--store", str(store), "--cache-dir", str(cache)]
        ) == 0
        out = capsys.readouterr().out
        assert "cached=32" in out
        assert "ok=0" in out

    def test_cached_run_prints_identical_table(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["suite", "--cache-dir", str(cache)]) == 0
        fresh = capsys.readouterr().out
        assert main(["suite", "--cache-dir", str(cache)]) == 0
        cached = capsys.readouterr().out

        def metric_rows(text):
            # Drop the trailing status cell and the engine summary line;
            # everything else (the numbers) must match exactly.
            return [
                line.split()[:-1]
                for line in text.splitlines()
                if line and not line.startswith("engine:")
            ]

        assert metric_rows(fresh) == metric_rows(cached)

    def test_failed_job_sets_exit_code(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv(ENV_INJECT_FAIL, "fft")
        assert main(["suite"]) == 1
        out = capsys.readouterr().out
        assert "failed=1" in out and "ok=31" in out
        assert "InjectedFailure" in out

    def test_trace_written(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["suite", "--trace", str(trace)]) == 0
        events = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        kinds = {e["kind"] for e in events}
        assert {"run_started", "job_finished", "run_finished"} <= kinds

    def test_tables_accept_engine_flags(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        argv = ["tables", "4", "--jobs", "2", "--cache-dir", str(cache)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "matrix-vector" in first
        assert first == second  # cached rerun regenerates the same table


class TestFixedNodePresets:
    def test_workstation_conflicting_nodes_rejected(self, capsys):
        with pytest.raises(SystemExit, match="fixed at 1 node"):
            main(["run", "fft", "--machine", "workstation", "--nodes", "8",
                  "--param", "n=64"])

    def test_workstation_explicit_matching_nodes_ok(self, capsys):
        assert main(["run", "fft", "--machine", "workstation", "--nodes",
                     "1", "--param", "n=64"]) == 0
        assert "workstation" in capsys.readouterr().out.lower()

    def test_workstation_default_nodes_ok(self, capsys):
        assert main(["run", "fft", "--machine", "workstation",
                     "--param", "n=64"]) == 0

    def test_node_sweep_on_workstation_rejected(self, capsys):
        with pytest.raises(SystemExit, match="cannot sweep nodes"):
            main(["sweep", "fft", "--machine", "workstation",
                  "--over", "nodes", "--values", "1,2",
                  "--param", "n=64"])


class TestEngineInspection:
    def test_runs_lists_both_invocations(self, stored_suite, capsys):
        store, _ = stored_suite
        assert main(["engine", "runs", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "ok=32" in out
        assert "cached=32" in out

    def test_runs_empty_store(self, tmp_path, capsys):
        assert main(
            ["engine", "runs", "--store", str(tmp_path / "none.jsonl")]
        ) == 0
        assert "no runs stored" in capsys.readouterr().out

    def test_history_filters_by_benchmark(self, stored_suite, capsys):
        store, _ = stored_suite
        assert main(
            ["engine", "history", "--store", str(store),
             "--benchmark", "fft", "--limit", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "fft" in out and "lu" not in out
        assert "cached" in out

    def test_diff_cached_run_is_identical(self, stored_suite, capsys):
        store, _ = stored_suite
        run_a, run_b = RunStore(store).run_ids()
        assert main(
            ["engine", "diff", run_a, run_b, "--store", str(store)]
        ) == 0
        out = capsys.readouterr().out
        assert "32 shared jobs, 32 with identical reports" in out

    def test_diff_unknown_run_exits_cleanly(self, stored_suite, capsys):
        store, _ = stored_suite
        with pytest.raises(SystemExit, match="no run"):
            main(["engine", "diff", "zzz", "zzz", "--store", str(store)])


class TestEngineStatsCommand:
    def test_stats_reports_scheduler_metrics(self, stored_suite, capsys):
        store, _ = stored_suite
        assert main(["engine", "stats", "latest", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "32/32 hits (100.0%)" in out  # the second run was all-cached
        assert "queue wait" in out
        assert "retries" in out and "timeouts" in out
        assert "utilization" in out

    def test_stats_defaults_to_latest(self, stored_suite, capsys):
        store, _ = stored_suite
        assert main(["engine", "stats", "--store", str(store)]) == 0
        run_b = RunStore(store).run_ids()[-1]
        assert run_b in capsys.readouterr().out

    def test_stats_first_run_by_index(self, stored_suite, capsys):
        store, _ = stored_suite
        assert main(["engine", "stats", "@0", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "0/32 hits (0.0%)" in out  # the first run was all-fresh

    def test_stats_json_output(self, stored_suite, capsys):
        store, _ = stored_suite
        assert main(
            ["engine", "stats", "latest", "--json", "--store", str(store)]
        ) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["n_jobs"] == 32
        assert record["cache_hit_rate"] == 1.0
        assert record["throughput_jobs_per_s"] > 0
        assert len(record["jobs"]) == 32

    def test_stats_without_sidecar_recomputes(self, stored_suite, capsys):
        """Pre-stats stores (no sidecar) still get scheduler numbers."""
        import shutil

        store, _ = stored_suite
        shutil.rmtree(RunStore(store).stats_dir)
        assert main(["engine", "stats", "latest", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "workers ?" in out  # worker count unrecoverable
        assert "throughput" in out

    def test_stats_unknown_run_exits_cleanly(self, stored_suite):
        store, _ = stored_suite
        with pytest.raises(SystemExit, match="no run"):
            main(["engine", "stats", "zzz", "--store", str(store)])


class TestEngineCheckCommand:
    def test_identical_rerun_passes(self, stored_suite, capsys):
        """Acceptance: engine check exits 0 on an identical rerun."""
        store, _ = stored_suite
        assert main(
            ["engine", "check", "@-1", "--baseline", "@0",
             "--tolerance", "5", "--store", str(store)]
        ) == 0
        out = capsys.readouterr().out
        assert "OK: no regression" in out
        assert "128 metric(s)" in out  # 32 benchmarks x 4 metrics

    def test_regression_beyond_tolerance_fails(self, stored_suite, capsys,
                                               tmp_path):
        """Acceptance: a stored metric drifting past --tolerance gates."""
        store, _ = stored_suite
        sidecar = RunStore(store).read_stats("@0")
        # Doctor the baseline: pretend fft used to be twice as fast.
        sidecar["benchmarks"]["fft"]["busy_time_s"] /= 2
        sidecar["benchmarks"]["fft"]["busy_floprate_mflops"] *= 2
        baseline = tmp_path / "BENCH_baseline.json"
        baseline.write_text(json.dumps(sidecar))
        assert main(
            ["engine", "check", "latest", "--baseline", str(baseline),
             "--tolerance", "5", "--store", str(store)]
        ) == 1
        out = capsys.readouterr().out
        assert out.count("REGRESSED") == 2  # time up, rate down
        assert "FAIL: 2 regression(s)" in out

    def test_huge_tolerance_forgives(self, stored_suite, capsys, tmp_path):
        store, _ = stored_suite
        sidecar = RunStore(store).read_stats("@0")
        sidecar["benchmarks"]["fft"]["busy_time_s"] *= 0.9
        baseline = tmp_path / "BENCH_baseline.json"
        baseline.write_text(json.dumps(sidecar))
        assert main(
            ["engine", "check", "latest", "--baseline", str(baseline),
             "--tolerance", "50", "--store", str(store)]
        ) == 0

    def test_bench_out_writes_trajectory_point(self, stored_suite, capsys,
                                               tmp_path):
        store, _ = stored_suite
        out_path = tmp_path / "BENCH_engine.json"
        assert main(
            ["engine", "check", "@-1", "--baseline", "@0",
             "--store", str(store), "--bench-out", str(out_path)]
        ) == 0
        point = json.loads(out_path.read_text())
        assert point["kind"] == "bench"
        assert len(point["benchmarks"]) == 32
        assert point["check"]["ok"] is True
        assert point["check"]["tolerance_pct"] == 5.0
        # The emitted point is accepted back as a --baseline file.
        assert main(
            ["engine", "check", "@-1", "--baseline", str(out_path),
             "--store", str(store)]
        ) == 0


class TestGateThroughput:
    def test_store_baseline_gates_on_run_throughput(self, stored_suite,
                                                    capsys):
        """Identical reruns pass a generous throughput floor."""
        store, _ = stored_suite
        assert main(
            ["engine", "check", "@-1", "--baseline", "@0",
             "--store", str(store), "--gate-throughput", "99"]
        ) == 0
        out = capsys.readouterr().out
        assert "throughput:" in out
        assert ": ok" in out

    def test_regressed_throughput_fails_gate(self, stored_suite, capsys,
                                             tmp_path):
        """A baseline file claiming 100x the rate trips the gate."""
        store, _ = stored_suite
        sidecar = RunStore(store).read_stats("@0")
        doc = {
            "benchmarks": sidecar["benchmarks"],
            "engine": {"throughput_jobs_per_s": 1e9},
        }
        baseline = tmp_path / "BENCH_fast.json"
        baseline.write_text(json.dumps(doc))
        out_path = tmp_path / "BENCH_point.json"
        assert main(
            ["engine", "check", "latest", "--baseline", str(baseline),
             "--store", str(store), "--gate-throughput", "10",
             "--bench-out", str(out_path)]
        ) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        point = json.loads(out_path.read_text())
        assert point["check"]["ok"] is True  # metrics fine, speed gated
        assert point["check"]["throughput"]["ok"] is False
        assert point["check"]["throughput"]["baseline_jobs_per_s"] == 1e9

    def test_baseline_without_throughput_is_an_error(self, stored_suite,
                                                     tmp_path):
        store, _ = stored_suite
        sidecar = RunStore(store).read_stats("@0")
        baseline = tmp_path / "BENCH_no_engine.json"
        baseline.write_text(json.dumps({"benchmarks": sidecar["benchmarks"]}))
        with pytest.raises(SystemExit, match="no\\s+engine throughput"):
            main(
                ["engine", "check", "latest", "--baseline", str(baseline),
                 "--store", str(store), "--gate-throughput", "10"]
            )

    def test_no_flag_no_gate(self, stored_suite, capsys):
        """Without --gate-throughput the check output is unchanged."""
        store, _ = stored_suite
        assert main(
            ["engine", "check", "@-1", "--baseline", "@0",
             "--store", str(store)]
        ) == 0
        assert "throughput:" not in capsys.readouterr().out


class TestCachePruneFlag:
    def test_suite_cache_prune_drops_stale_buckets(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        stale = cache / ("0" * 16)
        stale.mkdir(parents=True)
        (stale / "old.json").write_text("{}")
        assert main(
            ["suite", "--cache-dir", str(cache), "--cache-prune"]
        ) == 0
        assert not stale.exists()
        # The real run's entries survived the prune.
        buckets = [p for p in cache.iterdir() if p.is_dir()]
        assert len(buckets) == 1
        assert len(list(buckets[0].glob("*.json"))) == 32
