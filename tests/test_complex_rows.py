"""Tests for the complex-arithmetic rows of Table 4.

Table 4 gives separate FLOP formulas for complex data: matrix-vector
``8 n m i`` (vs ``2 n m i`` real), fft counts in complex arithmetic
throughout.  The DPF convention decomposes complex ops into real ones
(add = 2, mul = 6), and these tests pin the resulting counts.
"""

import numpy as np
import pytest

from repro import Session, cm5
from repro.array import from_numpy
from repro.comm.primitives import reduce_array
from repro.linalg.matvec import make_operands, matvec


class TestComplexMatvec:
    def test_flops_match_paper_8nm(self, session):
        """Table 4: c,z matvec row is 8 n m (6nm muls + 2(n-1)m adds)."""
        n = m = 32
        A, x = make_operands(session, 1, n=n, m=m, dtype=np.complex128)
        before = session.recorder.total_flops
        matvec(A, x)
        charged = session.recorder.total_flops - before
        assert charged == 6 * n * m + 2 * (n - 1) * m
        assert charged == pytest.approx(8 * n * m, rel=0.07)

    def test_complex_result_correct(self, session):
        A, x = make_operands(session, 1, n=12, m=10, dtype=np.complex128, seed=3)
        y = matvec(A, x)
        assert np.allclose(y.np, A.np @ x.np)

    def test_complex_memory_doubles(self, session):
        make_operands(session, 1, n=16, m=16, dtype=np.complex128)
        z_bytes = session.recorder.memory.total_bytes
        s2 = Session(cm5(8))
        make_operands(s2, 1, n=16, m=16, dtype=np.float64)
        d_bytes = s2.recorder.memory.total_bytes
        assert z_bytes == 2 * d_bytes  # z is 16 bytes vs d's 8


class TestComplexReductions:
    def test_complex_sum_value(self, session):
        data = np.arange(6) * (1 + 2j)
        x = from_numpy(session, data, "(:)")
        assert reduce_array(x, "sum") == data.sum()

    def test_any_all_semantics(self, session):
        x = from_numpy(session, np.array([0.0, 1.0, 0.0]), "(:)")
        assert reduce_array(x.astype(bool), "any") == True  # noqa: E712
        assert reduce_array(x.astype(bool), "all") == False  # noqa: E712

    def test_logical_reductions_charge_no_flops(self, session):
        x = from_numpy(session, np.ones(64, dtype=bool), "(:)")
        before = session.recorder.total_flops
        reduce_array(x, "all")
        assert session.recorder.total_flops == before


class TestComplexElementwise:
    def test_complex_division_cost(self, session):
        x = from_numpy(session, np.ones(4, dtype=np.complex128), "(:)")
        before = session.recorder.total_flops
        _ = x / (1 + 1j)
        charged = session.recorder.total_flops - before
        # Complex division is far costlier than real (4/element).
        assert charged > 4 * 4

    def test_conj_involution(self, session):
        data = np.array([1 + 2j, -3 + 0.5j])
        x = from_numpy(session, data, "(:)")
        assert np.array_equal(x.conj().conj().np, data)

    def test_complex_abs_is_magnitude(self, session):
        x = from_numpy(session, np.array([3 + 4j]), "(:)")
        assert x.abs().np[0] == pytest.approx(5.0)


class TestMemoryTags:
    def test_mixed_tag_accounting(self, session):
        session.declare_memory("ints", (100,), np.int64)
        session.declare_memory("doubles", (100,), np.float64)
        session.declare_memory("complexes", (100,), np.complex128)
        tags = session.recorder.memory.by_tag()
        from repro.metrics.memory import TypeTag

        assert tags[TypeTag.INTEGER] == 400
        assert tags[TypeTag.DOUBLE] == 800
        assert tags[TypeTag.DOUBLE_COMPLEX] == 1600

    def test_report_exposes_tags(self, session_factory):
        from repro.suite import run_benchmark

        rep = run_benchmark("fft", session_factory(), n=64)
        from repro.metrics.memory import TypeTag

        assert TypeTag.DOUBLE_COMPLEX in rep.memory_by_tag
