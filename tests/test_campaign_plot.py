"""Roofline SVG plot tests: structure, determinism, golden file, CLI.

The renderer promises deterministic output for a given report document
(no timestamps, no dict-order dependence, fixed float formatting).
``tests/data/roofline_golden.svg`` pins the exact bytes for a small
synthetic document; regenerate it deliberately with::

    PYTHONPATH=src python -c "
    from tests.test_campaign_plot import GOLDEN_DOC
    from repro.campaign import render_roofline_svg
    open('tests/data/roofline_golden.svg', 'w').write(
        render_roofline_svg(GOLDEN_DOC))"
"""

import json
from pathlib import Path

import pytest

from repro.campaign import render_roofline_svg, validate_roofline_svg
from repro.cli import main

GOLDEN = Path(__file__).parent / "data" / "roofline_golden.svg"


def _point(benchmark, intensity, achieved, *, nodes=32, reconciled=True,
           network_bytes=1024, request_hash="deadbeef"):
    return {
        "benchmark": benchmark,
        "machine": "cm5",
        "nodes": nodes,
        "tier": "basic",
        "params": {},
        "request_hash": request_hash,
        "flop_count": 1000,
        "network_bytes": network_bytes,
        "flop_kinds": {},
        "busy_time_s": 0.001,
        "achieved_mflops": achieved,
        "peak_mflops": 4096.0,
        "network_bandwidth_bytes_s": 1.28e9,
        "intensity": intensity,
        "attainable_mflops": achieved,
        "bound": "communication" if intensity is not None else "compute",
        "reconciled": reconciled,
    }


GOLDEN_DOC = {
    "kind": "roofline",
    "schema": 1,
    "campaign": "golden",
    "n_points": 4,
    "reconciled": False,
    "benchmarks": {},
    "points": [
        _point("fft", 0.128, 26.8, request_hash="a1"),
        _point("fft", 0.5, 110.0, nodes=64, request_hash="a2"),
        _point("diff-3d", 2.0, 480.0, request_hash="b1",
               reconciled=False),
        # no network traffic: listed in the legend, not plotted
        _point("diff-3d", None, 51.0, network_bytes=0,
               request_hash="b2"),
    ],
}


class TestRenderer:
    def test_render_is_valid_and_counts_match(self):
        svg = render_roofline_svg(GOLDEN_DOC)
        summary = validate_roofline_svg(svg)
        assert summary["points"] == 3  # the no-traffic point is skipped
        assert summary["roofs"] >= 1
        assert summary["legend_entries"] >= 2

    def test_render_is_deterministic(self):
        assert render_roofline_svg(GOLDEN_DOC) == (
            render_roofline_svg(GOLDEN_DOC)
        )

    def test_golden_file(self):
        assert GOLDEN.is_file(), "golden plot missing; see module docstring"
        assert render_roofline_svg(GOLDEN_DOC) == GOLDEN.read_text()

    def test_empty_report_still_validates(self):
        doc = {
            "kind": "roofline", "schema": 1, "campaign": "empty",
            "n_points": 0, "reconciled": True, "benchmarks": {},
            "points": [],
        }
        svg = render_roofline_svg(doc)
        assert validate_roofline_svg(svg)["points"] == 0
        assert "no plottable points" in svg

    def test_rejects_non_roofline_documents(self):
        with pytest.raises(ValueError):
            render_roofline_svg({"kind": "scaling"})

    def test_title_and_labels_are_escaped(self):
        doc = dict(GOLDEN_DOC, campaign="a<b>&c")
        svg = render_roofline_svg(doc)
        validate_roofline_svg(svg)
        assert "a<b>&c" not in svg


class TestValidator:
    def test_rejects_non_xml(self):
        with pytest.raises(ValueError):
            validate_roofline_svg("this is not xml")

    def test_rejects_wrong_root(self):
        with pytest.raises(ValueError):
            validate_roofline_svg("<html></html>")

    def test_rejects_missing_groups(self):
        with pytest.raises(ValueError, match="missing group"):
            validate_roofline_svg(
                '<svg xmlns="http://www.w3.org/2000/svg" width="10" '
                'height="10"><g id="roofline-axes"/></svg>'
            )

    def test_rejects_escaped_points(self):
        svg = render_roofline_svg(GOLDEN_DOC).replace(
            'cx="', 'cx="9999', 1
        )
        with pytest.raises(ValueError, match="escapes the canvas"):
            validate_roofline_svg(svg)


class TestCLI:
    def test_campaign_report_plot(self, tmp_path, capsys):
        spec = {
            "schema": 1,
            "name": "plot-cli",
            "groups": [
                {"benchmarks": ["fft"], "nodes": [32],
                 "param_grid": {"n": [256]}},
            ],
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        root = str(tmp_path / "camp")
        assert main(["campaign", "run", str(spec_path), "--root", root]) == 0
        out_svg = tmp_path / "roof.svg"
        assert main(["campaign", "report", str(spec_path), "--root", root,
                     "--plot", str(out_svg)]) == 0
        assert "roofline plot written" in capsys.readouterr().out
        summary = validate_roofline_svg(out_svg.read_text())
        assert summary["points"] == 1
