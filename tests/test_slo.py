"""SLO module tests: spec validation, evaluation semantics, CLI gate.

Objectives evaluate against a parsed exposition snapshot.  The
important semantics pinned here: vacuous passes (a ratio over zero
traffic or an empty histogram cannot have violated its floor), hard
failure when a referenced metric is absent from the scrape, and the
conservative upper-bucket-bound quantile.
"""

import json

import pytest

from repro.cli import main
from repro.obs.expo import render_exposition
from repro.obs.slo import (
    SLOSpecError,
    evaluate_slos,
    load_slo_spec,
    validate_slo_spec,
)
from repro.obs.telemetry import MetricsRegistry


def _families():
    reg = MetricsRegistry()
    sub = reg.counter("serve_submissions_total", "s", labels=("outcome",))
    sub.labels(outcome="submitted").inc(10)
    sub.labels(outcome="coalesced").inc(4)
    lat = reg.histogram("submit_latency_seconds", "l")
    for v in (0.001, 0.002, 0.003, 0.4):
        lat.observe(v)
    reg.histogram("idle_latency_seconds", "empty histogram")
    # force the empty histogram family to exist in the snapshot
    reg.counter("restarts_total", "r").inc(0)
    return reg.collect()


def _spec(*objectives):
    return validate_slo_spec(
        {"schema": 1, "name": "t", "objectives": list(objectives)}
    )


class TestSpecValidation:
    def test_minimal_spec_loads_from_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(
            json.dumps(
                {
                    "schema": 1,
                    "name": "ci",
                    "objectives": [
                        {
                            "id": "a",
                            "metric": "m_total",
                            "op": "<=",
                            "threshold": 3,
                        }
                    ],
                }
            )
        )
        spec = load_slo_spec(path)
        assert spec["name"] == "ci"
        assert spec["objectives"][0].id == "a"

    @pytest.mark.parametrize(
        "bad",
        [
            {"schema": 2, "name": "x", "objectives": [{}]},
            {"schema": 1, "objectives": []},
            {"schema": 1, "objectives": [{"id": "", "op": "<=",
                                          "threshold": 1, "metric": "m"}]},
            {"schema": 1, "objectives": [{"id": "a", "op": "~",
                                          "threshold": 1, "metric": "m"}]},
            {"schema": 1, "objectives": [{"id": "a", "op": "<=",
                                          "metric": "m"}]},
            {"schema": 1, "objectives": [{"id": "a", "op": "<=",
                                          "threshold": 1, "metric": "m",
                                          "stat": "p42"}]},
            # duplicate ids
            {"schema": 1, "objectives": [
                {"id": "a", "op": "<=", "threshold": 1, "metric": "m"},
                {"id": "a", "op": "<=", "threshold": 2, "metric": "m"},
            ]},
            # metric and ratio are exclusive
            {"schema": 1, "objectives": [
                {"id": "a", "op": "<=", "threshold": 1, "metric": "m",
                 "ratio": {"num": {"metric": "x"}, "den": {"metric": "y"}}},
            ]},
            # ratio needs exactly num and den
            {"schema": 1, "objectives": [
                {"id": "a", "op": "<=", "threshold": 1,
                 "ratio": {"num": {"metric": "x"}}},
            ]},
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(SLOSpecError):
            validate_slo_spec(bad)


class TestEvaluation:
    def test_value_stat_with_labels(self):
        spec = _spec(
            {"id": "traffic", "metric": "serve_submissions_total",
             "labels": {"outcome": "submitted"}, "op": ">=",
             "threshold": 10}
        )
        report = evaluate_slos(spec, _families())
        assert report.ok
        assert report.results[0].observed == 10

    def test_histogram_stats_and_quantiles(self):
        spec = _spec(
            {"id": "count", "metric": "submit_latency_seconds",
             "stat": "count", "op": "==", "threshold": 4},
            {"id": "mean", "metric": "submit_latency_seconds",
             "stat": "mean", "op": "<=", "threshold": 0.2},
            {"id": "p50", "metric": "submit_latency_seconds",
             "stat": "p50", "op": "<=", "threshold": 0.0025},
            {"id": "p99", "metric": "submit_latency_seconds",
             "stat": "p99", "op": "<=", "threshold": 0.5},
        )
        report = evaluate_slos(spec, _families())
        assert report.ok, report.table()

    def test_failing_objective_flips_report(self):
        spec = _spec(
            {"id": "p99", "metric": "submit_latency_seconds",
             "stat": "p99", "op": "<=", "threshold": 0.01}
        )
        report = evaluate_slos(spec, _families())
        assert not report.ok
        assert "FAIL" in report.table()

    def test_ratio_objective(self):
        spec = _spec(
            {"id": "dedupe-floor", "op": ">=", "threshold": 0.25,
             "ratio": {
                 "num": {"metric": "serve_submissions_total",
                         "labels": {"outcome": "coalesced"}},
                 "den": {"metric": "serve_submissions_total",
                         "labels": {"outcome": "submitted"}},
             }}
        )
        report = evaluate_slos(spec, _families())
        assert report.ok
        assert report.results[0].observed == pytest.approx(0.4)

    def test_ratio_over_no_traffic_is_vacuously_ok(self):
        spec = _spec(
            {"id": "r", "op": ">=", "threshold": 0.5,
             "ratio": {
                 "num": {"metric": "serve_submissions_total",
                         "labels": {"outcome": "coalesced"}},
                 "den": {"metric": "serve_submissions_total",
                         "labels": {"outcome": "nonexistent"}},
             }}
        )
        result = evaluate_slos(spec, _families()).results[0]
        assert result.ok and result.observed is None
        assert "skipped" in result.note

    def test_empty_histogram_is_vacuously_ok(self):
        spec = _spec(
            {"id": "idle", "metric": "idle_latency_seconds",
             "stat": "p99", "op": "<=", "threshold": 0.1}
        )
        result = evaluate_slos(spec, _families()).results[0]
        assert result.ok and result.observed is None

    def test_absent_metric_fails_hard(self):
        spec = _spec(
            {"id": "gone", "metric": "no_such_metric_total",
             "op": "<=", "threshold": 1}
        )
        result = evaluate_slos(spec, _families()).results[0]
        assert not result.ok
        assert "absent" in result.note

    def test_stat_on_scalar_metric_fails(self):
        spec = _spec(
            {"id": "x", "metric": "restarts_total", "stat": "p99",
             "op": "<=", "threshold": 1}
        )
        result = evaluate_slos(spec, _families()).results[0]
        assert not result.ok


class TestCLIGate:
    def _write(self, tmp_path, ok: bool):
        scrape = tmp_path / "scrape.txt"
        scrape.write_text(render_exposition(_families()))
        spec = tmp_path / "slo.json"
        spec.write_text(
            json.dumps(
                {
                    "schema": 1,
                    "name": "gate",
                    "objectives": [
                        {
                            "id": "p99",
                            "metric": "submit_latency_seconds",
                            "stat": "p99",
                            "op": "<=",
                            "threshold": 0.5 if ok else 0.01,
                        }
                    ],
                }
            )
        )
        return spec, scrape

    def test_engine_check_slo_pass_and_fail(self, tmp_path, capsys):
        spec, scrape = self._write(tmp_path, ok=True)
        assert main(["engine", "check", "--slo", str(spec),
                     "--scrape", str(scrape)]) == 0
        assert "SLO report" in capsys.readouterr().out
        spec, scrape = self._write(tmp_path, ok=False)
        assert main(["engine", "check", "--slo", str(spec),
                     "--scrape", str(scrape)]) == 1

    def test_engine_check_slo_requires_scrape(self, tmp_path):
        spec, _ = self._write(tmp_path, ok=True)
        with pytest.raises(SystemExit):
            main(["engine", "check", "--slo", str(spec)])

    def test_engine_check_requires_baseline_or_slo(self):
        with pytest.raises(SystemExit):
            main(["engine", "check"])

    def test_telemetry_cli_slo_gate(self, tmp_path, capsys):
        spec, scrape = self._write(tmp_path, ok=True)
        assert main(["telemetry", "--file", str(scrape),
                     "--slo", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "metric families" in out and "SLO report" in out
