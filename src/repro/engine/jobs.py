"""Run requests: the engine's unit of work.

A :class:`RunRequest` names everything needed to reproduce one
benchmark execution — benchmark, machine preset, node count, code
version tier, parameter overrides and an optional seed — in a purely
declarative, picklable, hashable form.  Its canonical JSON encoding
gives every request a stable content hash, which keys the result cache
and identifies the run in the store and trace.

The declarative form (preset *names*, not machine objects) is what lets
the executor ship requests to worker processes and rebuild identical
sessions on the other side.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.machine.network import NetworkModel
from repro.machine.presets import resolve_machine
from repro.machine.session import Session
from repro.versions import VersionTier

#: JSON-representable scalar types allowed as parameter values.
PARAM_SCALARS = (str, int, float, bool, type(None))

#: NetworkModel parameters a request may override (bandwidths,
#: latencies, topology factors) — campaign network axes sweep these.
NETWORK_FIELDS = frozenset(f.name for f in fields(NetworkModel))


def _freeze_network(overrides: Mapping[str, float]) -> Tuple[Tuple[str, float], ...]:
    """Normalize network overrides to a sorted, validated tuple."""
    items = []
    for key in sorted(overrides):
        if key not in NETWORK_FIELDS:
            known = ", ".join(sorted(NETWORK_FIELDS))
            raise ValueError(
                f"unknown network parameter {key!r}; known: {known}"
            )
        value = overrides[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError(
                f"network parameter {key!r} must be a number, got {value!r}"
            )
        items.append((str(key), float(value)))
    return tuple(items)


def _freeze_params(params: Mapping[str, object]) -> Tuple[Tuple[str, object], ...]:
    """Normalize a parameter mapping to a sorted, hashable tuple."""
    items = []
    for key in sorted(params):
        value = params[key]
        if not isinstance(value, PARAM_SCALARS):
            raise TypeError(
                f"parameter {key!r} has non-scalar value {value!r}; "
                "run requests carry only JSON scalars"
            )
        items.append((str(key), value))
    return tuple(items)


@dataclass(frozen=True)
class RunRequest:
    """One reproducible benchmark execution, content-addressable.

    ``params`` may be given as a mapping; it is normalized to a sorted
    tuple of pairs so that equal requests hash equally regardless of
    insertion order.  ``seed`` participates in the content hash and is
    forwarded to the benchmark as a ``seed=`` parameter when set (only
    benchmarks that accept one should be given a seed).
    """

    benchmark: str
    machine: str = "cm5"
    nodes: int = 32
    tier: str = "basic"
    params: Tuple[Tuple[str, object], ...] = ()
    seed: Optional[int] = None
    #: machine-network parameter overrides (e.g. halved ``bw_link``);
    #: empty for the preset's stock interconnect
    network: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        params = self.params
        if isinstance(params, Mapping):
            frozen = _freeze_params(params)
        else:
            frozen = _freeze_params(dict(params))
        network = self.network
        if isinstance(network, Mapping):
            frozen_net = _freeze_network(network)
        else:
            frozen_net = _freeze_network(dict(network))
        object.__setattr__(self, "network", frozen_net)
        # Canonicalize the seed: ``RunRequest(seed=5)`` and
        # ``RunRequest(params={"seed": 5})`` execute identically, so they
        # must hash identically too — a params-spelled seed is merged into
        # the ``seed`` field (and a conflicting pair is an error) so cache
        # keys and plan dedup never alias.
        param_seeds = [v for k, v in frozen if k == "seed"]
        if param_seeds:
            (param_seed,) = param_seeds
            if param_seed is not None:
                if self.seed is not None and self.seed != param_seed:
                    raise ValueError(
                        f"conflicting seeds: seed={self.seed!r} vs "
                        f"params['seed']={param_seed!r}"
                    )
                object.__setattr__(self, "seed", param_seed)
            frozen = tuple((k, v) for k, v in frozen if k != "seed")
        object.__setattr__(self, "params", frozen)
        VersionTier(self.tier)  # validate eagerly, before any worker sees it
        # Content hash is computed lazily and cached: the engine hashes
        # every request several times (cache get/put, store, trace).
        object.__setattr__(self, "_content_hash", None)

    # -- views ----------------------------------------------------------
    @property
    def params_dict(self) -> Dict[str, object]:
        """Parameter overrides as a plain dictionary."""
        return dict(self.params)

    def describe(self) -> str:
        """Short human-readable label for progress/trace output."""
        net = "*" if self.network else ""
        return f"{self.benchmark} [{self.machine}{net}/{self.nodes} {self.tier}]"

    # -- canonical encoding ---------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dictionary (inverse of :meth:`from_dict`).

        ``network`` appears only when overrides are set: stock-network
        requests keep the exact encoding (and content hash) they had
        before the field existed, so caches and stores stay valid.
        """
        record: Dict[str, object] = {
            "benchmark": self.benchmark,
            "machine": self.machine,
            "nodes": self.nodes,
            "tier": self.tier,
            "params": {k: v for k, v in self.params},
            "seed": self.seed,
        }
        if self.network:
            record["network"] = {k: v for k, v in self.network}
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "RunRequest":
        """Rebuild a request from :meth:`to_dict` output."""
        return cls(
            benchmark=record["benchmark"],
            machine=record.get("machine", "cm5"),
            nodes=record.get("nodes", 32),
            tier=record.get("tier", "basic"),
            params=record.get("params", {}),
            seed=record.get("seed"),
            network=record.get("network", {}),
        )

    def canonical(self) -> str:
        """Deterministic JSON encoding (sorted keys, compact)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def content_hash(self) -> str:
        """SHA-256 of the canonical encoding; keys cache and store.

        Cached after the first computation — the request is frozen, so
        re-encoding the canonical JSON on every lookup is pure waste.
        """
        cached = self._content_hash
        if cached is None:
            cached = hashlib.sha256(
                self.canonical().encode("utf-8")
            ).hexdigest()
            object.__setattr__(self, "_content_hash", cached)
        return cached

    # -- execution ------------------------------------------------------
    def build_session(self) -> Session:
        """Construct a fresh session matching this request's spec.

        Network overrides derive a new frozen machine (and with it a
        fresh :class:`NetworkModel` whose per-instance cost memo starts
        empty) — cached stock presets are never mutated, so two
        requests differing only in overrides can never share priced
        costs.
        """
        machine = resolve_machine(self.machine, self.nodes)
        if self.network:
            machine = replace(
                machine,
                network=machine.network.with_overrides(**dict(self.network)),
            )
        return Session(machine, tier=VersionTier(self.tier))


def execute_request(
    request: RunRequest,
    session_factory: Optional[Callable[[], Session]] = None,
    *,
    observer: Optional[object] = None,
):
    """Run one request to a :class:`~repro.metrics.report.PerfReport`.

    ``session_factory`` overrides the request's declarative machine
    spec with a caller-built session (the in-process compatibility path
    used by :func:`repro.suite.runner.run_suite`); worker processes
    always build the session from the spec.

    ``observer`` (e.g. a :class:`repro.obs.SpanCollector`) is attached
    to the session's recorder before the benchmark runs.  Observers are
    read-only: the report is byte-identical with or without one.
    """
    from repro.suite.runner import run_benchmark

    session = session_factory() if session_factory is not None else (
        request.build_session()
    )
    if observer is not None:
        observer.attach(session)
    params = request.params_dict
    if request.seed is not None:
        params.setdefault("seed", request.seed)
    return run_benchmark(request.benchmark, session, **params)
