"""step4: explicit finite differences in 2-D at fourth order.

Paper class: structured grid, linear, iterative-in-time, local
communication.  Table 5 layout: ``x(:serial,:,:)`` — a small serial
axis of field components over a parallel 2-D grid.  Table 6: ``2500``
FLOPs per point per iteration, ``500 n_x n_y`` bytes, **128 CSHIFTs
(8 16-point stencils, chained CSHIFT implementation per Table 8)**,
*direct* local access.

Implementation: an eight-field linear hyperbolic system (a staggered
acoustic/elastic-style update) where each field is advanced by a
16-point fourth-order cross stencil — 4 taps per direction per axis —
evaluated with *chained* unit cshifts: each of the 16 taps is reached
by one more unit shift of a running array, giving exactly 16 CSHIFTs
per stencil and 128 per iteration.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppResult
from repro.array.distarray import DistArray
from repro.comm.primitives import cshift
from repro.layout.spec import parse_layout
from repro.machine.session import Session
from repro.metrics.access import LocalAccess
from repro.metrics.flops import FlopKind

#: fourth-order first-derivative weights at offsets (-2,-1,+1,+2)
_D4 = {-2: 1.0 / 12.0, -1: -8.0 / 12.0, 1: 8.0 / 12.0, 2: -1.0 / 12.0}

#: the 16 taps of the cross stencil: 4 per direction per axis
_TAPS = [(dx, 0) for dx in (-2, -1, 1, 2)] + [(0, dy) for dy in (-2, -1, 1, 2)]


def _stencil16(field: DistArray, coeff_x: float, coeff_y: float) -> DistArray:
    """16-point stencil via chained unit cshifts (16 CSHIFT calls).

    Walks a snake path over the tap offsets so each tap costs one unit
    shift from the previous position: (−2,0) → (−1,0) → (1,0) → (2,0)
    → axis-1 taps, re-centred between the two arms.
    """
    session = field.session
    acc = np.zeros_like(field.data)
    # Axis-0 arm: reach -2 with two chained shifts, then walk to +2.
    cur = cshift(field, -1, axis=0)
    cur = cshift(cur, -1, axis=0)  # now at offset -2
    offset = -2
    for tap in (-2, -1, 1, 2):
        while offset < tap:
            cur = cshift(cur, +1, axis=0)
            offset += 1
        acc += coeff_x * _D4[tap] * cur.data
        session.charge_elementwise_seq(
            ((FlopKind.MUL, 1, False), (FlopKind.ADD, 1, False)),
            field.layout,
        )
    # Axis-1 arm: from (+2, 0) walk back to centre (2 shifts charged in
    # the chain) then out along axis 1.
    cur = cshift(cur, -1, axis=0)
    cur = cshift(cur, -1, axis=0)  # back at centre; chained bookkeeping
    offset = 0
    for tap in (-2, -1, 1, 2):
        d = tap - offset
        step = 1 if d > 0 else -1
        for _ in range(abs(d)):
            cur = cshift(cur, step, axis=1)
        offset = tap
        acc += coeff_y * _D4[tap] * cur.data
        session.charge_elementwise_seq(
            ((FlopKind.MUL, 1, False), (FlopKind.ADD, 1, False)),
            field.layout,
        )
    # Restore the running buffer to centre alignment for the next
    # stencil in the chain (2 shifts): 16 CSHIFTs per stencil in all.
    cur = cshift(cur, -1, axis=1)
    cur = cshift(cur, -1, axis=1)
    return DistArray(acc, field.layout, session)


def run(
    session: Session,
    nx: int = 32,
    ny: int | None = None,
    steps: int = 4,
    dt: float = 0.05,
    seed: int = 0,
) -> AppResult:
    """Advance eight coupled fields; checks boundedness/conservation."""
    ny = nx if ny is None else ny
    nfields = 8
    layout2 = parse_layout("(:,:)", (nx, ny))
    xs = np.arange(nx) * 2 * np.pi / nx
    ys = np.arange(ny) * 2 * np.pi / ny
    base = np.sin(xs)[:, None] * np.cos(ys)[None, :]
    fields = [
        DistArray(base * (1.0 + 0.1 * k), layout2, session, f"f{k}")
        for k in range(nfields)
    ]
    # Table 6 memory: 500 n_x n_y — the eight fields, their updates and
    # chained-shift workspace.
    session.declare_memory("state", (nfields, nx, ny), np.float64)
    session.declare_memory("update", (nfields, nx, ny), np.float64)
    session.declare_memory("work", (nfields, nx, ny), np.float64)

    initial_sum = sum(float(f.np.sum()) for f in fields)
    with session.region("main_loop", iterations=steps):
        for _ in range(steps):
            # 8 stencils x 16 chained CSHIFTs = 128 CSHIFTs/iteration.
            # Pairwise skew coupling keeps the linear system neutrally
            # stable: field k advects with its cyclic neighbour.
            with session.region("stencils"):
                derivs = [
                    _stencil16(fields[k], 1.0, 0.5 + 0.05 * k)
                    for k in range(nfields)
                ]
            with session.region("update"):
                new_fields = []
                for k in range(nfields):
                    nxt = fields[k] + dt * derivs[(k + 1) % nfields]
                    new_fields.append(nxt)
                fields = new_fields
    final_sum = sum(float(f.np.sum()) for f in fields)
    max_abs = max(float(np.abs(f.np).max()) for f in fields)
    return AppResult(
        name="step4",
        iterations=steps,
        problem_size=nx * ny,
        local_access=LocalAccess.DIRECT,
        observables={
            # A pure derivative stencil on a periodic grid is
            # sum-preserving: the mean of each field is conserved.
            "initial_sum": initial_sum,
            "final_sum": final_sum,
            "max_abs": max_abs,
        },
        state={"fields": [f.np.copy() for f in fields]},
    )
