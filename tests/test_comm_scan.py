"""Tests for scans, segmented scans and copy-scans."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Session, cm5
from repro.array import from_numpy
from repro.comm.scan import scan, segmented_copy_scan, segmented_scan
from repro.metrics.patterns import CommPattern


class TestScan:
    def test_inclusive_sum(self, session):
        x = from_numpy(session, np.arange(5.0), "(:)")
        assert scan(x, "sum").np.tolist() == [0, 1, 3, 6, 10]

    def test_exclusive_sum(self, session):
        x = from_numpy(session, np.arange(5.0), "(:)")
        assert scan(x, "sum", inclusive=False).np.tolist() == [0, 0, 1, 3, 6]

    def test_max_scan(self, session):
        x = from_numpy(session, np.array([1.0, 3.0, 2.0, 5.0]), "(:)")
        assert scan(x, "max").np.tolist() == [1, 3, 3, 5]

    def test_min_scan(self, session):
        x = from_numpy(session, np.array([4.0, 2.0, 3.0]), "(:)")
        assert scan(x, "min").np.tolist() == [4, 2, 2]

    def test_prod_scan(self, session):
        x = from_numpy(session, np.array([1.0, 2.0, 3.0]), "(:)")
        assert scan(x, "prod").np.tolist() == [1, 2, 6]

    def test_axis_scan_2d(self, session):
        x = from_numpy(session, np.ones((3, 4)), "(:,:)")
        assert np.array_equal(scan(x, "sum", axis=1).np, np.cumsum(x.np, 1))

    def test_unknown_op(self, session):
        x = from_numpy(session, np.ones(2), "(:)")
        with pytest.raises(ValueError):
            scan(x, "mean")

    def test_records_scan_event(self, trace_session):
        session = trace_session
        x = from_numpy(session, np.ones(8), "(:)")
        scan(x, "sum")
        assert session.recorder.root.comm_events[-1].pattern is CommPattern.SCAN

    def test_charges_sequential_flops(self, session):
        x = from_numpy(session, np.ones(100), "(:)")
        before = session.recorder.total_flops
        scan(x, "sum")
        assert session.recorder.total_flops - before == 99

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_matches_cumsum(self, values):
        session = Session(cm5(4))
        arr = np.array(values)
        out = scan(from_numpy(session, arr, "(:)"), "sum")
        assert np.allclose(out.np, np.cumsum(arr))


def _reference_segmented(values, starts, op):
    out = np.empty_like(values)
    acc = None
    for i, v in enumerate(values):
        if starts[i] or i == 0 or acc is None:
            acc = v
        else:
            acc = acc + v if op == "sum" else (max(acc, v) if op == "max" else min(acc, v))
        out[i] = acc
    return out


class TestSegmentedScan:
    def test_simple_segments(self, session):
        x = from_numpy(session, np.ones(6), "(:)")
        starts = np.array([True, False, False, True, False, False])
        out = segmented_scan(x, starts, "sum")
        assert out.np.tolist() == [1, 2, 3, 1, 2, 3]

    def test_exclusive(self, session):
        x = from_numpy(session, np.ones(4), "(:)")
        starts = np.array([True, False, True, False])
        out = segmented_scan(x, starts, "sum", inclusive=False)
        assert out.np.tolist() == [0, 1, 0, 1]

    def test_single_segment_is_plain_scan(self, session):
        x = from_numpy(session, np.arange(5.0), "(:)")
        starts = np.zeros(5, dtype=bool)
        out = segmented_scan(x, starts, "sum")
        assert np.allclose(out.np, np.cumsum(x.np))

    def test_every_element_own_segment(self, session):
        x = from_numpy(session, np.arange(4.0), "(:)")
        out = segmented_scan(x, np.ones(4, dtype=bool), "sum")
        assert np.array_equal(out.np, x.np)

    def test_max_segmented(self, session):
        x = from_numpy(session, np.array([1.0, 5.0, 2.0, 7.0, 3.0]), "(:)")
        starts = np.array([True, False, False, True, False])
        out = segmented_scan(x, starts, "max")
        assert out.np.tolist() == [1, 5, 5, 7, 7]

    def test_2d_rejected(self, session):
        x = from_numpy(session, np.ones((2, 2)), "(:,:)")
        with pytest.raises(ValueError):
            segmented_scan(x, np.ones((2, 2), dtype=bool), "sum")

    def test_shape_mismatch_rejected(self, session):
        x = from_numpy(session, np.ones(4), "(:)")
        with pytest.raises(ValueError):
            segmented_scan(x, np.ones(3, dtype=bool), "sum")

    @given(
        values=st.lists(st.floats(-50, 50), min_size=1, max_size=50),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_reference(self, values, seed):
        session = Session(cm5(4))
        arr = np.array(values)
        rng = np.random.default_rng(seed)
        starts = rng.random(len(arr)) < 0.3
        out = segmented_scan(from_numpy(session, arr, "(:)"), starts, "sum")
        flags = starts.copy()
        flags[0] = True
        assert np.allclose(out.np, _reference_segmented(arr, flags, "sum"))


class TestSegmentedCopyScan:
    def test_propagates_head(self, session):
        x = from_numpy(session, np.array([5.0, 1.0, 2.0, 9.0, 4.0]), "(:)")
        starts = np.array([True, False, False, True, False])
        out = segmented_copy_scan(x, starts)
        assert out.np.tolist() == [5, 5, 5, 9, 9]

    def test_first_element_always_head(self, session):
        x = from_numpy(session, np.array([3.0, 1.0]), "(:)")
        out = segmented_copy_scan(x, np.zeros(2, dtype=bool))
        assert out.np.tolist() == [3, 3]

    def test_2d_rejected(self, session):
        x = from_numpy(session, np.ones((2, 2)), "(:,:)")
        with pytest.raises(ValueError):
            segmented_copy_scan(x, np.ones((2, 2), dtype=bool))
