"""Simulated data-parallel machine (DESIGN.md §2, substitution for the CM-5).

The paper's instance of DPF ran on a CM-5: nodes with four vector units
at 32 MFLOP/s peak each, a fat-tree data network, and separate control
network supporting broadcast/reduction/scan.  This package provides a
parameterized stand-in:

* :class:`MachineModel` — processor count, vector units, peak rates and
  a :class:`LocalModel` for node-local sustained performance;
* :class:`NetworkModel` — analytic per-pattern communication costs
  (latency + bandwidth terms for cshift, reduction, broadcast, AAPC,
  router traffic, scans, sorts, butterflies);
* :class:`Session` — binds a machine to a metrics recorder and charges
  simulated busy/elapsed time for compute and communication;
* :mod:`repro.machine.presets` — CM-5, CM-5E and generic-cluster
  configurations.
"""

from repro.machine.model import LocalModel, MachineModel
from repro.machine.network import NetworkCost, NetworkModel
from repro.machine.presets import cm5, cm5e, generic_cluster, workstation
from repro.machine.session import Session

__all__ = [
    "LocalModel",
    "MachineModel",
    "NetworkCost",
    "NetworkModel",
    "Session",
    "cm5",
    "cm5e",
    "generic_cluster",
    "workstation",
]
