"""fermion: quantum many-body computation for fermions on a 2-D lattice.

Paper class (§4, (9)): lattice-based Monte Carlo.  Table 5 layout:
``x(:, :serial, :serial)`` — one small dense matrix per lattice site,
the site axis parallel and the matrix axes serial.  Table 6 marks the
dominating computation simply "local matmul" with *indirect* local
access and **no interprocessor communication**: fermion is the second
of the two embarrassingly parallel codes.

The physics kernel is determinant Monte Carlo bookkeeping: each site
carries an equal-time Green's function matrix ``G`` which is updated
through products with local transfer matrices ``B`` (``G <- B G
B^{-1}``-style sweeps).  We implement the local-matmul sweep — per
iteration each site performs two ``n x n`` real matrix
multiplications through an indirection table (site-dependent operand
selection, the source of the *indirect* access label) — and verify
against direct ``numpy`` matmuls.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppResult
from repro.layout.spec import parse_layout
from repro.machine.session import Session
from repro.metrics.access import LocalAccess


def run(
    session: Session,
    sites: int = 64,
    n: int = 8,
    sweeps: int = 4,
    n_transfer: int = 4,
    seed: int = 0,
) -> AppResult:
    """Sweep local transfer-matrix multiplications over all sites."""
    rng = np.random.default_rng(seed)
    # Per-site Green's function matrices, kept well-conditioned.
    G = np.eye(n)[None, :, :] + 0.1 * rng.standard_normal((sites, n, n))
    # A small pool of transfer matrices selected per site by an index
    # table — the vector-valued subscript that makes access indirect.
    B_pool = np.eye(n)[None, :, :] + 0.05 * rng.standard_normal(
        (n_transfer, n, n)
    )
    select = rng.integers(0, n_transfer, size=(sweeps, sites))

    layout = parse_layout("(:,:serial,:serial)", (sites, n, n))
    # Table 6 memory: 144 n^2 + 6 l n + 48 p — Green's functions,
    # transfer pool and selection tables.
    session.declare_memory("G", (sites, n, n), np.float64)
    session.declare_memory("B_pool", (n_transfer, n, n), np.float64)
    session.declare_memory("select", (sweeps, sites), np.int32)
    session.declare_memory("work", (sites, n, n), np.float64)

    G_ref = G.copy()
    with session.region("main_loop", iterations=sweeps):
        for s in range(sweeps):
            B = B_pool[select[s]]  # indirect operand selection
            # Two local matmuls per site: G <- B @ G, then G <- G @ B^T
            # (a symmetrized transfer application).
            G = np.einsum("sij,sjk->sik", B, G)
            G = np.einsum("sij,skj->sik", G, B)
            # 2 * (2 n^3) FLOPs per site, indirect access.
            session.charge_kernel(
                4 * n * n * n * sites, layout=layout, access=LocalAccess.INDIRECT
            )
    # Reference: plain per-site loops.
    for s in range(sweeps):
        for site in range(sites):
            B = B_pool[select[s, site]]
            G_ref[site] = B @ G_ref[site]
            G_ref[site] = G_ref[site] @ B.T
    err = float(np.abs(G - G_ref).max())
    return AppResult(
        name="fermion",
        iterations=sweeps,
        problem_size=sites,
        local_access=LocalAccess.INDIRECT,
        observables={
            "matmul_error": err,
            "trace_mean": float(np.trace(G, axis1=1, axis2=2).mean()),
        },
        state={"G": G.copy()},
    )
