"""The asyncio run server: dedupe, warm pool, admission, fan-out.

One :class:`ServeApp` owns one event loop, one resident
:class:`~repro.engine.pool.WorkerPool`, one content-hash
:class:`~repro.engine.cache.ResultCache`, one sharded run store, and
one :class:`~repro.obs.stream.EventFanout`.  Every client connection is
a coroutine; every unique request hash is at most one worker execution,
no matter how many clients ask for it concurrently:

1. **rate limit** — the per-client token bucket answers 429 +
   ``Retry-After`` before any work is considered;
2. **dedupe, completed** — a hash already answered this server
   lifetime (or present in the disk cache) is served back instantly;
3. **dedupe, in-flight** — a hash currently executing gains a rider:
   the new client awaits the same future and receives the identical
   payload;
4. **admission** — with the active set full, 429 + ``Retry-After``
   (clients retry; the queue is bounded, and completed jobs beyond
   ``max_done_jobs`` are evicted to the disk cache, so memory is
   bounded too);
5. **execute** — the job waits (untimed) for one of ``workers``
   dispatch slots, then runs on the warm pool via ``pool.submit_async``
   with the engine's timeout/retry/backoff semantics: the timeout
   clock starts when the job is handed to the pool, not when it was
   admitted, and a timed-out worker forces a pool restart.

Completions persist exactly like engine runs do — cache entry, sharded
store record, refreshed ``.stats`` sidecar — and emit one
``job_finished`` event through the fan-out to every ``/events``
subscriber.  Reports are byte-identical to CLI runs of the same
request: workers execute the same ``execute_request`` path and
serialize with the same canonical encoder.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.engine.cache import ResultCache
from repro.engine.executor import RunResult
from repro.engine.jobs import RunRequest
from repro.engine.pool import WorkerPool, _pool_supported
from repro.engine.shards import ShardedRunStore
from repro.engine.stats import StatsAccumulator
from repro.engine.store import RunStore, make_record, new_run_id
from repro.obs import telemetry
from repro.obs.expo import CONTENT_TYPE as _METRICS_CONTENT_TYPE
from repro.obs.expo import render_exposition
from repro.obs.stream import EventFanout, EventStream
from repro.serve.protocol import (
    API_VERSION,
    ProtocolError,
    error_payload,
    job_payload,
    parse_submit,
)
from repro.serve.state import Job, ServerCounters, TokenBucket

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class ServeConfig:
    """Tuning knobs of one server instance."""

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (tests)
    port: int = 8765
    #: resident worker-pool size
    workers: int = 2
    cache_dir: Optional[Union[str, Path]] = None
    #: LRU byte budget for the cache, enforced periodically
    cache_max_bytes: Optional[int] = None
    #: run-store path; a directory becomes a sharded store (the
    #: default layout for servers — many writers, many runs)
    store: Optional[Union[str, Path]] = None
    #: JSONL file sink attached to the event fan-out
    stream: Optional[Union[str, Path]] = None
    #: bound on concurrently admitted unique jobs (backpressure)
    max_queue: int = 64
    #: per-client admission rate, requests/second (None: unlimited)
    rate_limit: Optional[float] = None
    rate_burst: int = 8
    #: per-attempt job timeout, seconds
    timeout: Optional[float] = None
    retries: int = 0
    backoff: float = 0.1
    #: collect worker span summaries into payloads/events/sidecar
    spans: bool = True
    #: pre-spawn and pre-import workers before accepting requests
    warmup: bool = True
    #: enforce the cache byte budget every N executions
    prune_every: int = 32
    #: completed jobs retained in memory; older done jobs are evicted
    #: (their durable copies — store record, cache entry — survive, so
    #: ``/result`` still answers for evicted hashes via the disk cache)
    max_done_jobs: int = 1024
    #: refresh the ``.stats`` sidecar every N completions (plus once at
    #: the first completion and once at shutdown)
    stats_every: int = 16


class ServeApp:
    """One server instance: scheduler state + HTTP front end."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.run_id = new_run_id()
        self.counters = ServerCounters()
        self.fanout = EventFanout()
        self.jobs: Dict[str, Job] = {}
        # each app owns its registry (not the process-global one) so
        # GET /metrics describes exactly this server instance even with
        # several apps in one test process; the pool drains worker-side
        # charge metrics into it
        self.telemetry = telemetry.MetricsRegistry()
        self._init_telemetry()
        self.pool = WorkerPool(
            self.config.workers, telemetry=self.telemetry
        )
        self.cache = (
            ResultCache(self.config.cache_dir)
            if self.config.cache_dir is not None
            else None
        )
        self.store = self._open_store(self.config.store)
        if self.config.stream is not None:
            self.fanout.attach(EventStream(self.config.stream))
        self.limiter = (
            TokenBucket(self.config.rate_limit, self.config.rate_burst)
            if self.config.rate_limit is not None
            else None
        )
        self._stats_acc = StatsAccumulator(
            self.run_id, workers=self.config.workers
        )
        # at most `workers` submissions in flight (engine semantics: a
        # job's deadline starts when it reaches the pool); safe to
        # create outside the loop on py3.10+ (lazy loop binding)
        self._slots = asyncio.Semaphore(self.config.workers)
        self._done_order: "deque[str]" = deque()
        self._active_count = 0
        self._recorded = 0
        self._job_index = 0
        self._started_at = time.monotonic()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self.address: Optional[Tuple[str, int]] = None

    @staticmethod
    def _open_store(path):
        """A server store defaults to the sharded layout.

        An existing single-file store is honored for compatibility;
        any other path (existing directory or not yet created) becomes
        a :class:`ShardedRunStore` — concurrent completions land in
        per-prefix shard files under per-shard locks.
        """
        if path is None:
            return None
        p = Path(path)
        if p.is_file():
            return RunStore(p)
        return ShardedRunStore(p)

    # -- telemetry ------------------------------------------------------
    _ENDPOINTS = (
        "/healthz", "/stats", "/submit", "/result", "/events",
        "/shutdown", "/metrics",
    )

    def _init_telemetry(self) -> None:
        registry = self.telemetry
        self._m_requests = registry.counter(
            "repro_serve_requests_total",
            "HTTP requests handled, by endpoint.",
            ["endpoint"],
        )
        self._m_latency = registry.histogram(
            "repro_serve_request_latency_seconds",
            "Request wall time by endpoint, seconds.",
            ["endpoint"],
        )
        self._m_submissions = registry.counter(
            "repro_serve_submissions_total",
            "Submission outcomes; mirrors the /stats counters.",
            ["outcome"],
        )
        self._m_dedupe_rate = registry.gauge(
            "repro_serve_dedupe_hit_rate",
            "Fraction of admitted submissions served without executing.",
        )
        self._m_queue_depth = registry.gauge(
            "repro_serve_queue_depth",
            "Admitted jobs executing or awaiting a dispatch slot.",
        )
        self._m_jobs = registry.counter(
            "repro_serve_jobs_total",
            "Completed jobs by final status.",
            ["status"],
        )
        self._m_dispatch = registry.histogram(
            "repro_serve_dispatch_latency_seconds",
            "Queue wait (wall minus compute) per executed job, seconds.",
        )
        self._m_timeouts = registry.counter(
            "repro_serve_timeouts_total",
            "Job attempts abandoned at the per-attempt timeout.",
        )
        self._m_retries = registry.counter(
            "repro_serve_retries_total",
            "Job attempts re-dispatched after a failure or timeout.",
        )
        self._m_subscribers = registry.gauge(
            "repro_serve_subscribers",
            "Live event-stream subscribers.",
        )
        self._m_dropped = registry.counter(
            "repro_serve_events_dropped_total",
            "Events lost to bounded subscriber queues.",
        )
        self._m_restarts = registry.counter(
            "repro_serve_pool_restarts_total",
            "Worker-pool restarts forced by timed-out jobs.",
        )
        self._m_cache = registry.counter(
            "repro_cache_requests_total",
            "Result-cache lookups by outcome.",
            ["result"],
        )
        self._m_evicted_files = registry.counter(
            "repro_cache_evicted_files_total",
            "Files evicted from the result cache by pruning.",
        )
        self._m_evicted_bytes = registry.counter(
            "repro_cache_evicted_bytes_total",
            "Bytes evicted from the result cache by pruning.",
        )
        registry.add_collector(self._collect_telemetry)

    def _collect_telemetry(self) -> None:
        # Derived series are set from the authoritative scheduler state
        # at collect time, so a /metrics scrape reconciles exactly (==)
        # with /stats by construction — there is no second tally that
        # could drift under concurrency.
        counters = self.counters.to_dict()
        for outcome in (
            "submitted", "executed", "coalesced", "served_cached",
            "rejected_queue", "rejected_rate",
        ):
            self._m_submissions.labels(outcome=outcome).set(
                counters[outcome]
            )
        self._m_dedupe_rate.set(counters["dedupe_hit_rate"])
        self._m_queue_depth.set(self._active_count)
        self._m_subscribers.set(self.fanout.subscribers)
        self._m_dropped.set(self.fanout.dropped)
        self._m_restarts.set(max(0, self.pool.generation - 1))

    @classmethod
    def _endpoint_label(cls, path: str) -> str:
        """Normalized, bounded endpoint label for request metrics.

        ``/result/<hash>`` collapses to ``/result`` and unknown paths
        to ``other`` — label cardinality must never scale with traffic.
        """
        if path.startswith("/result/"):
            return "/result"
        if path in cls._ENDPOINTS:
            return path
        return "other"

    # -- lifecycle ------------------------------------------------------
    async def serve(
        self,
        ready: Optional[threading.Event] = None,
        on_bound: Optional[Callable[[Tuple[str, int]], None]] = None,
    ) -> None:
        """Run the server until shutdown is requested.

        ``ready`` is set and ``on_bound`` is called with the actually
        bound ``(host, port)`` once the listening socket exists — with
        ``port=0`` in the config, that is the only way callers learn
        the ephemeral port.
        """
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        if self.config.warmup and _pool_supported():
            await self._loop.run_in_executor(None, self.pool.warmup)
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        if on_bound is not None:
            on_bound(self.address)
        self.fanout.emit(
            "run_started",
            run_id=self.run_id,
            workers=self.config.workers,
            server="repro-serve",
        )
        if ready is not None:
            ready.set()
        try:
            await self._shutdown.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            self._finalize()
            # let open /events handlers observe the shutdown event and
            # unwind before the loop is torn down under them
            await asyncio.sleep(0.05)

    def _finalize(self) -> None:
        # the accumulator, not self.jobs: done jobs may have been
        # evicted from memory but still count toward the lifetime tally
        counts = {"ok": 0, "failed": 0, "timeout": 0, "cached": 0}
        for status, n in self._stats_acc.status_counts.items():
            if status in counts:
                counts[status] = n
        try:
            self.fanout.emit(
                "run_finished",
                run_id=self.run_id,
                duration_s=time.monotonic() - self._started_at,
                **counts,
            )
        except RuntimeError:  # pragma: no cover - already closed
            pass
        self._write_stats()
        self.fanout.close()
        self.pool.shutdown(wait=False)

    def request_shutdown(self) -> None:
        """Ask the server to stop; safe to call from any thread."""
        if self._loop is not None and self._shutdown is not None:
            self._loop.call_soon_threadsafe(self._shutdown.set)

    # -- HTTP front end -------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, target, headers, body = parsed
            split = urlsplit(target)
            path = split.path
            query = {
                k: v[-1] for k, v in parse_qs(split.query).items()
            }
            started = time.monotonic()
            try:
                await self._route(writer, method, path, query, headers, body)
            finally:
                if telemetry.enabled():
                    endpoint = self._endpoint_label(path)
                    self._m_requests.labels(endpoint=endpoint).inc()
                    self._m_latency.labels(endpoint=endpoint).observe(
                        time.monotonic() - started
                    )
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        except Exception as exc:  # never kill the accept loop
            try:
                self._respond(
                    writer, 500, error_payload(f"{type(exc).__name__}: {exc}")
                )
            except Exception:
                pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    @staticmethod
    async def _read_request(reader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    def _respond(
        self,
        writer,
        status: int,
        payload: Dict,
        *,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)

    def _respond_text(
        self,
        writer,
        status: int,
        text: str,
        *,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        """Plain-text response path (the ``/metrics`` exposition)."""
        body = text.encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)

    async def _route(self, writer, method, path, query, headers, body) -> None:
        if path == "/healthz" and method == "GET":
            self._respond(writer, 200, self._healthz())
        elif path == "/stats" and method == "GET":
            self._respond(writer, 200, self._stats())
        elif path == "/metrics" and method == "GET":
            self._respond_text(
                writer,
                200,
                render_exposition(self.telemetry.collect()),
                content_type=_METRICS_CONTENT_TYPE,
            )
        elif path == "/submit" and method == "POST":
            await self._submit(writer, headers, body)
        elif path.startswith("/result/") and method == "GET":
            await self._result(writer, path[len("/result/"):], query)
        elif path == "/events" and method == "GET":
            await self._events(writer, query)
        elif path == "/shutdown" and method == "POST":
            self._respond(writer, 200, {"api": API_VERSION, "ok": True})
            await writer.drain()
            self._shutdown.set()
        elif path in (
            "/healthz", "/stats", "/metrics", "/submit", "/events",
            "/shutdown",
        ) or path.startswith("/result/"):
            self._respond(
                writer, 405, error_payload(f"{method} not allowed on {path}")
            )
        else:
            self._respond(writer, 404, error_payload(f"no such path {path}"))
        await writer.drain()

    def _healthz(self) -> Dict:
        return {
            "api": API_VERSION,
            "ok": True,
            "run_id": self.run_id,
            "uptime_s": time.monotonic() - self._started_at,
            "workers": self.pool.workers,
            "pool_generation": self.pool.generation,
            "process_pool": self.pool.process_based,
        }

    def _stats(self) -> Dict:
        return {
            "api": API_VERSION,
            "run_id": self.run_id,
            "uptime_s": time.monotonic() - self._started_at,
            "counters": self.counters.to_dict(),
            "jobs": len(self.jobs),
            "active": self._active(),
            "max_queue": self.config.max_queue,
            "subscribers": self.fanout.subscribers,
            "dropped_events": self.fanout.dropped,
            "workers": self.pool.workers,
            "pool_generation": self.pool.generation,
            "store": str(self.config.store) if self.config.store else None,
            "cache_dir": (
                str(self.config.cache_dir) if self.config.cache_dir else None
            ),
        }

    def _active(self) -> int:
        # tracked incrementally (+1 per admitted execution, -1 per
        # completion) instead of scanning every retained job per submit
        return self._active_count

    # -- submission / dedupe --------------------------------------------
    def _client_key(self, writer, headers) -> str:
        client = headers.get("x-client-id")
        if client:
            return client
        peer = writer.get_extra_info("peername")
        return peer[0] if peer else "unknown"

    async def _submit(self, writer, headers, body) -> None:
        if self.limiter is not None:
            retry_after = self.limiter.allow(self._client_key(writer, headers))
            if retry_after > 0:
                self.counters.rejected_rate += 1
                self._respond(
                    writer,
                    429,
                    error_payload("rate limited", retry_after=retry_after),
                    extra_headers={"Retry-After": f"{retry_after:.3f}"},
                )
                return
        try:
            parsed = json.loads(body.decode("utf-8")) if body else None
            request, wait, timeout = parse_submit(parsed)
        except ProtocolError as exc:
            self._respond(writer, exc.status, error_payload(str(exc)))
            return
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._respond(writer, 400, error_payload(f"bad JSON body: {exc}"))
            return

        request_hash = request.content_hash()
        job = self.jobs.get(request_hash)

        if job is not None and job.done:
            self.counters.submitted += 1
            self.counters.served_cached += 1
            self._respond(writer, 200, job_payload(job, source="cache"))
            return

        if job is not None:
            # identical request in flight: ride along, never re-execute
            self.counters.submitted += 1
            self.counters.coalesced += 1
            job.coalesced += 1
            await self._answer(writer, job, wait, timeout, source="coalesced")
            return

        cached = self._from_cache(request, request_hash)
        if cached is not None:
            self.counters.submitted += 1
            self.counters.served_cached += 1
            self._respond(writer, 200, job_payload(cached, source="cache"))
            return

        if self._active() >= self.config.max_queue:
            self.counters.rejected_queue += 1
            retry_after = self.config.timeout or 0.25
            self._respond(
                writer,
                429,
                error_payload("queue full", retry_after=retry_after),
                extra_headers={"Retry-After": f"{retry_after:.3f}"},
            )
            return

        self.counters.submitted += 1
        self.counters.executed += 1
        job = Job(
            request=request,
            request_hash=request_hash,
            future=self._loop.create_future(),
            index=self._job_index,
        )
        self._job_index += 1
        self.jobs[request_hash] = job
        self._active_count += 1
        asyncio.ensure_future(self._execute(job))
        await self._answer(writer, job, wait, timeout, source="executed")

    async def _answer(self, writer, job, wait, timeout, *, source) -> None:
        """Answer one submitter: block on the job future, or ack."""
        if job.done:
            # already complete — including jobs materialized from the
            # disk cache, which carry no future to wait on
            self._respond(writer, 200, job_payload(job, source=source))
            return
        if wait:
            try:
                await asyncio.wait_for(asyncio.shield(job.future), timeout)
            except asyncio.TimeoutError:
                self._respond(writer, 202, job_payload(job, source=source))
                return
            self._respond(writer, 200, job_payload(job, source=source))
        else:
            self._respond(writer, 202, job_payload(job, source=source))

    def _from_cache(self, request, request_hash: str) -> Optional[Job]:
        """Materialize a disk-cache hit as a completed job.

        Mirrors the engine's cache path: the hit is recorded in the
        store (status ``cached``) and announced on the event stream, so
        a server answering from cache leaves the same durable trail as
        one that executed.
        """
        if self.cache is None:
            return None
        hit = self.cache.get(request)
        job = self._materialize(request, request_hash, hit)
        if telemetry.enabled():
            self._m_cache.labels(
                result="hit" if job is not None else "miss"
            ).inc()
        return job

    def _from_cache_hash(self, request_hash: str) -> Optional[Job]:
        """Rematerialize an evicted hash from the disk cache.

        ``max_done_jobs`` eviction only drops the in-memory copy; the
        cache entry still holds the request and report, so ``/result``
        keeps answering for hashes the server no longer remembers.
        """
        if self.cache is None:
            return None
        job = None
        hit = self.cache.get_by_hash(request_hash)
        if hit is not None and isinstance(hit.get("request"), dict):
            try:
                request = RunRequest.from_dict(hit["request"])
            except (TypeError, ValueError, KeyError):
                request = None
            if request is not None:
                job = self._materialize(request, request_hash, hit)
        if telemetry.enabled():
            self._m_cache.labels(
                result="hit" if job is not None else "miss"
            ).inc()
        return job

    def _materialize(self, request, request_hash: str, hit) -> Optional[Job]:
        """Turn one cache record into a completed, recorded job."""
        if hit is None or hit.get("report") is None:
            return None
        job = Job(
            request=request,
            request_hash=request_hash,
            state="done",
            status="cached",
            source="cache",
            report_record=hit["report"],
            index=self._job_index,
        )
        self._job_index += 1
        job.finished_at = time.monotonic()
        self.jobs[request_hash] = job
        self._record(job)
        return job

    # -- execution ------------------------------------------------------
    async def _execute(self, job: Job) -> None:
        config = self.config
        job.state = "running"
        job.started_at = time.monotonic()
        attempt = 0
        status = "failed"
        error = ""
        payload: Optional[Dict] = None
        compute = 0.0
        wall = 0.0
        try:
            while True:
                attempt += 1
                try:
                    # wait (untimed) for a dispatch slot: the timeout
                    # clock must start when the job reaches the pool,
                    # or jobs queued behind a slow sibling burn their
                    # budget without ever running
                    await self._slots.acquire()
                except asyncio.CancelledError:
                    status = "failed"
                    error = "cancelled at server shutdown"
                    break
                started = time.monotonic()
                try:
                    payload = await asyncio.wait_for(
                        self.pool.submit_async(
                            job.request, attempt=attempt, spans=config.spans
                        ),
                        config.timeout,
                    )
                except asyncio.CancelledError:
                    # A sibling's timeout restarted the pool
                    # (cancel_futures=True cancels our still-queued
                    # submission) — or the server is tearing down.
                    # CancelledError is a BaseException, so without
                    # this clause it would kill the task with the job
                    # stuck "running" and its waiters stranded.  Mirror
                    # Engine._run_pool: resubmit the survivor against
                    # the fresh executor at the same attempt number; at
                    # shutdown, finalize as failed instead.
                    wall += time.monotonic() - started
                    if self._shutdown is None or self._shutdown.is_set():
                        status = "failed"
                        error = "cancelled at server shutdown"
                        break
                    attempt -= 1
                    continue
                except asyncio.TimeoutError:
                    spent = time.monotonic() - started
                    wall += spent
                    compute += spent
                    status, error = "timeout", (
                        f"timed out after {config.timeout:g}s"
                    )
                    # the stuck worker cannot be reclaimed; abandon the
                    # executor so the pool is healthy for the next job
                    self.pool.restart()
                    if telemetry.enabled():
                        self._m_timeouts.inc()
                except Exception as exc:
                    spent = time.monotonic() - started
                    wall += spent
                    compute += spent
                    status, error = "failed", f"{type(exc).__name__}: {exc}"
                else:
                    attempt_wall = time.monotonic() - started
                    wall += attempt_wall
                    compute += payload.get("compute_time_s", attempt_wall)
                    status, error = "ok", ""
                    break
                finally:
                    # slot freed per attempt: backoff sleeps and the
                    # final bookkeeping never hold a worker hostage
                    self._slots.release()
                if attempt <= config.retries:
                    if telemetry.enabled():
                        self._m_retries.inc()
                    await asyncio.sleep(config.backoff * (2 ** (attempt - 1)))
                    continue
                break
        finally:
            # Finalization runs however the loop exits — including a
            # task cancellation during retry backoff: the job must
            # reach "done" and its future must resolve, or riders wait
            # forever and the admission slot leaks.
            job.attempts = max(1, attempt)
            job.wall_time_s = wall
            job.status = status
            job.error = error
            if status == "ok" and payload is not None:
                job.report_record = payload["report"]
                job.spans = payload.get("spans")
            job.state = "done"
            job.finished_at = time.monotonic()
            self._active_count -= 1
            if telemetry.enabled():
                self._m_dispatch.observe(max(0.0, wall - compute))
            try:
                if status == "ok" and self.cache is not None:
                    self.cache.put(
                        job.request,
                        {
                            "request": job.request.to_dict(),
                            "request_hash": job.request_hash,
                            "status": "ok",
                            "wall_time_s": wall,
                            "report": job.report_record,
                        },
                    )
                self._record(
                    job,
                    queue_wait=max(0.0, wall - compute),
                    compute=compute,
                )
                if (
                    self.cache is not None
                    and config.cache_max_bytes is not None
                    and self.counters.executed % max(1, config.prune_every)
                    == 0
                ):
                    self.cache.prune(max_bytes=config.cache_max_bytes)
                    if telemetry.enabled():
                        self._m_evicted_files.inc(
                            self.cache.last_prune["files"]
                        )
                        self._m_evicted_bytes.inc(
                            self.cache.last_prune["bytes"]
                        )
            except Exception as exc:  # persistence must not strand waiters
                job.error = job.error or f"persist: {exc}"
            if job.future is not None and not job.future.done():
                job.future.set_result(job)

    # -- persistence + events -------------------------------------------
    def _record(
        self, job: Job, *, queue_wait: float = 0.0, compute: float = 0.0
    ) -> None:
        """Persist one finished job and announce it to subscribers."""
        result = RunResult(
            request=job.request,
            status=job.status,
            report=None,
            report_record=job.report_record,
            error=job.error,
            attempts=job.attempts,
            wall_time_s=job.wall_time_s,
            index=job.index,
            queue_wait_s=queue_wait,
            compute_time_s=compute,
            spans=job.spans,
        )
        self._stats_acc.add(result)
        if telemetry.enabled():
            self._m_jobs.labels(status=job.status or "failed").inc()
        self._recorded += 1
        self._done_order.append(job.request_hash)
        self._evict_done()
        if self.store is not None:
            self.store.append(make_record(self.run_id, result))
            # refresh the sidecar on the first completion and then
            # every stats_every-th (plus once at shutdown) — rewriting
            # it per completion is O(n²) over a server's lifetime
            every = max(1, self.config.stats_every)
            if every == 1 or self._recorded % every == 1:
                self._write_stats()
        try:
            self.fanout.emit(
                "job_finished",
                run_id=self.run_id,
                benchmark=job.request.benchmark,
                request_hash=job.request_hash,
                status=job.status,
                attempts=job.attempts,
                wall_time_s=job.wall_time_s,
                error=job.error,
                spans=job.spans,
            )
        except RuntimeError:  # pragma: no cover - closed during shutdown
            pass

    def _evict_done(self) -> None:
        """Bound completed-job memory: drop the oldest done jobs.

        Only the in-memory :class:`Job` (with its report dictionary)
        goes; the store record and cache entry survive, so an evicted
        hash is still answered — from the disk cache on ``/result``
        and ``/submit``, or by re-execution when uncached.
        """
        limit = max(0, self.config.max_done_jobs)
        while len(self._done_order) > limit:
            request_hash = self._done_order.popleft()
            job = self.jobs.get(request_hash)
            if job is not None and job.done:
                del self.jobs[request_hash]

    def _write_stats(self) -> None:
        if self.store is None or not self._stats_acc.n_jobs:
            return
        stats = self._stats_acc.snapshot(
            duration_s=time.monotonic() - self._started_at,
        )
        self.store.write_stats(self.run_id, stats.to_dict())

    # -- results + streaming --------------------------------------------
    async def _result(self, writer, request_hash: str, query) -> None:
        try:
            timeout = float(query["timeout"]) if "timeout" in query else None
        except ValueError:
            self._respond(
                writer,
                400,
                error_payload(f"bad timeout {query['timeout']!r}"),
            )
            return
        job = self.jobs.get(request_hash)
        if job is None:
            # evicted from memory? the disk cache still knows the hash
            job = self._from_cache_hash(request_hash)
        if job is None:
            self._respond(
                writer, 404, error_payload(f"unknown request {request_hash}")
            )
            return
        wait = query.get("wait", "0") not in ("0", "", "false")
        await self._answer(
            writer, job, wait, timeout,
            source="cache" if job.done else "executed",
        )

    async def _events(self, writer, query) -> None:
        """Stream fan-out events to one subscriber, newline-delimited."""
        try:
            limit = int(query["count"]) if "count" in query else None
        except ValueError:
            self._respond(
                writer, 400, error_payload(f"bad count {query['count']!r}")
            )
            return
        events: "asyncio.Queue" = asyncio.Queue()
        loop = self._loop
        handle = self.fanout.subscribe(
            lambda record: loop.call_soon_threadsafe(events.put_nowait, record)
        )
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        sent = 0
        try:
            await writer.drain()
            while limit is None or sent < limit:
                getter = asyncio.ensure_future(events.get())
                stopper = asyncio.ensure_future(self._shutdown.wait())
                done, pending = await asyncio.wait(
                    {getter, stopper}, return_when=asyncio.FIRST_COMPLETED
                )
                for task in pending:
                    task.cancel()
                if getter not in done:
                    break
                record = getter.result()
                writer.write(
                    (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
                )
                await writer.drain()
                sent += 1
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self.fanout.unsubscribe(handle)


class ServerThread:
    """A server on a background thread — the test/embedding harness.

    Context manager: entering starts the loop thread, blocks until the
    listening socket is bound, and yields ``(host, port)`` (with
    ``port=0`` in the config, the ephemeral port actually bound).
    Exiting requests shutdown and joins the thread.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.app = ServeApp(config)
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> Tuple[str, int]:
        ready = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self.app.serve(ready)),
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        if not ready.wait(timeout=60):
            raise RuntimeError("server failed to start within 60s")
        host, port = self.app.address
        return host, port

    def __exit__(self, *exc) -> None:
        self.app.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout=30)


def run_server(
    config: Optional[ServeConfig] = None,
    on_bound: Optional[Callable[[Tuple[str, int]], None]] = None,
) -> ServeApp:
    """Blocking entry point (the ``repro serve`` CLI command).

    ``on_bound`` fires with the actually bound ``(host, port)`` once
    the socket exists — how ``--port 0`` callers learn their ephemeral
    port.
    """
    app = ServeApp(config)
    try:
        asyncio.run(app.serve(on_bound=on_bound))
    except KeyboardInterrupt:
        pass
    return app


__all__ = ["ServeApp", "ServeConfig", "ServerThread", "run_server"]
