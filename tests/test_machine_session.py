"""Tests for Session charging semantics."""

import pytest

from repro import Session, cm5, workstation
from repro.layout.spec import parse_layout
from repro.metrics.flops import FlopKind
from repro.metrics.patterns import CommPattern
from repro.versions import VersionTier


class TestChargeElementwise:
    def test_charges_full_array_hpf_semantics(self, session):
        layout = parse_layout("(:)", (100,))
        session.charge_elementwise(FlopKind.ADD, layout)
        assert session.recorder.total_flops == 100

    def test_ops_per_element(self, session):
        layout = parse_layout("(:)", (10,))
        session.charge_elementwise(FlopKind.MUL, layout, ops_per_element=3)
        assert session.recorder.total_flops == 30

    def test_weighted_cost(self, session):
        layout = parse_layout("(:)", (10,))
        session.charge_elementwise(FlopKind.DIV, layout)
        assert session.recorder.total_flops == 40

    def test_complex_cost(self, session):
        layout = parse_layout("(:)", (10,))
        session.charge_elementwise(FlopKind.MUL, layout, complex_valued=True)
        assert session.recorder.total_flops == 60

    def test_empty_layout_free(self, session):
        layout = parse_layout("(:)", (0,))
        session.charge_elementwise(FlopKind.ADD, layout)
        assert session.recorder.total_flops == 0

    def test_charges_compute_time(self, session):
        layout = parse_layout("(:)", (1 << 16,))
        session.charge_elementwise(FlopKind.ADD, layout)
        assert session.recorder.busy_time > 0

    def test_distribution_speeds_up_compute(self):
        layout = parse_layout("(:)", (1 << 16,))
        t_many = Session(cm5(64))
        t_many.charge_elementwise(FlopKind.ADD, layout)
        t_one = Session(cm5(1))
        t_one.charge_elementwise(FlopKind.ADD, layout)
        assert t_many.recorder.busy_time < t_one.recorder.busy_time


class TestChargeKernel:
    def test_raw_flops(self, session):
        session.charge_kernel(1234)
        assert session.recorder.total_flops == 1234

    def test_zero_noop(self, session):
        session.charge_kernel(0)
        assert session.recorder.busy_time == 0.0

    def test_critical_fraction_explicit(self, session):
        session.charge_kernel(1_000_000, critical_fraction=1.0)
        full = session.recorder.busy_time
        s2 = Session(session.machine)
        s2.charge_kernel(1_000_000, critical_fraction=0.1)
        assert s2.recorder.busy_time == pytest.approx(full / 10)


class TestChargeReduction:
    def test_sequential_cost(self, session):
        session.charge_reduction_flops(100, 2)
        assert session.recorder.total_flops == 198

    def test_trivial_free(self, session):
        session.charge_reduction_flops(1, 10)
        assert session.recorder.total_flops == 0


class TestRecordComm:
    def test_event_recorded_with_cost(self, trace_session):
        session = trace_session
        ev = session.record_comm(
            CommPattern.CSHIFT, bytes_network=1 << 16, bytes_local=1 << 16
        )
        assert ev.busy_time > 0
        assert ev.idle_time > 0
        assert session.recorder.root.comm_counts()[CommPattern.CSHIFT] == 1

    def test_local_only_motion_on_single_node(self):
        s = Session(workstation(), detail_events=True)
        ev = s.record_comm(
            CommPattern.CSHIFT, bytes_network=0, bytes_local=1 << 20
        )
        # Busy time from local memory motion, idle from startup.
        assert ev.busy_time > 0
        assert ev.idle_time > 0

    def test_rank_and_detail_preserved(self, trace_session):
        session = trace_session
        ev = session.record_comm(
            CommPattern.GATHER, bytes_network=10, rank=3, detail="probe"
        )
        assert ev.rank == 3
        assert ev.detail == "probe"

    def test_nodes_override(self, trace_session):
        session = trace_session
        ev = session.record_comm(
            CommPattern.REDUCTION, bytes_network=4096, nodes=2
        )
        assert ev.nodes == 2


class TestMemoryDeclaration:
    def test_declare_memory(self, session):
        session.declare_memory("u", (128,), "float64")
        assert session.recorder.memory.total_bytes == 1024

    def test_declare_aligned_memory(self, session):
        session.declare_memory("H", (8, 8), "float64")
        session.declare_aligned_memory("L", (8,), (8, 8), "float64")
        assert session.recorder.memory.total_bytes == 2 * 64 * 8


class TestTier:
    def test_default_tier_basic(self, session):
        assert session.tier is VersionTier.BASIC

    def test_faster_tier_less_busy_time(self):
        layout = parse_layout("(:)", (1 << 18,))
        basic = Session(cm5(32), tier=VersionTier.BASIC)
        basic.charge_elementwise(FlopKind.ADD, layout)
        tuned = Session(cm5(32), tier=VersionTier.C_DPEAC)
        tuned.charge_elementwise(FlopKind.ADD, layout)
        assert tuned.recorder.busy_time < basic.recorder.busy_time
