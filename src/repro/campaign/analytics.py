"""Campaign-level analytics: rooflines, scaling series, diffs.

The paper quantifies every benchmark with FLOP counts, communication
patterns and network bytes (§1.5); a campaign sees those counters
across hundreds of configurations at once, which is enough to place
each point on a *communication roofline*: arithmetic intensity is
FLOPs per network byte, the machine's bisection bandwidth bounds the
rate at which network bytes can move, and the attainable FLOP rate of
a point is ``min(peak, intensity × bandwidth)``.  Points whose
attainable rate is clipped by the bandwidth term are
communication-bound; the rest are compute-bound.

Every roofline point is *reconciled*: the per-kind cost-weighted FLOP
breakdown (:attr:`repro.metrics.report.PerfReport.flop_kinds`) must
sum exactly to the report's ``flop_count``, and the byte total is read
off the same report — the analytics never invent numbers the recorder
did not produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.engine.jobs import RunRequest
from repro.machine.presets import resolve_machine

#: Roofline report schema version.
ROOFLINE_SCHEMA_VERSION = 1


class ReconcileError(ValueError):
    """A point's FLOP-kind breakdown does not sum to its FLOP count."""


@dataclass
class RooflinePoint:
    """One campaign point placed on the communication roofline."""

    benchmark: str
    machine: str
    nodes: int
    tier: str
    params: Dict[str, object]
    request_hash: str
    flop_count: int
    network_bytes: int
    #: ``{kind: {"ops": raw count, "flops": cost-weighted}}``
    flop_kinds: Dict[str, Dict[str, int]]
    busy_time_s: float
    achieved_mflops: float
    peak_mflops: float
    #: aggregate bisection bandwidth, bytes/second
    network_bandwidth_bytes_s: float
    #: FLOPs per network byte (None for communication-free points)
    intensity: Optional[float]
    attainable_mflops: float
    #: ``compute`` or ``communication``
    bound: str
    #: whether the kind breakdown summed exactly to ``flop_count``
    reconciled: bool = True

    def to_dict(self) -> Dict:
        return {
            "benchmark": self.benchmark,
            "machine": self.machine,
            "nodes": self.nodes,
            "tier": self.tier,
            "params": dict(self.params),
            "request_hash": self.request_hash,
            "flop_count": self.flop_count,
            "network_bytes": self.network_bytes,
            "flop_kinds": {k: dict(v) for k, v in self.flop_kinds.items()},
            "busy_time_s": self.busy_time_s,
            "achieved_mflops": self.achieved_mflops,
            "peak_mflops": self.peak_mflops,
            "network_bandwidth_bytes_s": self.network_bandwidth_bytes_s,
            "intensity": self.intensity,
            "attainable_mflops": self.attainable_mflops,
            "bound": self.bound,
            "reconciled": self.reconciled,
        }


def roofline_point(
    request: RunRequest,
    report_record: Mapping,
    *,
    strict: bool = True,
) -> RooflinePoint:
    """Place one (request, report) pair on the roofline.

    ``strict`` demands exact reconciliation: the cost-weighted
    per-kind FLOPs must sum to the report's ``flop_count`` and the
    breakdown must be present at all; violations raise
    :class:`ReconcileError`.  With ``strict=False`` (inspecting stores
    written before the breakdown existed) the point is marked
    ``reconciled=False`` instead.
    """
    flop_count = int(report_record["flop_count"])
    network_bytes = int(report_record["network_bytes"])
    flop_kinds = {
        str(kind): {"ops": int(v["ops"]), "flops": int(v["flops"])}
        for kind, v in (report_record.get("flop_kinds") or {}).items()
    }
    kind_total = sum(entry["flops"] for entry in flop_kinds.values())
    reconciled = bool(flop_kinds) and kind_total == flop_count
    if flop_count == 0 and not flop_kinds:
        reconciled = True  # a FLOP-free point has nothing to break down
    if strict and not reconciled:
        raise ReconcileError(
            f"{request.describe()}: flop_kinds sum {kind_total} != "
            f"flop_count {flop_count} "
            f"({'breakdown missing' if not flop_kinds else 'mismatch'})"
        )

    machine = resolve_machine(request.machine, request.nodes)
    peak = machine.peak_mflops
    bandwidth = machine.network.bisection_bandwidth(request.nodes)
    busy = float(report_record["busy_time_s"])
    achieved = flop_count / busy / 1e6 if busy > 0 else 0.0
    if network_bytes > 0:
        intensity: Optional[float] = flop_count / network_bytes
        attainable = min(peak, intensity * bandwidth / 1e6)
    else:
        intensity = None
        attainable = peak
    bound = "communication" if attainable < peak else "compute"
    return RooflinePoint(
        benchmark=request.benchmark,
        machine=request.machine,
        nodes=request.nodes,
        tier=request.tier,
        params=request.params_dict,
        request_hash=request.content_hash(),
        flop_count=flop_count,
        network_bytes=network_bytes,
        flop_kinds=flop_kinds,
        busy_time_s=busy,
        achieved_mflops=achieved,
        peak_mflops=peak,
        network_bandwidth_bytes_s=bandwidth,
        intensity=intensity,
        attainable_mflops=attainable,
        bound=bound,
        reconciled=reconciled,
    )


def _pairs_from_results(results: Sequence) -> List[Tuple[RunRequest, Mapping]]:
    return [
        (result.request, result.report_record)
        for result in results
        if result.ok and result.report_record is not None
    ]


def _pairs_from_records(records: Sequence[Mapping]) -> List[Tuple[RunRequest, Mapping]]:
    out = []
    for record in records:
        report = record.get("report")
        if report is None or not record.get("request"):
            continue
        out.append((RunRequest.from_dict(record["request"]), report))
    return out


def roofline_report(
    pairs: Sequence[Tuple[RunRequest, Mapping]],
    *,
    name: str = "",
    strict: bool = True,
) -> Dict:
    """The campaign roofline document over (request, report) pairs.

    Per-point placements plus a per-benchmark aggregate: point count,
    best achieved rate, intensity range and how many points land on
    each side of the roofline ridge.  The document is JSON-safe and
    stable under ``sort_keys``.
    """
    points = [
        roofline_point(request, record, strict=strict)
        for request, record in pairs
    ]
    by_benchmark: Dict[str, Dict] = {}
    for point in points:
        agg = by_benchmark.setdefault(
            point.benchmark,
            {
                "n_points": 0,
                "best_achieved_mflops": 0.0,
                "min_intensity": None,
                "max_intensity": None,
                "bound_counts": {"compute": 0, "communication": 0},
                "flop_total": 0,
                "network_byte_total": 0,
            },
        )
        agg["n_points"] += 1
        agg["best_achieved_mflops"] = max(
            agg["best_achieved_mflops"], point.achieved_mflops
        )
        if point.intensity is not None:
            agg["min_intensity"] = (
                point.intensity
                if agg["min_intensity"] is None
                else min(agg["min_intensity"], point.intensity)
            )
            agg["max_intensity"] = (
                point.intensity
                if agg["max_intensity"] is None
                else max(agg["max_intensity"], point.intensity)
            )
        agg["bound_counts"][point.bound] += 1
        agg["flop_total"] += point.flop_count
        agg["network_byte_total"] += point.network_bytes
    return {
        "kind": "roofline",
        "schema": ROOFLINE_SCHEMA_VERSION,
        "campaign": name,
        "n_points": len(points),
        "reconciled": all(point.reconciled for point in points),
        "benchmarks": {k: by_benchmark[k] for k in sorted(by_benchmark)},
        "points": [point.to_dict() for point in points],
    }


def roofline_from_results(results: Sequence, *, name: str = "", strict: bool = True) -> Dict:
    """Roofline document of in-memory engine results (ok points only)."""
    return roofline_report(_pairs_from_results(results), name=name, strict=strict)


def roofline_from_store(store, run_ref: str, *, name: str = "", strict: bool = True) -> Dict:
    """Roofline document of one stored run (see ``StoreReader.resolve``)."""
    return roofline_report(
        _pairs_from_records(store.run_records(run_ref)), name=name, strict=strict
    )


# -- strong-scaling series ----------------------------------------------
def scaling_series(results: Sequence) -> List[Dict]:
    """Strong-scaling efficiency series hiding inside a campaign.

    Groups ok results by (benchmark, machine, tier, params, seed) and
    emits one series per group that spans at least two node counts,
    reusing :class:`~repro.suite.sweeps.SweepResult` /
    :func:`~repro.suite.sweeps.efficiency_series` so the numbers match
    a hand-built machine sweep exactly.
    """
    from repro.suite.sweeps import SweepResult, efficiency_series

    groups: Dict[Tuple, List] = {}
    for result in results:
        if not result.ok or result.report is None:
            continue
        request = result.request
        key = (
            request.benchmark,
            request.machine,
            request.tier,
            request.params,
            request.seed,
        )
        groups.setdefault(key, []).append(result)
    series = []
    for (benchmark, machine, tier, params, seed), members in groups.items():
        by_nodes = {m.request.nodes: m for m in members}
        if len(by_nodes) < 2:
            continue
        nodes = sorted(by_nodes)
        sweep = SweepResult(benchmark, "nodes", tuple(nodes))
        sweep.reports = [by_nodes[n].report for n in nodes]
        eff = efficiency_series(sweep)
        series.append(
            {
                "benchmark": benchmark,
                "machine": machine,
                "tier": tier,
                "params": dict(params),
                "nodes": nodes,
                "elapsed_time_s": sweep.series("elapsed_time"),
                "speedup": eff["speedup"],
                "efficiency": eff["efficiency"],
            }
        )
    series.sort(
        key=lambda s: (s["benchmark"], s["machine"], s["tier"], s["nodes"])
    )
    return series


# -- campaign diff ------------------------------------------------------
def campaign_diff(
    store,
    run_a: str,
    run_b: str,
    *,
    tolerance_pct: float = 0.0,
    strict: bool = False,
):
    """Gate one campaign run against another from the same store.

    Thin wrapper over :func:`repro.engine.stats.compare_benchmarks`
    with run ``a`` as the baseline: regressions and missing points fail
    the gate, points only run ``b`` measured surface as ``extra``
    (fatal under ``strict``).  Returns a
    :class:`~repro.engine.stats.CheckReport`.
    """
    from repro.engine.stats import _benchmark_metrics, compare_benchmarks

    baseline = _benchmark_metrics(store.run_records(run_a))
    current = _benchmark_metrics(store.run_records(run_b))
    return compare_benchmarks(
        current, baseline, tolerance_pct, strict=strict
    )
