"""Data-parallel arrays with HPF execution semantics.

:class:`DistArray` wraps a NumPy array together with a
:class:`~repro.layout.Layout` (which axes are serial/parallel) and the
:class:`~repro.machine.Session` it executes on.  Arithmetic on
DistArrays performs the real computation with NumPy *and* charges the
session: FLOPs under the paper's cost conventions, simulated compute
time for the critical node under the array's distribution.

Masked operations follow HPF semantics (paper §1.4): expressions are
evaluated for **all** elements; masks only gate assignment — so FLOPs
are charged for the whole array, exactly as the paper's counts do.

Collective data motion (cshift, spread, reductions across parallel
axes, gather/scatter, ...) lives in :mod:`repro.comm`; DistArray
reduction methods delegate there.
"""

from repro.array.distarray import DistArray
from repro.array.creation import (
    arange,
    empty,
    from_numpy,
    full,
    ones,
    random_uniform,
    zeros,
)
from repro.array.fused import (
    axpy,
    fma,
    linear_combine,
    scale_add,
    stencil_combine,
)
from repro.array.masks import merge, where

__all__ = [
    "DistArray",
    "arange",
    "axpy",
    "empty",
    "fma",
    "from_numpy",
    "full",
    "linear_combine",
    "merge",
    "ones",
    "random_uniform",
    "scale_add",
    "stencil_combine",
    "where",
    "zeros",
]
