"""Resident WorkerPool tests: warm reuse, restarts, async submission.

The pool contract the serve layer is built on: one pool outlives many
engine invocations (warm workers, no spawn + import per run), restarts
abandon stuck executors without losing the pool, and ``submit_async``
bridges pool futures onto an asyncio loop.
"""

import asyncio

import pytest

from repro.engine import Engine, EngineConfig
from repro.engine.jobs import RunRequest
from repro.engine.pool import WorkerPool, _pool_supported
from repro.metrics.serialize import canonical_report_json


def request(n: int = 16) -> RunRequest:
    return RunRequest(benchmark="n-body", params={"n": n})


@pytest.fixture(scope="module")
def pool():
    p = WorkerPool(workers=2)
    yield p
    p.shutdown()


class TestWorkerPool:
    def test_submit_returns_report_payload(self, pool):
        payload = pool.submit(request()).result(timeout=120)
        assert payload["report"]["flop_count"] > 0
        assert payload["compute_time_s"] >= 0

    def test_spans_flag_controls_span_summary(self, pool):
        with_spans = pool.submit(request(), spans=True).result(timeout=120)
        without = pool.submit(request(), spans=False).result(timeout=120)
        assert with_spans["spans"] is not None
        assert with_spans["spans"]["busy_time_s"] >= 0
        assert without.get("spans") is None
        # span collection never changes the report itself
        assert canonical_report_json(with_spans["report"]) == (
            canonical_report_json(without["report"])
        )

    def test_warmup_provisions_workers(self):
        pool = WorkerPool(workers=2)
        try:
            pool.warmup(timeout=120)
            assert pool.generation == 1
            # warm submits reuse the same executor generation
            pool.submit(request()).result(timeout=120)
            assert pool.generation == 1
        finally:
            pool.shutdown()

    def test_restart_bumps_generation_and_keeps_working(self, pool):
        before = pool.generation
        pool.restart()
        payload = pool.submit(request(24)).result(timeout=120)
        assert payload["report"]["flop_count"] > 0
        assert pool.generation == before + 1

    def test_submit_after_shutdown_raises(self):
        pool = WorkerPool(workers=1)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit(request())

    def test_submit_async_resolves_on_event_loop(self, pool):
        async def go():
            return await pool.submit_async(request(20))

        payload = asyncio.run(go())
        assert payload["report"]["flop_count"] > 0

    def test_process_mode_matches_platform_support(self, pool):
        assert pool.process_based == _pool_supported()


class TestEngineWithResidentPool:
    def test_engine_reuses_external_pool_across_runs(self, pool):
        """Two engine invocations on one pool: no new executor between
        them, and the pool survives both (the engine never shuts down
        a pool it does not own)."""
        pool.warmup(timeout=120)
        generation = pool.generation
        engine = Engine(EngineConfig(jobs=1), pool=pool)
        first = engine.run([request(17)])
        second = engine.run([request(18)])
        assert [r.status for r in first + second] == ["ok", "ok"]
        assert pool.generation == generation
        # still alive for direct submissions
        assert pool.submit(request(19)).result(timeout=120)["report"]

    def test_external_pool_reports_its_worker_count(self, pool):
        """Stats reflect the resident pool's size, not config.jobs."""
        if not _pool_supported():
            pytest.skip("pool path requires process support")
        engine = Engine(EngineConfig(jobs=1), pool=pool)
        engine.run([request(21)])
        assert engine.last_run_stats.workers == pool.workers

    def test_resident_pool_results_match_owned_pool(self, pool, tmp_path):
        """Same canonical reports whether the pool is resident or
        per-run (the parity contract the server relies on)."""
        resident = Engine(EngineConfig(jobs=2), pool=pool).run([request(22)])
        owned = Engine(EngineConfig(jobs=2)).run([request(22)])
        assert resident[0].status == owned[0].status == "ok"
        assert canonical_report_json(resident[0].report_record) == (
            canonical_report_json(owned[0].report_record)
        )
