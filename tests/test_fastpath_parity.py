"""Golden parity: fast-path metrics == trace-mode metrics, suite-wide.

The aggregate-only fast path (the `detail_events=False` default) must
be observationally identical to trace mode for everything a
:class:`PerfReport` captures — FLOP counts, per-pattern communication
counts, bytes, busy/elapsed times, and memory.  Every registered
benchmark is run once in each mode on identical parameters and the
serialized reports are compared field-for-field after a
``report_from_dict`` round-trip (which also pins the serialization
itself).
"""

import pytest

from repro.metrics.serialize import (
    canonical_report_json,
    report_from_dict,
    report_to_dict,
)
from repro.sessions import open_session
from repro.suite import REGISTRY, run_benchmark

# Small-but-representative sizes so the whole sweep stays fast while
# every benchmark still exercises its main loop and comm patterns.
SMALL_PARAMS = {
    "gather": {"n": 2048, "repeats": 3},
    "scatter": {"n": 2048, "repeats": 3},
    "reduction": {"n": 2048, "repeats": 3},
    "transpose": {"n": 48, "repeats": 3},
    "matrix-vector": {"n": 48, "repeats": 2},
    "lu": {"n": 20},
    "qr": {"m": 24, "n": 12},
    "gauss-jordan": {"n": 20},
    "pcr": {"n": 64},
    "conj-grad": {"n": 96},
    "jacobi": {"n": 10},
    "fft": {"n": 256},
    "boson": {"nx": 6, "nt": 4, "sweeps": 3},
    "diff-1d": {"nx": 48, "steps": 3},
    "diff-2d": {"nx": 16, "steps": 3},
    "diff-3d": {"nx": 10, "steps": 3},
    "ellip-2d": {"nx": 10},
    "fem-3d": {"nx": 2, "iterations": 6},
    "fermion": {"sites": 12, "n": 4, "sweeps": 2},
    "gmo": {"ns": 64, "ntr": 8},
    "ks-spectral": {"nx": 32, "ne": 2, "steps": 3},
    "md": {"n_p": 10, "steps": 3},
    "mdcell": {"nc": 3, "steps": 1},
    "n-body": {"n": 16},
    "pic-simple": {"nx": 8, "n_p": 64, "steps": 1},
    "pic-gather-scatter": {"nx": 8, "n_p": 48, "steps": 1},
    "qcd-kernel": {"nx": 2, "iterations": 1},
    "qmc": {"blocks": 1, "steps_per_block": 6, "n_w": 40},
    "qptransport": {"iterations": 6},
    "rp": {"nx": 4},
    "step4": {"nx": 8, "steps": 1},
    "wave-1d": {"nx": 32, "steps": 3},
}


def _run(name: str, detail_events: bool) -> dict:
    session = open_session("cm5", 32, detail_events=detail_events)
    report = run_benchmark(name, session, **SMALL_PARAMS.get(name, {}))
    return report_to_dict(report)


def test_every_registered_benchmark_is_covered():
    assert set(SMALL_PARAMS) == set(REGISTRY)


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_fast_path_report_matches_detail_mode(name):
    fast = _run(name, detail_events=False)
    detail = _run(name, detail_events=True)
    assert canonical_report_json(fast) == canonical_report_json(detail)
    # Round-trip through report_from_dict: the reconstructed reports
    # must themselves agree field-for-field.
    r_fast = report_to_dict(report_from_dict(fast))
    r_detail = report_to_dict(report_from_dict(detail))
    assert canonical_report_json(r_fast) == canonical_report_json(r_detail)
