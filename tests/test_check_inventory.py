"""RC008 pattern conformance against hand-built inventories.

Fixture "apps" live under ``src/repro/apps`` paths so the closure fence
treats them like real benchmark modules; the inventories are built by
hand instead of reading the live registry, so each test controls the
declared side of the diff.
"""

from textwrap import dedent

from repro.check import AppInventory, lint_sources


def lint(sources, inventories):
    return lint_sources(
        [(path, dedent(src)) for path, src in sources],
        inventories=inventories,
    )


def inv(declared=(), extras=(), name="fake"):
    return AppInventory(
        name=name,
        runner_module="repro.apps.fake",
        runner_name="run",
        declared=frozenset(declared),
        extras=frozenset(extras),
    )


APP = "src/repro/apps/fake.py"


class TestUsedButUndeclared:
    SRC = """\
        def run(session):
            session.record_comm(CommPattern.CSHIFT, 8)
            session.record_comm(CommPattern.REDUCTION, 8)
        """

    def test_literal_record_needs_declaration(self):
        findings = lint([(APP, self.SRC)], [inv(declared={"CSHIFT"})])
        assert [f.code for f in findings] == ["RC008"]
        f = findings[0]
        assert f.path == APP
        assert f.symbol == "run"
        assert "records CommPattern.REDUCTION" in f.message
        assert "'fake'" in f.message

    def test_declaring_it_silences(self):
        findings = lint(
            [(APP, self.SRC)],
            [inv(declared={"CSHIFT", "REDUCTION"})],
        )
        assert findings == []

    def test_comm_extras_count_as_declared(self):
        findings = lint(
            [(APP, self.SRC)],
            [inv(declared={"CSHIFT"}, extras={"REDUCTION"})],
        )
        assert findings == []

    def test_record_reached_through_helper(self):
        sources = [
            (APP, """\
                from repro.apps.halo import exchange

                def run(session):
                    exchange(session)
                """),
            ("src/repro/apps/halo.py", """\
                def exchange(session):
                    session.record_comm(CommPattern.AAPC, 64)
                """),
        ]
        findings = lint(sources, [inv(declared=set())])
        assert [f.code for f in findings] == ["RC008"]
        assert "AAPC" in findings[0].message
        assert "repro.apps.halo" in findings[0].message

    def test_literal_handed_to_helper_is_must_evidence(self):
        src = """\
            def run(session):
                shift(session, CommPattern.CSHIFT)
            """
        findings = lint([(APP, src)], [inv(declared=set())])
        assert [f.code for f in findings] == ["RC008"]
        assert "CSHIFT" in findings[0].message

    def test_variable_record_is_only_may_evidence(self):
        # recording through a variable must not produce undeclared
        # findings: the pattern may never be chosen at runtime
        src = """\
            def run(session, combine):
                if combine:
                    pattern = CommPattern.SCATTER_COMBINE
                else:
                    pattern = CommPattern.SCATTER
                session.record_comm(pattern, 4)
            """
        assert lint([(APP, src)], [inv(declared=set())]) == []


class TestDeclaredButUnused:
    def test_unreachable_declaration_flagged(self):
        src = """\
            def run(session):
                session.record_comm(CommPattern.CSHIFT, 8)
            """
        findings = lint(
            [(APP, src)], [inv(declared={"CSHIFT", "AAPC"})]
        )
        assert [f.code for f in findings] == ["RC008"]
        assert "declares CommPattern.AAPC" in findings[0].message
        assert "under-delivers" in findings[0].message

    def test_may_evidence_satisfies_declaration(self):
        src = """\
            def run(session, combine):
                if combine:
                    pattern = CommPattern.SCATTER_COMBINE
                else:
                    pattern = CommPattern.SCATTER
                session.record_comm(pattern, 4)
            """
        findings = lint(
            [(APP, src)],
            [inv(declared={"SCATTER", "SCATTER_COMBINE"})],
        )
        assert findings == []

    def test_parameter_default_is_may_evidence(self):
        # stencil_shifts records through its ``pattern`` parameter,
        # whose default is the STENCIL literal
        sources = [
            (APP, """\
                from repro.apps.shifts import stencil_shifts

                def run(session, data):
                    stencil_shifts(session, data)
                """),
            ("src/repro/apps/shifts.py", """\
                def stencil_shifts(session, data,
                                   pattern=CommPattern.STENCIL):
                    session.record_comm(pattern, 2)
                """),
        ]
        findings = lint(sources, [inv(declared={"STENCIL"})])
        assert findings == []

    def test_extras_not_checked_for_unusedness(self):
        # extras document implementation substrate; only the Table-7
        # ``declared`` side must be realizable
        src = """\
            def run(session):
                session.record_comm(CommPattern.CSHIFT, 8)
            """
        findings = lint(
            [(APP, src)], [inv(declared={"CSHIFT"}, extras={"AABC"})]
        )
        assert findings == []


class TestClosureFence:
    def test_non_benchmark_modules_do_not_leak(self):
        # a pricing-table helper mentioning a pattern literal lives
        # outside the fence: it must not count as app usage
        sources = [
            (APP, """\
                from repro.metrics.pricing import table

                def run(session):
                    session.record_comm(CommPattern.CSHIFT, 8)
                    table(session)
                """),
            ("src/repro/metrics/pricing.py", """\
                def table(session):
                    session.record_comm(CommPattern.AABC, 1)
                """),
        ]
        findings = lint(sources, [inv(declared={"CSHIFT"})])
        assert findings == []

    def test_runner_missing_from_graph_is_skipped(self):
        src = """\
            def other(session):
                session.record_comm(CommPattern.CSHIFT, 8)
            """
        assert lint([(APP, src)], [inv(declared={"AAPC"})]) == []
