"""repro.serve — a long-lived benchmark-as-a-service run server.

The ROADMAP's "heavy traffic" milestone: the execution engine wrapped
in an asyncio HTTP/JSONL service so many concurrent clients share one
warm engine instead of each paying pool spawn + import per run.

* :mod:`repro.serve.server` — :class:`ServeApp`, the asyncio server:
  request dedup (in-flight coalescing + content-hash cache), a
  resident :class:`~repro.engine.pool.WorkerPool`, admission control
  (bounded queue with 429 + Retry-After, per-client token-bucket rate
  limiting), sharded run-store persistence, and live event fan-out to
  subscribers;
* :mod:`repro.serve.client` — :class:`ServeClient`, the stdlib socket
  client the CLI (``repro submit`` / ``repro watch``) and the tests
  drive the server with;
* :mod:`repro.serve.protocol` — the wire format: endpoints, submit
  body, job payloads, error shapes;
* :mod:`repro.serve.state` — in-memory scheduler state: jobs, dedupe
  maps, counters, the rate limiter.

Quickstart::

    from repro.serve import ServeConfig, ServerThread, ServeClient

    with ServerThread(ServeConfig(port=0, workers=2)) as (host, port):
        client = ServeClient(host, port)
        payload = client.submit({"benchmark": "n-body", "params": {"n": 16}})
        print(payload["report"]["busy_time_s"])

Results are metrics-identical to CLI runs: workers execute the same
``execute_request`` path and return the same canonical report JSON
(see ``docs/SERVE.md``).
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import API_VERSION, JOB_STATES, ProtocolError
from repro.serve.server import ServeApp, ServeConfig, ServerThread, run_server
from repro.serve.state import Job, ServerCounters, TokenBucket

__all__ = [
    "API_VERSION",
    "JOB_STATES",
    "Job",
    "ProtocolError",
    "ServeApp",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerCounters",
    "ServerThread",
    "TokenBucket",
    "run_server",
]
