"""pic-gather-scatter: the sophisticated particle-in-cell implementation.

Paper class (§4, (8)): gather/scatter are "highly sensitive to
data-router collisions … at local regions of high density", so this
implementation sorts the particles by destination cell and performs a
sum-scan prior to the router operation, turning colliding deposits
into collisionless ones.

Table 5 layouts: ``x(:serial,:)`` particles, ``x(:serial,:,:)`` grid.
Table 6: ``270`` FLOPs per particle per iteration (27 TSC cloud
offsets x ~10 FLOPs of weight arithmetic), memory
``12 n_x^3 + 88 n_p``, and per iteration **81 Scans (3 per offset),
27 Scatters w/ add, 27 1-D to 3-D Scatters and 27 3-D to 1-D
Gathers** — for each of the 27 offsets of the triangular-shaped-cloud
(TSC) stencil: segmented-scan the sorted per-particle weights into
per-cell totals, combine them (scatter w/ add) into the compacted
cell list, scatter the compacted totals onto the 3-D grid
(collisionless), and gather the field value back to the particles.

The deposition is verified against a direct ``np.add.at`` TSC deposit
and conserves total charge exactly.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppResult
from repro.array.distarray import DistArray
from repro.comm.scan import segmented_copy_scan, segmented_scan
from repro.comm.sorting import argsort
from repro.layout.spec import parse_layout
from repro.machine.session import Session
from repro.metrics.access import LocalAccess
from repro.metrics.patterns import CommPattern

_OFFSETS = [
    (i, j, k) for i in (-1, 0, 1) for j in (-1, 0, 1) for k in (-1, 0, 1)
]


def _tsc_weights(frac: np.ndarray):
    """TSC weights at offsets (-1, 0, +1) from the nearest cell centre."""
    w_m = 0.5 * (0.5 - frac) ** 2
    w_0 = 0.75 - frac * frac
    w_p = 0.5 * (0.5 + frac) ** 2
    return {-1: w_m, 0: w_0, 1: w_p}


def reference_deposit(pos: np.ndarray, n: int, charge: float) -> np.ndarray:
    """Direct TSC deposition with np.add.at."""
    rho = np.zeros((n, n, n))
    cell = np.round(pos).astype(int)
    frac = pos - cell
    w = [_tsc_weights(frac[:, d]) for d in range(3)]
    for oi, oj, ok in _OFFSETS:
        weight = charge * w[0][oi] * w[1][oj] * w[2][ok]
        np.add.at(
            rho,
            ((cell[:, 0] + oi) % n, (cell[:, 1] + oj) % n, (cell[:, 2] + ok) % n),
            weight,
        )
    return rho


def run(
    session: Session,
    nx: int = 8,
    n_p: int = 256,
    steps: int = 2,
    seed: int = 0,
) -> AppResult:
    """Deposit/gather cycles of a TSC cloud over a periodic 3-D grid."""
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0, nx, (n_p, 3))
    charge = 1.0

    grid_layout = parse_layout("(:serial,:,:)", (nx, nx, nx))
    part_layout = parse_layout("(:)", (n_p,))
    # Table 6 memory: 12 n_x^3 + 88 n_p.
    session.declare_memory("rho", (nx, nx, nx), np.float64)
    session.declare_memory("smoothed", (nx, nx, nx), np.float32)
    for name in (
        "px", "py", "pz", "w", "cell", "dest", "segsum", "segid",
        "gathered", "rank", "order",
    ):
        session.declare_memory(name, (n_p,), np.float64)

    itemsize = 8
    off_node = grid_layout.off_node_fraction(session.nodes)

    deposit_err = 0.0
    gather_err = 0.0
    charge_err = 0.0
    with session.region("main_loop", iterations=steps):
        for _ in range(steps):
            cell = np.round(pos).astype(int)
            frac = pos - cell
            w = [_tsc_weights(frac[:, d]) for d in range(3)]
            flat_cell = (
                (cell[:, 0] % nx) * nx * nx
                + (cell[:, 1] % nx) * nx
                + cell[:, 2] % nx
            )
            # Sort particles by home cell (paper: sort by destination,
            # then sum-scan before the router operation).
            key = DistArray(flat_cell.astype(np.float64), part_layout, session)
            order = argsort(key).data.astype(int)
            pos = pos[order]
            cell = cell[order]
            frac = frac[order]
            w = [_tsc_weights(frac[:, d]) for d in range(3)]
            flat_cell = flat_cell[order]

            rho = np.zeros(nx * nx * nx)
            gathered = np.zeros(n_p)
            # Use the previous density as the "field" interpolated back.
            field = np.ones(nx * nx * nx)
            for oi, oj, ok in _OFFSETS:
                weight = charge * w[0][oi] * w[1][oj] * w[2][ok]
                # ~10 FLOPs of weight arithmetic per particle per offset.
                session.charge_kernel(
                    10 * n_p, layout=part_layout, access=LocalAccess.INDIRECT
                )
                dest = (
                    ((cell[:, 0] + oi) % nx) * nx * nx
                    + ((cell[:, 1] + oj) % nx) * nx
                    + (cell[:, 2] + ok) % nx
                )
                # Segments of equal destination (sorted order makes
                # destinations contiguous for constant offsets).
                seg_order = np.argsort(dest, kind="stable")
                dest_sorted = dest[seg_order]
                weight_sorted = weight[seg_order]
                starts = np.empty(n_p, dtype=bool)
                starts[0] = True
                starts[1:] = dest_sorted[1:] != dest_sorted[:-1]

                wd = DistArray(weight_sorted, part_layout, session)
                # Scan 1: segmented sum of weights.
                seg_sums = segmented_scan(wd, starts, "sum")
                # Scan 2: segment enumeration (exclusive sum of starts).
                segmented_scan(
                    DistArray(starts.astype(np.float64), part_layout, session),
                    np.zeros(n_p, dtype=bool),
                    "sum",
                ).data.astype(int) - 1
                # Scan 3: propagate each segment's destination cell.
                seg_dest = segmented_copy_scan(
                    DistArray(dest_sorted.astype(np.float64), part_layout, session),
                    starts,
                ).data.astype(int)

                # Per-segment totals: the last element of each segment.
                ends = np.empty(n_p, dtype=bool)
                ends[:-1] = starts[1:]
                ends[-1] = True
                totals = seg_sums.data[ends]
                total_dest = seg_dest[ends]

                # Scatter w/ add: combine totals into the compacted
                # cell list (collision-free after the scan).
                session.record_comm(
                    CommPattern.SCATTER_COMBINE,
                    bytes_network=round(totals.size * itemsize * off_node),
                    bytes_local=totals.size * itemsize,
                    rank=1,
                    detail="segment totals",
                    collisions=1.0,
                )
                # 1-D to 3-D Scatter: compacted totals onto the grid.
                np.add.at(rho, total_dest, totals)
                session.record_comm(
                    CommPattern.SCATTER,
                    bytes_network=round(totals.size * itemsize * off_node),
                    bytes_local=totals.size * itemsize,
                    rank=3,
                    detail="totals to grid",
                    collisions=1.0,
                )
                # 3-D to 1-D Gather: field at the offset cell back to
                # the particles.
                gathered += weight * field[dest]
                session.record_comm(
                    CommPattern.GATHER,
                    bytes_network=round(n_p * itemsize * off_node),
                    bytes_local=n_p * itemsize,
                    rank=3,
                    detail="field to particles",
                )
            rho3 = rho.reshape(nx, nx, nx)
            ref = reference_deposit(pos, nx, charge)
            deposit_err = max(deposit_err, float(np.abs(rho3 - ref).max()))
            charge_err = max(charge_err, abs(float(rho.sum()) - charge * n_p))
            # With field == 1, the gathered value must be the total TSC
            # weight of each particle, which is exactly 1.
            gather_err = max(gather_err, float(np.abs(gathered - charge).max()))
            # Drift the particles a little for the next iteration.
            pos = (pos + 0.1) % nx
    return AppResult(
        name="pic-gather-scatter",
        iterations=steps,
        problem_size=n_p,
        local_access=LocalAccess.INDIRECT,
        observables={
            "deposit_error": deposit_err,
            "charge_conservation_error": charge_err,
            "gather_error": gather_err,
        },
        state={"rho": rho3.copy()},
    )
