"""Chrome trace-event export (Perfetto / chrome://tracing loadable).

Emits the JSON object form of the Trace Event Format: a dictionary with
a ``traceEvents`` list of ``ph: "X"`` duration events (timestamps and
durations in microseconds of *simulated* time), ``ph: "M"`` metadata
naming the process and threads, and ``ph: "C"`` counter events for
cumulative FLOPs and network bytes.

Track layout (one thread per category):

* tid 1 ``regions``   — region and iteration spans (the span tree)
* tid 2 ``compute``   — compute slices, labelled by FLOP kinds
* tid 3 ``comm busy`` — bandwidth-bound communication slices
* tid 4 ``comm idle`` — latency/synchronization slices

:func:`chrome_trace` renders a live :class:`~repro.obs.spans.SpanCollector`;
:func:`chrome_trace_from_report` rebuilds an approximate trace from a
stored :class:`~repro.metrics.report.PerfReport` (segments only — the
per-slice timeline is not persisted in the run store, so segments are
laid out sequentially with children packed at their parent's start).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.spans import (
    CATEGORY_COMM_BUSY,
    CATEGORY_COMM_IDLE,
    CATEGORY_COMPUTE,
    SpanCollector,
)

#: Thread ids of the fixed track layout.
TID_REGIONS = 1
TID_COMPUTE = 2
TID_COMM_BUSY = 3
TID_COMM_IDLE = 4

_TRACK_NAMES = {
    TID_REGIONS: "regions",
    TID_COMPUTE: "compute",
    TID_COMM_BUSY: "comm busy",
    TID_COMM_IDLE: "comm idle",
}

_CATEGORY_TIDS = {
    CATEGORY_COMPUTE: TID_COMPUTE,
    CATEGORY_COMM_BUSY: TID_COMM_BUSY,
    CATEGORY_COMM_IDLE: TID_COMM_IDLE,
}


def _us(seconds: float) -> float:
    """Simulated seconds -> trace microseconds."""
    return seconds * 1e6


def _metadata(pid: int, process_name: str) -> List[Dict]:
    events: List[Dict] = [
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for tid, name in _TRACK_NAMES.items():
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": name},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_sort_index",
                "args": {"sort_index": tid},
            }
        )
    return events


def chrome_trace(
    collector: SpanCollector,
    *,
    benchmark: str = "benchmark",
    pid: int = 1,
) -> Dict:
    """Render a finalized collector as a trace-event JSON object."""
    events = _metadata(pid, benchmark)
    for span in collector.root.walk():
        if span.kind == "run":
            continue
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": TID_REGIONS,
                "cat": span.kind,
                "name": span.name,
                "ts": _us(span.start),
                "dur": _us(span.duration),
                "args": {},
            }
        )
    cum_flops = 0
    cum_bytes = 0
    counters: List[Dict] = [
        {
            "ph": "C",
            "pid": pid,
            "tid": 0,
            "name": "cumulative FLOPs",
            "ts": 0.0,
            "args": {"flops": 0},
        },
        {
            "ph": "C",
            "pid": pid,
            "tid": 0,
            "name": "network bytes",
            "ts": 0.0,
            "args": {"bytes": 0},
        },
    ]
    for sl in collector.slices:
        args: Dict[str, object] = {}
        if sl.flops:
            args["flops"] = sl.flops
        if sl.ops:
            args["ops"] = dict(sl.ops)
        if sl.bytes_network:
            args["bytes_network"] = sl.bytes_network
        if sl.bytes_local:
            args["bytes_local"] = sl.bytes_local
        if sl.detail:
            args["detail"] = sl.detail
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": _CATEGORY_TIDS[sl.category],
                "cat": sl.category,
                "name": sl.name,
                "ts": _us(sl.start),
                "dur": _us(sl.duration),
                "args": args,
            }
        )
        if sl.category == CATEGORY_COMPUTE and sl.flops:
            cum_flops += sl.flops
            counters.append(
                {
                    "ph": "C",
                    "pid": pid,
                    "tid": 0,
                    "name": "cumulative FLOPs",
                    "ts": _us(sl.end),
                    "args": {"flops": cum_flops},
                }
            )
        elif sl.category == CATEGORY_COMM_BUSY and sl.bytes_network:
            cum_bytes += sl.bytes_network
            counters.append(
                {
                    "ph": "C",
                    "pid": pid,
                    "tid": 0,
                    "name": "network bytes",
                    "ts": _us(sl.end),
                    "args": {"bytes": cum_bytes},
                }
            )
    events.extend(counters)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_from_report(report, *, pid: int = 1) -> Dict:
    """Rebuild an approximate trace from a stored report's segments.

    Stored runs persist only the flattened segment tree ('/'-joined
    path names; parents inclusive of children), not the slice-level
    timeline, so this lays segments out sequentially: top-level
    segments follow one another, and each segment's children are packed
    starting at their parent's start time.  Durations are the segments'
    elapsed seconds — totals are faithful, placement is schematic.
    """
    events = _metadata(pid, f"{report.benchmark} ({report.version})")
    starts: Dict[str, float] = {}
    cursor_at: Dict[str, float] = {"": 0.0}
    cum_flops = 0
    counters: List[Dict] = []
    for seg in report.segments:
        parent, _, _leaf = seg.name.rpartition("/")
        start = cursor_at.get(parent, 0.0)
        starts[seg.name] = start
        cursor_at[parent] = start + seg.elapsed_time
        cursor_at[seg.name] = start
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": TID_REGIONS,
                "cat": "region",
                "name": seg.name,
                "ts": _us(start),
                "dur": _us(seg.elapsed_time),
                "args": {
                    "flops": seg.flop_count,
                    "busy_s": seg.busy_time,
                    "network_bytes": seg.network_bytes,
                    "iterations": seg.iterations,
                },
            }
        )
        if "/" not in seg.name:
            # Counter samples over top-level segments only (children
            # are included in their parents' totals).
            cum_flops += seg.flop_count
            counters.append(
                {
                    "ph": "C",
                    "pid": pid,
                    "tid": 0,
                    "name": "cumulative FLOPs",
                    "ts": _us(start + seg.elapsed_time),
                    "args": {"flops": cum_flops},
                }
            )
    events.extend(counters)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(trace: Dict) -> List[str]:
    """Minimal structural validation of a trace-event JSON object.

    Returns a list of problems (empty when the trace is well-formed):
    the trace must be a dict with a ``traceEvents`` list, every event a
    dict with string ``ph`` and ``name`` and numeric ``pid``/``tid``,
    and every ``X`` event must carry numeric ``ts`` and non-negative
    ``dur``.  This is what the CI observability job asserts.
    """
    problems: List[str] = []
    if not isinstance(trace, dict):
        return ["trace is not a JSON object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        ph = event.get("ph")
        if not isinstance(ph, str) or ph not in ("X", "M", "C"):
            problems.append(f"event {i} has invalid ph={ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"event {i} has no string name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), (int, float)):
                problems.append(f"event {i} has non-numeric {key}")
        if ph == "X":
            ts = event.get("ts")
            dur = event.get("dur")
            if not isinstance(ts, (int, float)):
                problems.append(f"event {i} (X) has non-numeric ts")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i} (X) has invalid dur={dur!r}")
    return problems


def write_chrome_trace(trace: Dict, path) -> None:
    """Serialize a trace object to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, separators=(",", ":"))
        fh.write("\n")


__all__ = [
    "TID_REGIONS",
    "TID_COMPUTE",
    "TID_COMM_BUSY",
    "TID_COMM_IDLE",
    "chrome_trace",
    "chrome_trace_from_report",
    "validate_chrome_trace",
    "write_chrome_trace",
]
