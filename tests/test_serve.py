"""Run-server tests: dedupe, parity, admission control, streaming.

The acceptance bar for ``repro serve``: 16 concurrent clients with
duplicate submissions coalesce to one worker execution and all receive
identical canonical report JSON; a bounded queue answers 429 +
Retry-After instead of melting; per-client rate limiting is isolated
by client id; streamed events validate against the EventStream schema;
and a warm resident pool beats cold per-suite pools by >= 2x jobs/s on
the small-job subset.
"""

import json
import threading
import time

import pytest

from repro.engine.jobs import RunRequest, execute_request
from repro.engine.pool import _pool_supported
from repro.metrics.serialize import canonical_report_json, report_to_dict
from repro.obs.stream import read_stream, validate_stream
from repro.serve import ServeClient, ServeConfig, ServeError, ServerThread

# n-body-class small jobs: milliseconds each, structurally real.
SMALL = {"benchmark": "n-body", "params": {"n": 16}}


def small_request(i: int) -> dict:
    return {"benchmark": "n-body", "params": {"n": 12 + i}}


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """One warm server shared by the read-mostly tests."""
    tmp = tmp_path_factory.mktemp("serve")
    config = ServeConfig(
        port=0,
        workers=2,
        cache_dir=str(tmp / "cache"),
        store=str(tmp / "runs"),
        stream=str(tmp / "events.jsonl"),
        timeout=120,
    )
    with ServerThread(config) as (host, port):
        yield host, port, tmp


class TestRoundTrip:
    def test_health_and_stats(self, server):
        host, port, _ = server
        client = ServeClient(host, port)
        health = client.health()
        assert health["ok"] and health["workers"] == 2
        stats = client.stats()
        assert stats["max_queue"] == 64
        assert set(stats["counters"]) >= {
            "submitted", "executed", "coalesced", "served_cached",
            "rejected_queue", "rejected_rate", "dedupe_hit_rate",
        }

    def test_submit_report_matches_direct_execution(self, server):
        """The serve path is metrics-identical to an in-process run."""
        host, port, _ = server
        payload = ServeClient(host, port).submit(SMALL)
        assert payload["job"]["status"] == "ok"
        direct = execute_request(RunRequest.from_dict(SMALL))
        assert canonical_report_json(payload["report"]) == (
            canonical_report_json(report_to_dict(direct))
        )

    def test_resubmission_served_from_memory(self, server):
        host, port, _ = server
        client = ServeClient(host, port)
        first = client.submit({"benchmark": "lu", "params": {"n": 16}})
        again = client.submit({"benchmark": "lu", "params": {"n": 16}})
        assert again["job"]["source"] == "cache"
        assert again["report"] == first["report"]

    def test_submit_accepts_runrequest_objects(self, server):
        host, port, _ = server
        payload = ServeClient(host, port).submit(
            RunRequest(benchmark="fft", params={"n": 64})
        )
        assert payload["job"]["benchmark"] == "fft"
        assert payload["job"]["status"] == "ok"

    def test_no_wait_ack_then_result_endpoint(self, server):
        host, port, _ = server
        client = ServeClient(host, port)
        request = {"benchmark": "jacobi", "params": {"n": 24}}
        ack = client.submit(request, wait=False)
        request_hash = ack["job"]["request_hash"]
        assert ack["job"]["state"] in ("queued", "running", "done")
        done = client.result(request_hash, wait=True, timeout=60)
        assert done["job"]["state"] == "done"
        assert done["report"]["flop_count"] > 0
        # and the hash is the client-computable content hash
        assert request_hash == RunRequest.from_dict(request).content_hash()

    def test_unknown_result_is_404(self, server):
        host, port, _ = server
        with pytest.raises(ServeError) as err:
            ServeClient(host, port).result("deadbeef" * 8)
        assert err.value.status == 404

    def test_malformed_submissions_are_400(self, server):
        host, port, _ = server
        client = ServeClient(host, port)
        with pytest.raises(ServeError) as err:
            client.submit({"params": {"n": 4}})  # no benchmark
        assert err.value.status == 400
        with pytest.raises(ServeError) as err:
            client.submit({"benchmark": "fft", "tier": "nonsense"})
        assert err.value.status == 400
        with pytest.raises(ServeError) as err:
            client._request("POST", "/submit", {"request": "not-a-dict"})
        assert err.value.status == 400

    def test_worker_failure_reported_not_fatal(self, server):
        """An unknown benchmark fails in the worker; the server keeps
        serving and reports the error in the payload."""
        host, port, _ = server
        client = ServeClient(host, port)
        payload = client.submit({"benchmark": "no-such-benchmark"})
        assert payload["job"]["status"] == "failed"
        assert "no-such-benchmark" in payload["job"]["error"]
        assert "report" not in payload
        # the server survived
        assert client.health()["ok"]


class TestConcurrentDedupe:
    def test_16_clients_with_duplicates_coalesce(self, server):
        """8 duplicate + 8 unique concurrent submissions: the duplicate
        group costs exactly one execution and every rider receives the
        identical canonical report."""
        host, port, _ = server
        duplicate = {"benchmark": "md", "params": {"n_p": 8, "steps": 2}}
        payloads = {}
        errors = []

        def submit(slot: int, request: dict) -> None:
            try:
                client = ServeClient(host, port, client_id=f"c{slot}")
                payloads[slot] = client.submit(request, busy_retries=16)
            except Exception as exc:  # pragma: no cover - assertion aid
                errors.append(exc)

        threads = [
            threading.Thread(target=submit, args=(i, dict(duplicate)))
            for i in range(8)
        ] + [
            threading.Thread(target=submit, args=(8 + i, small_request(i)))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert len(payloads) == 16

        dup = [payloads[i] for i in range(8)]
        assert all(p["job"]["status"] in ("ok", "cached") for p in dup)
        executed = [p for p in dup if p["job"]["source"] == "executed"]
        assert len(executed) == 1, "duplicates must coalesce to one execution"
        # >= 7/8 dedupe hit rate within the duplicate group
        assert sum(
            p["job"]["source"] in ("coalesced", "cache") for p in dup
        ) >= 7
        reports = {canonical_report_json(p["report"]) for p in dup}
        assert len(reports) == 1, "every client must see the same report"

        unique = [payloads[8 + i] for i in range(8)]
        assert all(p["job"]["status"] in ("ok", "cached") for p in unique)
        hashes = {p["job"]["request_hash"] for p in unique}
        assert len(hashes) == 8

    def test_counters_account_for_dedupe(self, server):
        host, port, _ = server
        counters = ServeClient(host, port).stats()["counters"]
        assert counters["submitted"] == (
            counters["executed"]
            + counters["coalesced"]
            + counters["served_cached"]
        )
        # the 8-duplicate group cost one execution: 7 rode along,
        # either coalesced onto the in-flight job or served from memory
        assert counters["deduped"] >= 7


class TestEventStreaming:
    def test_live_events_validate_against_schema(self, server):
        host, port, _ = server
        events = []
        ready = threading.Event()

        def watch() -> None:
            client = ServeClient(host, port)
            gen = client.watch(count=3, timeout=60)
            first = next(gen)  # replayed run_started
            events.append(first)
            ready.set()
            events.extend(gen)

        watcher = threading.Thread(target=watch)
        watcher.start()
        assert ready.wait(timeout=30)
        client = ServeClient(host, port)
        client.submit({"benchmark": "gather", "params": {"n": 256}})
        client.submit({"benchmark": "scatter", "params": {"n": 256}})
        watcher.join(timeout=60)
        assert [e["kind"] for e in events] == [
            "run_started", "job_finished", "job_finished",
        ]
        assert validate_stream(events) == []
        finished = events[1:]
        assert {e["benchmark"] for e in finished} == {"gather", "scatter"}
        for event in finished:
            assert event["status"] == "ok"
            assert event["run_id"]
            assert len(event["request_hash"]) == 64
            assert event["spans"] is not None

    def test_two_subscribers_see_the_same_events(self, server):
        host, port, _ = server
        seen = {0: [], 1: []}
        ready = threading.Barrier(3, timeout=30)

        def watch(slot: int) -> None:
            gen = ServeClient(host, port).watch(count=2, timeout=60)
            seen[slot].append(next(gen))
            ready.wait()
            seen[slot].extend(gen)

        watchers = [
            threading.Thread(target=watch, args=(slot,)) for slot in (0, 1)
        ]
        for w in watchers:
            w.start()
        ready.wait()
        ServeClient(host, port).submit(
            {"benchmark": "reduction", "params": {"n": 512}}
        )
        for w in watchers:
            w.join(timeout=60)
        assert [e["kind"] for e in seen[0]] == ["run_started", "job_finished"]
        # both watchers got the identical job_finished record
        assert seen[0][1] == seen[1][1]

    def test_stream_file_sink_written_and_valid(self, server):
        host, port, tmp = server
        events = read_stream(tmp / "events.jsonl")
        assert validate_stream(events) == []
        kinds = {e["kind"] for e in events}
        assert kinds >= {"run_started", "job_finished"}


class TestAdmissionControl:
    def test_queue_full_answers_429_with_retry_after(self, tmp_path):
        config = ServeConfig(port=0, workers=1, max_queue=0, warmup=False)
        with ServerThread(config) as (host, port):
            client = ServeClient(host, port)
            with pytest.raises(ServeError) as err:
                client.submit(SMALL, wait=False)
            assert err.value.status == 429
            assert err.value.busy
            assert err.value.retry_after is not None
            assert err.value.retry_after > 0
            counters = client.stats()["counters"]
            assert counters["rejected_queue"] == 1
            assert counters["submitted"] == 0

    def test_busy_retries_exhaust_then_raise(self, tmp_path):
        config = ServeConfig(port=0, workers=1, max_queue=0, warmup=False)
        with ServerThread(config) as (host, port):
            client = ServeClient(host, port)
            with pytest.raises(ServeError):
                client.submit(SMALL, wait=False, busy_retries=2)
            assert client.stats()["counters"]["rejected_queue"] == 3

    def test_bucket_eviction_bounds_memory(self):
        """The unbounded-growth fix: a long-lived bucket table must
        shed buckets once they are idle long enough to be full again —
        a full bucket is indistinguishable from an absent one."""
        from repro.serve.state import TokenBucket

        now = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2, clock=lambda: now[0])
        for i in range(500):
            assert bucket.allow(f"client-{i}") == 0.0
        assert len(bucket) == 500
        # idle past the refill horizon (burst/rate = 2 s): every bucket
        # has refilled to full and the next allow() sweeps them all
        now[0] = 3.0
        bucket.allow("client-new")
        assert len(bucket) == 1  # only the client that just spent a token

    def test_eviction_never_grants_extra_tokens(self):
        """Eviction must be lossless: a drained client re-appearing
        after eviction gets exactly the full burst, nothing more."""
        from repro.serve.state import TokenBucket

        now = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2, clock=lambda: now[0])
        assert bucket.allow("a") == 0.0
        assert bucket.allow("a") == 0.0
        assert bucket.allow("a") == pytest.approx(1.0)  # drained
        now[0] = 10.0  # long idle => evicted at next sweep
        bucket.allow("other")
        assert "a" not in bucket._buckets
        # fresh bucket == full bucket: exactly burst tokens, no more
        assert bucket.allow("a") == 0.0
        assert bucket.allow("a") == 0.0
        assert bucket.allow("a") == pytest.approx(1.0)

    def test_active_bucket_survives_the_sweep(self):
        """A client mid-drain must keep its (partial) bucket across a
        sweep — eviction only touches effectively-full buckets."""
        from repro.serve.state import TokenBucket

        now = [0.0]
        bucket = TokenBucket(rate=1.0, burst=4, clock=lambda: now[0])
        now[0] = 3.0
        for _ in range(4):
            assert bucket.allow("busy") == 0.0
        # at t=5 the sweep fires (scheduled for t=4) with "busy" only
        # refilled to 2 of 4 tokens: it must survive
        now[0] = 5.0
        assert bucket.allow("nudge-sweep") == 0.0
        assert "busy" in bucket._buckets
        assert bucket.allow("busy") == 0.0  # spends a refilled token
        assert bucket.allow("busy") == 0.0
        assert bucket.allow("busy") == pytest.approx(1.0)  # empty again

    def test_rate_limit_is_per_client(self, tmp_path):
        config = ServeConfig(
            port=0, workers=1, warmup=False,
            rate_limit=0.001, rate_burst=1,
        )
        with ServerThread(config) as (host, port):
            a = ServeClient(host, port, client_id="client-a")
            b = ServeClient(host, port, client_id="client-b")
            a.submit(SMALL, wait=False)  # spends a's only token
            with pytest.raises(ServeError) as err:
                a.submit(SMALL, wait=False)
            assert err.value.status == 429
            assert err.value.retry_after > 0
            # b has its own bucket and is still admitted
            b.submit(SMALL, wait=False)
            counters = a.stats()["counters"]
            assert counters["rejected_rate"] == 1
            # rate limiting never reaches the dedupe/admission layer
            assert counters["submitted"] == 2


class TestTimeoutRecovery:
    @pytest.mark.skipif(
        not _pool_supported(), reason="process pool unavailable"
    )
    def test_queued_sibling_survives_pool_restart(self, monkeypatch):
        """A sibling queued behind a worker that times out must still
        complete: its timeout clock only starts once it reaches the
        pool (slot wait is untimed), and if the restart cancels its
        submission it is resubmitted instead of the CancelledError
        killing the task — which left the job "running" forever and
        leaked admission slots."""
        from repro.engine.pool import ENV_INJECT_SLEEP

        monkeypatch.setenv(ENV_INJECT_SLEEP, "fft:10")
        config = ServeConfig(port=0, workers=1, timeout=4.0)
        with ServerThread(config) as (host, port):
            client = ServeClient(host, port)
            slow = client.submit(
                {"benchmark": "fft", "params": {"n": 64}}, wait=False
            )
            # queued behind the stuck worker; its pool future is
            # cancelled when fft's timeout abandons the executor
            sibling = client.submit({"benchmark": "lu", "params": {"n": 16}})
            assert sibling["job"]["status"] == "ok"
            assert sibling["report"]["flop_count"] > 0
            timed_out = client.result(
                slow["job"]["request_hash"], wait=True, timeout=30
            )
            assert timed_out["job"]["status"] == "timeout"
            assert "timed out" in timed_out["job"]["error"]
            # both jobs finished: no admission slot leaked
            assert client.stats()["active"] == 0

    def test_execute_resubmits_cancelled_pool_future(self):
        """Unit cut of the restart race: a pool restart cancels a
        still-queued submission (CancelledError, a BaseException);
        _execute must resubmit at the same attempt number and finish
        the job instead of dying with the future unresolved."""
        import asyncio

        from repro.serve.server import ServeApp

        calls = []

        class FlakyPool:
            workers = 1
            generation = 1
            process_based = False

            async def submit_async(self, request, *, attempt, spans):
                calls.append(attempt)
                if len(calls) == 1:
                    # what wrap_future raises when restart() cancelled
                    # the queued submission
                    raise asyncio.CancelledError
                return {"report": {"flop_count": 1}, "compute_time_s": 0.0}

            def restart(self):
                pass

            def shutdown(self, wait=False):
                pass

        async def main():
            app = ServeApp(ServeConfig(workers=1, warmup=False))
            app._loop = asyncio.get_running_loop()
            app._shutdown = asyncio.Event()
            app.pool = FlakyPool()
            request = RunRequest(benchmark="fft", params={"n": 64})
            job_future = app._loop.create_future()
            from repro.serve.state import Job

            job = Job(
                request=request,
                request_hash=request.content_hash(),
                future=job_future,
            )
            app.jobs[job.request_hash] = job
            app._active_count += 1
            await asyncio.wait_for(app._execute(job), 10)
            return app, job

        app, job = asyncio.run(main())
        assert job.status == "ok"
        assert job.attempts == 1  # the cancelled try did not count
        assert job.report_record == {"flop_count": 1}
        assert job.future.done()
        assert calls == [1, 1]
        assert app._active() == 0


class TestDiskCacheFallback:
    def test_result_wait_on_cache_materialized_job(self, tmp_path):
        """``/result?wait=1`` for a job this server instance never ran
        must materialize the disk-cache hit and answer 200 — such jobs
        carry no future to wait on."""
        request = {"benchmark": "lu", "params": {"n": 24}}
        cache = str(tmp_path / "cache")
        config = ServeConfig(port=0, workers=1, cache_dir=cache, timeout=120)
        with ServerThread(config) as (host, port):
            first = ServeClient(host, port).submit(request)
            assert first["job"]["status"] == "ok"
            request_hash = first["job"]["request_hash"]
        fresh = ServeConfig(port=0, workers=1, cache_dir=cache, warmup=False)
        with ServerThread(fresh) as (host, port):
            client = ServeClient(host, port)
            done = client.result(request_hash, wait=True, timeout=5)
            assert done["job"]["state"] == "done"
            assert done["job"]["status"] == "cached"
            assert done["report"] == first["report"]
            # submitting the same request also waits cleanly on the
            # materialized (future-less) job
            again = client.submit(request)
            assert again["job"]["source"] == "cache"
            assert again["report"] == first["report"]

    def test_done_jobs_evicted_but_still_served(self, tmp_path):
        """``max_done_jobs`` bounds completed-job memory; evicted
        hashes are still answered from the disk cache, not re-run."""
        config = ServeConfig(
            port=0, workers=1, warmup=False, timeout=120,
            cache_dir=str(tmp_path / "cache"), max_done_jobs=2,
        )
        with ServerThread(config) as (host, port):
            client = ServeClient(host, port)
            hashes = [
                client.submit(small_request(i))["job"]["request_hash"]
                for i in range(4)
            ]
            stats = client.stats()
            assert stats["jobs"] <= 2
            assert stats["active"] == 0
            payload = client.result(hashes[0], wait=True, timeout=10)
            assert payload["job"]["state"] == "done"
            assert payload["report"]["flop_count"] > 0
            again = client.submit(small_request(0))
            assert again["job"]["source"] == "cache"
            assert client.stats()["counters"]["executed"] == 4


class TestQueryValidation:
    def test_bad_events_count_is_400(self, server):
        host, port, _ = server
        with pytest.raises(ServeError) as err:
            ServeClient(host, port)._request("GET", "/events?count=banana")
        assert err.value.status == 400

    def test_bad_result_timeout_is_400(self, server):
        host, port, _ = server
        with pytest.raises(ServeError) as err:
            ServeClient(host, port)._request(
                "GET", f"/result/{'0' * 64}?wait=1&timeout=banana"
            )
        assert err.value.status == 400


class TestEphemeralPortAnnounce:
    def test_run_server_reports_bound_port(self):
        """``--port 0`` callers learn the actually bound port via the
        on_bound callback (the CLI prints it from there)."""
        from repro.serve.server import run_server

        bound = {}
        ready = threading.Event()

        def boot() -> None:
            run_server(
                ServeConfig(port=0, workers=1, warmup=False),
                on_bound=lambda addr: (bound.update(addr=addr), ready.set()),
            )

        thread = threading.Thread(target=boot, daemon=True)
        thread.start()
        assert ready.wait(timeout=30)
        host, port = bound["addr"]
        assert port != 0
        client = ServeClient(host, port)
        assert client.health()["ok"]
        client.shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive()


class TestPersistence:
    def test_sharded_store_and_sidecar_written(self, server):
        host, port, tmp = server
        ServeClient(host, port).submit(SMALL)
        shards = sorted((tmp / "runs" / "shards").glob("*.jsonl"))
        assert shards, "server must persist to a sharded store"
        records = []
        for shard in shards:
            with open(shard, encoding="utf-8") as fh:
                for line in fh:
                    record = json.loads(line)
                    records.append(record)
                    prefix = record["request_hash"][:2]
                    assert shard.name == f"{prefix}.jsonl"
        run_id = ServeClient(host, port).health()["run_id"]
        assert all(r["run_id"] == run_id for r in records)
        sidecar = tmp / "runs" / "stats" / f"{run_id}.json"
        assert sidecar.is_file()
        stats = json.loads(sidecar.read_text())
        assert stats["jobs"]
        assert stats["workers"] == 2

    def test_store_readable_by_engine_cli_layer(self, server):
        host, port, tmp = server
        from repro.engine import open_store

        store = open_store(tmp / "runs")
        run_id = store.resolve("latest")
        records = store.run_records(run_id)
        assert records
        assert all(r["report"] is not None for r in records if r["status"] == "ok")


class TestWarmPoolThroughput:
    @pytest.mark.skipif(
        not _pool_supported(), reason="process pool unavailable"
    )
    def test_warm_pool_at_least_2x_cold_per_suite_pools(self, tmp_path):
        """The serve milestone's headline: resident warm workers beat
        paying interpreter start + import + pool spawn per suite by
        >= 2x jobs/s on the n-body-class small-job subset.

        The cold side runs each mini-suite in a fresh subprocess: with
        the ``fork`` start method an in-process "cold" pool inherits
        this fully-imported parent and pays none of the startup cost it
        is supposed to model, which made an in-process baseline noise.
        """
        import os
        import subprocess
        import sys

        import repro

        requests = [RunRequest.from_dict(small_request(i)) for i in range(4)]

        config = ServeConfig(port=0, workers=2, timeout=120)
        with ServerThread(config) as (host, port):
            client = ServeClient(host, port)
            started = time.perf_counter()
            for request in requests:
                payload = client.submit(request)
                assert payload["job"]["status"] == "ok"
            warm_s = time.perf_counter() - started

        from pathlib import Path

        src = str(Path(repro.__file__).resolve().parents[1])
        cold_script = (
            "import json, sys\n"
            "from repro.engine import Engine, EngineConfig\n"
            "from repro.engine.jobs import RunRequest\n"
            "request = RunRequest.from_dict(json.loads(sys.argv[1]))\n"
            "results = Engine(EngineConfig(jobs=2, timeout=120)).run([request])\n"
            "assert results[0].status == 'ok', results[0].error\n"
        )
        env = {**os.environ, "PYTHONPATH": src}
        started = time.perf_counter()
        for request in requests:
            # one cold interpreter + engine (fresh worker pool) per
            # mini-suite: the pre-serve deployment model
            subprocess.run(
                [sys.executable, "-c", cold_script,
                 json.dumps(request.to_dict())],
                env=env, check=True, timeout=300,
            )
        cold_s = time.perf_counter() - started

        warm_rate = len(requests) / warm_s
        cold_rate = len(requests) / cold_s
        assert warm_rate >= 2 * cold_rate, (
            f"warm {warm_rate:.2f} jobs/s vs cold {cold_rate:.2f} jobs/s"
        )
