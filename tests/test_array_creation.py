"""Tests for DistArray creation routines."""

import numpy as np
import pytest

from repro.array.creation import (
    arange,
    empty,
    from_numpy,
    full,
    ones,
    random_uniform,
    zeros,
)
from repro.layout.spec import Axis, parse_layout


class TestCreation:
    def test_zeros(self, session):
        x = zeros(session, (3, 4), "(:serial,:)")
        assert x.shape == (3, 4)
        assert not x.np.any()
        assert x.layout.axes == (Axis.SERIAL, Axis.PARALLEL)

    def test_ones_dtype(self, session):
        x = ones(session, (4,), "(:)", dtype=np.float32)
        assert x.dtype == np.float32
        assert (x.np == 1).all()

    def test_full(self, session):
        x = full(session, (2, 2), "(:,:)", 7.5)
        assert (x.np == 7.5).all()

    def test_empty_shape(self, session):
        x = empty(session, (5,), "(:)")
        assert x.shape == (5,)

    def test_arange(self, session):
        x = arange(session, 6)
        assert np.array_equal(x.np, np.arange(6.0))

    def test_from_numpy_copies(self, session):
        src = np.arange(4.0)
        x = from_numpy(session, src, "(:)")
        src[0] = 99.0
        assert x.np[0] == 0.0

    def test_layout_object_accepted(self, session):
        layout = parse_layout("(:)", (4,))
        x = zeros(session, (4,), layout)
        assert x.layout is layout

    def test_layout_object_shape_mismatch(self, session):
        layout = parse_layout("(:)", (4,))
        with pytest.raises(ValueError):
            zeros(session, (5,), layout)

    def test_random_uniform_deterministic(self, session):
        a = random_uniform(session, (8,), "(:)", seed=7)
        b = random_uniform(session, (8,), "(:)", seed=7)
        assert np.array_equal(a.np, b.np)

    def test_random_uniform_bounds(self, session):
        x = random_uniform(session, (100,), "(:)", seed=1, low=2.0, high=3.0)
        assert (x.np >= 2.0).all() and (x.np < 3.0).all()

    def test_random_uniform_rng_object(self, session, rng):
        x = random_uniform(session, (4,), "(:)", rng=rng)
        assert x.shape == (4,)
