"""Engine observability: per-run scheduler stats and perf-regression gates.

The paper characterizes every benchmark by measured busy/elapsed time
and FLOP rates (§1.5); this module gives the *engine itself* the same
treatment.  A :class:`RunStats` record aggregates one engine
invocation — throughput, per-job queue wait and compute time, worker
utilization, cache hit rate, retry/timeout histograms and a wall-clock
phase breakdown — and is serialized next to the run store
(``<store>.stats/<run_id>.json``) so every later performance PR can be
measured against it.

Two consumers sit on top:

* ``engine stats <run>`` renders a stored run's :class:`RunStats` as a
  human table or JSON;
* ``engine check <run> --baseline <run|file> --tolerance PCT``
  compares the per-benchmark §1.5 metrics of two runs (or a run
  against a saved trajectory point) and exits non-zero on regression —
  the perf gate.  :func:`trajectory_point` emits the
  ``BENCH_*.json``-compatible record that ``--bench-out`` writes.

Stats are *metadata about the run*, never part of the deterministic
reports: wall-clock numbers live only here, in the trace and in the
store envelope.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Stats/trajectory schema version.  Version 2 adds per-job ``spans``
#: summaries (repro.obs).  Readers are tolerant: unknown keys from
#: newer minor additions are dropped, missing keys take their
#: defaults, and only a sidecar declaring a schema *newer* than this
#: reader understands is rejected (with a clear message, not a
#: KeyError).
STATS_SCHEMA_VERSION = 2

#: Report metrics gated by ``engine check``: (record key, label,
#: direction) where direction +1 means "larger is a regression" (times,
#: work) and -1 means "smaller is a regression" (rates).
CHECK_METRICS: Tuple[Tuple[str, str, int], ...] = (
    ("busy_time_s", "busy (s)", +1),
    ("elapsed_time_s", "elapsed (s)", +1),
    ("flop_count", "FLOPs", +1),
    ("busy_floprate_mflops", "MFLOP/s", -1),
)


@dataclass
class JobStats:
    """Scheduler-level numbers of one job within a run."""

    benchmark: str
    status: str
    attempts: int
    queue_wait_s: float
    compute_time_s: float
    wall_time_s: float
    #: span summary forwarded by the worker's SpanCollector (None when
    #: the run executed without span collection — pre-v2 sidecars too)
    spans: Optional[Dict] = None


def _filter_fields(cls, record: Mapping) -> Dict:
    """Restrict a mapping to ``cls``'s dataclass fields.

    Dropping unknown keys (instead of exploding in ``cls(**record)``)
    is what lets an older reader open a sidecar written by a newer
    minor schema; missing optional keys fall back to field defaults.
    """
    known = {f.name for f in fields(cls)}
    return {k: v for k, v in record.items() if k in known}


@dataclass
class RunStats:
    """Aggregated scheduler metrics of one engine invocation."""

    run_id: str
    n_jobs: int
    #: worker processes the run executed with (None when unknown, e.g.
    #: stats recomputed from an old store without a sidecar)
    workers: Optional[int]
    duration_s: float
    status_counts: Dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_hit_rate: float = 0.0
    #: attempts beyond the first, summed over jobs
    retries: int = 0
    timeouts: int = 0
    #: attempts -> number of jobs that needed that many
    attempts_histogram: Dict[int, int] = field(default_factory=dict)
    throughput_jobs_per_s: float = 0.0
    queue_wait_total_s: float = 0.0
    queue_wait_mean_s: float = 0.0
    queue_wait_max_s: float = 0.0
    compute_total_s: float = 0.0
    compute_mean_s: float = 0.0
    compute_max_s: float = 0.0
    #: busy-worker seconds / (workers × duration); None when workers
    #: is unknown
    worker_utilization: Optional[float] = None
    #: wall-clock breakdown per engine phase (cache lookup, execute, …)
    phases: Dict[str, float] = field(default_factory=dict)
    jobs: List[JobStats] = field(default_factory=list)
    #: per-benchmark §1.5 metrics (the ``engine check`` comparison set)
    benchmarks: Dict[str, Dict[str, float]] = field(default_factory=dict)

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-safe dictionary (inverse of :meth:`from_dict`)."""
        record = asdict(self)
        record["schema"] = STATS_SCHEMA_VERSION
        record["attempts_histogram"] = {
            str(k): v for k, v in self.attempts_histogram.items()
        }
        return record

    @classmethod
    def from_dict(cls, record: Mapping) -> "RunStats":
        """Rebuild from :meth:`to_dict` output.

        Tolerant across schema versions: a v1 sidecar (no per-job
        ``spans``) loads with the new fields defaulted, and unknown
        keys from newer *minor* additions are ignored.  A sidecar
        declaring a schema newer than :data:`STATS_SCHEMA_VERSION` is
        rejected with a clear message instead of a confusing KeyError
        further down.
        """
        record = dict(record)
        schema = record.pop("schema", None)
        if isinstance(schema, (int, float)) and schema > STATS_SCHEMA_VERSION:
            raise ValueError(
                f"stats sidecar uses schema v{int(schema)}, newer than "
                f"this reader's v{STATS_SCHEMA_VERSION}; upgrade repro "
                "to inspect this run"
            )
        record["attempts_histogram"] = {
            int(k): v for k, v in record.get("attempts_histogram", {}).items()
        }
        record["jobs"] = [
            JobStats(**_filter_fields(JobStats, j))
            for j in record.get("jobs", [])
        ]
        return cls(**_filter_fields(cls, record))

    # -- rendering ------------------------------------------------------
    def table(self) -> str:
        """Human-readable multi-section rendering."""
        from repro.suite.tables import format_table

        counts = "  ".join(
            f"{status}={n}" for status, n in sorted(self.status_counts.items())
        )
        histogram = (
            " ".join(
                f"{attempts}:{n}"
                for attempts, n in sorted(self.attempts_histogram.items())
            )
            or "-"
        )
        util = (
            f"{100 * self.worker_utilization:.1f}%"
            if self.worker_utilization is not None
            else "-"
        )
        workers = str(self.workers) if self.workers is not None else "?"
        lines = [
            f"run {self.run_id}",
            f"  jobs        {self.n_jobs} ({counts})  workers {workers}",
            f"  duration    {self.duration_s:.3f}s  "
            f"throughput {self.throughput_jobs_per_s:.2f} jobs/s",
            f"  cache       {self.cache_hits}/{self.n_jobs} hits "
            f"({100 * self.cache_hit_rate:.1f}%)",
            f"  retries     {self.retries}  timeouts {self.timeouts}  "
            f"attempts histogram {histogram}",
            f"  queue wait  total {self.queue_wait_total_s:.3f}s  "
            f"mean {self.queue_wait_mean_s:.3f}s  "
            f"max {self.queue_wait_max_s:.3f}s",
            f"  compute     total {self.compute_total_s:.3f}s  "
            f"mean {self.compute_mean_s:.3f}s  "
            f"max {self.compute_max_s:.3f}s",
            f"  utilization {util}",
        ]
        if self.phases:
            breakdown = "  ".join(
                f"{name}={value:.3f}" for name, value in self.phases.items()
            )
            lines.append(f"  phases      {breakdown}")
        executed = [job for job in self.jobs if job.status != "cached"]
        if executed:
            lines.append("")
            lines.extend(
                latency_histogram_lines(
                    "queue-wait histogram",
                    [job.queue_wait_s for job in executed],
                )
            )
            lines.extend(
                latency_histogram_lines(
                    "compute histogram",
                    [job.compute_time_s for job in executed],
                )
            )
        if self.jobs:
            rows = [
                [
                    job.benchmark,
                    job.status,
                    str(job.attempts),
                    f"{job.queue_wait_s:.3f}",
                    f"{job.compute_time_s:.3f}",
                    f"{job.wall_time_s:.3f}",
                ]
                for job in self.jobs
            ]
            lines.append("")
            lines.append(
                format_table(
                    ["Benchmark", "Status", "Att", "Queue (s)", "Compute (s)",
                     "Wall (s)"],
                    rows,
                )
            )
        spanned = [job for job in self.jobs if job.spans]
        if spanned:
            total_flops = sum(int(j.spans.get("flop_count", 0)) for j in spanned)
            total_bytes = sum(
                int(j.spans.get("network_bytes", 0)) for j in spanned
            )
            total_busy = sum(
                float(j.spans.get("busy_time_s", 0.0)) for j in spanned
            )
            total_elapsed = sum(
                float(j.spans.get("elapsed_time_s", 0.0)) for j in spanned
            )
            rows = [
                [
                    job.benchmark,
                    str(job.spans.get("spans", 0)),
                    str(job.spans.get("iterations", 0)),
                    f"{float(job.spans.get('busy_time_s', 0.0)):.6f}",
                    f"{float(job.spans.get('elapsed_time_s', 0.0)):.6f}",
                    f"{int(job.spans.get('flop_count', 0)):,}",
                    f"{int(job.spans.get('network_bytes', 0)):,}",
                ]
                for job in spanned
            ]
            lines.append("")
            lines.append(
                f"  spans       {len(spanned)}/{self.n_jobs} jobs traced  "
                f"sim busy {total_busy:.6f}s  sim elapsed {total_elapsed:.6f}s  "
                f"flops {total_flops:,}  net bytes {total_bytes:,}"
            )
            lines.append(
                format_table(
                    ["Benchmark", "Spans", "Iters", "Sim busy (s)",
                     "Sim elapsed (s)", "FLOPs", "Net bytes"],
                    rows,
                )
            )
        return "\n".join(lines)


def latency_histogram_lines(
    title: str, values: List[float], *, width: int = 24
) -> List[str]:
    """Render seconds samples into the telemetry latency buckets.

    Shares :data:`repro.obs.telemetry.LATENCY_BUCKETS_S` with the
    ``/metrics`` exposition, so ``engine stats`` sections and Prometheus
    scrapes bucket identically — and old runs' sidecars (which store
    per-job seconds, not buckets) benefit from the new formatting.
    Empty buckets are skipped; bars scale to the fullest bucket.
    """
    from bisect import bisect_left

    from repro.obs.telemetry import LATENCY_BUCKETS_S

    counts = [0] * (len(LATENCY_BUCKETS_S) + 1)
    for value in values:
        counts[bisect_left(LATENCY_BUCKETS_S, value)] += 1
    top = max(counts)
    lines = [f"  {title} ({len(values)} jobs)"]
    if top == 0:
        return lines
    labels = [f"<={boundary:g}s" for boundary in LATENCY_BUCKETS_S]
    labels.append(f">{LATENCY_BUCKETS_S[-1]:g}s")
    label_width = max(len(label) for label in labels)
    for label, count in zip(labels, counts):
        if not count:
            continue
        bar = "#" * max(1, round(count / top * width))
        lines.append(f"    {label:<{label_width}}  {bar} {count}")
    return lines


def _aggregate(
    run_id: str,
    jobs: List[JobStats],
    benchmarks: Dict[str, Dict[str, float]],
    *,
    workers: Optional[int],
    duration_s: float,
    phases: Optional[Mapping[str, float]] = None,
) -> RunStats:
    """Fold per-job stats into one :class:`RunStats`."""
    status_counts: Dict[str, int] = {}
    histogram: Dict[int, int] = {}
    retries = 0
    for job in jobs:
        status_counts[job.status] = status_counts.get(job.status, 0) + 1
        histogram[job.attempts] = histogram.get(job.attempts, 0) + 1
        retries += max(0, job.attempts - 1)
    waits = [job.queue_wait_s for job in jobs]
    computes = [job.compute_time_s for job in jobs]
    n = len(jobs)
    cache_hits = status_counts.get("cached", 0)
    compute_total = sum(computes)
    utilization = None
    if workers is not None and duration_s > 0:
        utilization = compute_total / (workers * duration_s)
    return RunStats(
        run_id=run_id,
        n_jobs=n,
        workers=workers,
        duration_s=duration_s,
        status_counts=status_counts,
        cache_hits=cache_hits,
        cache_hit_rate=cache_hits / n if n else 0.0,
        retries=retries,
        timeouts=status_counts.get("timeout", 0),
        attempts_histogram=histogram,
        throughput_jobs_per_s=n / duration_s if duration_s > 0 else 0.0,
        queue_wait_total_s=sum(waits),
        queue_wait_mean_s=sum(waits) / n if n else 0.0,
        queue_wait_max_s=max(waits) if waits else 0.0,
        compute_total_s=compute_total,
        compute_mean_s=compute_total / n if n else 0.0,
        compute_max_s=max(computes) if computes else 0.0,
        worker_utilization=utilization,
        phases=dict(phases or {}),
        jobs=jobs,
        benchmarks=benchmarks,
    )


def _benchmark_metrics(records: Sequence[Mapping]) -> Dict[str, Dict[str, float]]:
    """Per-benchmark §1.5 metric map of one run's record list.

    Only records carrying a report contribute (failed/timed-out jobs
    have none — their benchmarks then surface as *missing* in a check
    against a baseline that had them).
    """
    from repro.engine.store import keyed_by_benchmark

    out: Dict[str, Dict[str, float]] = {}
    for key, record in keyed_by_benchmark(list(records)).items():
        report = record.get("report") or {}
        metrics = {
            metric: report[metric]
            for metric, _, _ in CHECK_METRICS
            if report.get(metric) is not None
        }
        if metrics:
            out[key] = metrics
    return out


def stats_from_results(
    run_id: str,
    results: Sequence,
    *,
    workers: Optional[int],
    duration_s: float,
    phases: Optional[Mapping[str, float]] = None,
) -> RunStats:
    """Build stats from in-memory :class:`RunResult` s (engine path)."""
    jobs = [
        JobStats(
            benchmark=result.request.benchmark,
            status=result.status,
            attempts=result.attempts,
            queue_wait_s=result.queue_wait_s,
            compute_time_s=result.compute_time_s,
            wall_time_s=result.wall_time_s,
            spans=getattr(result, "spans", None),
        )
        for result in results
    ]
    pseudo_records = [
        {"benchmark": r.request.benchmark, "report": r.report_record}
        for r in results
    ]
    return _aggregate(
        run_id,
        jobs,
        _benchmark_metrics(pseudo_records),
        workers=workers,
        duration_s=duration_s,
        phases=phases,
    )


class StatsAccumulator:
    """Fold results into a :class:`RunStats` one at a time, bounded.

    :func:`stats_from_results` re-walks every retained result, which is
    fine for a batch engine run but O(n²) over a long-lived server's
    lifetime — and forces keeping every :class:`RunResult` (report
    dictionaries included) alive forever.  The accumulator folds each
    result exactly once into running aggregates, retains only the
    newest ``keep_jobs`` per-job rows for the sidecar table, and
    :meth:`snapshot` emits a :class:`RunStats` whose aggregate fields
    match ``stats_from_results`` over everything ever added (the
    ``jobs`` list is the only truncated field).
    """

    def __init__(
        self,
        run_id: str,
        *,
        workers: Optional[int] = None,
        keep_jobs: int = 256,
    ) -> None:
        self.run_id = run_id
        self.workers = workers
        self.n_jobs = 0
        self.status_counts: Dict[str, int] = {}
        self.attempts_histogram: Dict[int, int] = {}
        self.retries = 0
        self.queue_wait_total_s = 0.0
        self.queue_wait_max_s = 0.0
        self.compute_total_s = 0.0
        self.compute_max_s = 0.0
        self.benchmarks: Dict[str, Dict[str, float]] = {}
        self._bench_counts: Dict[str, int] = {}
        self.jobs: "deque[JobStats]" = deque(maxlen=max(0, keep_jobs))

    def add(self, result) -> None:
        """Fold one :class:`RunResult` into the aggregates."""
        job = JobStats(
            benchmark=result.request.benchmark,
            status=result.status,
            attempts=result.attempts,
            queue_wait_s=result.queue_wait_s,
            compute_time_s=result.compute_time_s,
            wall_time_s=result.wall_time_s,
            spans=getattr(result, "spans", None),
        )
        self.n_jobs += 1
        self.status_counts[job.status] = (
            self.status_counts.get(job.status, 0) + 1
        )
        self.attempts_histogram[job.attempts] = (
            self.attempts_histogram.get(job.attempts, 0) + 1
        )
        self.retries += max(0, job.attempts - 1)
        self.queue_wait_total_s += job.queue_wait_s
        self.queue_wait_max_s = max(self.queue_wait_max_s, job.queue_wait_s)
        self.compute_total_s += job.compute_time_s
        self.compute_max_s = max(self.compute_max_s, job.compute_time_s)
        self.jobs.append(job)
        # incremental _benchmark_metrics: same name / name#N keying as
        # keyed_by_benchmark, counting every record but storing only
        # those that carry a report
        seen = self._bench_counts.get(job.benchmark, 0)
        self._bench_counts[job.benchmark] = seen + 1
        report = result.report_record or {}
        metrics = {
            metric: report[metric]
            for metric, _, _ in CHECK_METRICS
            if report.get(metric) is not None
        }
        if metrics:
            key = f"{job.benchmark}#{seen}" if seen else job.benchmark
            self.benchmarks[key] = metrics

    def snapshot(
        self,
        *,
        duration_s: float,
        phases: Optional[Mapping[str, float]] = None,
    ) -> RunStats:
        """The current aggregates as a :class:`RunStats`."""
        n = self.n_jobs
        cache_hits = self.status_counts.get("cached", 0)
        utilization = None
        if self.workers is not None and duration_s > 0:
            utilization = self.compute_total_s / (self.workers * duration_s)
        return RunStats(
            run_id=self.run_id,
            n_jobs=n,
            workers=self.workers,
            duration_s=duration_s,
            status_counts=dict(self.status_counts),
            cache_hits=cache_hits,
            cache_hit_rate=cache_hits / n if n else 0.0,
            retries=self.retries,
            timeouts=self.status_counts.get("timeout", 0),
            attempts_histogram=dict(self.attempts_histogram),
            throughput_jobs_per_s=n / duration_s if duration_s > 0 else 0.0,
            queue_wait_total_s=self.queue_wait_total_s,
            queue_wait_mean_s=self.queue_wait_total_s / n if n else 0.0,
            queue_wait_max_s=self.queue_wait_max_s,
            compute_total_s=self.compute_total_s,
            compute_mean_s=self.compute_total_s / n if n else 0.0,
            compute_max_s=self.compute_max_s,
            worker_utilization=utilization,
            phases=dict(phases or {}),
            jobs=list(self.jobs),
            benchmarks={k: dict(v) for k, v in self.benchmarks.items()},
        )


def stats_from_records(
    records: Sequence[Mapping],
    *,
    workers: Optional[int] = None,
    duration_s: Optional[float] = None,
) -> RunStats:
    """Recompute stats from stored run records (no-sidecar fallback).

    Record timestamps are append times (job completion), so the run
    duration is estimated as the completion span plus the first-to-
    finish job's wall time; worker count is not recoverable from
    records alone, so utilization stays None unless ``workers`` is
    given.
    """
    records = list(records)
    jobs = [
        JobStats(
            benchmark=record.get("benchmark", "?"),
            status=record.get("status", "?"),
            attempts=record.get("attempts", 0),
            queue_wait_s=record.get("queue_wait_s", 0.0) or 0.0,
            compute_time_s=(
                record.get("compute_time_s")
                or record.get("wall_time_s", 0.0)
                or 0.0
            ),
            wall_time_s=record.get("wall_time_s", 0.0) or 0.0,
        )
        for record in records
    ]
    if duration_s is None:
        stamps = [r["ts"] for r in records if r.get("ts") is not None]
        duration_s = max(stamps) - min(stamps) if len(stamps) > 1 else 0.0
        if records:
            first = min(records, key=lambda r: r.get("ts") or 0.0)
            duration_s += first.get("wall_time_s", 0.0) or 0.0
    run_ids = {r.get("run_id") for r in records if r.get("run_id")}
    run_id = run_ids.pop() if len(run_ids) == 1 else "?"
    return _aggregate(
        run_id,
        jobs,
        _benchmark_metrics(records),
        workers=workers,
        duration_s=duration_s,
    )


# -- perf-regression gate ----------------------------------------------
@dataclass
class CheckRow:
    """One metric comparison of ``compare_benchmarks``."""

    benchmark: str
    metric: str
    baseline: float
    current: float
    delta_pct: float
    regressed: bool


@dataclass
class CheckReport:
    """Outcome of gating one run against a baseline."""

    tolerance_pct: float
    rows: List[CheckRow] = field(default_factory=list)
    #: benchmarks the baseline measured but the current run did not
    #: (failed, timed out, or not planned) — always a gate failure
    missing: List[str] = field(default_factory=list)
    #: benchmarks only the current run measured — previously silently
    #: unchecked; informational by default, a gate failure under
    #: ``strict`` (``engine check --strict``)
    extra: List[str] = field(default_factory=list)
    #: when True, ``extra`` benchmarks fail the gate too — a strict
    #: check demands the run and baseline cover the same set
    strict: bool = False

    @property
    def added(self) -> List[str]:
        """Backward-compatible alias of :attr:`extra`."""
        return self.extra

    @property
    def regressions(self) -> List[CheckRow]:
        return [row for row in self.rows if row.regressed]

    @property
    def ok(self) -> bool:
        if self.strict and self.extra:
            return False
        return not self.regressions and not self.missing

    def table(self) -> str:
        """Plain-text comparison table plus verdict lines."""
        from repro.suite.tables import format_table

        lines = []
        if self.rows:
            lines.append(
                format_table(
                    ["Benchmark", "Metric", "Baseline", "Current", "Δ%",
                     "Verdict"],
                    [
                        [
                            row.benchmark,
                            row.metric,
                            f"{row.baseline:.6g}",
                            f"{row.current:.6g}",
                            f"{row.delta_pct:+.2f}%",
                            "REGRESSED" if row.regressed else "ok",
                        ]
                        for row in self.rows
                    ],
                )
            )
        if self.missing:
            lines.append(f"missing vs baseline: {', '.join(self.missing)}")
        if self.extra:
            suffix = " (strict: gate failure)" if self.strict else ""
            shown = self.extra[:20]
            listing = ", ".join(shown)
            if len(self.extra) > len(shown):
                listing += f", ... {len(self.extra) - len(shown)} more"
            lines.append(
                f"extra vs baseline: {len(self.extra)} benchmark(s): "
                f"{listing}{suffix}"
            )
        if self.ok:
            verdict = (
                f"OK: no regression beyond {self.tolerance_pct:g}% across "
                f"{len(self.rows)} metric(s)"
            )
        else:
            parts = [
                f"{len(self.regressions)} regression(s)",
                f"{len(self.missing)} missing benchmark(s)",
            ]
            if self.strict and self.extra:
                parts.append(f"{len(self.extra)} extra benchmark(s)")
            verdict = (
                f"FAIL: {', '.join(parts)} at "
                f"{self.tolerance_pct:g}% tolerance"
            )
        lines.append(verdict)
        return "\n".join(lines)


def compare_benchmarks(
    current: Mapping[str, Mapping[str, float]],
    baseline: Mapping[str, Mapping[str, float]],
    tolerance_pct: float,
    *,
    strict: bool = False,
) -> CheckReport:
    """Gate ``current`` per-benchmark metrics against ``baseline``.

    Direction-aware: times and FLOP counts regress upward, rates
    regress downward (:data:`CHECK_METRICS`).  A change is a regression
    only beyond ``tolerance_pct`` percent in the worse direction;
    improvements of any size pass.  Benchmarks only the current run
    measured are reported as :attr:`CheckReport.extra` — informational
    unless ``strict``, which fails the gate on any coverage drift.
    """
    report = CheckReport(tolerance_pct=tolerance_pct, strict=strict)
    scale = tolerance_pct / 100.0
    for name in sorted(baseline):
        if name not in current:
            report.missing.append(name)
            continue
        for metric, _, direction in CHECK_METRICS:
            base = baseline[name].get(metric)
            cur = current[name].get(metric)
            if base is None or cur is None:
                continue
            if base == 0:
                delta_pct = 0.0 if cur == 0 else float("inf")
                worse = cur > 0 if direction > 0 else False
                regressed = worse and delta_pct > 0
            else:
                delta_pct = 100.0 * (cur - base) / base
                if direction > 0:
                    regressed = cur > base * (1.0 + scale)
                else:
                    regressed = cur < base * (1.0 - scale)
            report.rows.append(
                CheckRow(
                    benchmark=name,
                    metric=metric,
                    baseline=base,
                    current=cur,
                    delta_pct=delta_pct,
                    regressed=regressed,
                )
            )
    report.extra = sorted(set(current) - set(baseline))
    return report


def trajectory_point(stats: RunStats) -> Dict:
    """A ``BENCH_*.json``-compatible trajectory point of one run.

    The point pairs the gated per-benchmark §1.5 metrics with the
    engine-level numbers, so a sequence of points (one per PR/commit)
    charts both simulation and scheduler performance over time.  A
    point is itself a valid ``engine check --baseline`` file.
    """
    return {
        "schema": STATS_SCHEMA_VERSION,
        "kind": "bench",
        "run_id": stats.run_id,
        "benchmarks": {
            name: dict(metrics) for name, metrics in stats.benchmarks.items()
        },
        "engine": {
            "n_jobs": stats.n_jobs,
            "workers": stats.workers,
            "duration_s": stats.duration_s,
            "throughput_jobs_per_s": stats.throughput_jobs_per_s,
            "cache_hit_rate": stats.cache_hit_rate,
            "worker_utilization": stats.worker_utilization,
            "retries": stats.retries,
            "timeouts": stats.timeouts,
            "status_counts": dict(stats.status_counts),
        },
    }


def baseline_benchmarks(obj: Mapping) -> Dict[str, Dict[str, float]]:
    """Extract the per-benchmark metric map from any baseline document.

    Accepts a trajectory point, a serialized :class:`RunStats`, or a
    bare ``{benchmark: {metric: value}}`` mapping.
    """
    if "benchmarks" in obj and isinstance(obj["benchmarks"], Mapping):
        return {k: dict(v) for k, v in obj["benchmarks"].items()}
    return {
        k: dict(v) for k, v in obj.items() if isinstance(v, Mapping)
    }


def load_baseline_file(path) -> Dict[str, Dict[str, float]]:
    """Read a baseline document from disk (see :func:`baseline_benchmarks`)."""
    with open(path, encoding="utf-8") as fh:
        return baseline_benchmarks(json.load(fh))
