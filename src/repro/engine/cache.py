"""Content-addressed result cache.

A cached entry is keyed by *(code fingerprint, request hash)*: the
request hash covers everything the run depends on declaratively
(benchmark, machine, nodes, tier, params, seed) and the code
fingerprint covers the implementation — a digest over every ``*.py``
source file of the :mod:`repro` package.  Editing any source file
invalidates the whole cache; unchanged (request, code) pairs are served
from disk without re-simulating.

Entries live under ``<root>/<fingerprint[:16]>/<hash>.json`` and store
the full result record (status, report, wall time), written atomically
via a temporary file so a killed run never leaves a torn entry.
"""

from __future__ import annotations

import hashlib
import json
import os
from functools import lru_cache
from pathlib import Path
from typing import Dict, Optional, Union

from repro.engine.jobs import RunRequest


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 digest over the repro package's Python sources.

    Files are hashed in sorted relative-path order, path and content
    both, so renames and edits alike change the fingerprint.  Cached
    per process: the sources cannot change under a running engine.
    """
    import repro

    package_root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


class ResultCache:
    """Disk cache of finished run records, content-addressed."""

    def __init__(
        self,
        root: Union[str, Path],
        fingerprint: Optional[str] = None,
    ) -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        #: what the most recent :meth:`prune` removed — telemetry
        #: call sites read this to count evicted files and bytes
        self.last_prune: Dict[str, int] = {"files": 0, "bytes": 0}

    def _entry_path(self, request: RunRequest) -> Path:
        return self.root / self.fingerprint[:16] / f"{request.content_hash()}.json"

    def get(self, request: RunRequest) -> Optional[Dict]:
        """The stored result record, or None on a miss/torn entry.

        A hit bumps the entry's mtime (``os.utime``) so LRU eviction
        (:meth:`prune` with a byte budget) sees true access recency —
        filesystem atime is unreliable under ``relatime`` mounts.
        """
        return self.get_by_hash(request.content_hash())

    def get_by_hash(self, request_hash: str) -> Optional[Dict]:
        """The stored record for a bare request hash, or None.

        The by-hash variant of :meth:`get`, for callers that no longer
        hold the :class:`RunRequest` — the serve layer answers ``GET
        /result/<hash>`` for jobs evicted from memory this way (the
        stored record carries the request dictionary).  Hashes come off
        the wire, so anything that is not a plain hex digest is a miss,
        never a path.
        """
        if not request_hash or any(
            c not in "0123456789abcdef" for c in request_hash
        ):
            return None
        path = self.root / self.fingerprint[:16] / f"{request_hash}.json"
        try:
            with path.open(encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - entry raced away
            pass
        return record

    def put(self, request: RunRequest, record: Dict) -> Path:
        """Store a result record atomically; returns the entry path."""
        path = self._entry_path(request)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(record, sort_keys=True, indent=2), encoding="utf-8"
        )
        os.replace(tmp, path)
        return path

    def __contains__(self, request: RunRequest) -> bool:
        return self._entry_path(request).exists()

    @property
    def _bucket(self) -> Path:
        """The entry directory of the current code fingerprint."""
        return self.root / self.fingerprint[:16]

    def __len__(self) -> int:
        """Number of entries for the current code fingerprint."""
        if not self._bucket.is_dir():
            return 0
        return sum(1 for p in self._bucket.glob("*.json"))

    def clear(self) -> int:
        """Delete entries for the current fingerprint; returns count.

        Also sweeps up ``*.tmp.*`` leftovers of crashed :meth:`put`
        calls (not counted — they were never entries).
        """
        bucket = self._bucket
        removed = 0
        if bucket.is_dir():
            for path in bucket.glob("*.json"):
                path.unlink()
                removed += 1
            for path in bucket.glob("*.tmp.*"):
                path.unlink()
        return removed

    def size_bytes(self) -> int:
        """Total bytes of every entry across every fingerprint bucket."""
        if not self.root.is_dir():
            return 0
        return sum(
            p.stat().st_size for p in self.root.rglob("*.json") if p.is_file()
        )

    def prune(self, max_bytes: Optional[int] = None) -> int:
        """Drop stale buckets, tmp leftovers, and (optionally) LRU-evict.

        A code edit moves the cache to a fresh bucket and orphans the
        old one forever, so without pruning the cache directory grows
        unbounded across code revisions.  ``prune`` deletes every
        bucket other than the current fingerprint's, plus any crashed-
        ``put`` temporary files inside the current bucket, and returns
        the number of files removed.

        ``max_bytes`` additionally bounds the surviving cache: while
        the current bucket still exceeds the budget, its oldest-access
        entries (mtime order — :meth:`get` touches entries on hit) are
        evicted first.  This is what keeps a long-lived server's cache
        from growing without bound: stale buckets go wholesale, then
        the live bucket is LRU-trimmed to size.  ``max_bytes=0`` empties
        the bucket.
        """
        import shutil

        removed = 0
        removed_bytes = 0
        if self.root.is_dir():
            current = self._bucket.name
            for child in self.root.iterdir():
                if child.is_dir() and child.name != current:
                    for p in child.rglob("*"):
                        if p.is_file():
                            removed += 1
                            try:
                                removed_bytes += p.stat().st_size
                            except OSError:  # pragma: no cover - raced
                                pass
                    shutil.rmtree(child)
        if self._bucket.is_dir():
            for path in self._bucket.glob("*.tmp.*"):
                try:
                    removed_bytes += path.stat().st_size
                except OSError:  # pragma: no cover - entry raced away
                    pass
                path.unlink()
                removed += 1
        if max_bytes is not None and self._bucket.is_dir():
            entries = []
            for path in self._bucket.glob("*.json"):
                try:
                    stat = path.stat()
                except OSError:  # pragma: no cover - entry raced away
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
            total = sum(size for _, size, _ in entries)
            entries.sort()  # oldest access first
            for _, size, path in entries:
                if total <= max_bytes:
                    break
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - entry raced away
                    continue
                total -= size
                removed += 1
                removed_bytes += size
        self.last_prune = {"files": removed, "bytes": removed_bytes}
        return removed
