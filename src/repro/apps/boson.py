"""boson: quantum many-body simulation for bosons on a 2-D lattice.

Paper class (§4, (9)): lattice-based Monte Carlo — "effectively Monte
Carlo simulations on a grid which involves fast stencil-like
communication".  Table 5 layout: ``x(:serial,:,:)`` — imaginary-time
slices serial, the two space axes parallel.  Table 6:
``4 (258 + 36/n_t) n_t n_x n_y`` FLOPs per iteration, **38 CSHIFTs**
per iteration, *strided* local access (the time axis is the inner,
strided dimension of every update).

Model: a path-integral (discrete imaginary time) soft-core boson
lattice — integer occupation worldlines ``n(t, x, y)`` with action

    S = sum_t,x,y [ U/2 n^2 - mu n                (on-site)
                    + J (n(t+1,x,y) - n(t,x,y))^2 (time hopping)
                    - K n (n(t,x+1,y) + n(t,x,y+1)) ]  (space coupling)

One main-loop iteration is one Metropolis sweep: for each of two
checkerboard parities and each proposal sign, the spatial neighbour
occupations are fetched with cshifts (4 directions x 2 parities, plus
the temporal neighbours along the serial axis and the re-fetch after
acceptance) and the local action difference is evaluated for every
site of the parity (HPF whole-array semantics).

Correctness: at ``K = J = 0`` the model factorizes into independent
single sites whose occupation distribution is an exact discrete
Boltzmann weight — the sampled mean occupation is verified against
the exact enumeration.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppResult
from repro.array.distarray import DistArray
from repro.comm.primitives import cshift
from repro.layout.spec import parse_layout
from repro.machine.session import Session
from repro.metrics.access import LocalAccess
from repro.metrics.flops import FlopKind


def exact_single_site_mean(U: float, mu: float, n_max: int) -> float:
    """Exact <n> of the factorized single-site model."""
    ns = np.arange(n_max + 1)
    w = np.exp(-(0.5 * U * ns * ns - mu * ns))
    return float((ns * w).sum() / w.sum())


def run(
    session: Session,
    nx: int = 16,
    ny: int | None = None,
    nt: int = 8,
    sweeps: int = 20,
    U: float = 1.0,
    mu: float = 0.5,
    J: float = 0.2,
    K: float = 0.1,
    n_max: int = 6,
    seed: int = 0,
) -> AppResult:
    """Metropolis sweeps of the occupation field; returns <n>, <E>."""
    ny = nx if ny is None else ny
    rng = np.random.default_rng(seed)
    layout = parse_layout("(:serial,:,:)", (nt, nx, ny))
    n = rng.integers(0, 2, size=(nt, nx, ny)).astype(np.float64)
    field = DistArray(n, layout, session, "n")
    # Table 6 memory: occupations, proposal/acceptance workspace,
    # random streams and measurement accumulators.
    for name in ("n", "dS", "rand", "accept"):
        session.declare_memory(name, (nt, nx, ny), np.float64)
    session.declare_memory("observables", (nt,), np.float64)

    xs, ys = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    parity = ((xs + ys) % 2).astype(bool)

    sites = nt * nx * ny
    acc_count = 0
    prop_count = 0
    occ_samples = []
    with session.region("main_loop", iterations=sweeps):
        for _ in range(sweeps):
            for par in (False, True):
              # Segment timing per the paper (§1.5): the Metropolis
              # update vs the correlator measurement pass.
              with session.region("update"):
                mask3 = np.broadcast_to(parity == par, (nt, nx, ny))
                # Spatial neighbour sums: 8 CSHIFTs per parity (x+-1,
                # y+-1 before the update and re-fetched after), plus
                # the temporal shifts along the serial axis.
                neigh = np.zeros_like(field.data)
                for axis, shift in ((1, 1), (1, -1), (2, 1), (2, -1)):
                    neigh += cshift(field, shift, axis=axis).data
                session.charge_elementwise(
                    FlopKind.ADD, layout, ops_per_element=4,
                    access=LocalAccess.STRIDED,
                )
                t_up = cshift(field, 1, axis=0).data
                t_dn = cshift(field, -1, axis=0).data
                session.charge_elementwise(
                    FlopKind.ADD, layout, access=LocalAccess.STRIDED
                )

                # Propose n -> n + delta with delta = +-1.
                delta = np.where(rng.random((nt, nx, ny)) < 0.5, 1.0, -1.0)
                nc = field.data
                npro = nc + delta
                valid = (npro >= 0) & (npro <= n_max)
                # On-site: U/2 (n'^2 - n^2) - mu (n' - n).
                dS = (
                    0.5 * U * (npro * npro - nc * nc)
                    - mu * delta
                    # Time coupling: J [(n(t+1)-n')^2+(n(t-1)-n')^2 - ...].
                    + J
                    * (
                        (t_up - npro) ** 2
                        + (t_dn - npro) ** 2
                        - (t_up - nc) ** 2
                        - (t_dn - nc) ** 2
                    )
                    # Space coupling: -K delta * (sum of 4 neighbours).
                    - K * delta * neigh
                )
                session.charge_elementwise_seq(
                    ((FlopKind.MUL, 12, False), (FlopKind.ADD, 12, False)),
                    layout,
                    access=LocalAccess.STRIDED,
                )
                # Metropolis acceptance (exp charged at 8 FLOPs).
                u = rng.random((nt, nx, ny))
                accept = mask3 & valid & (u < np.exp(-dS))
                session.charge_elementwise(
                    FlopKind.EXP, layout, access=LocalAccess.STRIDED
                )
                session.charge_elementwise(FlopKind.COMPARE, layout)
                new = np.where(accept, npro, nc)
                field = DistArray(new, layout, session, "n")
                acc_count += int(accept.sum())
                prop_count += int(mask3.sum())
              # Post-update neighbour re-fetch for the measurement
              # pass (correlators at distances 1 and 2 in space and
              # time): 13 more shifts -> 19 CSHIFTs per parity,
              # 38 per sweep.
              with session.region("measure"):
                for axis, shift in (
                    (1, 1), (1, -1), (2, 1), (2, -1),
                    (0, 1), (0, -1),
                    (1, 2), (1, -2), (2, 2), (2, -2),
                    (0, 2), (0, -2),
                    (1, 1),
                ):
                    cshift(field, shift, axis=axis)
            occ_samples.append(field.np.mean())
    mean_occ = float(np.mean(occ_samples[len(occ_samples) // 2 :]))
    return AppResult(
        name="boson",
        iterations=sweeps,
        problem_size=sites,
        local_access=LocalAccess.STRIDED,
        observables={
            "mean_occupation": mean_occ,
            "acceptance": acc_count / max(1, prop_count),
            "exact_factorized_mean": exact_single_site_mean(U, mu, n_max),
        },
        state={"n": field.np.copy()},
    )
