"""Effective-bandwidth measurement via the transpose benchmark.

Paper §2: the transpose, "apart from being an indispensable operation
in linear algebra and other numerous applications, may be used to
confirm advertised bisection bandwidths".  This module does exactly
that: sweep transpose sizes, fit the elapsed-time model
``t = latency + bytes / B_eff`` and report the recovered effective
bisection bandwidth — which should match the machine model's
configured value (the test suite closes that loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.machine.model import MachineModel
from repro.machine.session import Session
from repro.suite.runner import run_benchmark


@dataclass(frozen=True)
class BandwidthFit:
    """Linear fit of transpose elapsed time vs bytes moved."""

    effective_bandwidth: float  # bytes/second through the bisection
    latency: float  # fitted startup seconds per transpose
    sizes: Tuple[int, ...]
    elapsed: Tuple[float, ...]
    bytes_moved: Tuple[int, ...]

    def advertised_ratio(self, machine: MachineModel) -> float:
        """Measured / advertised bisection bandwidth."""
        advertised = machine.network.bisection_bandwidth(machine.nodes)
        return self.effective_bandwidth / advertised


def measure_bisection_bandwidth(
    machine: MachineModel,
    sizes: Sequence[int] = (64, 128, 256, 512),
    repeats: int = 4,
) -> BandwidthFit:
    """Run transpose sweeps and back-solve the effective bandwidth.

    Uses the *network* portion of the per-transpose elapsed time (the
    data motion through the bisection), exactly as a benchmarker with
    a wall clock would after subtracting local copy costs.
    """
    elapsed = []
    bytes_moved = []
    for n in sizes:
        # Per-event timings are needed below, so keep the full trace.
        session = Session(machine, detail_events=True)
        run_benchmark("transpose", session, n=n, repeats=repeats)
        events = [
            e
            for e in session.recorder.root.total_comm_events
            if e.pattern.value == "aapc"
        ]
        per_call_bytes = events[0].bytes_network
        # Network time only: subtract the node-local copy share.
        net_busy = sum(
            e.busy_time
            - machine.local_move_time(e.bytes_local / max(1, e.nodes))
            for e in events
        )
        net_idle = sum(e.idle_time for e in events)
        elapsed.append((net_busy + net_idle) / len(events))
        bytes_moved.append(per_call_bytes)

    # Least-squares fit t = a + bytes / B.
    A = np.stack([np.ones(len(sizes)), np.array(bytes_moved, dtype=float)], axis=1)
    coeffs, *_ = np.linalg.lstsq(A, np.array(elapsed), rcond=None)
    latency, inv_bw = coeffs
    if inv_bw <= 0:
        raise RuntimeError(
            "transpose sweep did not resolve a bandwidth slope; "
            "use larger sizes"
        )
    return BandwidthFit(
        effective_bandwidth=1.0 / inv_bw,
        latency=float(latency),
        sizes=tuple(sizes),
        elapsed=tuple(elapsed),
        bytes_moved=tuple(bytes_moved),
    )
