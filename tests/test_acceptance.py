"""Acceptance suite: every benchmark's verification observables must
meet quality thresholds at moderately realistic sizes.

This is the reproduction's end-to-end quality gate — each threshold is
a physics/numerics statement (energy conservation, exact solves,
conservation laws, statistical limits), not a smoke check.
"""

import pytest

from repro import Session, cm5
from repro.suite import run_benchmark

#: benchmark -> (params, {observable: max allowed value})
ACCEPTANCE = {
    "matrix-vector": ({"n": 96, "m": 96, "repeats": 2}, {"matvec_error": 1e-9}),
    "lu": ({"n": 48, "instances": 2, "nrhs": 2}, {"residual": 1e-7}),
    "qr": ({"m": 64, "n": 32}, {"lstsq_error": 1e-7}),
    "gauss-jordan": ({"n": 48}, {"residual": 1e-7}),
    "pcr": ({"n": 128, "nrhs": 2}, {"solve_error": 1e-7}),
    "conj-grad": ({"n": 192}, {"solve_error": 1e-5, "residual": 1e-9}),
    "jacobi": ({"n": 24}, {"eigenvalue_error": 1e-7}),
    "fft": ({"n": 2048}, {"fft_error": 1e-10}),
    "diff-1d": ({"nx": 256, "steps": 10}, {}),
    "diff-3d": ({"nx": 16, "steps": 10}, {}),
    "ellip-2d": ({"nx": 14}, {"residual": 1e-7}),
    "rp": ({"nx": 6}, {"residual_normal": 1e-7}),
    "fem-3d": ({"nx": 3, "iterations": 50}, {"residual_reduction": 1e-2, "operator_error": 1e-9}),
    "md": ({"n_p": 27, "steps": 40}, {"energy_drift": 1e-4, "momentum": 1e-9}),
    "mdcell": ({"nc": 4, "steps": 4}, {"energy_drift": 1e-3, "force_error_vs_direct": 1e-9}),
    "n-body": ({"n": 64, "variant": "cshift_sym"}, {"force_error": 1e-9}),
    "pic-simple": (
        {"nx": 16, "n_p": 512, "steps": 3},
        {"charge_conservation_error": 1e-9, "field_error": 1e-9},
    ),
    "pic-gather-scatter": (
        {"nx": 8, "n_p": 256, "steps": 2},
        {
            "deposit_error": 1e-10,
            "charge_conservation_error": 1e-9,
            "gather_error": 1e-10,
        },
    ),
    "qcd-kernel": (
        {"nx": 4, "iterations": 4},
        {"anti_hermiticity": 1e-10, "reference_error": 1e-10},
    ),
    "qptransport": (
        {"iterations": 120},
        {"supply_violation": 1e-6, "demand_violation": 1e-6, "min_norm_error": 1e-5},
    ),
    "ks-spectral": ({"nx": 64, "ne": 3, "steps": 8}, {"reference_error": 1e-9}),
    "gmo": ({"ns": 512, "ntr": 32}, {"interpolation_error": 1e-10}),
    "fermion": ({"sites": 32, "n": 8, "sweeps": 4}, {"matmul_error": 1e-10}),
    "wave-1d": ({"nx": 128, "steps": 100}, {"energy_drift": 0.05}),
}


@pytest.mark.parametrize("name", sorted(ACCEPTANCE))
def test_acceptance(session_factory, name):
    params, thresholds = ACCEPTANCE[name]
    report = run_benchmark(name, session_factory(), **params)
    for observable, limit in thresholds.items():
        value = report.extra[observable]
        assert value <= limit, (
            f"{name}: {observable} = {value:.3g} exceeds {limit:.3g}"
        )
    # Universal invariants.
    assert report.elapsed_time >= report.busy_time >= 0.0
    assert report.memory_bytes > 0


def test_qmc_statistical_acceptance():
    """QMC ground-state energy within 12% at moderate statistics."""
    report = run_benchmark(
        "qmc", Session(cm5(32)),
        n_p=2, n_d=3, n_w=400, blocks=3, steps_per_block=60, dt=0.01, seed=5,
    )
    assert report.extra["relative_error"] < 0.12


def test_boson_statistical_acceptance():
    """Factorized-limit occupation within 10% of exact enumeration."""
    report = run_benchmark(
        "boson", Session(cm5(32)),
        nx=12, nt=4, sweeps=150, J=0.0, K=0.0, seed=7,
    )
    exact = report.extra["exact_factorized_mean"]
    sampled = report.extra["mean_occupation"]
    assert abs(sampled - exact) / exact < 0.10
