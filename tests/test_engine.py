"""Unit tests for the execution engine's building blocks.

Covers run requests (canonical hashing), the content-addressed cache,
the JSONL run store, event tracing, and sweep planning.  Executor
behavior (parallelism, retries, timeouts) lives in
``test_engine_executor.py``.
"""

import json

import pytest

from repro.engine import (
    Engine,
    EngineConfig,
    ResultCache,
    RunRequest,
    RunStore,
    Tracer,
    code_fingerprint,
    diff_runs,
    execute_request,
    expand_grid,
    machine_sweep_requests,
    new_run_id,
    plan_suite,
    read_trace,
    sweep_from_results,
    tier_sweep_requests,
)
from repro.suite import REGISTRY


class TestRunRequest:
    def test_params_normalized(self):
        a = RunRequest("fft", params={"n": 64, "dims": 1})
        b = RunRequest("fft", params={"dims": 1, "n": 64})
        assert a == b
        assert a.content_hash() == b.content_hash()

    def test_hash_covers_every_field(self):
        base = RunRequest("fft", params={"n": 64})
        assert base.content_hash() != RunRequest("lu", params={"n": 64}).content_hash()
        assert base.content_hash() != RunRequest("fft", params={"n": 128}).content_hash()
        assert base.content_hash() != RunRequest("fft", nodes=64, params={"n": 64}).content_hash()
        assert base.content_hash() != RunRequest("fft", tier="cmssl", params={"n": 64}).content_hash()
        assert base.content_hash() != RunRequest("fft", machine="cm5e", params={"n": 64}).content_hash()
        assert base.content_hash() != RunRequest("fft", params={"n": 64}, seed=7).content_hash()

    def test_dict_roundtrip(self):
        request = RunRequest(
            "qr", machine="cluster", nodes=8, tier="cmssl",
            params={"m": 32, "n": 16}, seed=3,
        )
        assert RunRequest.from_dict(request.to_dict()) == request

    def test_canonical_is_json(self):
        request = RunRequest("fft", params={"n": 64})
        assert json.loads(request.canonical())["benchmark"] == "fft"

    def test_bad_tier_rejected_eagerly(self):
        with pytest.raises(ValueError):
            RunRequest("fft", tier="turbo")

    def test_non_scalar_param_rejected(self):
        with pytest.raises(TypeError, match="non-scalar"):
            RunRequest("fft", params={"n": [1, 2]})

    def test_build_session_matches_spec(self):
        request = RunRequest("fft", machine="cm5e", nodes=64, tier="library")
        session = request.build_session()
        assert session.machine.nodes == 64
        assert "CM-5E" in session.machine.name
        assert session.tier.value == "library"

    def test_workstation_spec_rejects_multi_node(self):
        with pytest.raises(ValueError, match="fixed node count"):
            RunRequest("fft", machine="workstation", nodes=4).build_session()

    def test_execute_request(self):
        report = execute_request(RunRequest("ellip-2d", params={"nx": 8}))
        assert report.benchmark == "ellip-2d"
        assert report.flop_count > 0

    def test_seed_param_canonicalized(self):
        """Satellite: seed= and params={'seed': …} must not alias."""
        field = RunRequest("gmo", seed=5)
        via_params = RunRequest("gmo", params={"seed": 5})
        assert field == via_params
        assert field.content_hash() == via_params.content_hash()
        assert via_params.seed == 5
        assert "seed" not in via_params.params_dict

    def test_seed_both_spellings_agree(self):
        request = RunRequest("gmo", params={"seed": 5}, seed=5)
        assert request.seed == 5
        assert "seed" not in request.params_dict
        assert request.content_hash() == RunRequest("gmo", seed=5).content_hash()

    def test_conflicting_seeds_rejected(self):
        with pytest.raises(ValueError, match="conflicting seed"):
            RunRequest("gmo", params={"seed": 7}, seed=5)

    def test_none_param_seed_dropped(self):
        request = RunRequest("gmo", params={"seed": None}, seed=5)
        assert request.seed == 5
        assert request.content_hash() == RunRequest("gmo", seed=5).content_hash()

    def test_seed_aliases_dedup_in_plans(self):
        from repro.engine.plan import _dedup

        requests = _dedup(
            [RunRequest("gmo", seed=5), RunRequest("gmo", params={"seed": 5})]
        )
        assert len(requests) == 1


class TestNetworkOverrides:
    """Request-level interconnect overrides (campaign network axes)."""

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown network parameter"):
            RunRequest("fft", network={"bandwidth": 1e6})

    def test_non_numeric_value_rejected(self):
        with pytest.raises(TypeError, match="must be a number"):
            RunRequest("fft", network={"bw_link": "fast"})
        with pytest.raises(TypeError, match="must be a number"):
            RunRequest("fft", network={"bw_link": True})

    def test_stock_request_encoding_unchanged(self):
        """No overrides -> no 'network' key, so old hashes stay valid."""
        stock = RunRequest("fft", params={"n": 64})
        assert "network" not in stock.to_dict()
        assert (
            stock.content_hash()
            == RunRequest("fft", params={"n": 64}, network={}).content_hash()
        )

    def test_overrides_participate_in_hash_and_normalize(self):
        a = RunRequest("fft", network={"bw_link": 5e6, "latency_news": 1e-6})
        b = RunRequest("fft", network={"latency_news": 1e-6, "bw_link": 5e6})
        assert a == b
        assert a.content_hash() == b.content_hash()
        assert a.content_hash() != RunRequest("fft").content_hash()
        assert (
            a.content_hash()
            != RunRequest("fft", network={"bw_link": 5e6}).content_hash()
        )

    def test_dict_roundtrip_with_network(self):
        request = RunRequest(
            "qr", nodes=8, params={"m": 32, "n": 16},
            network={"bw_link": 5e6, "collision_factor": 2.0},
        )
        assert RunRequest.from_dict(request.to_dict()) == request

    def test_describe_marks_override(self):
        assert "*" not in RunRequest("fft").describe()
        assert "*" in RunRequest("fft", network={"bw_link": 5e6}).describe()

    def test_build_session_applies_overrides(self):
        session = RunRequest(
            "fft", network={"bw_link": 5e6, "latency_tree": 3e-6}
        ).build_session()
        assert session.machine.network.bw_link == 5e6
        assert session.machine.network.latency_tree == 3e-6

    def test_cached_stock_preset_never_mutated(self):
        """resolve_machine's memo must survive derived-machine builds."""
        stock_bw = RunRequest("fft").build_session().machine.network.bw_link
        RunRequest("fft", network={"bw_link": 1.0}).build_session()
        assert RunRequest("fft").build_session().machine.network.bw_link == (
            stock_bw
        )

    def test_override_machines_have_private_cost_memos(self):
        """Two override sets can never share priced comm costs."""
        m1 = RunRequest("fft", network={"bw_link": 1e6}).build_session().machine
        m2 = RunRequest("fft", network={"bw_link": 2e6}).build_session().machine
        assert m1.network is not m2.network
        assert m1.network._cost_cache is not m2.network._cost_cache

    def test_degraded_bandwidth_slows_comm_heavy_run(self):
        stock = execute_request(
            RunRequest("diff-1d", params={"nx": 256, "steps": 4})
        )
        slow = execute_request(
            RunRequest(
                "diff-1d",
                params={"nx": 256, "steps": 4},
                network={"bw_link": 1e4},
            )
        )
        assert slow.busy_time > stock.busy_time
        assert slow.elapsed_time > stock.elapsed_time
        assert slow.flop_count == stock.flop_count  # overrides price, not work


class TestResultCache:
    @pytest.fixture
    def cache(self, tmp_path):
        return ResultCache(tmp_path / "cache")

    def test_miss_then_hit(self, cache):
        request = RunRequest("fft", params={"n": 64})
        assert cache.get(request) is None
        cache.put(request, {"status": "ok", "report": {"flop_count": 1}})
        assert cache.get(request)["report"]["flop_count"] == 1
        assert request in cache
        assert len(cache) == 1

    def test_keyed_by_request(self, cache):
        cache.put(RunRequest("fft", params={"n": 64}), {"status": "ok"})
        assert cache.get(RunRequest("fft", params={"n": 128})) is None

    def test_code_fingerprint_invalidates(self, tmp_path):
        request = RunRequest("fft")
        ResultCache(tmp_path, fingerprint="a" * 64).put(request, {"s": 1})
        assert ResultCache(tmp_path, fingerprint="b" * 64).get(request) is None
        assert ResultCache(tmp_path, fingerprint="a" * 64).get(request) == {"s": 1}

    def test_fingerprint_is_stable_hex(self):
        assert code_fingerprint() == code_fingerprint()
        int(code_fingerprint(), 16)
        assert len(code_fingerprint()) == 64

    def test_torn_entry_is_a_miss(self, cache):
        request = RunRequest("fft")
        path = cache.put(request, {"status": "ok"})
        path.write_text("{not json")
        assert cache.get(request) is None

    def test_clear(self, cache):
        cache.put(RunRequest("fft"), {"s": 1})
        cache.put(RunRequest("lu"), {"s": 2})
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_clear_sweeps_crashed_put_tmp_files(self, cache):
        """Satellite: a crashed put's tmp file is cleaned, not leaked."""
        cache.put(RunRequest("fft"), {"s": 1})
        bucket = cache._bucket
        stray = bucket / "deadbeef.tmp.12345"
        stray.write_text("{torn")
        assert len(cache) == 1  # tmp files are never entries
        assert cache.clear() == 1
        assert not stray.exists()
        assert list(bucket.glob("*")) == []

    def test_prune_drops_stale_fingerprint_buckets(self, tmp_path):
        current = ResultCache(tmp_path / "cache", fingerprint="a" * 64)
        stale = ResultCache(tmp_path / "cache", fingerprint="b" * 64)
        current.put(RunRequest("fft"), {"s": 1})
        stale.put(RunRequest("fft"), {"s": 2})
        stale.put(RunRequest("lu"), {"s": 3})
        (current._bucket / "x.tmp.99").write_text("{torn")
        assert current.prune() == 3  # two stale entries + one tmp file
        assert len(current) == 1  # current entries survive
        assert not stale._bucket.exists()
        assert current.get(RunRequest("fft")) == {"s": 1}
        assert current.prune() == 0  # idempotent

    def test_prune_on_missing_root_is_noop(self, tmp_path):
        assert ResultCache(tmp_path / "nowhere").prune() == 0


class TestRunStore:
    def test_append_and_read(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        assert store.records() == []
        store.append({"run_id": "r1", "benchmark": "fft", "status": "ok"})
        store.append({"run_id": "r1", "benchmark": "lu", "status": "failed"})
        store.append({"run_id": "r2", "benchmark": "fft", "status": "cached"})
        assert len(store.records()) == 3
        assert store.run_ids() == ["r1", "r2"]
        assert [r["benchmark"] for r in store.run_records("r1")] == ["fft", "lu"]

    def test_prefix_resolution(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        store.append({"run_id": "abc-123", "benchmark": "fft"})
        store.append({"run_id": "abd-456", "benchmark": "fft"})
        assert store.run_records("abc")[0]["run_id"] == "abc-123"
        with pytest.raises(KeyError, match="ambiguous"):
            store.run_records("ab")
        with pytest.raises(KeyError, match="no run"):
            store.run_records("zzz")

    def test_history_filter_and_limit(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        for i in range(5):
            store.append({"run_id": "r", "benchmark": "fft", "i": i})
            store.append({"run_id": "r", "benchmark": "lu", "i": i})
        fft = store.history(benchmark="fft", limit=2)
        assert [r["i"] for r in fft] == [3, 4]

    def test_run_ids_unique(self):
        assert new_run_id() != new_run_id()

    def test_resolve_run_references(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        store.append({"run_id": "abc-123", "benchmark": "fft"})
        store.append({"run_id": "abd-456", "benchmark": "fft"})
        assert store.resolve("latest") == "abd-456"
        assert store.resolve("@0") == "abc-123"
        assert store.resolve("@-1") == "abd-456"
        assert store.resolve("@1") == "abd-456"
        assert store.resolve("abc") == "abc-123"
        with pytest.raises(KeyError, match="out of range"):
            store.resolve("@7")
        with pytest.raises(KeyError, match="expected @N"):
            store.resolve("@x")
        with pytest.raises(KeyError, match="no runs stored"):
            RunStore(tmp_path / "empty.jsonl").resolve("latest")

    def test_run_records_restore_plan_order(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        # Completion order 2, 0, 1 — as a process pool might append.
        store.append({"run_id": "r", "benchmark": "lu", "index": 2})
        store.append({"run_id": "r", "benchmark": "fft", "index": 0})
        store.append({"run_id": "r", "benchmark": "qr", "index": 1})
        assert [r["benchmark"] for r in store.run_records("r")] == [
            "fft", "qr", "lu",
        ]

    def test_stats_sidecar_roundtrip(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        store.append({"run_id": "r1", "benchmark": "fft"})
        assert store.read_stats("r1") is None
        path = store.write_stats("r1", {"n_jobs": 3})
        assert path.parent == store.stats_dir
        assert store.read_stats("r1") == {"n_jobs": 3}
        assert store.read_stats("latest") == {"n_jobs": 3}

    def test_diff_runs(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        report = {"busy_time_s": 1.0, "elapsed_time_s": 2.0, "flop_count": 100,
                  "busy_floprate_mflops": 1.0, "memory_bytes": 10,
                  "network_bytes": 4}
        half = dict(report, elapsed_time_s=1.0)
        store.append({"run_id": "a", "benchmark": "fft", "status": "ok",
                      "report": report})
        store.append({"run_id": "a", "benchmark": "md", "status": "ok",
                      "report": report})
        store.append({"run_id": "b", "benchmark": "fft", "status": "ok",
                      "report": half})
        text = diff_runs(store, "a", "b")
        assert "0.5x" in text          # elapsed halved
        assert "=" in text             # unchanged metrics
        assert "only in a: md" in text


class TestTracer:
    def test_jsonl_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path) as tracer:
            tracer.emit("run_started", detail="r1", jobs=2)
            tracer.emit(
                "job_finished", RunRequest("fft"), status="ok", attempt=1
            )
        events = read_trace(path)
        assert [e["kind"] for e in events] == ["run_started", "job_finished"]
        assert events[1]["benchmark"] == "fft"
        assert events[1]["status"] == "ok"
        assert events[1]["request_hash"] == RunRequest("fft").content_hash()
        assert events[1]["ts"] >= events[0]["ts"]

    def test_callback(self):
        seen = []
        tracer = Tracer(callback=seen.append)
        tracer.emit("job_submitted", RunRequest("lu"))
        assert seen[0].kind == "job_submitted"
        assert seen[0].benchmark == "lu"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            Tracer(callback=lambda e: None).emit("job_exploded")

    def test_disabled_tracer_is_noop(self):
        assert Tracer().emit("run_started") is None

    def test_engine_emits_lifecycle(self, tmp_path):
        events = []
        engine = Engine(
            EngineConfig(jobs=1), tracer=Tracer(callback=events.append)
        )
        engine.run([RunRequest("ellip-2d", params={"nx": 8})])
        kinds = [e.kind for e in events]
        assert kinds == [
            "run_started",
            "job_submitted",
            "job_started",
            "job_finished",
            "run_summary",
            "run_finished",
        ]
        summary = events[kinds.index("run_summary")]
        assert summary.extra["throughput_jobs_per_s"] > 0
        assert summary.extra["cache_hit_rate"] == 0.0


class TestPlanning:
    def test_plan_suite_covers_registry(self):
        requests = plan_suite()
        assert [r.benchmark for r in requests] == list(REGISTRY)

    def test_plan_suite_subset_with_params(self):
        requests = plan_suite(["fft", "lu"], params={"fft": {"n": 64}})
        assert len(requests) == 2
        assert requests[0].params_dict == {"n": 64}
        assert requests[1].params_dict == {}

    def test_expand_grid_cartesian_dedup(self):
        requests = expand_grid(
            ["fft"], nodes=(32, 64, 32), tiers=("basic", "optimized")
        )
        assert len(requests) == 4  # 2 distinct node counts x 2 tiers
        assert len({r.content_hash() for r in requests}) == 4

    def test_expand_grid_validates_names(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            expand_grid(["not-a-benchmark"])

    def test_expand_grid_network_axes(self):
        """network_grid multiplies the plan; combos merge over fixed."""
        requests = expand_grid(
            ["fft"],
            network={"collision_factor": 2.0},
            network_grid={"bw_link": [5e6, 10e6], "latency_news": [1e-6]},
        )
        assert len(requests) == 2
        nets = [dict(r.network) for r in requests]
        assert nets == [
            {"bw_link": 5e6, "collision_factor": 2.0, "latency_news": 1e-6},
            {"bw_link": 10e6, "collision_factor": 2.0, "latency_news": 1e-6},
        ]

    def test_expand_grid_network_grid_overrides_fixed(self):
        requests = expand_grid(
            ["fft"],
            network={"bw_link": 1e6},
            network_grid={"bw_link": [5e6, 10e6]},
        )
        assert [dict(r.network)["bw_link"] for r in requests] == [5e6, 10e6]

    def test_expand_grid_network_dedups_by_hash(self):
        requests = expand_grid(
            ["fft"], network_grid={"bw_link": [5e6, 5e6, 10e6]}
        )
        assert len(requests) == 2

    def test_machine_and_tier_sweep_requests(self):
        machine = machine_sweep_requests("diff-3d", [4, 16, 64], params={"nx": 8})
        assert [r.nodes for r in machine] == [4, 16, 64]
        tiers = tier_sweep_requests("fft", ["basic", "cmssl"], params={"n": 64})
        assert [r.tier for r in tiers] == ["basic", "cmssl"]

    def test_sweep_from_results(self):
        requests = machine_sweep_requests(
            "diff-3d", [4, 16], params={"nx": 8, "steps": 2}
        )
        results = Engine(EngineConfig()).run(requests)
        sweep = sweep_from_results("nodes", [4, 16], results)
        assert sweep.benchmark == "diff-3d"
        assert sweep.parameter == "nodes"
        series = sweep.series("elapsed_time")
        assert series[0] > series[1]  # more nodes, faster

    def test_requests_from_run_replays_a_stored_plan(self, tmp_path):
        from repro.engine import requests_from_run

        store_path = tmp_path / "runs.jsonl"
        requests = plan_suite(["fft", "lu"], params={"fft": {"n": 64}})
        Engine(EngineConfig(store=store_path)).run(requests)
        replay = requests_from_run(RunStore(store_path), "latest")
        assert replay == requests

    def test_sweep_from_results_rejects_failures(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_INJECT_FAIL", "diff-3d")
        requests = machine_sweep_requests(
            "diff-3d", [4], params={"nx": 8, "steps": 2}
        )
        results = Engine(EngineConfig()).run(requests)
        with pytest.raises(RuntimeError, match="unsuccessful"):
            sweep_from_results("nodes", [4], results)
