"""ChargeBuffer unit tests: bit-exactness, flush points, eager gates.

The buffer's whole contract is "observationally invisible": a
recorder with buffering on must end every region transition in
*exactly* the state an eager recorder reaches, and every condition
that requires eager charging (root region, observer, trace mode,
kill switch) must actually bypass the buffer.
"""

import numpy as np
import pytest

from repro.metrics.chargebuffer import ACCUMULATE_MIN, ChargeBuffer, _fold
from repro.metrics.flops import FlopKind, flop_cost
from repro.metrics.patterns import CommPattern
from repro.metrics.recorder import MetricsRecorder


def drive(recorder: MetricsRecorder) -> None:
    """A fixed, order-sensitive charge script (seeded float values)."""
    rng = np.random.default_rng(7)
    with recorder.region("main", iterations=4):
        for i in range(60):
            recorder.charge_flops(FlopKind.MUL, 1000 + i)
            recorder.charge_flops(
                FlopKind.ADD, 500 + i, complex_valued=(i % 3 == 0)
            )
            recorder.charge_compute_time(float(rng.uniform(1e-9, 1e-3)))
            recorder.charge_raw_flops(17 * i)
            recorder.charge_comm(
                CommPattern.CSHIFT,
                bytes_network=64 * i,
                bytes_local=128 * i,
                busy_time=float(rng.uniform(1e-9, 1e-4)),
                idle_time=float(rng.uniform(0.0, 1e-5)),
                rank=i % 2,
                detail="halo",
            )
        recorder.charge_reduction(4096, 1)


def region_state(recorder: MetricsRecorder):
    region = recorder.root.children[0]
    stats = {
        key: (s.count, s.bytes_network, s.bytes_local, s.busy_time, s.idle_time)
        for key, s in region.comm_stats.items()
    }
    return (
        region.total_flops,
        region.compute_busy,
        region.comm_count,
        region.comm_busy,
        region.comm_idle,
        stats,
    )


class TestExactness:
    def test_buffered_matches_eager_exactly(self, monkeypatch):
        """Same charge script, buffer on vs off: identical final state.

        Float fields compare with ``==`` deliberately — the flush must
        reproduce eager rounding bit-for-bit, not approximately.
        """
        monkeypatch.setattr(MetricsRecorder, "buffer_charges", False)
        eager = MetricsRecorder()
        drive(eager)
        monkeypatch.setattr(MetricsRecorder, "buffer_charges", True)
        buffered = MetricsRecorder()
        drive(buffered)
        assert region_state(eager) == region_state(buffered)

    @pytest.mark.parametrize(
        "length", [0, 1, 5, ACCUMULATE_MIN - 1, ACCUMULATE_MIN, 3 * ACCUMULATE_MIN]
    )
    def test_fold_matches_python_loop(self, length):
        """Both fold branches are bit-identical to a ``+=`` loop."""
        rng = np.random.default_rng(length)
        values = [float(v) for v in rng.uniform(1e-12, 1e-3, size=length)]
        seed = 0.123456789
        acc = seed
        for value in values:
            acc += value
        assert _fold(seed, values) == acc

    def test_flop_cost_is_linear_in_count(self):
        """The linearity flush correctness relies on, per kind."""
        for kind in FlopKind:
            for complex_valued in (False, True):
                a, b = 12345, 67891
                assert flop_cost(
                    kind, a + b, complex_valued=complex_valued
                ) == flop_cost(kind, a, complex_valued=complex_valued) + flop_cost(
                    kind, b, complex_valued=complex_valued
                )


class TestBufferMechanics:
    def test_truthiness_tracks_pending_charges(self):
        buf = ChargeBuffer()
        assert not buf
        buf.add_flops(FlopKind.ADD, 3, False)
        assert buf
        buf = ChargeBuffer()
        buf.add_compute(1e-6)
        assert buf
        buf = ChargeBuffer()
        buf.add_comm(
            CommPattern.SPREAD,
            None,
            "",
            bytes_network=8,
            bytes_local=8,
            busy_time=1e-7,
            idle_time=0.0,
        )
        assert buf

    def test_flush_drains_and_is_idempotent(self, monkeypatch):
        monkeypatch.setattr(MetricsRecorder, "buffer_charges", True)
        recorder = MetricsRecorder()
        with recorder.region("main"):
            recorder.charge_flops(FlopKind.MUL, 10)
            recorder.flush_charges()
            total_after_first = recorder.current.total_flops
            recorder.flush_charges()  # nothing pending: no double count
            assert recorder.current.total_flops == total_after_first
        assert recorder.root.total_flops == flop_cost(FlopKind.MUL, 10)

    def test_region_transitions_flush_into_owning_region(self, monkeypatch):
        """Charges land in the region that was current when made."""
        monkeypatch.setattr(MetricsRecorder, "buffer_charges", True)
        recorder = MetricsRecorder()
        with recorder.region("outer"):
            recorder.charge_flops(FlopKind.ADD, 100)
            with recorder.region("inner"):
                recorder.charge_flops(FlopKind.ADD, 7)
            # Entering "inner" must have flushed the outer charge into
            # "outer", not carried it down.
            outer = recorder.root.children[0]
            inner = outer.children[0]
            assert inner.flops.total == flop_cost(FlopKind.ADD, 7)
            assert outer.flops.total == flop_cost(FlopKind.ADD, 100)


class TestEagerGates:
    def test_root_level_charges_stay_eager(self, monkeypatch):
        monkeypatch.setattr(MetricsRecorder, "buffer_charges", True)
        recorder = MetricsRecorder()
        recorder.charge_flops(FlopKind.ADD, 5)
        # Visible immediately, no flush needed: outside any region the
        # buffer must never engage.
        assert recorder.root.flops.total == flop_cost(FlopKind.ADD, 5)

    def test_kill_switch_disables_buffering(self, monkeypatch):
        monkeypatch.setattr(MetricsRecorder, "buffer_charges", False)
        recorder = MetricsRecorder()
        with recorder.region("main"):
            recorder.charge_flops(FlopKind.ADD, 5)
            assert recorder.current.flops.total == flop_cost(FlopKind.ADD, 5)

    def test_trace_mode_disables_buffering(self, monkeypatch):
        monkeypatch.setattr(MetricsRecorder, "buffer_charges", True)
        recorder = MetricsRecorder(detail_events=True)
        with recorder.region("main"):
            recorder.charge_flops(FlopKind.ADD, 5)
            assert recorder.current.flops.total == flop_cost(FlopKind.ADD, 5)

    def test_observer_sees_every_charge_as_it_happens(self, monkeypatch):
        """An attached observer forces eager charging."""
        monkeypatch.setattr(MetricsRecorder, "buffer_charges", True)

        class Probe:
            def __init__(self):
                self.flops = []

            def on_region_enter(self, region):
                pass

            def on_region_exit(self, region):
                pass

            def on_flops(self, region, kind, count, *, complex_valued=False):
                self.flops.append((kind, count))

            def on_raw_flops(self, region, flops):
                pass

            def on_compute(self, region, seconds):
                pass

        probe = Probe()
        recorder = MetricsRecorder(observer=probe)
        with recorder.region("main"):
            recorder.charge_flops(FlopKind.MUL, 3)
            # Eager: both the region and the observer already know.
            assert recorder.current.flops.total == flop_cost(FlopKind.MUL, 3)
        assert probe.flops == [(FlopKind.MUL, 3)]
