"""Executor tests: parallelism, determinism, caching, fault tolerance.

The acceptance bar for the engine: parallel execution must store
byte-identical reports to serial execution, a warm cache must serve
every job, and an injected worker failure must be retried per
``retries`` and, on exhaustion, recorded as ``failed`` without
aborting the remaining jobs.
"""

import pytest

from repro import Session, cm5
from repro.engine import (
    Engine,
    EngineConfig,
    InjectedFailure,
    RunStore,
    plan_suite,
)
from repro.engine.executor import (
    ENV_FORCE_SERIAL,
    ENV_INJECT_FAIL,
    ENV_INJECT_SLEEP,
    _parse_injection,
)
from repro.engine.pool import WorkerPool
from repro.engine.trace import Tracer
from repro.metrics.serialize import canonical_report_json
from repro.suite import run_suite

# A small, fast, structurally diverse slice of the suite.
SUBSET = ["fft", "lu", "ellip-2d", "gmo", "md"]
SUBSET_PARAMS = {
    "fft": {"n": 64},
    "lu": {"n": 16},
    "ellip-2d": {"nx": 8},
    "gmo": {"ns": 128, "ntr": 16},
    "md": {"n_p": 8, "steps": 2},
}


def subset_requests():
    return plan_suite(SUBSET, params=SUBSET_PARAMS)


def canonical_reports(results):
    return {
        r.request.benchmark: canonical_report_json(r.report_record)
        for r in results
    }


class TestDeterminism:
    def test_parallel_matches_serial_byte_for_byte(self, tmp_path):
        """Satellite: serial and --jobs 4 store byte-identical reports."""
        serial = Engine(EngineConfig(jobs=1)).run(subset_requests())
        parallel = Engine(EngineConfig(jobs=4)).run(subset_requests())
        assert all(r.status == "ok" for r in serial)
        assert all(r.status == "ok" for r in parallel)
        assert canonical_reports(serial) == canonical_reports(parallel)

    def test_second_run_served_entirely_from_cache(self, tmp_path):
        cache = tmp_path / "cache"
        first = Engine(EngineConfig(jobs=4, cache_dir=cache)).run(
            subset_requests()
        )
        second = Engine(EngineConfig(jobs=4, cache_dir=cache)).run(
            subset_requests()
        )
        assert all(r.status == "ok" for r in first)
        assert all(r.status == "cached" for r in second)
        assert canonical_reports(first) == canonical_reports(second)

    def test_results_in_request_order(self):
        results = Engine(EngineConfig(jobs=4)).run(subset_requests())
        assert [r.request.benchmark for r in results] == SUBSET


class TestFaultTolerance:
    def test_retry_then_succeed(self, monkeypatch):
        monkeypatch.setenv(ENV_INJECT_FAIL, "fft:2")
        results = Engine(EngineConfig(retries=3, backoff=0.0)).run(
            plan_suite(["fft"], params=SUBSET_PARAMS)
        )
        assert results[0].status == "ok"
        assert results[0].attempts == 3  # two injected failures, then ok

    def test_exhaustion_fails_without_aborting_siblings(self, monkeypatch):
        """Acceptance: a failing job never takes down the rest."""
        monkeypatch.setenv(ENV_INJECT_FAIL, "fft")  # every attempt fails
        results = Engine(EngineConfig(retries=2, backoff=0.0)).run(
            plan_suite(["fft", "gmo"], params=SUBSET_PARAMS)
        )
        by_name = {r.request.benchmark: r for r in results}
        assert by_name["fft"].status == "failed"
        assert by_name["fft"].attempts == 3  # initial + 2 retries
        assert "InjectedFailure" in by_name["fft"].error
        assert by_name["gmo"].status == "ok"

    def test_pool_failure_isolation(self, monkeypatch):
        monkeypatch.setenv(ENV_INJECT_FAIL, "fft")
        results = Engine(EngineConfig(jobs=2, retries=1, backoff=0.0)).run(
            plan_suite(["fft", "gmo", "lu"], params=SUBSET_PARAMS)
        )
        statuses = {r.request.benchmark: r.status for r in results}
        assert statuses == {"fft": "failed", "gmo": "ok", "lu": "ok"}

    def test_pool_timeout(self, monkeypatch):
        monkeypatch.setenv(ENV_INJECT_SLEEP, "fft:10")
        results = Engine(EngineConfig(jobs=2, timeout=0.5)).run(
            plan_suite(["fft", "gmo"], params=SUBSET_PARAMS)
        )
        by_name = {r.request.benchmark: r for r in results}
        assert by_name["fft"].status == "timeout"
        assert "timed out after 0.5s" in by_name["fft"].error
        assert by_name["gmo"].status == "ok"

    def test_force_serial_degradation(self, monkeypatch):
        monkeypatch.setenv(ENV_FORCE_SERIAL, "1")
        results = Engine(EngineConfig(jobs=4)).run(
            plan_suite(["fft", "lu"], params=SUBSET_PARAMS)
        )
        assert all(r.status == "ok" for r in results)

    def test_failed_result_not_cached(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_INJECT_FAIL, "fft")
        cache = tmp_path / "cache"
        Engine(EngineConfig(cache_dir=cache)).run(
            plan_suite(["fft"], params=SUBSET_PARAMS)
        )
        monkeypatch.delenv(ENV_INJECT_FAIL)
        results = Engine(EngineConfig(cache_dir=cache)).run(
            plan_suite(["fft"], params=SUBSET_PARAMS)
        )
        assert results[0].status == "ok"  # a failure must not poison the cache

    def test_parse_injection(self):
        assert _parse_injection("fft:2", "fft") == 2.0
        assert _parse_injection("fft:2", "lu") is None
        assert _parse_injection("fft", "fft") == -1.0
        assert _parse_injection("*:1", "anything") == 1.0
        assert _parse_injection("lu:1,fft:3", "fft") == 3.0

    def test_parse_injection_exact_beats_wildcard(self):
        """Satellite: an exact entry wins regardless of spec order."""
        assert _parse_injection("*:1,fft:3", "fft") == 3.0
        assert _parse_injection("fft:3,*:1", "fft") == 3.0
        assert _parse_injection("*:1,fft:3", "lu") == 1.0
        assert _parse_injection("*,fft:3", "fft") == 3.0

    def test_injected_failure_raises_in_raise_mode(self, monkeypatch):
        monkeypatch.setenv(ENV_INJECT_FAIL, "fft")
        with pytest.raises(InjectedFailure):
            run_suite(
                lambda: Session(cm5(32)), ["fft"], params=SUBSET_PARAMS
            )


class TestBackoffScheduling:
    def test_sibling_timeout_fires_during_backoff(self, monkeypatch):
        """Acceptance: retry backoff must not stall the scheduler loop.

        ``fft`` fails fast and enters a long (4 s) retry backoff while
        ``gmo`` sleeps past its 1 s timeout.  The backoff used to be a
        blocking ``time.sleep`` inside the pool loop, so gmo's timeout
        was only enforced after the backoff drained; with per-job
        not-before deadlines the timeout fires on schedule.
        """
        import time

        from repro.engine import Tracer

        monkeypatch.setenv(ENV_INJECT_FAIL, "fft")
        monkeypatch.setenv(ENV_INJECT_SLEEP, "gmo:30")
        events = []
        tracer = Tracer(
            callback=lambda e: events.append(
                (e.kind, e.benchmark, time.perf_counter())
            )
        )
        start = time.perf_counter()
        results = Engine(
            EngineConfig(jobs=2, retries=1, backoff=4.0, timeout=1.0),
            tracer=tracer,
        ).run(plan_suite(["fft", "gmo"], params=SUBSET_PARAMS))

        by_name = {r.request.benchmark: r for r in results}
        assert by_name["fft"].status == "failed"
        assert by_name["fft"].attempts == 2
        assert by_name["gmo"].status == "timeout"
        # gmo's first timeout (a job_retried event, since retries=1)
        # must be recorded well before fft's 4 s backoff expires.
        gmo_timeout_at = next(
            t
            for kind, bench, t in events
            if bench == "gmo" and kind in ("job_retried", "job_finished")
        )
        assert gmo_timeout_at - start < 3.5

    def test_jobs_in_backoff_still_complete(self, monkeypatch):
        """Backoff-queued retries run after their release time."""
        monkeypatch.setenv(ENV_INJECT_FAIL, "fft:1")
        results = Engine(
            EngineConfig(jobs=2, retries=2, backoff=0.05)
        ).run(plan_suite(["fft", "lu"], params=SUBSET_PARAMS))
        by_name = {r.request.benchmark: r for r in results}
        assert by_name["fft"].status == "ok"
        assert by_name["fft"].attempts == 2
        assert by_name["lu"].status == "ok"


class TestIncrementalPersistence:
    def test_killed_run_keeps_finished_jobs(self, tmp_path, monkeypatch):
        """Acceptance: a run that dies mid-way loses no finished work.

        ``raise_on_error`` propagates the second job's failure out of
        ``run()`` — the in-process equivalent of a kill — and the
        first job's record must already be durable in the store.
        """
        monkeypatch.setenv(ENV_INJECT_FAIL, "lu")
        store_path = tmp_path / "runs.jsonl"
        engine = Engine(EngineConfig(store=store_path, raise_on_error=True))
        with pytest.raises(InjectedFailure):
            engine.run(plan_suite(["fft", "lu"], params=SUBSET_PARAMS))
        records = RunStore(store_path).records()
        assert [r["benchmark"] for r in records] == ["fft"]
        assert records[0]["status"] == "ok"
        assert records[0]["report"]["flop_count"] > 0

    def test_records_appended_as_jobs_finish(self, tmp_path):
        """Each record lands when its job finishes, not at run end."""
        store_path = tmp_path / "runs.jsonl"
        store = RunStore(store_path)
        seen = []

        def progress(result):
            seen.append((result.request.benchmark, len(store.records())))

        Engine(EngineConfig(store=store_path), progress=progress).run(
            plan_suite(["fft", "lu"], params=SUBSET_PARAMS)
        )
        # At the first job's completion exactly one record existed.
        assert seen[0] == ("fft", 1)
        assert seen[1] == ("lu", 2)

    def test_pool_records_carry_plan_order_index(self, tmp_path):
        store_path = tmp_path / "runs.jsonl"
        Engine(EngineConfig(jobs=4, store=store_path)).run(subset_requests())
        records = RunStore(store_path).run_records("@0")
        assert [r["benchmark"] for r in records] == SUBSET
        assert [r["index"] for r in records] == list(range(len(SUBSET)))


class TestStoreIntegration:
    def test_every_outcome_is_recorded(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_INJECT_FAIL, "fft")
        store_path = tmp_path / "runs.jsonl"
        cache = tmp_path / "cache"
        Engine(EngineConfig(store=store_path, cache_dir=cache)).run(
            plan_suite(["fft", "gmo"], params=SUBSET_PARAMS)
        )
        monkeypatch.delenv(ENV_INJECT_FAIL)
        Engine(EngineConfig(store=store_path, cache_dir=cache)).run(
            plan_suite(["gmo"], params=SUBSET_PARAMS)
        )
        store = RunStore(store_path)
        records = store.records()
        assert [r["status"] for r in records] == ["failed", "ok", "cached"]
        assert len(store.run_ids()) == 2
        failed = records[0]
        assert failed["benchmark"] == "fft"
        assert failed["report"] is None
        assert "InjectedFailure" in failed["error"]
        ok = records[1]
        assert ok["schema"] == 1
        assert ok["report"]["flop_count"] > 0
        assert ok["request"] == plan_suite(
            ["gmo"], params=SUBSET_PARAMS
        )[0].to_dict()
        # The cached record carries the same report as the original run.
        assert records[2]["report"] == ok["report"]

    def test_store_records_wall_time_and_attempts(self, tmp_path):
        store_path = tmp_path / "runs.jsonl"
        Engine(EngineConfig(store=store_path)).run(
            plan_suite(["fft"], params=SUBSET_PARAMS)
        )
        (record,) = RunStore(store_path).records()
        assert record["attempts"] == 1
        assert record["wall_time_s"] > 0


class TestBatchDispatch:
    """Batch dispatch: grouped submission, per-member granularity.

    Batching decisions key off the pool's per-benchmark compute EWMA,
    so each test pre-seeds the estimates it needs — a cold pool ships
    everything solo by design (that is itself a test below).
    """

    def _seeded_pool(self, benchmarks, workers=1):
        pool = WorkerPool(workers=workers)
        for name in benchmarks:
            pool.note_compute(name, 0.001)
        return pool

    def test_batched_reports_match_solo_byte_for_byte(self):
        solo = Engine(EngineConfig(jobs=1, batch=False)).run(
            subset_requests()
        )
        pool = self._seeded_pool(SUBSET)
        try:
            engine = Engine(EngineConfig(jobs=1, batch=True), pool=pool)
            batched = engine.run(subset_requests())
        finally:
            pool.shutdown()
        assert all(r.status == "ok" for r in batched)
        assert canonical_reports(solo) == canonical_reports(batched)
        phases = engine.last_run_stats.phases
        assert phases["batches_submitted"] >= 1
        assert phases["batched_jobs"] == len(SUBSET)

    def test_cold_pool_ships_solo_then_batching_engages(self):
        """No estimate -> solo; the first wave seeds the EWMA."""
        pool = WorkerPool(workers=1)
        try:
            first = Engine(EngineConfig(jobs=1, batch=True), pool=pool)
            first.run(subset_requests())
            assert first.last_run_stats.phases["batches_submitted"] == 0
            for name in SUBSET:
                assert pool.estimate(name) is not None
            second = Engine(EngineConfig(jobs=1, batch=True), pool=pool)
            second.run(subset_requests())
            assert second.last_run_stats.phases["batches_submitted"] >= 1
        finally:
            pool.shutdown()

    def test_failed_member_fails_alone_and_retries_solo(self, monkeypatch):
        """A failing batch member never takes down its siblings."""
        monkeypatch.setenv(ENV_INJECT_FAIL, "fft")
        events = []
        pool = self._seeded_pool(SUBSET)
        try:
            engine = Engine(
                EngineConfig(jobs=1, batch=True, retries=1, backoff=0.0),
                pool=pool,
                tracer=Tracer(callback=events.append),
            )
            results = engine.run(subset_requests())
        finally:
            pool.shutdown()
        by_name = {r.request.benchmark: r for r in results}
        assert by_name["fft"].status == "failed"
        assert by_name["fft"].attempts == 2
        assert "InjectedFailure" in by_name["fft"].error
        for name in SUBSET:
            if name != "fft":
                assert by_name[name].status == "ok"
                assert by_name[name].attempts == 1
        # The retry must have been dispatched solo, not re-batched.
        retry_starts = [
            e
            for e in events
            if e.kind == "job_started"
            and e.benchmark == "fft"
            and e.attempt == 2
        ]
        assert retry_starts
        assert all(not e.extra.get("batched") for e in retry_starts)

    def test_expired_batch_times_out_only_the_stuck_member(
        self, monkeypatch
    ):
        """Timeout attribution stays per-member after a batch expiry.

        The stuck job starves its batch past the pooled deadline; every
        member is requeued solo at the same attempt, where the stuck
        one earns an individual ``timeout`` and the innocent sibling
        completes ``ok`` without being charged an extra attempt.
        """
        monkeypatch.setenv(ENV_INJECT_SLEEP, "fft:30")
        pool = self._seeded_pool(["fft", "gmo"])
        try:
            engine = Engine(
                EngineConfig(jobs=1, batch=True, timeout=0.5), pool=pool
            )
            results = engine.run(
                plan_suite(["fft", "gmo"], params=SUBSET_PARAMS)
            )
        finally:
            pool.shutdown()
        by_name = {r.request.benchmark: r for r in results}
        assert by_name["fft"].status == "timeout"
        assert "timed out after 0.5s" in by_name["fft"].error
        assert by_name["fft"].attempts == 1
        assert by_name["gmo"].status == "ok"
        assert by_name["gmo"].attempts == 1

    def test_batch_members_get_individual_cache_entries(self, tmp_path):
        cache = tmp_path / "cache"
        pool = self._seeded_pool(SUBSET)
        try:
            config = EngineConfig(jobs=1, batch=True, cache_dir=cache)
            first = Engine(config, pool=pool).run(subset_requests())
            second = Engine(config, pool=pool).run(subset_requests())
        finally:
            pool.shutdown()
        assert all(r.status == "ok" for r in first)
        assert all(r.status == "cached" for r in second)
        assert canonical_reports(first) == canonical_reports(second)

    def test_partial_cache_hits_leave_batch_remainder(self, tmp_path):
        """Cache hits resolve up front; the rest still batch."""
        cache = tmp_path / "cache"
        pool = self._seeded_pool(SUBSET)
        try:
            config = EngineConfig(jobs=1, batch=True, cache_dir=cache)
            Engine(config, pool=pool).run(
                plan_suite(["fft", "lu"], params=SUBSET_PARAMS)
            )
            engine = Engine(config, pool=pool)
            results = engine.run(subset_requests())
        finally:
            pool.shutdown()
        statuses = {r.request.benchmark: r.status for r in results}
        assert statuses["fft"] == "cached"
        assert statuses["lu"] == "cached"
        fresh = [n for n in SUBSET if n not in ("fft", "lu")]
        assert all(statuses[n] == "ok" for n in fresh)
        assert engine.last_run_stats.phases["batched_jobs"] == len(fresh)


class TestRunSuiteWrapper:
    def test_run_suite_matches_engine(self):
        suite = run_suite(
            lambda: Session(cm5(32)), SUBSET, params=SUBSET_PARAMS
        )
        engine = Engine(EngineConfig()).run(subset_requests())
        assert list(suite) == SUBSET
        for result in engine:
            assert suite[result.request.benchmark] == result.report

    def test_run_suite_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            run_suite(lambda: Session(cm5(32)), ["no-such-benchmark"])

    def test_run_suite_custom_session_factory(self):
        big = run_suite(
            lambda: Session(cm5(64)), ["fft"], params=SUBSET_PARAMS
        )
        small = run_suite(
            lambda: Session(cm5(32)), ["fft"], params=SUBSET_PARAMS
        )
        # Twice the nodes, twice the aggregate peak rate.
        assert big["fft"].peak_mflops == 2 * small["fft"].peak_mflops

    def test_fresh_recorder_enforced(self):
        """Satellite: reusing a session's recorder is an error."""
        from repro.suite import run_benchmark

        session = Session(cm5(32))
        run_benchmark("fft", session, n=64)
        with pytest.raises(ValueError, match="fresh session"):
            run_benchmark("fft", session, n=64)
