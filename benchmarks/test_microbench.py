"""Microbenchmarks of the substrate primitives themselves.

These time the *host-side* cost of the instrumented primitives (NumPy
execution + accounting overhead), so regressions in the reproduction's
own performance are visible — the substrate must stay fast enough to
run the full suite interactively.
"""

import numpy as np
import pytest

from repro import Session, cm5
from repro.array import from_numpy
from repro.comm.gather_scatter import gather, scatter
from repro.comm.primitives import cshift, reduce_array, transpose
from repro.comm.scan import scan, segmented_scan
from repro.comm.stencil import stencil_apply
from repro.linalg.fft import fft

N = 1 << 16


@pytest.fixture
def vec():
    session = Session(cm5(32))
    return from_numpy(session, np.arange(float(N)), "(:)")


def test_cshift_throughput(benchmark, vec):
    out = benchmark(lambda: cshift(vec, 1))
    assert out.size == N


def test_reduce_throughput(benchmark, vec):
    total = benchmark(lambda: reduce_array(vec, "sum"))
    assert total == pytest.approx(N * (N - 1) / 2)


def test_scan_throughput(benchmark, vec):
    out = benchmark(lambda: scan(vec, "sum"))
    assert out.np[-1] == pytest.approx(N * (N - 1) / 2)


def test_segmented_scan_throughput(benchmark, vec):
    starts = np.zeros(N, dtype=bool)
    starts[:: 64] = True
    out = benchmark(lambda: segmented_scan(vec, starts, "sum"))
    assert out.size == N


def test_gather_throughput(benchmark, vec):
    idx = np.random.default_rng(0).integers(0, N, N)
    out = benchmark(lambda: gather(vec, idx))
    assert out.size == N


def test_scatter_add_throughput(benchmark, vec):
    session = vec.session
    dest = from_numpy(session, np.zeros(N), "(:)")
    idx = np.random.default_rng(1).integers(0, N, N)

    def run():
        dest.data[:] = 0.0
        scatter(dest, idx, vec, combine="add")
        return dest

    out = benchmark(run)
    assert out.np.sum() == pytest.approx(vec.np.sum())


def test_transpose_throughput(benchmark):
    session = Session(cm5(32))
    x = from_numpy(session, np.arange(512.0 * 512).reshape(512, 512), "(:,:)")
    out = benchmark(lambda: transpose(x))
    assert out.shape == (512, 512)


def test_stencil_throughput(benchmark):
    session = Session(cm5(32))
    x = from_numpy(session, np.ones((256, 256)), "(:,:)")
    taps = {
        (0, 0): -4.0, (1, 0): 1.0, (-1, 0): 1.0, (0, 1): 1.0, (0, -1): 1.0,
    }
    out = benchmark(lambda: stencil_apply(x, taps))
    assert out.shape == x.shape


def test_fft_throughput(benchmark):
    session = Session(cm5(32))
    x = from_numpy(
        session, np.random.default_rng(0).standard_normal(1 << 12) + 0j, "(:)"
    )
    out = benchmark(lambda: fft(x))
    assert out.size == 1 << 12


def test_accounting_overhead(benchmark):
    """Pure accounting (no data): a thousand charges must stay cheap."""

    def run():
        session = Session(cm5(32))
        for _ in range(1000):
            session.charge_kernel(100, critical_fraction=0.1)
        return session.recorder.total_flops

    total = benchmark(run)
    assert total == 100_000
