"""General-purpose synthetic generators.

Index-pattern generators target the router-sensitivity axis the paper
discusses for gather/scatter codes (§4, class (8)): uniformly random
indices, collision-free permutations, locality-preserving banded
indices, and pathological hotspots.  Particle generators produce
deterministic, overlap-free initial conditions for the MD/PIC family.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def _rng(seed: Optional[int], rng: Optional[np.random.Generator]):
    return rng if rng is not None else np.random.default_rng(seed)


def permutation_indices(
    n: int, *, seed: Optional[int] = 0, rng=None
) -> np.ndarray:
    """A collision-free index set: each destination hit exactly once."""
    return _rng(seed, rng).permutation(n)


def hotspot_indices(
    n: int,
    *,
    hotspots: int = 1,
    spread: float = 0.0,
    seed: Optional[int] = 0,
    rng=None,
) -> np.ndarray:
    """Worst-case router traffic: all indices land on few destinations.

    ``spread`` in [0, 1] mixes in uniformly random indices; 0 is the
    pure hotspot the paper's collision discussion worries about.
    """
    if not 0.0 <= spread <= 1.0:
        raise ValueError(f"spread must be in [0, 1], got {spread}")
    if hotspots < 1:
        raise ValueError("need at least one hotspot")
    gen = _rng(seed, rng)
    idx = gen.integers(0, hotspots, size=n)
    if spread > 0.0:
        random_part = gen.integers(0, n, size=n)
        mask = gen.random(n) < spread
        idx = np.where(mask, random_part, idx)
    return idx


def banded_indices(
    n: int, *, bandwidth: int = 8, seed: Optional[int] = 0, rng=None
) -> np.ndarray:
    """Locality-preserving indices: destination within ``bandwidth`` of
    the source position (the unstructured-mesh regime)."""
    if bandwidth < 0:
        raise ValueError("bandwidth must be non-negative")
    gen = _rng(seed, rng)
    base = np.arange(n)
    offset = gen.integers(-bandwidth, bandwidth + 1, size=n)
    return (base + offset) % n


def sparse_pattern(
    rows: int,
    cols: int,
    nnz_per_row: int,
    *,
    seed: Optional[int] = 0,
    rng=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """COO pattern of a random sparse matrix (row, col, value).

    The paper motivates gather/scatter with "basic linear algebra
    operations for arbitrary sparse matrices" (§2); this produces the
    index streams such a SpMV would feed the router.
    """
    if nnz_per_row > cols:
        raise ValueError("nnz_per_row cannot exceed cols")
    gen = _rng(seed, rng)
    row = np.repeat(np.arange(rows), nnz_per_row)
    col = np.concatenate(
        [gen.choice(cols, size=nnz_per_row, replace=False) for _ in range(rows)]
    )
    val = gen.standard_normal(rows * nnz_per_row)
    return row, col, val


def uniform_particles(
    n: int,
    box: float,
    dims: int = 3,
    *,
    seed: Optional[int] = 0,
    rng=None,
) -> np.ndarray:
    """Uniformly random particle positions in a periodic box."""
    return _rng(seed, rng).uniform(0.0, box, size=(n, dims))


def lattice_particles(
    n: int,
    box: float,
    dims: int = 3,
    *,
    jitter: float = 0.05,
    seed: Optional[int] = 0,
    rng=None,
) -> np.ndarray:
    """Jittered-lattice positions guaranteeing a minimum separation.

    Used by the MD benchmarks so the Lennard-Jones core never blows up
    at step zero.
    """
    gen = _rng(seed, rng)
    side = int(np.ceil(n ** (1.0 / dims)))
    coords = np.stack(
        np.meshgrid(*([np.arange(side)] * dims), indexing="ij"), axis=-1
    ).reshape(-1, dims)[:n]
    spacing = box / side
    pos = coords * spacing + jitter * spacing * gen.standard_normal((n, dims))
    return pos % box
