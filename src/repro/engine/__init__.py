"""Suite execution engine: parallel, cached, fault-tolerant runs.

The engine is the managed layer between the simulation core and every
consumer (CLI, tables, benchmark harness, sweeps):

* :mod:`repro.engine.jobs` — :class:`RunRequest`, the declarative,
  content-hashed unit of work, and ``execute_request``;
* :mod:`repro.engine.executor` — the :class:`Engine`: process-pool
  fan-out, per-job timeout, bounded retry with backoff, graceful
  degradation to serial execution;
* :mod:`repro.engine.cache` — content-addressed result cache keyed by
  (code fingerprint, request hash);
* :mod:`repro.engine.store` — append-only JSONL run store of every
  result, with run grouping and diffing;
* :mod:`repro.engine.trace` — structured engine events (JSONL trace
  and progress callbacks);
* :mod:`repro.engine.plan` — grid/sweep expansion into deduplicated
  request lists, and stored-run replay;
* :mod:`repro.engine.stats` — per-run scheduler statistics
  (:class:`RunStats`) and the ``engine check`` perf-regression gate.

Quickstart::

    from repro.engine import Engine, EngineConfig, plan_suite

    engine = Engine(EngineConfig(jobs=4, cache_dir=".repro/cache",
                                 store=".repro/runs.jsonl"))
    results = engine.run(plan_suite())
    reports = {r.request.benchmark: r.report for r in results if r.ok}

See ``docs/ENGINE.md`` for architecture and format details.
"""

from repro.engine.cache import ResultCache, code_fingerprint
from repro.engine.executor import (
    Engine,
    EngineConfig,
    InjectedFailure,
    RunResult,
)
from repro.engine.jobs import RunRequest, execute_request
from repro.engine.pool import WorkerPool
from repro.engine.shards import ShardedRunStore
from repro.engine.plan import (
    expand_grid,
    machine_sweep_requests,
    plan_suite,
    requests_from_run,
    sweep_from_results,
    tier_sweep_requests,
)
from repro.engine.stats import (
    CheckReport,
    JobStats,
    RunStats,
    StatsAccumulator,
    compare_benchmarks,
    stats_from_records,
    stats_from_results,
    trajectory_point,
)
from repro.engine.store import (
    RunStore,
    StoreReader,
    diff_runs,
    keyed_by_benchmark,
    new_run_id,
    open_store,
    write_json_atomic,
)
from repro.engine.trace import EngineEvent, Tracer, read_trace

__all__ = [
    "CheckReport",
    "Engine",
    "EngineConfig",
    "EngineEvent",
    "InjectedFailure",
    "JobStats",
    "ResultCache",
    "RunRequest",
    "RunResult",
    "RunStats",
    "RunStore",
    "ShardedRunStore",
    "StoreReader",
    "Tracer",
    "WorkerPool",
    "code_fingerprint",
    "compare_benchmarks",
    "diff_runs",
    "execute_request",
    "expand_grid",
    "keyed_by_benchmark",
    "machine_sweep_requests",
    "new_run_id",
    "open_store",
    "plan_suite",
    "read_trace",
    "write_json_atomic",
    "requests_from_run",
    "StatsAccumulator",
    "stats_from_records",
    "stats_from_results",
    "sweep_from_results",
    "tier_sweep_requests",
    "trajectory_point",
]
