"""The benchmark suite: registry, runner and table regeneration.

* :mod:`repro.suite.registry` — all 32 benchmarks with their Table-1
  code versions, Table-2/5 layouts, Table-3/7 communication patterns
  and Table-8 implementation techniques;
* :mod:`repro.suite.adapters` — uniform ``(session, **params) ->``
  result wrappers around the linalg/commbench/app entry points;
* :mod:`repro.suite.runner` — run one benchmark or the whole suite,
  producing :class:`~repro.metrics.PerfReport` records;
* :mod:`repro.suite.analytic` — the closed-form per-iteration FLOP /
  memory / communication formulas of Tables 4 and 6;
* :mod:`repro.suite.tables` — regenerate the paper's Tables 1-8.
"""

from repro.suite.registry import REGISTRY, BenchmarkSpec, benchmark_names
from repro.suite.runner import run_benchmark, run_suite

__all__ = [
    "REGISTRY",
    "BenchmarkSpec",
    "benchmark_names",
    "run_benchmark",
    "run_suite",
]
