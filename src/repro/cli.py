"""Command-line interface: ``python -m repro``.

Subcommands
-----------

``list``
    List the 32 registered benchmarks with group and description.
``run NAME``
    Run one benchmark and print its §1.5 performance report
    (``--nodes``, ``--machine``, ``--tier`` select the simulated
    environment; ``--param k=v`` forwards benchmark parameters).
``suite``
    Run every benchmark with small default sizes and print a summary
    table.
``tables``
    Regenerate the paper's tables (1, 2, 3, 5, 7, 8 structural; 4 and
    6 measured-vs-paper).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.machine.presets import cm5, cm5e, generic_cluster, workstation
from repro.machine.session import Session
from repro.versions import VersionTier

MACHINES: Dict[str, Callable[[int], object]] = {
    "cm5": cm5,
    "cm5e": cm5e,
    "cluster": generic_cluster,
    "workstation": lambda nodes: workstation(),
}


def _parse_value(text: str):
    """Parse a CLI parameter value: int, float, bool or string."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_params(entries: Optional[List[str]]) -> Dict[str, object]:
    params: Dict[str, object] = {}
    for entry in entries or []:
        if "=" not in entry:
            raise SystemExit(f"bad --param {entry!r}; expected key=value")
        key, _, value = entry.partition("=")
        params[key] = _parse_value(value)
    return params


def _make_session(args) -> Session:
    machine = MACHINES[args.machine](args.nodes)
    return Session(machine, tier=VersionTier(args.tier))


def _cmd_list(args) -> int:
    from repro.suite import REGISTRY

    width = max(len(n) for n in REGISTRY)
    for name in sorted(REGISTRY):
        spec = REGISTRY[name]
        versions = ",".join(t.value for t in spec.versions)
        print(f"{name:{width}s}  [{spec.group:6s}]  {spec.description}")
        if args.verbose:
            print(f"{'':{width}s}  layouts: {' '.join(spec.layouts)}")
            print(f"{'':{width}s}  versions: {versions}")
    return 0


def _cmd_run(args) -> int:
    from repro.suite import run_benchmark

    session = _make_session(args)
    report = run_benchmark(args.name, session, **_parse_params(args.param))
    print(f"machine: {session.machine.describe()}")
    print(report.summary())
    if report.extra:
        print("\nverification observables:")
        for key, value in report.extra.items():
            print(f"  {key:28s} {value:.6g}")
    if args.json:
        from repro.metrics.serialize import report_to_json

        with open(args.json, "w") as fh:
            fh.write(report_to_json(report))
        print(f"\nreport written to {args.json}")
    return 0


def _cmd_suite(args) -> int:
    from repro.suite import run_suite
    from repro.suite.tables import format_table

    reports = run_suite(lambda: _make_session(args))
    rows = []
    for name in sorted(reports):
        r = reports[name]
        eff = r.arithmetic_efficiency
        rows.append(
            [
                name,
                f"{r.busy_time:.6f}",
                f"{r.elapsed_time:.6f}",
                f"{r.busy_floprate_mflops:.2f}",
                f"{r.flop_count}",
                f"{100 * eff:.2f}%" if eff is not None else "-",
            ]
        )
    print(
        format_table(
            ["Benchmark", "Busy (s)", "Elapsed (s)", "MFLOP/s", "FLOPs", "Eff"],
            rows,
        )
    )
    return 0


def _cmd_tables(args) -> int:
    from repro.suite import tables

    structural = {
        1: tables.table1_versions,
        2: tables.table2_layouts,
        3: tables.table3_comm,
        5: tables.table5_layouts,
        7: tables.table7_comm,
        8: tables.table8_techniques,
    }
    measured = {
        4: lambda: tables.table4_linalg(lambda: _make_session(args)),
        6: lambda: tables.table6_apps(lambda: _make_session(args)),
    }
    wanted = args.numbers or sorted({**structural, **measured})
    for number in wanted:
        fn = structural.get(number) or measured.get(number)
        if fn is None:
            raise SystemExit(f"no table {number}; choose from 1-8")
        print(f"=== Table {number} ===")
        print(fn())
        print()
    return 0


def _cmd_sweep(args) -> int:
    from repro.suite.sweeps import (
        efficiency_series,
        machine_sweep,
        parameter_sweep,
    )

    values = [_parse_value(v) for v in args.values.split(",")]
    fixed = _parse_params(args.param)
    if args.over == "nodes":
        factory = MACHINES[args.machine]
        sweep = machine_sweep(
            args.name, factory, values, fixed, tier=VersionTier(args.tier)
        )
        print(sweep.table())
        eff = efficiency_series(sweep)
        pairs = ", ".join(
            f"{n}: {e:.2f}" for n, e in zip(values, eff["efficiency"])
        )
        print(f"\nparallel efficiency vs {values[0]} nodes: {pairs}")
    else:
        sweep = parameter_sweep(
            args.name, args.over, values, lambda: _make_session(args), fixed
        )
        print(sweep.table())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DPF benchmark suite (IPPS 1997) — Python reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_machine_args(p):
        p.add_argument(
            "--machine", choices=sorted(MACHINES), default="cm5",
            help="simulated machine preset (default: cm5)",
        )
        p.add_argument(
            "--nodes", type=int, default=32, help="node count (default: 32)"
        )
        p.add_argument(
            "--tier",
            choices=[t.value for t in VersionTier],
            default="basic",
            help="code-version tier of Table 1 (default: basic)",
        )

    p_list = sub.add_parser("list", help="list registered benchmarks")
    p_list.add_argument("-v", "--verbose", action="store_true")
    p_list.set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="run one benchmark")
    p_run.add_argument("name")
    p_run.add_argument(
        "--param", action="append", metavar="K=V",
        help="benchmark parameter override (repeatable)",
    )
    p_run.add_argument("--json", metavar="PATH", help="write report as JSON")
    _add_machine_args(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_suite = sub.add_parser("suite", help="run the whole suite")
    _add_machine_args(p_suite)
    p_suite.set_defaults(fn=_cmd_suite)

    p_tables = sub.add_parser("tables", help="regenerate the paper's tables")
    p_tables.add_argument(
        "numbers", nargs="*", type=int, help="table numbers (default: all)"
    )
    _add_machine_args(p_tables)
    p_tables.set_defaults(fn=_cmd_tables)

    p_sweep = sub.add_parser(
        "sweep", help="sweep a benchmark parameter or the node count"
    )
    p_sweep.add_argument("name")
    p_sweep.add_argument(
        "--over", required=True, metavar="PARAM",
        help="parameter to sweep ('nodes' sweeps the machine size)",
    )
    p_sweep.add_argument(
        "--values", required=True,
        help="comma-separated values, e.g. 8,16,32",
    )
    p_sweep.add_argument(
        "--param", action="append", metavar="K=V",
        help="fixed benchmark parameter (repeatable)",
    )
    _add_machine_args(p_sweep)
    p_sweep.set_defaults(fn=_cmd_sweep)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
