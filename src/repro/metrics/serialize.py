"""Serialization of performance reports (JSON/CSV).

The original suite wrote per-benchmark output files with the §1.5
metrics; these helpers provide the modern equivalents for downstream
tooling: a JSON document per report, CSV rows for whole-suite runs, and
the inverse mapping (``report_from_dict``/``report_from_json``) that
the execution engine's run store and result cache rely on — a report
round-trips losslessly through ``report_to_dict``.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterable, List

from repro.metrics.access import LocalAccess
from repro.metrics.flops import FlopKind
from repro.metrics.memory import TypeTag
from repro.metrics.patterns import CommPattern
from repro.metrics.report import PerfReport, SegmentReport


def report_to_dict(report: PerfReport) -> Dict:
    """A JSON-safe dictionary of every §1.5 metric."""
    return {
        "benchmark": report.benchmark,
        "version": report.version,
        "problem_size": report.problem_size,
        "iterations": report.iterations,
        "busy_time_s": report.busy_time,
        "elapsed_time_s": report.elapsed_time,
        "busy_floprate_mflops": report.busy_floprate_mflops,
        "elapsed_floprate_mflops": report.elapsed_floprate_mflops,
        "flop_count": report.flop_count,
        "flops_per_iteration": report.flops_per_iteration,
        "ops_per_point": report.ops_per_point,
        "memory_bytes": report.memory_bytes,
        "memory_by_tag": {
            tag.value: nbytes for tag, nbytes in report.memory_by_tag.items()
        },
        "arithmetic_efficiency": report.arithmetic_efficiency,
        "flop_kinds": {
            kind.value: dict(entry) for kind, entry in report.flop_kinds.items()
        },
        "local_access": report.local_access.value,
        "network_bytes": report.network_bytes,
        "comm_counts": {
            pattern.value: count for pattern, count in report.comm_counts.items()
        },
        "comm_per_iteration": {
            pattern.value: count
            for pattern, count in report.comm_per_iteration().items()
        },
        "segments": [
            {
                "name": seg.name,
                "iterations": seg.iterations,
                "flop_count": seg.flop_count,
                "busy_time_s": seg.busy_time,
                "elapsed_time_s": seg.elapsed_time,
                "busy_floprate_mflops": seg.busy_floprate_mflops,
                "network_bytes": seg.network_bytes,
                "comm_counts": {
                    pattern.value: count
                    for pattern, count in seg.comm_counts.items()
                },
            }
            for seg in report.segments
        ],
        "peak_mflops": report.peak_mflops,
        "observables": dict(report.extra),
    }


def report_to_json(report: PerfReport, indent: int = 2) -> str:
    """JSON document of one report (see report_to_dict)."""
    return json.dumps(report_to_dict(report), indent=indent, sort_keys=True)


def canonical_report_json(record: Dict) -> str:
    """Deterministic (sorted, compact) JSON of a report dictionary.

    Two reports are byte-identical in the run store iff their canonical
    JSON strings match; the engine's determinism guarantee (serial and
    parallel execution produce the same stored reports) is stated over
    this form.
    """
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def report_from_dict(record: Dict) -> PerfReport:
    """Rebuild a :class:`PerfReport` from ``report_to_dict`` output.

    Derived quantities (FLOP rates, efficiencies, per-iteration counts)
    are ignored on input — they recompute from the stored fields.
    """
    segments = [
        SegmentReport(
            name=seg["name"],
            iterations=seg["iterations"],
            flop_count=seg["flop_count"],
            busy_time=seg["busy_time_s"],
            elapsed_time=seg["elapsed_time_s"],
            comm_counts={
                CommPattern(p): count
                for p, count in seg.get("comm_counts", {}).items()
            },
            network_bytes=seg.get("network_bytes", 0),
        )
        for seg in record.get("segments", [])
    ]
    return PerfReport(
        benchmark=record["benchmark"],
        version=record["version"],
        problem_size=record["problem_size"],
        busy_time=record["busy_time_s"],
        elapsed_time=record["elapsed_time_s"],
        flop_count=record["flop_count"],
        memory_bytes=record["memory_bytes"],
        memory_by_tag={
            TypeTag(tag): nbytes
            for tag, nbytes in record.get("memory_by_tag", {}).items()
        },
        comm_counts={
            CommPattern(p): count
            for p, count in record.get("comm_counts", {}).items()
        },
        network_bytes=record["network_bytes"],
        local_access=LocalAccess(record["local_access"]),
        iterations=record.get("iterations", 1),
        peak_mflops=record.get("peak_mflops"),
        segments=segments,
        extra=dict(record.get("observables", {})),
        flop_kinds={
            FlopKind(kind): {"ops": entry["ops"], "flops": entry["flops"]}
            for kind, entry in record.get("flop_kinds", {}).items()
        },
    )


def report_from_json(text: str) -> PerfReport:
    """Rebuild a report from its JSON document."""
    return report_from_dict(json.loads(text))


#: columns of the CSV summary, in order.
CSV_FIELDS: List[str] = [
    "benchmark",
    "version",
    "problem_size",
    "iterations",
    "busy_time_s",
    "elapsed_time_s",
    "busy_floprate_mflops",
    "elapsed_floprate_mflops",
    "flop_count",
    "memory_bytes",
    "network_bytes",
    "arithmetic_efficiency",
    "local_access",
]


def reports_to_csv(reports: Iterable[PerfReport]) -> str:
    """A CSV summary, one row per report (suite-run output)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=CSV_FIELDS)
    writer.writeheader()
    for report in reports:
        record = report_to_dict(report)
        writer.writerow({field: record[field] for field in CSV_FIELDS})
    return buffer.getvalue()
