"""Campaign execution: compile the spec, run it through the engine.

A campaign run is just an engine invocation with the right defaults:
a content-hash :class:`~repro.engine.cache.ResultCache` and a sharded
run store, both living under the campaign's own directory
(``<root>/<name>/``).  Those two defaults are what make campaigns
*resumable*: the engine appends to the store and writes the cache as
each job finishes, so a killed campaign reruns with the same spec and
every already-completed point comes back as status ``cached`` without
re-simulating — the cache-hit rate of the rerun is the completed
fraction of the killed run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.campaign.spec import CampaignSpec
from repro.engine.cache import ResultCache
from repro.engine.executor import Engine, EngineConfig, RunResult
from repro.engine.jobs import RunRequest

#: Default directory campaigns keep their stores and caches under.
DEFAULT_ROOT = ".repro/campaigns"


def campaign_paths(
    name: str, root: Union[str, Path] = DEFAULT_ROOT
) -> Tuple[Path, Path]:
    """(store directory, cache directory) of a named campaign.

    The store path is a *directory*, so
    :func:`repro.engine.store.open_store` opens it sharded — a
    thousand-job campaign does not funnel through one flat JSONL file.
    """
    base = Path(root) / name
    return base / "store", base / "cache"


@dataclass
class CampaignResult:
    """Outcome of one campaign execution."""

    spec: CampaignSpec
    run_id: str
    requests: List[RunRequest]
    results: List[RunResult]
    #: the engine's :class:`~repro.engine.stats.RunStats` for this run
    stats: object = None
    store_path: Optional[Path] = None
    cache_dir: Optional[Path] = None

    @property
    def ok(self) -> bool:
        """Whether every point produced a report (fresh or cached)."""
        return all(result.ok for result in self.results)

    @property
    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for result in self.results:
            counts[result.status] = counts.get(result.status, 0) + 1
        return counts


def run_campaign(
    spec: CampaignSpec,
    *,
    root: Union[str, Path] = DEFAULT_ROOT,
    jobs: int = 1,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.1,
    store: Optional[Union[str, Path]] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    run_id: Optional[str] = None,
    progress: Optional[Callable[[RunResult], None]] = None,
    pool=None,
) -> CampaignResult:
    """Compile ``spec`` and execute its plan through the engine.

    ``store``/``cache_dir`` default to the campaign's directory under
    ``root`` (:func:`campaign_paths`); overriding them redirects
    persistence without changing semantics.  ``progress`` is invoked
    per finished job — the hook the resumability test uses to kill a
    campaign mid-run.
    """
    store_path, cache_path = campaign_paths(spec.name, root)
    if store is not None:
        store_path = Path(store)
    if cache_dir is not None:
        cache_path = Path(cache_dir)
    # Materialize the store directory up front so open_store() sees a
    # directory and opens it sharded (an existing flat file is left
    # alone — the caller asked for that layout explicitly).
    if not store_path.exists():
        store_path.mkdir(parents=True, exist_ok=True)
    requests = spec.compile()
    config = EngineConfig(
        jobs=jobs,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        cache_dir=cache_path,
        store=store_path,
        run_id=run_id,
    )
    engine = Engine(config, progress=progress, pool=pool)
    results = engine.run(requests)
    return CampaignResult(
        spec=spec,
        run_id=engine.last_run_stats.run_id if engine.last_run_stats else "",
        requests=requests,
        results=results,
        stats=engine.last_run_stats,
        store_path=store_path,
        cache_dir=cache_path,
    )


@dataclass
class CampaignStatus:
    """Completion picture of a campaign, derived from its cache.

    The cache is the resume source of truth — a point whose cache
    entry exists will be served as ``cached`` on the next run — so
    ``completed / total`` is exactly the fraction a rerun skips.
    """

    name: str
    total: int
    completed: int
    #: run ids recorded in the campaign's store, oldest first
    run_ids: List[str] = field(default_factory=list)
    #: per-benchmark pending counts for the remaining points
    pending_by_benchmark: Dict[str, int] = field(default_factory=dict)

    @property
    def pending(self) -> int:
        return self.total - self.completed

    @property
    def fraction_complete(self) -> float:
        return self.completed / self.total if self.total else 0.0

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "total": self.total,
            "completed": self.completed,
            "pending": self.pending,
            "fraction_complete": self.fraction_complete,
            "run_ids": list(self.run_ids),
            "pending_by_benchmark": dict(self.pending_by_benchmark),
        }


def campaign_status(
    spec: CampaignSpec,
    *,
    root: Union[str, Path] = DEFAULT_ROOT,
    store: Optional[Union[str, Path]] = None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> CampaignStatus:
    """How much of ``spec`` is already answered by its cache."""
    from repro.engine.store import open_store

    store_path, cache_path = campaign_paths(spec.name, root)
    if store is not None:
        store_path = Path(store)
    if cache_dir is not None:
        cache_path = Path(cache_dir)
    requests = spec.compile()
    cache = ResultCache(cache_path)
    pending: Dict[str, int] = {}
    completed = 0
    for request in requests:
        if request in cache:
            completed += 1
        else:
            pending[request.benchmark] = pending.get(request.benchmark, 0) + 1
    run_ids: List[str] = []
    if Path(store_path).exists():
        run_ids = open_store(store_path).run_ids()
    return CampaignStatus(
        name=spec.name,
        total=len(requests),
        completed=completed,
        run_ids=run_ids,
        pending_by_benchmark=dict(sorted(pending.items())),
    )
