"""HPF-style data layouts (paper §1.4, Tables 2 and 5).

CM-Fortran and HPF distinguish *serial* (node-local) axes from
*parallel* (distributed) axes; the paper specifies every benchmark's
dominating data structures in the notation ``X(:serial, :, :)`` where
``:serial`` marks a local axis and ``:`` a parallel one.  This package
implements that layout algebra:

* :class:`Axis` — SERIAL vs PARALLEL axis kinds;
* :class:`Layout` — shape + per-axis kinds, with block distribution of
  parallel axes onto a processor grid and the geometry queries
  (local shapes, critical-node fractions, shift/reduction volumes) the
  communication layer needs;
* :func:`parse_layout` — parser for the paper's layout strings.
"""

from repro.layout.spec import Axis, Distribution, Layout, parse_layout

__all__ = ["Axis", "Distribution", "Layout", "parse_layout"]
