"""Householder QR factorization and least-squares solution.

Table 2 gives ``qr`` the rank-2 layout ``X(:,:)`` (a single ``m x n``
system, all axes parallel); Table 4 charges the factorization two
Reductions and two Broadcasts per main-loop iteration (column-norm
reduction and ``w = A^T v`` reduction; broadcasts of the Householder
vector and of ``w``) and the solve two Reductions and four Broadcasts.
Factorization and solution are timed separately (§1.5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.array.distarray import DistArray
from repro.layout.spec import parse_layout
from repro.machine.session import Session
from repro.metrics.access import LocalAccess
from repro.metrics.flops import FlopKind
from repro.metrics.patterns import CommPattern


@dataclass
class QRFactorization:
    """Householder vectors (below the diagonal of ``qr``), R on and
    above it, and the scalar ``tau`` coefficients."""

    qr: DistArray  # (m, n)
    tau: np.ndarray  # (n,)


def _charge_dot(session, length: int, lanes: int, layout, detail: str) -> None:
    """A distributed dot/norm: multiplies plus a tree reduction."""
    flops = (2 * length - 1) * lanes
    session.recorder.charge_raw_flops(flops)
    session.record_comm(
        CommPattern.REDUCTION,
        bytes_network=lanes * 8,
        rank=2,
        detail=detail,
    )
    session.recorder.charge_compute_time(
        session.machine.compute_time(
            flops * layout.critical_fraction(session.nodes),
            tier=session.tier,
        )
    )


def _charge_bcast(session, elements: int, layout, detail: str) -> None:
    session.record_comm(
        CommPattern.BROADCAST,
        bytes_network=elements * 8 if layout.nodes_used(session.nodes) > 1 else 0,
        bytes_local=elements * 8,
        rank=2,
        detail=detail,
    )


def qr_factor(A: DistArray) -> QRFactorization:
    """Householder QR of an ``m x n`` matrix (``m >= n``)."""
    if A.ndim != 2:
        raise ValueError(f"qr_factor expects a rank-2 matrix, got {A.shape}")
    m, n = A.shape
    if m < n:
        raise ValueError(f"qr_factor requires m >= n, got {m} x {n}")
    session = A.session
    R = A.data.astype(np.float64, copy=True)
    tau = np.zeros(n)

    with session.region("factor", iterations=max(1, n)):
        for k in range(n):
            col = R[k:, k]
            # Reduction 1: column norm.
            sigma2 = float(col @ col)
            _charge_dot(session, m - k, 1, A.layout, "column norm")
            session.recorder.charge_flops(FlopKind.SQRT, 1)
            norm = np.sqrt(sigma2)
            if norm == 0.0:
                tau[k] = 0.0
                continue
            alpha = -np.sign(col[0]) * norm if col[0] != 0 else -norm
            v = col.copy()
            v[0] -= alpha
            vnorm2 = sigma2 - 2 * alpha * col[0] + alpha * alpha
            session.recorder.charge_flops(FlopKind.MUL, 3)
            session.recorder.charge_flops(FlopKind.ADD, 2)
            if vnorm2 == 0.0 or v[0] == 0.0:
                tau[k] = 0.0
                continue
            # Normalize so the stored reflector has v[0] = 1.
            v0 = v[0]
            v /= v0
            tau[k] = 2.0 * v0 * v0 / vnorm2
            session.recorder.charge_flops(FlopKind.DIV, m - k + 1)
            session.recorder.charge_flops(FlopKind.MUL, 2)
            # Broadcast 1: Householder vector to all column blocks.
            _charge_bcast(session, m - k, A.layout, "householder vector")

            # Reduction 2: w = v^T A[k:, k:] (n-k lanes).
            w = v @ R[k:, k:]
            flops = (2 * (m - k) - 1) * (n - k)
            session.recorder.charge_raw_flops(flops)
            session.record_comm(
                CommPattern.REDUCTION,
                bytes_network=(n - k) * 8,
                rank=2,
                detail="w = v^T A",
            )
            session.recorder.charge_compute_time(
                session.machine.compute_time(
                    flops * A.layout.critical_fraction(session.nodes),
                    tier=session.tier,
                )
            )
            # Broadcast 2: w to all row blocks.
            _charge_bcast(session, n - k, A.layout, "w")

            # Rank-1 update A -= tau v w^T.
            R[k:, k:] -= tau[k] * np.outer(v, w)
            update = 2 * (m - k) * (n - k) + (n - k)
            session.recorder.charge_raw_flops(update)
            session.recorder.charge_compute_time(
                session.machine.compute_time(
                    update * A.layout.critical_fraction(session.nodes),
                    tier=session.tier,
                    access=LocalAccess.DIRECT,
                )
            )
            R[k + 1 :, k] = v[1:]  # store the reflector below the diagonal
            R[k, k] = alpha
    return QRFactorization(
        qr=DistArray(R, A.layout, session, "qr"), tau=tau
    )


def qr_solve(fact: QRFactorization, b: DistArray) -> DistArray:
    """Least-squares solve via the stored reflectors; ``b`` is ``(m,)``
    or ``(m, r)``."""
    qr = fact.qr
    session = qr.session
    m, n = qr.shape
    b2 = b.data.reshape(m, -1).astype(np.float64, copy=True)
    r = b2.shape[1]

    # One solve iteration covers one reflector application and one
    # back-substitution row — Table 4 charges the solve 2 Reductions
    # and 4 Broadcasts per iteration.
    with session.region("solve", iterations=max(1, n)):
        # Apply Q^T: per reflector, broadcast the reflector and its tau,
        # w = v^T b (Reduction), then broadcast w for the update.
        for k in range(n):
            if fact.tau[k] == 0.0:
                continue
            v = np.empty(m - k)
            v[0] = 1.0
            v[1:] = qr.data[k + 1 :, k]
            _charge_bcast(session, m - k, qr.layout, "reflector")
            _charge_bcast(session, 1, qr.layout, "tau")
            w = v @ b2[k:, :]
            _charge_dot(session, m - k, r, qr.layout, "w = v^T b")
            b2[k:, :] -= fact.tau[k] * np.outer(v, w)
            flops = (2 * (m - k) + 1) * r
            session.recorder.charge_raw_flops(flops)
            _charge_bcast(session, r, qr.layout, "w")
        # Back substitution on R.
        for k in range(n - 1, -1, -1):
            if k + 1 < n:
                dot = qr.data[k, k + 1 : n] @ b2[k + 1 : n, :]
                b2[k, :] -= dot
                _charge_dot(session, n - k - 1, r, qr.layout, "back subst")
                session.recorder.charge_raw_flops(r)
            b2[k, :] /= qr.data[k, k]
            session.recorder.charge_flops(FlopKind.DIV, r)
            _charge_bcast(session, r, qr.layout, "x_k")
    x = b2[:n, :]
    if b.ndim == 1:
        x = x[:, 0]
    return DistArray(
        x, parse_layout("(:)" if x.ndim == 1 else "(:,:)", x.shape), session, "x"
    )


def make_system(
    session: Session,
    m: int,
    n: int,
    nrhs: int = 1,
    seed: int = 0,
) -> tuple[DistArray, DistArray]:
    """A random full-rank least-squares system with Table-2 layouts."""
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, n))
    b_shape = (m,) if nrhs == 1 else (m, nrhs)
    b = rng.standard_normal(b_shape)
    dA = DistArray(A, parse_layout("(:,:)", A.shape), session, "A")
    db = DistArray(
        b, parse_layout("(:)" if nrhs == 1 else "(:,:)", b.shape), session, "b"
    )
    # Table 4 memory for qr: 24 m n single / 36 m n double — matrix,
    # reflector storage and workspace.
    session.declare_memory("A", A.shape, np.float64)
    session.declare_memory("V", A.shape, np.float64)
    session.declare_memory("work", A.shape, np.float64)
    session.declare_memory("b", b.shape, np.float64)
    return dA, db
