"""Event-stream tests: truncated-tail tolerance, schema, fan-out.

``read_stream``'s tolerance contract: a reader racing a live writer
may see the final line mid-flush — that tail is reported, never parsed
as garbage and never confused with real mid-file corruption.  And the
``EventFanout`` contract the serve layer uses: one emission point,
N subscribers, retained ``run_started`` replay, bounded queues that
drop instead of stalling the producer.
"""

import json
import threading

import pytest

from repro.obs.stream import (
    EventFanout,
    EventStream,
    read_stream,
    read_stream_partial,
    validate_stream,
)


def write_lines(path, lines, *, trailing_newline=True):
    text = "\n".join(lines)
    if trailing_newline:
        text += "\n"
    path.write_text(text, encoding="utf-8")
    return path


def event(kind: str, seq: int, **fields) -> str:
    return json.dumps({"kind": kind, "seq": seq, **fields})


class TestPartialReads:
    def test_clean_file_parses_fully(self, tmp_path):
        path = write_lines(tmp_path / "s.jsonl", [
            event("run_started", 0, run_id="r"),
            event("run_finished", 1, run_id="r"),
        ])
        read = read_stream_partial(path)
        assert read.clean
        assert [e["kind"] for e in read.events] == [
            "run_started", "run_finished",
        ]

    def test_truncated_tail_reported_not_raised(self, tmp_path):
        complete = event("run_started", 0, run_id="r")
        partial = '{"kind": "job_finished", "seq": 1, "bench'
        path = write_lines(
            tmp_path / "s.jsonl", [complete, partial],
            trailing_newline=False,
        )
        read = read_stream_partial(path)
        assert not read.clean
        assert len(read.events) == 1
        assert read.incomplete_tail == partial

    def test_complete_line_without_newline_still_parses(self, tmp_path):
        # the writer flushed the record but not yet the newline
        path = write_lines(
            tmp_path / "s.jsonl",
            [event("run_started", 0, run_id="r")],
            trailing_newline=False,
        )
        read = read_stream_partial(path)
        assert read.clean
        assert read.events[0]["seq"] == 0

    def test_mid_file_corruption_raises_with_line_number(self, tmp_path):
        path = write_lines(tmp_path / "s.jsonl", [
            event("run_started", 0, run_id="r"),
            "{definitely not json",
            event("run_finished", 2, run_id="r"),
        ])
        with pytest.raises(ValueError, match="line 2"):
            read_stream_partial(path)

    def test_read_stream_tolerant_by_default_strict_on_request(
        self, tmp_path
    ):
        path = write_lines(
            tmp_path / "s.jsonl",
            [event("run_started", 0, run_id="r"), '{"cut": '],
            trailing_newline=False,
        )
        events = read_stream(path)
        assert len(events) == 1
        with pytest.raises(ValueError, match="truncated"):
            read_stream(path, strict=True)

    def test_blank_lines_skipped(self, tmp_path):
        path = write_lines(tmp_path / "s.jsonl", [
            event("run_started", 0, run_id="r"),
            "",
            event("run_finished", 1, run_id="r"),
        ])
        assert len(read_stream(path, strict=True)) == 2


class TestValidateStream:
    def good(self):
        return [
            {"kind": "run_started", "seq": 0, "run_id": "r"},
            {
                "kind": "job_finished", "seq": 1, "benchmark": "fft",
                "status": "ok", "request_hash": "ab" * 32,
            },
            {"kind": "run_finished", "seq": 2, "run_id": "r"},
        ]

    def test_valid_stream_has_no_problems(self):
        assert validate_stream(self.good()) == []

    def test_unknown_kind_flagged(self):
        events = self.good()
        events[1]["kind"] = "job_exploded"
        assert any("unknown kind" in p for p in validate_stream(events))

    def test_non_increasing_seq_flagged(self):
        events = self.good()
        events[2]["seq"] = 1
        assert any("not increasing" in p for p in validate_stream(events))

    def test_missing_lifecycle_fields_flagged(self):
        events = self.good()
        del events[0]["run_id"]
        del events[1]["request_hash"]
        problems = validate_stream(events)
        assert any("run_id" in p for p in problems)
        assert any("request_hash" in p for p in problems)


class TestEventFanout:
    def test_every_subscriber_and_sink_sees_each_event(self, tmp_path):
        fanout = EventFanout()
        fanout.attach(EventStream(tmp_path / "sink.jsonl"))
        sub_a = fanout.subscribe()
        sub_b = fanout.subscribe()
        fanout.emit("run_started", run_id="r", workers=2)
        fanout.emit(
            "job_finished", benchmark="fft", status="ok",
            request_hash="ab" * 32,
        )
        fanout.close()
        events_a = list(sub_a)
        events_b = list(sub_b)
        assert events_a == events_b
        assert [e["seq"] for e in events_a] == [0, 1]
        on_disk = read_stream(tmp_path / "sink.jsonl", strict=True)
        assert on_disk == events_a
        assert validate_stream(on_disk) == []

    def test_late_subscriber_gets_retained_run_started(self):
        fanout = EventFanout()
        fanout.emit("run_started", run_id="r", workers=1)
        late = fanout.subscribe()
        replayed = late.get(timeout=1)
        assert replayed["kind"] == "run_started"
        assert replayed["run_id"] == "r"
        no_replay = fanout.subscribe(replay=False)
        fanout.close()
        assert list(no_replay) == []

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown stream event kind"):
            EventFanout().emit("job_exploded")

    def test_bounded_queue_drops_newest_and_counts(self):
        fanout = EventFanout(maxsize=2)
        sub = fanout.subscribe()
        fanout.emit("run_started", run_id="r")
        for _ in range(4):
            fanout.emit(
                "job_finished", benchmark="b", status="ok",
                request_hash="cd" * 32,
            )
        assert sub.dropped == 3
        fanout.close()
        assert len(list(sub)) == 2  # the bound, oldest kept

    def test_unsubscribed_queue_stops_receiving(self):
        fanout = EventFanout()
        sub = fanout.subscribe()
        fanout.emit("run_started", run_id="r")
        fanout.unsubscribe(sub)
        fanout.emit(
            "job_finished", benchmark="b", status="ok",
            request_hash="ef" * 32,
        )
        fanout.close()
        # only the event delivered while subscribed (close() does not
        # re-add the sentinel for detached handles)
        assert sub.get(timeout=0.1)["kind"] == "run_started"
        assert sub.get(timeout=0.1) is None

    def test_callback_subscribers_invoked_inline(self):
        fanout = EventFanout()
        seen = []
        handle = fanout.subscribe(seen.append)
        fanout.emit("run_started", run_id="r")
        assert [e["kind"] for e in seen] == ["run_started"]
        fanout.unsubscribe(handle)
        fanout.emit("run_finished", run_id="r")
        assert len(seen) == 1

    def test_emit_after_close_raises(self):
        fanout = EventFanout()
        fanout.close()
        with pytest.raises(RuntimeError, match="closed"):
            fanout.emit("run_started", run_id="r")

    def test_concurrent_emitters_keep_seq_strictly_increasing(self):
        fanout = EventFanout(maxsize=4096)
        sub = fanout.subscribe()

        def emit_many():
            for _ in range(50):
                fanout.emit(
                    "job_finished", benchmark="b", status="ok",
                    request_hash="aa" * 32,
                )

        threads = [threading.Thread(target=emit_many) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        fanout.close()
        events = list(sub)
        assert len(events) == 200
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 200
