"""JSONL live event stream for suite/engine runs.

``repro suite --stream events.jsonl`` (or ``EngineConfig.stream``)
makes the engine append one JSON object per line as the run progresses,
flushed per event so a tail/follower sees jobs the moment they finish:

* ``run_started``  — ``run_id``, number of jobs, worker count
* ``job_finished`` — benchmark, status, attempts, wall seconds, the
  request content hash, and (when span collection is on) the worker's
  span summary (see :data:`repro.obs.spans.SPAN_SUMMARY_SCHEMA`)
* ``run_finished`` — final status counts and duration

Every line carries ``kind`` and a monotonically increasing ``seq``.
The stream is observability output, not a store: replaying it does not
reconstruct reports (the run store does that).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

#: Event kinds a stream may carry, in lifecycle order.
STREAM_EVENT_KINDS = ("run_started", "job_finished", "run_finished")


class EventStream:
    """Append-mode JSONL writer with per-event flush.

    The file is opened lazily on the first :meth:`emit`, so configuring
    a stream costs nothing when no event is ever written.  Writers are
    also usable as context managers.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh = None
        self._seq = 0

    def emit(self, kind: str, **fields) -> Dict:
        """Append one event line; returns the emitted record."""
        if kind not in STREAM_EVENT_KINDS:
            raise ValueError(
                f"unknown stream event kind {kind!r}; "
                f"expected one of {STREAM_EVENT_KINDS}"
            )
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        record = {"kind": kind, "seq": self._seq, **fields}
        self._seq += 1
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        return record

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_stream(path: Union[str, Path]) -> list:
    """Read a stream file back as a list of event dictionaries."""
    out = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


__all__ = ["STREAM_EVENT_KINDS", "EventStream", "read_stream"]
