"""§1.5 performance metrics for the whole suite on the CM-5 model.

Produces the per-benchmark busy/elapsed times, FLOP rates and (for the
linear algebra codes) arithmetic efficiencies — the DPF codes' actual
output — across machine sizes, and writes the results table to
``benchmarks/output/suite_performance.txt``.
"""

import pytest

from repro import Session, cm5
from repro.suite import run_suite
from repro.suite.tables import format_table

from conftest import save_table

PARAMS = {
    "gather": {"n": 4096, "repeats": 3},
    "scatter": {"n": 4096, "repeats": 3},
    "reduction": {"n": 4096, "repeats": 3},
    "transpose": {"n": 64, "repeats": 3},
    "matrix-vector": {"n": 64, "repeats": 3},
    "lu": {"n": 24},
    "qr": {"m": 32, "n": 16},
    "gauss-jordan": {"n": 24},
    "pcr": {"n": 64},
    "conj-grad": {"n": 128},
    "jacobi": {"n": 12},
    "fft": {"n": 512},
    "boson": {"nx": 8, "nt": 4, "sweeps": 3},
    "diff-1d": {"nx": 64, "steps": 3},
    "diff-2d": {"nx": 24, "steps": 3},
    "diff-3d": {"nx": 12, "steps": 3},
    "ellip-2d": {"nx": 10},
    "fem-3d": {"nx": 2, "iterations": 8},
    "fermion": {"sites": 16, "n": 4, "sweeps": 2},
    "gmo": {"ns": 128, "ntr": 16},
    "ks-spectral": {"nx": 32, "ne": 2, "steps": 3},
    "md": {"n_p": 12, "steps": 4},
    "mdcell": {"nc": 3, "steps": 2},
    "n-body": {"n": 24},
    "pic-simple": {"nx": 16, "n_p": 128, "steps": 2},
    "pic-gather-scatter": {"nx": 8, "n_p": 64, "steps": 1},
    "qcd-kernel": {"nx": 3, "iterations": 2},
    "qmc": {"blocks": 1, "steps_per_block": 8, "n_w": 60},
    "qptransport": {"iterations": 8},
    "rp": {"nx": 5},
    "step4": {"nx": 10, "steps": 2},
    "wave-1d": {"nx": 64, "steps": 3},
}


def test_full_suite_metrics(benchmark, output_dir):
    """Run all 32 benchmarks on CM-5/32 and tabulate §1.5 metrics."""

    def run():
        return run_suite(lambda: Session(cm5(32)), params=PARAMS)

    reports = benchmark.pedantic(run, rounds=2, iterations=1)
    rows = []
    for name in sorted(reports):
        r = reports[name]
        eff = r.arithmetic_efficiency
        rows.append(
            [
                name,
                f"{r.busy_time:.6f}",
                f"{r.elapsed_time:.6f}",
                f"{r.busy_floprate_mflops:.2f}",
                f"{r.elapsed_floprate_mflops:.2f}",
                f"{r.flop_count}",
                f"{100 * eff:.2f}%" if eff is not None else "-",
            ]
        )
    text = format_table(
        [
            "Benchmark",
            "Busy (s)",
            "Elapsed (s)",
            "Busy MFLOP/s",
            "Elapsed MFLOP/s",
            "FLOPs",
            "Arith eff",
        ],
        rows,
    )
    save_table(output_dir, "suite_performance", text)
    assert len(reports) == 32
    for name, r in reports.items():
        assert r.elapsed_time >= r.busy_time, name


@pytest.mark.parametrize("nodes", [8, 32, 128])
def test_machine_scaling(benchmark, nodes, output_dir):
    """The §1.5 metrics across partition sizes (8 to 128 nodes)."""
    subset = ["diff-3d", "fft", "ellip-2d", "transpose", "qcd-kernel"]

    def run():
        return run_suite(
            lambda: Session(cm5(nodes)),
            names=subset,
            params={k: PARAMS[k] for k in subset},
        )

    reports = benchmark.pedantic(run, rounds=2, iterations=1)
    for r in reports.values():
        assert r.elapsed_time > 0


def test_cm5_vs_cm5e(benchmark, output_dir):
    """The paper's footnote: CM-5 peaks at 32 MFLOP/s per VU, the
    CM-5E at 40.  The same suite subset ranks the two machines."""
    from repro import cm5e
    from repro.suite.tables import format_table

    subset = ["diff-3d", "fft", "qcd-kernel", "matrix-vector", "ellip-2d"]

    def run():
        out = {}
        for label, preset in (("CM-5/32", cm5), ("CM-5E/32", cm5e)):
            out[label] = run_suite(
                lambda: Session(preset(32)),
                names=subset,
                params={k: PARAMS[k] for k in subset},
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name in subset:
        a = results["CM-5/32"][name]
        b = results["CM-5E/32"][name]
        rows.append(
            [
                name,
                f"{a.elapsed_time:.6f}",
                f"{b.elapsed_time:.6f}",
                f"{a.elapsed_time / b.elapsed_time:.2f}x",
            ]
        )
        # The CM-5E must win on every benchmark (faster VUs + network).
        assert b.elapsed_time < a.elapsed_time, name
        # Peak rates per the paper's footnote.
        assert a.peak_mflops == 32 * 4 * 32
        assert b.peak_mflops == 32 * 4 * 40
    save_table(
        output_dir,
        "cm5_vs_cm5e",
        format_table(["benchmark", "CM-5 (s)", "CM-5E (s)", "speedup"], rows),
    )
