"""Scaling series — the reproduction's "figures".

The paper reports only tables, but its §1.5 metrics are exactly what
scaling plots show.  These benches generate the strong-scaling and
problem-size series for representative benchmarks of each class and
write them to ``benchmarks/output/`` as plot-ready tables, asserting
the qualitative shapes: compute-bound codes scale nearly linearly,
latency-bound codes saturate, FLOP counts never change with the
machine.
"""

import pytest

from repro import cm5
from repro.suite.sweeps import efficiency_series, machine_sweep, parameter_sweep
from repro import Session

from conftest import save_table

NODE_COUNTS = [4, 8, 16, 32, 64, 128]

STRONG_SCALING = {
    "diff-3d": {"nx": 24, "steps": 3},
    "qcd-kernel": {"nx": 4, "iterations": 2},
    "ellip-2d": {"nx": 16},
    "fft": {"n": 2048},
    "transpose": {"n": 256, "repeats": 3},
}


@pytest.mark.parametrize("name", sorted(STRONG_SCALING))
def test_strong_scaling_series(benchmark, output_dir, name):
    def run():
        return machine_sweep(name, cm5, NODE_COUNTS, STRONG_SCALING[name])

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    eff = efficiency_series(sweep)
    lines = [sweep.table(), ""]
    lines.append(
        "efficiency: "
        + ", ".join(
            f"{n}:{e:.2f}" for n, e in zip(NODE_COUNTS, eff["efficiency"])
        )
    )
    save_table(output_dir, f"scaling_{name.replace('-', '_')}", "\n".join(lines))

    # Shape assertions.
    flops = sweep.series("flop_count")
    assert len(set(flops)) == 1, "FLOPs must be machine-invariant"
    busy = sweep.series("busy_time")
    assert busy[0] > busy[-1], "strong scaling must reduce busy time"
    assert all(0.0 < e <= 1.01 for e in eff["efficiency"])


PROBLEM_SCALING = {
    "diff-3d": ("nx", [8, 12, 16, 24], {"steps": 3}),
    "fft": ("n", [256, 512, 1024, 2048], {}),
    "n-body": ("n", [16, 32, 64], {"variant": "spread"}),
}


@pytest.mark.parametrize("name", sorted(PROBLEM_SCALING))
def test_problem_size_series(benchmark, output_dir, name):
    param, values, fixed = PROBLEM_SCALING[name]

    def run():
        return parameter_sweep(
            name, param, values, lambda: Session(cm5(32)), fixed
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(
        output_dir, f"sizes_{name.replace('-', '_')}", sweep.table()
    )
    flops = sweep.series("flop_count")
    assert flops == sorted(flops)
    # Larger problems amortize the network latency floor: the
    # *elapsed* FLOP rate rises with problem size.
    rates = sweep.series("elapsed_floprate_mflops")
    assert rates[-1] >= rates[0]
