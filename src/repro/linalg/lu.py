"""Dense LU factorization and solution (Table 2: ``X(:,:,:)``).

CMSSL's LU operates on multiple independent problem instances — hence
the rank-3 layout ``(instances, n, n)`` with all axes parallel.  The
paper's Table 4 charges the factorization ``2/3 n^2 i`` FLOPs per
main-loop iteration (``n`` iterations → the classic ``2/3 n^3``
total), one Reduction (pivot search) and one Broadcast (pivot row) per
iteration; the solve phase ``2 r n i`` FLOPs per iteration with one
Reduction.  Factorization and solution times are reported separately
(§1.5).

The implementation is right-looking Gaussian elimination with partial
pivoting, vectorized over instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.array.distarray import DistArray
from repro.layout.spec import Layout, parse_layout
from repro.machine.session import Session
from repro.metrics.access import LocalAccess
from repro.metrics.flops import FlopKind
from repro.metrics.patterns import CommPattern


@dataclass
class LUFactorization:
    """Packed L\\U factors and pivot indices per instance."""

    lu: DistArray  # (i, n, n) with unit-lower L below the diagonal
    pivots: np.ndarray  # (i, n) row swaps applied at each step


def lu_factor(A: DistArray) -> LUFactorization:
    """Factor ``P A = L U`` for each instance (in-place style, copies A)."""
    if A.ndim != 3:
        raise ValueError(
            f"lu_factor expects (instances, n, n), got shape {A.shape}"
        )
    i, n, n2 = A.shape
    if n != n2:
        raise ValueError(f"matrices must be square, got {n}x{n2}")
    session = A.session
    lu = A.data.copy()
    pivots = np.zeros((i, n), dtype=np.int64)
    inst = np.arange(i)

    row_layout = Layout((i, n), (A.layout.axes[0], A.layout.axes[2]))
    with session.region("factor", iterations=max(1, n)):
        for k in range(n):
            # Pivot search over rows k..n-1 of column k: 1 Reduction.
            sub = np.abs(lu[:, k:, k])
            p = k + np.argmax(sub, axis=1)
            pivots[:, k] = p
            session.charge_reduction_flops(n - k, i, layout=row_layout)
            session.record_comm(
                CommPattern.REDUCTION,
                bytes_network=i * (lu.itemsize + 8),
                rank=2,
                detail="pivot search",
            )
            # Row swap (local moves; the paper's comm table does not
            # charge it as a collective).
            tmp = lu[inst, k, :].copy()
            lu[inst, k, :] = lu[inst, p, :]
            lu[inst, p, :] = tmp

            piv = lu[:, k, k]
            if np.any(piv == 0):
                raise np.linalg.LinAlgError("singular matrix in lu_factor")
            if k + 1 < n:
                # Multipliers: (n-k-1) divisions per instance.
                lu[:, k + 1 :, k] /= piv[:, None]
                session.recorder.charge_flops(FlopKind.DIV, (n - k - 1) * i)
                # Broadcast the pivot row to all row blocks: 1 Broadcast.
                net = A.layout.reduce_network_elements(session.nodes, (1,))
                session.record_comm(
                    CommPattern.BROADCAST,
                    bytes_network=(n - k - 1) * i * lu.itemsize if net else 0,
                    bytes_local=(n - k - 1) * i * lu.itemsize,
                    rank=3,
                    detail="pivot row",
                )
                # Rank-1 trailing update: 2 (n-k-1)^2 FLOPs per instance.
                lu[:, k + 1 :, k + 1 :] -= (
                    lu[:, k + 1 :, k : k + 1] * lu[:, k : k + 1, k + 1 :]
                )
                update = (n - k - 1) * (n - k - 1) * i
                session.recorder.charge_flops(FlopKind.MUL, update)
                session.recorder.charge_flops(FlopKind.SUB, update)
                session.recorder.charge_compute_time(
                    session.machine.compute_time(
                        2
                        * update
                        * A.layout.critical_fraction(session.nodes),
                        tier=session.tier,
                        access=LocalAccess.DIRECT,
                    )
                )
    return LUFactorization(
        lu=DistArray(lu, A.layout, session, "lu"), pivots=pivots
    )


def lu_solve(fact: LUFactorization, B: DistArray) -> DistArray:
    """Solve ``A X = B`` per instance; ``B`` has shape ``(i, n, r)``.

    Row-oriented forward elimination and back substitution: one
    Reduction (dot product across the solved prefix) per main-loop
    iteration, ``2 r n i`` FLOPs per iteration (Table 4).
    """
    lu = fact.lu
    session = lu.session
    i, n, _ = lu.shape
    if B.ndim != 3 or B.shape[0] != i or B.shape[1] != n:
        raise ValueError(f"rhs shape {B.shape} incompatible with lu {lu.shape}")
    r = B.shape[2]
    inst = np.arange(i)

    x = B.data.copy()
    # Apply the recorded row swaps.
    for k in range(n):
        p = fact.pivots[:, k]
        tmp = x[inst, k, :].copy()
        x[inst, k, :] = x[inst, p, :]
        x[inst, p, :] = tmp

    ludata = lu.data
    with session.region("solve", iterations=max(1, 2 * n)):
        # Forward: L y = P b (unit lower triangular).
        for k in range(1, n):
            dot = np.einsum("ij,ijr->ir", ludata[:, k, :k], x[:, :k, :])
            x[:, k, :] -= dot
            flops = 2 * k * r * i
            session.recorder.charge_raw_flops(flops)
            session.record_comm(
                CommPattern.REDUCTION,
                bytes_network=r * i * x.itemsize,
                rank=3,
                detail="forward dot",
            )
            session.recorder.charge_compute_time(
                session.machine.compute_time(
                    flops * lu.layout.critical_fraction(session.nodes),
                    tier=session.tier,
                )
            )
        # Backward: U x = y.
        for k in range(n - 1, -1, -1):
            if k + 1 < n:
                dot = np.einsum(
                    "ij,ijr->ir", ludata[:, k, k + 1 :], x[:, k + 1 :, :]
                )
                x[:, k, :] -= dot
                flops = 2 * (n - k - 1) * r * i
                session.recorder.charge_raw_flops(flops)
                session.record_comm(
                    CommPattern.REDUCTION,
                    bytes_network=r * i * x.itemsize,
                    rank=3,
                    detail="backward dot",
                )
                session.recorder.charge_compute_time(
                    session.machine.compute_time(
                        flops * lu.layout.critical_fraction(session.nodes),
                        tier=session.tier,
                    )
                )
            x[:, k, :] /= ludata[:, k, k][:, None]
            session.recorder.charge_flops(FlopKind.DIV, r * i)
    layout = parse_layout("(:,:,:)", x.shape)
    return DistArray(x, layout, session, "x")


def make_systems(
    session: Session,
    n: int,
    instances: int = 1,
    nrhs: int = 1,
    dtype=np.float64,
    seed: int = 0,
) -> Tuple[DistArray, DistArray]:
    """Well-conditioned random systems ``(A, B)`` with Table-2 layouts."""
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((instances, n, n)) + n * np.eye(n)[None, :, :]
    B = rng.standard_normal((instances, n, nrhs))
    A = A.astype(dtype)
    B = B.astype(dtype)
    dA = DistArray(A, parse_layout("(:,:,:)", A.shape), session, "A")
    dB = DistArray(B, parse_layout("(:,:,:)", B.shape), session, "B")
    # Table 4 memory: 8 n (n + 2r) i — matrix plus RHS and solution.
    session.declare_memory("A", A.shape, dtype)
    session.declare_memory("B", B.shape, dtype)
    session.declare_memory("X", B.shape, dtype)
    return dA, dB
