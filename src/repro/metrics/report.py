"""Benchmark performance reports (paper §1.5).

Each DPF code produces: busy time, elapsed time, busy FLOP rate and
elapsed FLOP rate, and is quantified by FLOP count, arithmetic
efficiency, memory usage, communication patterns, operation count per
iteration, communication count per iteration and local-memory-access
pattern.  :class:`PerfReport` packages exactly those quantities, with
per-segment sub-reports for the benchmarks the paper times in pieces
(boson, fem-3D, md, qr, lu, diff-1D, diff-2D, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.access import LocalAccess
from repro.metrics.flops import FlopKind, merge_counters
from repro.metrics.memory import TypeTag
from repro.metrics.patterns import CommPattern
from repro.metrics.recorder import MetricsRecorder, Region


@dataclass
class SegmentReport:
    """Metrics for one named code segment (a recorder region)."""

    name: str
    iterations: int
    flop_count: int
    busy_time: float
    elapsed_time: float
    comm_counts: Dict[CommPattern, int]
    network_bytes: int

    @property
    def busy_floprate_mflops(self) -> float:
        """(3) Busy FLOP rate in MFLOP/s."""
        return self.flop_count / self.busy_time / 1e6 if self.busy_time > 0 else 0.0

    @property
    def elapsed_floprate_mflops(self) -> float:
        """(4) Elapsed FLOP rate in MFLOP/s."""
        return (
            self.flop_count / self.elapsed_time / 1e6 if self.elapsed_time > 0 else 0.0
        )

    @property
    def flops_per_iteration(self) -> float:
        """FLOPs divided by main-loop iterations."""
        return self.flop_count / self.iterations

    def comm_per_iteration(self) -> Dict[CommPattern, float]:
        """Pattern counts per main-loop iteration."""
        return {p: c / self.iterations for p, c in self.comm_counts.items()}


@dataclass
class PerfReport:
    """Full per-benchmark performance record."""

    benchmark: str
    version: str
    problem_size: int
    busy_time: float
    elapsed_time: float
    flop_count: int
    memory_bytes: int
    memory_by_tag: Dict[TypeTag, int]
    comm_counts: Dict[CommPattern, int]
    network_bytes: int
    local_access: LocalAccess
    iterations: int = 1
    peak_mflops: Optional[float] = None
    segments: List[SegmentReport] = field(default_factory=list)
    extra: Dict[str, float] = field(default_factory=dict)
    #: per-:class:`FlopKind` breakdown — ``{kind: {"ops": raw operation
    #: count, "flops": cost-weighted FLOPs}}``; the weighted values sum
    #: exactly to :attr:`flop_count` (empty for reports rebuilt from
    #: records that predate the breakdown)
    flop_kinds: Dict[FlopKind, Dict[str, int]] = field(default_factory=dict)

    # -- §1.5 performance metrics (1)-(4) -------------------------------
    @property
    def busy_floprate_mflops(self) -> float:
        """(3) Busy FLOP rate in MFLOP/s."""
        return self.flop_count / self.busy_time / 1e6 if self.busy_time > 0 else 0.0

    @property
    def elapsed_floprate_mflops(self) -> float:
        """(4) Elapsed FLOP rate in MFLOP/s."""
        return (
            self.flop_count / self.elapsed_time / 1e6 if self.elapsed_time > 0 else 0.0
        )

    # -- §1.5 attributes (2), (5), (6) ----------------------------------
    @property
    def arithmetic_efficiency(self) -> Optional[float]:
        """(2) Busy FLOP rate over the machine's aggregate peak rate."""
        if self.peak_mflops is None or self.peak_mflops <= 0:
            return None
        return self.busy_floprate_mflops / self.peak_mflops

    @property
    def ops_per_point(self) -> float:
        """(5) Operation count per data point (FLOPs / problem size)."""
        return self.flop_count / self.problem_size if self.problem_size else 0.0

    @property
    def flops_per_iteration(self) -> float:
        """FLOPs divided by main-loop iterations."""
        return self.flop_count / self.iterations

    def comm_per_iteration(self) -> Dict[CommPattern, float]:
        """(6) Communication counts per main-loop iteration."""
        return {p: c / self.iterations for p, c in self.comm_counts.items()}

    def segment(self, name: str) -> SegmentReport:
        """Look up a segment report by (path) name."""
        for seg in self.segments:
            if seg.name == name:
                return seg
        raise KeyError(f"no segment named {name!r} in report for {self.benchmark}")

    # -- construction ----------------------------------------------------
    @classmethod
    def from_recorder(
        cls,
        benchmark: str,
        version: str,
        recorder: MetricsRecorder,
        *,
        problem_size: int,
        local_access: LocalAccess,
        iterations: int = 1,
        peak_mflops: Optional[float] = None,
        main_region: str | None = "main_loop",
    ) -> "PerfReport":
        """Assemble a report from a completed recorder session.

        ``iterations`` defaults to the iteration count of the region
        named ``main_region`` when present, matching the paper's
        per-main-loop-iteration attributes.
        """
        recorder.flush_charges()
        root = recorder.root
        main = root.find(main_region) if main_region else None
        iters = main.iterations if main is not None else iterations
        # Flatten the region tree into path-named segments; the paper
        # reports segment metrics for several benchmarks (boson,
        # fem-3D, md, mdcell, qcd-kernel, qptransport, step4 — §1.5),
        # and those segments nest inside the main loop.
        segments = []
        for child in root.children:
            segments.extend(_segments_from_tree(child, prefix=""))
        merged = merge_counters(r.flops for r in root.walk())
        weighted = merged.weighted_by_kind
        flop_kinds = {
            kind: {"ops": ops, "flops": weighted.get(kind, 0)}
            for kind, ops in sorted(merged.operations.items())
        }
        return cls(
            benchmark=benchmark,
            version=version,
            problem_size=problem_size,
            busy_time=root.busy_time,
            elapsed_time=root.elapsed_time,
            flop_count=root.total_flops,
            memory_bytes=recorder.memory.total_bytes,
            memory_by_tag=recorder.memory.by_tag(),
            comm_counts=(main or root).comm_counts(),
            network_bytes=root.network_bytes,
            local_access=local_access,
            iterations=max(1, iters),
            peak_mflops=peak_mflops,
            segments=segments,
            flop_kinds=flop_kinds,
        )

    def summary(self) -> str:
        """Human-readable summary in the style of DPF output files."""
        lines = [
            f"benchmark      : {self.benchmark} ({self.version})",
            f"problem size   : {self.problem_size}",
            f"busy time      : {self.busy_time:.6f} s",
            f"elapsed time   : {self.elapsed_time:.6f} s",
            f"busy floprate  : {self.busy_floprate_mflops:.2f} MFLOP/s",
            f"elapsed floprate: {self.elapsed_floprate_mflops:.2f} MFLOP/s",
            f"flop count     : {self.flop_count}",
            f"memory usage   : {self.memory_bytes} bytes",
            f"ops/point      : {self.ops_per_point:.2f}",
            f"local access   : {self.local_access.value}",
        ]
        eff = self.arithmetic_efficiency
        if eff is not None:
            lines.append(f"arith. eff.    : {100 * eff:.2f} %")
        if self.comm_counts:
            per_iter = self.comm_per_iteration()
            comm = ", ".join(
                f"{per_iter[p]:g} {p.value}" for p in sorted(per_iter, key=lambda q: q.value)
            )
            lines.append(f"comm/iteration : {comm}")
        for seg in self.segments:
            lines.append(
                f"  segment {seg.name}: busy {seg.busy_time:.6f} s, "
                f"elapsed {seg.elapsed_time:.6f} s, "
                f"{seg.busy_floprate_mflops:.2f} MFLOP/s"
            )
        return "\n".join(lines)


def _segment_from_region(region: Region, name: str | None = None) -> SegmentReport:
    return SegmentReport(
        name=name if name is not None else region.name,
        iterations=region.iterations,
        flop_count=region.total_flops,
        busy_time=region.busy_time,
        elapsed_time=region.elapsed_time,
        comm_counts=region.comm_counts(),
        network_bytes=region.network_bytes,
    )


def _segments_from_tree(region: Region, prefix: str) -> List[SegmentReport]:
    """Depth-first segment list with '/'-joined path names.

    Parent segments are inclusive of their children (a parent's totals
    cover the whole subtree), matching how the paper reports a
    benchmark's constituents alongside the whole.
    """
    path = f"{prefix}/{region.name}" if prefix else region.name
    out = [_segment_from_region(region, path)]
    for child in region.children:
        out.extend(_segments_from_tree(child, path))
    return out
