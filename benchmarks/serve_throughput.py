"""Serve-mode trajectory point: fidelity gate + warm-vs-cold throughput.

Drives the full 32-benchmark suite through a live ``repro serve``
instance (concurrent clients, sharded store), gates the resulting
per-benchmark metrics against the seed baseline at tolerance 0 —
the server must be metrics-identical to batch runs — and then measures
the serve milestone's headline: a resident warm worker pool vs paying
interpreter start + import + pool spawn per mini-suite, on the
n-body-class small-job subset.

    PYTHONPATH=src python benchmarks/serve_throughput.py \
        --out BENCH_pr6.json

The output is a ``BENCH_*.json`` trajectory point (same schema as the
``engine check --bench-out`` points) with an extra ``serve`` section.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
sys.path.insert(0, str(SRC))

from repro.engine import RunStats, compare_benchmarks, open_store, plan_suite  # noqa: E402
from repro.engine.jobs import RunRequest  # noqa: E402
from repro.engine.stats import load_baseline_file, trajectory_point  # noqa: E402
from repro.serve import ServeClient, ServeConfig, ServerThread  # noqa: E402

BASELINE = Path(__file__).resolve().parent / "baselines" / "seed_suite_bench.json"

COLD_SCRIPT = """\
import json, sys, time
t0 = time.perf_counter()
from repro.engine import Engine, EngineConfig
from repro.engine.jobs import RunRequest
requests = [RunRequest.from_dict(r) for r in json.loads(sys.argv[1])]
engine = Engine(EngineConfig(jobs=2, timeout=300))
warm = engine.run(requests[:1])  # pool spawn + worker import land here
assert warm[0].status == "ok", warm[0].error
startup_s = time.perf_counter() - t0
t1 = time.perf_counter()
results = engine.run(requests)
run_s = time.perf_counter() - t1
assert all(r.status == "ok" for r in results), [r.error for r in results][:3]
print(json.dumps({"startup_s": startup_s, "run_s": run_s}))
"""


def small_request(i: int) -> RunRequest:
    return RunRequest(benchmark="n-body", params={"n": 12 + i})


def run_suite_through_server(workers: int, clients: int, store_dir: Path) -> RunStats:
    """All 32 suite requests via concurrent clients; the run's stats."""
    store_dir.mkdir(parents=True, exist_ok=True)
    config = ServeConfig(port=0, workers=workers, store=str(store_dir), timeout=300)
    with ServerThread(config) as (host, port):
        def submit(request):
            payload = ServeClient(host, port).submit(request, busy_retries=8)
            assert payload["job"]["status"] == "ok", payload["job"]
            return payload

        requests = plan_suite()
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as executor:
            payloads = list(executor.map(submit, requests))
        duration = time.perf_counter() - started
        print(
            f"suite via server: {len(payloads)} jobs, {clients} clients, "
            f"{duration:.2f}s ({len(payloads) / duration:.1f} jobs/s)"
        )
    store = open_store(store_dir)
    run_id = store.resolve("latest")
    return RunStats.from_dict(store.read_stats(run_id))


def measure_warm(workers: int, jobs: int) -> float:
    """Jobs/s through a warm resident pool (server already up)."""
    requests = [small_request(i) for i in range(jobs)]
    config = ServeConfig(port=0, workers=workers, timeout=300)
    with ServerThread(config) as (host, port):
        client = ServeClient(host, port)
        started = time.perf_counter()
        for request in requests:
            payload = client.submit(request)
            assert payload["job"]["status"] == "ok", payload["job"]
        return jobs / (time.perf_counter() - started)


def measure_cold(jobs: int):
    """Cold-process jobs/s with the startup constant pinned.

    One fresh interpreter runs the whole mini-suite: interpreter start,
    imports and the pool spawn are timed **once** (``startup_s``), and
    the per-job rate comes from the post-startup run only.  The old
    scheme launched a fresh interpreter per job, so the "cold" series
    mostly re-measured a constant unrelated to engine dispatch.
    """
    env = {**os.environ, "PYTHONPATH": str(SRC)}
    payload = json.dumps([small_request(i).to_dict() for i in range(jobs)])
    proc = subprocess.run(
        [sys.executable, "-c", COLD_SCRIPT, payload],
        env=env, check=True, timeout=600, capture_output=True, text=True,
    )
    timings = json.loads(proc.stdout.strip().splitlines()[-1])
    marginal = jobs / timings["run_s"]
    total = jobs / (timings["startup_s"] + timings["run_s"])
    return marginal, total, timings["startup_s"]


def measure_warm_batched(workers: int, jobs: int) -> float:
    """Jobs/s through a warm engine with PR 8 batched dispatch.

    The serve path submits one request per HTTP call (solo dispatch);
    this series shows what the same warm pool does when the engine is
    handed the whole mini-suite and may pack it into batches.
    """
    from repro.engine import Engine, EngineConfig
    from repro.engine.pool import WorkerPool

    requests = [small_request(i) for i in range(jobs)]
    pool = WorkerPool(workers=workers)
    engine = Engine(EngineConfig(jobs=2, timeout=300), pool=pool)
    engine.run(requests)  # warm: spawn workers, seed the EWMA
    started = time.perf_counter()
    results = engine.run(requests)
    rate = jobs / (time.perf_counter() - started)
    assert all(r.status == "ok" for r in results), [r.error for r in results][:3]
    pool.shutdown()
    return rate


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", default="BENCH_pr6.json", metavar="PATH")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--throughput-jobs", type=int, default=8)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        stats = run_suite_through_server(
            args.workers, args.clients, Path(tmp) / "runs"
        )

    report = compare_benchmarks(
        stats.benchmarks, load_baseline_file(BASELINE), tolerance_pct=0.0
    )
    ok = report.ok and not report.missing
    print(
        f"engine check vs seed baseline (tolerance 0): "
        f"{'ok' if ok else 'FAILED'} "
        f"({len(report.regressions)} regressions, "
        f"{len(report.missing)} missing)"
    )

    warm = measure_warm(args.workers, args.throughput_jobs)
    cold_marginal, cold_total, startup_s = measure_cold(args.throughput_jobs)
    batched = measure_warm_batched(args.workers, args.throughput_jobs)
    speedup = warm / cold_total if cold_total else float("inf")
    print(
        f"throughput: warm {warm:.1f} jobs/s vs cold {cold_total:.1f} jobs/s "
        f"all-in ({speedup:.1f}x; startup {startup_s:.2f}s paid once, "
        f"marginal {cold_marginal:.1f} jobs/s), "
        f"batched dispatch {batched:.1f} jobs/s"
    )

    point = trajectory_point(stats)
    point["check"] = {
        "baseline": str(BASELINE.relative_to(Path(__file__).resolve().parents[1])),
        "tolerance_pct": 0.0,
        "ok": ok,
        "regressions": len(report.regressions),
        "missing": report.missing,
    }
    point["serve"] = {
        "workers": args.workers,
        "clients": args.clients,
        "throughput_jobs": args.throughput_jobs,
        "warm_jobs_per_s": warm,
        "cold_jobs_per_s": cold_total,
        "cold_marginal_jobs_per_s": cold_marginal,
        "cold_startup_s": startup_s,
        "batched_jobs_per_s": batched,
        "speedup_x": speedup,
        "method": (
            "warm: sequential submits to a resident-pool server; cold: one "
            "fresh interpreter runs the whole n-body mini-suite, with "
            "interpreter start + import + pool spawn timed once "
            "(cold_startup_s) — the all-in rate pays it once per "
            "mini-suite, the marginal rate excludes it; batched: the same "
            "warm pool handed the whole mini-suite at once (batch dispatch)"
        ),
    }
    Path(args.out).write_text(
        json.dumps(point, sort_keys=True, indent=1) + "\n", encoding="utf-8"
    )
    print(f"trajectory point written to {args.out}")
    return 0 if (ok and speedup >= 2.0) else 1


if __name__ == "__main__":
    raise SystemExit(main())
