#!/usr/bin/env python
"""Profile walkthrough: trace a benchmark on the simulated clock.

Attaches a :class:`repro.obs.SpanCollector` to a session, runs the
conjugate-gradient benchmark, and walks through everything the span
layer offers:

* the text profile (top regions by busy time, per-pattern comm
  attribution),
* exact reconciliation of span totals against the PerfReport,
* a Chrome trace (load ``cg_trace.json`` in https://ui.perfetto.dev),
* a folded flamegraph (``cg_stacks.folded`` for flamegraph.pl or
  speedscope).

Usage::

    python examples/profile_walkthrough.py
"""

import tempfile
from pathlib import Path

from repro import perf_session, run_benchmark
from repro.obs import (
    SpanCollector,
    chrome_trace,
    folded_stacks,
    render_profile,
    validate_chrome_trace,
    write_chrome_trace,
    write_folded,
)


def main() -> None:
    session = perf_session("cm5", 32)
    collector = SpanCollector().attach(session)
    report = run_benchmark("conj-grad", session, n=512)
    collector.finalize()

    print(f"machine: {session.machine.describe()}")
    print()
    print(render_profile(collector, benchmark="conj-grad"))
    print()

    # Span totals reconcile with the report exactly — not approximately.
    totals = collector.totals()
    assert totals["busy_time_s"] == report.busy_time
    assert totals["flop_count"] == report.flop_count
    print("reconciliation: span totals == report totals (bit-exact)")
    print(f"  busy  {totals['busy_time_s']:.9f} s")
    print(f"  flops {totals['flop_count']:,}")

    iterations = sum(
        1 for span in collector.root.walk() if span.kind == "iteration"
    )
    print(f"  iteration spans {iterations} (CG iterations {report.iterations})")
    print()

    outdir = Path(tempfile.mkdtemp(prefix="repro-profile-"))
    trace = chrome_trace(collector, benchmark="conj-grad")
    problems = validate_chrome_trace(trace)
    assert not problems, problems
    write_chrome_trace(trace, outdir / "cg_trace.json")
    print(f"chrome trace: {outdir / 'cg_trace.json'}"
          f" ({len(trace['traceEvents'])} events)"
          " — open in ui.perfetto.dev or chrome://tracing")

    stacks = folded_stacks(collector, root_frame="conj-grad")
    write_folded(collector, outdir / "cg_stacks.folded", root_frame="conj-grad")
    print(f"folded flamegraph: {outdir / 'cg_stacks.folded'}"
          f" ({len(stacks)} stack(s))"
          " — feed to flamegraph.pl or speedscope")
    for line in stacks:
        print(f"  {line}")


if __name__ == "__main__":
    main()
