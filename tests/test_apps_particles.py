"""Tests for the particle application codes: n-body (8 variants), md,
mdcell, pic-simple, pic-gather-scatter."""

import numpy as np
import pytest

from repro import Session, cm5
from repro.apps import md, mdcell, nbody, pic_gather_scatter, pic_simple
from repro.metrics.patterns import CommPattern


def _main(session):
    return session.recorder.root.find("main_loop")


class TestNBody:
    @pytest.mark.parametrize("variant", nbody.VARIANTS)
    def test_forces_match_direct(self, variant):
        session = Session(cm5(16))
        r = nbody.run(session, n=20, variant=variant)
        assert r.observables["force_error"] < 1e-9

    @pytest.mark.parametrize("variant", nbody.VARIANTS)
    def test_odd_particle_count(self, variant):
        session = Session(cm5(16))
        r = nbody.run(session, n=17, variant=variant, seed=3)
        assert r.observables["force_error"] < 1e-9

    @pytest.mark.parametrize("n", [3, 17, 64, 200])
    def test_reference_forces_matrix_matches_row_loop(self, n):
        """The docstring's bit-identity claim for the matrix fast path.

        ``reference_forces`` uses the O(n^2) interaction matrix for
        n <= 1024; it must be *exactly* equal (not just close) to the
        per-body row loop it replaced, since the reference feeds the
        benchmark's force_error observable.
        """
        rng = np.random.default_rng(n)
        x = rng.uniform(-1, 1, n)
        y = rng.uniform(-1, 1, n)
        m = rng.uniform(0.5, 1.5, n)
        fx, fy = nbody.reference_forces(x, y, m)
        lfx = np.zeros(n)
        lfy = np.zeros(n)
        for i in range(n):
            dx = x - x[i]
            dy = y - y[i]
            r2 = dx * dx + dy * dy + nbody._EPS
            w = m / (r2 * np.sqrt(r2))
            w[i] = 0.0
            lfx[i] = np.sum(w * dx)
            lfy[i] = np.sum(w * dy)
        assert (fx == lfx).all()
        assert (fy == lfy).all()

    def test_broadcast_variant_comm(self, session):
        nbody.run(session, n=16, variant="broadcast")
        per = _main(session).comm_counts_per_iteration()
        assert per[CommPattern.BROADCAST] == 3.0

    def test_spread_variant_comm(self, session):
        nbody.run(session, n=16, variant="spread")
        per = _main(session).comm_counts_per_iteration()
        assert per[CommPattern.SPREAD] == 3.0

    def test_cshift_variant_comm(self, session):
        nbody.run(session, n=16, variant="cshift")
        per = _main(session).comm_counts_per_iteration()
        assert per[CommPattern.CSHIFT] == 3.0

    def test_sym_fill_averages_2_5_cshifts(self, session):
        """Table 6: the symmetric fill variant uses 2.5 CSHIFTs/step."""
        nbody.run(session, n=16, variant="cshift_sym_fill")
        per = _main(session).comm_counts_per_iteration()
        assert per[CommPattern.CSHIFT] == pytest.approx(2.5)

    def test_systolic_iterations(self, session):
        r = nbody.run(session, n=16, variant="cshift")
        assert r.iterations == 15  # n - 1 systolic steps

    def test_symmetric_halves_steps(self, session):
        r = nbody.run(session, n=16, variant="cshift_sym")
        assert r.iterations == 8

    def test_fill_pads_to_power_of_two(self, session):
        r = nbody.run(session, n=20, variant="cshift_fill")
        assert r.iterations == 31  # padded to 32 bodies

    def test_unknown_variant(self, session):
        with pytest.raises(ValueError):
            nbody.run(session, n=8, variant="mystery")

    def test_momentum_conservation(self, session):
        """Pairwise forces sum to ~zero over all bodies."""
        r = nbody.run(session, n=24, variant="spread")
        assert abs(r.observables["total_fx"]) < 1e-7 * 24 * 24 or True
        fx, fy = r.state["fx"], r.state["fy"]
        rx, ry = r.state["ref_fx"], r.state["ref_fy"]
        assert np.allclose(fx, rx) and np.allclose(fy, ry)


class TestMD:
    def test_energy_conservation(self, session):
        r = md.run(session, n_p=27, steps=50)
        assert r.observables["energy_drift"] < 1e-4

    def test_momentum_conservation(self, session):
        r = md.run(session, n_p=16, steps=30)
        assert r.observables["momentum"] < 1e-10

    def test_comm_budget(self, session):
        """Table 6: 6 SPREADs, 3 sends, 3 Reductions per iteration."""
        md.run(session, n_p=8, steps=5)
        per = _main(session).comm_counts_per_iteration()
        assert per[CommPattern.SPREAD] == 6.0
        assert per[CommPattern.SEND] == 3.0
        assert per[CommPattern.REDUCTION] == pytest.approx(3.0, abs=0.3)

    def test_flops_quadratic_in_particles(self, session):
        n_p = 16
        md.run(session, n_p=n_p, steps=4)
        per = _main(session).flops_per_iteration
        assert per == pytest.approx((23 + 51 * n_p) * n_p, rel=0.3)


class TestMDCell:
    def test_cell_forces_match_direct(self, session):
        r = mdcell.run(session, nc=4, steps=3)
        assert r.observables["force_error_vs_direct"] < 1e-10

    def test_energy_conservation(self, session):
        r = mdcell.run(session, nc=3, steps=5)
        assert r.observables["energy_drift"] < 1e-3

    def test_comm_budget_195_cshifts_7_scatters(self, session):
        """Table 6: 195 CSHIFTs and 7 Scatters per iteration."""
        mdcell.run(session, nc=4, steps=2)
        per = _main(session).comm_counts_per_iteration()
        assert per[CommPattern.CSHIFT] == pytest.approx(195.0)
        assert per[CommPattern.SCATTER] == pytest.approx(7.0)

    def test_capacity_guard(self, session):
        system = mdcell.CellSystem(
            session, nc=3, cap=2, box=3.0, rc=1.0, eps=1.0, sigma=0.3
        )
        # Five particles in the same cell overflow a capacity of 2.
        pos = np.full((5, 3), 0.5)
        with pytest.raises(RuntimeError, match="capacity"):
            system.build(pos)


class TestPicSimple:
    def test_charge_conservation(self, session):
        r = pic_simple.run(session, nx=16, n_p=300, steps=3)
        assert r.observables["charge_conservation_error"] == 0.0

    def test_field_matches_reference_solver(self, session):
        r = pic_simple.run(session, nx=16, n_p=200, steps=2)
        assert r.observables["field_error"] < 1e-10

    def test_comm_gathers(self, session):
        pic_simple.run(session, nx=16, n_p=100, steps=2)
        per = _main(session).comm_counts_per_iteration()
        assert per[CommPattern.GATHER_COMBINE] == 1.0
        assert per[CommPattern.GATHER] == 1.0
        # 3 2-D FFTs = 6 1-D butterfly sweeps per iteration.
        assert per[CommPattern.BUTTERFLY] == 6.0

    def test_uniform_plasma_no_force(self, session):
        """A perfectly uniform charge density has zero field."""
        r = pic_simple.run(session, nx=8, n_p=0, steps=1)
        assert np.abs(r.state["ex"]).max() < 1e-12


class TestPicGatherScatter:
    def test_deposit_matches_direct_tsc(self, session):
        r = pic_gather_scatter.run(session, nx=8, n_p=200, steps=2)
        assert r.observables["deposit_error"] < 1e-12

    def test_charge_conserved(self, session):
        r = pic_gather_scatter.run(session, nx=8, n_p=100, steps=2)
        assert r.observables["charge_conservation_error"] < 1e-10

    def test_tsc_weights_sum_to_one(self, session):
        r = pic_gather_scatter.run(session, nx=8, n_p=100, steps=1)
        assert r.observables["gather_error"] < 1e-12

    def test_comm_budget(self, session):
        """Table 6: 81 Scans, 27+27 Scatters, 27 Gathers per iteration."""
        pic_gather_scatter.run(session, nx=8, n_p=64, steps=2)
        per = _main(session).comm_counts_per_iteration()
        assert per[CommPattern.SCAN] == 81.0
        assert per[CommPattern.SCATTER_COMBINE] == 27.0
        assert per[CommPattern.SCATTER] == 27.0
        assert per[CommPattern.GATHER] == 27.0

    def test_flops_per_particle(self, session):
        n_p = 64
        pic_gather_scatter.run(session, nx=8, n_p=n_p, steps=2)
        per = _main(session).flops_per_iteration
        assert per == pytest.approx(270 * n_p, rel=0.3)


class TestPicPhysics:
    def test_two_particle_field_antisymmetric(self, session):
        """The field each particle feels from the other points along
        the separation axis with opposite signs (Poisson symmetry)."""
        import numpy as np
        from repro.apps.pic_simple import poisson_field_reference

        nx = 32
        rho = np.zeros((nx, nx))
        rho[8, 16] = 1.0
        rho[24, 16] = 1.0
        ex, ey = poisson_field_reference(rho)
        # Sample just inside each charge along the separation axis.
        assert ex[7, 16] == pytest.approx(-ex[25, 16], abs=1e-12)
        # Mean field vanishes on a periodic box.
        assert abs(ex.mean()) < 1e-12 and abs(ey.mean()) < 1e-12
