"""rp: nonsymmetric linear equations by the conjugate gradient method.

Paper class: structured 3-D grid, linear, iterative, Dirichlet
boundaries.  Table 5 layout: ``x(:,:,:)``.  Table 6:
``44 n_x n_y n_z`` FLOPs per iteration, **2 Reductions and 12 CSHIFTs
(two 7-point stencils)** per iteration, ``60 n_x n_y n_z`` bytes.

A nonsymmetric operator (convection-diffusion: the upwind couplings
differ fore/aft) requires CG on the normal equations: each iteration
applies both ``A`` (one 7-point stencil = 6 CSHIFTs) and ``A^T``
(the second stencil, 6 more CSHIFTs) — exactly the paper's 12.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppResult
from repro.array.distarray import DistArray
from repro.comm.primitives import cshift, reduce_array
from repro.layout.spec import parse_layout
from repro.machine.session import Session
from repro.metrics.access import LocalAccess
from repro.metrics.flops import FlopKind


class _Operator:
    """Constant-coefficient nonsymmetric 7-point operator, periodic."""

    def __init__(self, session: Session, shape, diag=7.0, eps=0.25) -> None:
        self.session = session
        self.layout = parse_layout("(:,:,:)", shape)
        self.diag = diag
        # Asymmetric fore/aft couplings per axis.
        self.lo = (-1.0 - eps, -1.0 - eps / 2, -1.0 - eps / 4)
        self.hi = (-1.0 + eps, -1.0 + eps / 2, -1.0 + eps / 4)

    def _stencil(self, p: DistArray, transposed: bool) -> DistArray:
        """7-point stencil application: 6 CSHIFTs, 13 FLOPs/point."""
        session = self.session
        lo = self.hi if transposed else self.lo
        hi = self.lo if transposed else self.hi
        out = self.diag * p.data
        for axis in range(3):
            pm = cshift(p, -1, axis=axis)
            pp = cshift(p, +1, axis=axis)
            # In-place accumulation: same additions in the same order
            # as ``out = out + lo*pm + hi*pp`` (bit-identical), minus
            # two full-grid temporaries per axis.
            out += lo[axis] * pm.data
            out += hi[axis] * pp.data
        session.charge_elementwise(FlopKind.MUL, p.layout, ops_per_element=7)
        session.charge_elementwise(FlopKind.ADD, p.layout, ops_per_element=6)
        return DistArray(out, p.layout, session)

    def apply(self, p: DistArray) -> DistArray:
        """Apply A (forward stencil)."""
        return self._stencil(p, transposed=False)

    def apply_t(self, p: DistArray) -> DistArray:
        """Apply A^T (transposed stencil)."""
        return self._stencil(p, transposed=True)

    def dense(self) -> np.ndarray:
        """Dense matrix form for verification."""
        nx, ny, nz = self.layout.shape
        n = nx * ny * nz
        A = np.zeros((n, n))
        for i in range(nx):
            for j in range(ny):
                for k in range(nz):
                    row = (i * ny + j) * nz + k
                    A[row, row] += self.diag
                    for axis, (li, hj) in enumerate(zip(self.lo, self.hi)):
                        coords = [i, j, k]
                        coords[axis] = (coords[axis] - 1) % (nx, ny, nz)[axis]
                        A[row, (coords[0] * ny + coords[1]) * nz + coords[2]] += li
                        coords = [i, j, k]
                        coords[axis] = (coords[axis] + 1) % (nx, ny, nz)[axis]
                        A[row, (coords[0] * ny + coords[1]) * nz + coords[2]] += hj
        return A


def run(
    session: Session,
    nx: int = 16,
    ny: int | None = None,
    nz: int | None = None,
    tol: float = 1e-8,
    max_iter: int | None = None,
    seed: int = 0,
) -> AppResult:
    """Solve the nonsymmetric system by CGNR."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    shape = (nx, ny, nz)
    op = _Operator(session, shape)
    layout = op.layout
    rng = np.random.default_rng(seed)
    f = DistArray(rng.standard_normal(shape), layout, session, "f")
    # Table 6 memory: 60 n bytes single ~ x, r, s, p, q, f and the
    # coefficient bookkeeping.
    for name in ("f", "x", "r", "s", "p", "q"):
        session.declare_memory(name, shape, np.float64)

    if max_iter is None:
        max_iter = 10 * nx * ny * nz
    x = DistArray(np.zeros(shape), layout, session, "x")
    r = f.copy("r")
    s = op.apply_t(r)
    p = s.copy("p")
    gamma = reduce_array(s * s, "sum")
    it = 0
    res = float(np.sqrt(gamma))
    with session.region("main_loop", iterations=1) as region:
        while it < max_iter and res > tol:
            q = op.apply(p)  # stencil 1: 6 CSHIFTs
            qq = reduce_array(q * q, "sum")  # Reduction 1
            alpha = gamma / qq
            session.recorder.charge_flops(FlopKind.DIV, 1)
            x += alpha * p
            r -= alpha * q
            s = op.apply_t(r)  # stencil 2: 6 CSHIFTs
            gamma_new = reduce_array(s * s, "sum")  # Reduction 2
            beta = gamma_new / gamma
            session.recorder.charge_flops(FlopKind.DIV, 1)
            p = s + beta * p
            gamma = gamma_new
            res = float(np.sqrt(gamma_new))
            session.recorder.charge_flops(FlopKind.SQRT, 1)
            it += 1
        region.iterations = max(1, it)
    return AppResult(
        name="rp",
        iterations=it,
        problem_size=nx * ny * nz,
        local_access=LocalAccess.NA,
        observables={"residual_normal": res, "iterations": float(it)},
        state={"x": x.np.copy(), "f": f.np.copy(), "operator": op},
    )
