"""Command-line interface: ``python -m repro``.

Subcommands
-----------

``list``
    List the 32 registered benchmarks with group and description.
``run NAME``
    Run one benchmark and print its §1.5 performance report
    (``--nodes``, ``--machine``, ``--tier`` select the simulated
    environment; ``--param k=v`` forwards benchmark parameters).
``suite``
    Run every benchmark with small default sizes and print a summary
    table.  Engine options (``--jobs``, ``--cache-dir``, ``--store``,
    ``--timeout``, ``--retries``, ``--trace``, ``--stream``) run the
    suite through the parallel, cached, fault-tolerant execution
    engine; ``--stream PATH`` follows the run live as JSONL events
    with per-job span summaries (see ``docs/OBSERVABILITY.md``).
``profile NAME``
    Run one benchmark with a span collector attached and print a
    profile: top regions by simulated busy time and per-pattern
    communication attribution.  ``--chrome PATH`` exports a
    Perfetto-loadable Chrome trace of the run's simulated timeline;
    ``--folded PATH`` writes a folded-stack flamegraph.
``trace export RUN``
    Re-emit a stored run (see ``engine runs``) as a Chrome trace file
    rebuilt from its persisted report segments.
``tables``
    Regenerate the paper's tables (1, 2, 3, 5, 7, 8 structural; 4 and
    6 measured-vs-paper).  The measured tables accept the same engine
    options.
``sweep``
    Sweep a benchmark parameter or the node count.  Points execute
    through the engine, so the engine options (``--jobs``,
    ``--cache-dir``, ``--store``, ...) apply.
``campaign``
    Declarative machine-space sweeps (see ``docs/CAMPAIGNS.md``):
    ``campaign run SPEC`` compiles a JSON spec into a deduplicated
    request plan and executes it through the engine — parallel,
    content-hash cached, and therefore resumable after a kill;
    ``campaign status SPEC`` reports completed vs pending points;
    ``campaign report SPEC`` derives the roofline /
    arithmetic-intensity analytics and strong-scaling series of a
    stored run; ``campaign diff SPEC A B`` gates one campaign run
    against another.
``engine``
    Inspect the run store: ``engine runs`` lists stored runs,
    ``engine history`` prints per-job records, ``engine diff A B``
    compares two stored runs metric-by-metric, ``engine stats RUN``
    reports scheduler metrics (throughput, queue wait, utilization,
    cache-hit rate, retry/timeout histograms), and ``engine check RUN
    --baseline B --tolerance PCT`` gates a run's §1.5 metrics against
    a baseline run or file, exiting non-zero on regression.  Run
    references accept unique id prefixes, ``latest`` and ``@N``.
``check``
    Accounting verification (see ``docs/CHECKS.md``): ``check lint
    [paths] --format text|json`` runs the static accounting linter
    (rules RC001-RC006, baselined via ``.repro-check.toml``), and
    ``check audit NAME --tolerance PCT`` runs one benchmark with
    shadow-counted NumPy execution and diffs it against the charged
    FLOPs and communication.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.machine.presets import FIXED_NODE_PRESETS, PRESETS
from repro.machine.session import Session
from repro.sessions import open_session
from repro.versions import VersionTier

#: Legacy alias of :data:`repro.machine.presets.PRESETS`.
MACHINES: Dict[str, Callable[..., object]] = dict(PRESETS)

#: Default run-store path for the ``engine`` inspection commands.
DEFAULT_STORE = ".repro/runs.jsonl"

#: Default node count for presets without a fixed size.
DEFAULT_NODES = 32


def _parse_value(text: str):
    """Parse a CLI parameter value: int, float, bool or string."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_params(entries: Optional[List[str]]) -> Dict[str, object]:
    params: Dict[str, object] = {}
    for entry in entries or []:
        if "=" not in entry:
            raise SystemExit(f"bad --param {entry!r}; expected key=value")
        key, _, value = entry.partition("=")
        params[key] = _parse_value(value)
    return params


def _effective_nodes(machine: str, nodes: Optional[int]) -> int:
    """Resolve ``--nodes``, rejecting conflicts with fixed-size presets.

    The workstation preset is a single shared-memory node; silently
    dropping an explicit ``--nodes`` would misreport what was
    simulated, so a conflicting request is an error.
    """
    fixed = FIXED_NODE_PRESETS.get(machine)
    if fixed is not None:
        if nodes is not None and nodes != fixed:
            raise SystemExit(
                f"--nodes {nodes} conflicts with machine preset "
                f"{machine!r}, which is fixed at {fixed} node(s)"
            )
        return fixed
    return nodes if nodes is not None else DEFAULT_NODES


def _make_session(args) -> Session:
    nodes = _effective_nodes(args.machine, args.nodes)
    return open_session(args.machine, nodes, tier=args.tier)


def _engine_config(args):
    from repro.engine import EngineConfig

    return EngineConfig(
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        cache_dir=args.cache_dir,
        cache_prune=getattr(args, "cache_prune", False),
        cache_max_bytes=getattr(args, "cache_max_bytes", None),
        store=args.store,
        trace=args.trace,
        stream=getattr(args, "stream", None),
    )


def _cmd_list(args) -> int:
    from repro.suite import REGISTRY

    width = max(len(n) for n in REGISTRY)
    for name in sorted(REGISTRY):
        spec = REGISTRY[name]
        versions = ",".join(t.value for t in spec.versions)
        print(f"{name:{width}s}  [{spec.group:6s}]  {spec.description}")
        if args.verbose:
            print(f"{'':{width}s}  layouts: {' '.join(spec.layouts)}")
            print(f"{'':{width}s}  versions: {versions}")
    return 0


def _cmd_run(args) -> int:
    from repro.suite import run_benchmark

    session = _make_session(args)
    report = run_benchmark(args.name, session, **_parse_params(args.param))
    print(f"machine: {session.machine.describe()}")
    print(report.summary())
    if report.extra:
        print("\nverification observables:")
        for key, value in report.extra.items():
            print(f"  {key:28s} {value:.6g}")
    if args.json:
        from repro.metrics.serialize import report_to_json

        with open(args.json, "w") as fh:
            fh.write(report_to_json(report))
        print(f"\nreport written to {args.json}")
    return 0


def _cmd_suite(args) -> int:
    from repro.engine import Engine, plan_suite
    from repro.suite.tables import engine_summary_line, format_table

    nodes = _effective_nodes(args.machine, args.nodes)
    requests = plan_suite(machine=args.machine, nodes=nodes, tier=args.tier)
    engine = Engine(_engine_config(args))
    results = engine.run(requests)

    by_name = {result.request.benchmark: result for result in results}
    rows = []
    for name in sorted(by_name):
        result = by_name[name]
        if result.ok:
            r = result.report
            eff = r.arithmetic_efficiency
            rows.append(
                [
                    name,
                    f"{r.busy_time:.6f}",
                    f"{r.elapsed_time:.6f}",
                    f"{r.busy_floprate_mflops:.2f}",
                    f"{r.flop_count}",
                    f"{100 * eff:.2f}%" if eff is not None else "-",
                    result.status,
                ]
            )
        else:
            rows.append([name, "-", "-", "-", "-", "-", result.status])
    print(
        format_table(
            [
                "Benchmark",
                "Busy (s)",
                "Elapsed (s)",
                "MFLOP/s",
                "FLOPs",
                "Eff",
                "Status",
            ],
            rows,
        )
    )
    print("\n" + engine_summary_line(results, engine.last_run_stats))
    bad = [r for r in results if not r.ok]
    for result in bad:
        print(f"  {result.request.describe()}: {result.status}: {result.error}")
    if args.telemetry_out:
        from repro.obs import telemetry
        from repro.obs.expo import render_exposition

        with open(args.telemetry_out, "w", encoding="utf-8") as fh:
            fh.write(render_exposition(telemetry.get_registry().collect()))
        print(f"telemetry exposition written to {args.telemetry_out}")
    return 1 if bad else 0


def _engine_table_runner(args, nodes: int, wanted) -> Optional[Callable]:
    """Prefetch the measured tables' runs through the engine.

    Returns a ``(name, params) -> PerfReport`` runner backed by the
    prefetched (possibly cached, possibly parallel) results, or None
    when no measured table was requested.
    """
    from repro.engine import Engine, RunRequest
    from repro.suite import tables

    runs = []
    if 4 in wanted:
        runs.extend(tables.TABLE4_RUNS)
    if 6 in wanted:
        runs.extend(tables.TABLE6_RUNS)
    if not runs:
        return None

    def _request(name: str, params: Dict[str, object]) -> "RunRequest":
        return RunRequest(
            benchmark=name,
            machine=args.machine,
            nodes=nodes,
            tier=args.tier,
            params=params,
        )

    requests, seen = [], set()
    for run in runs:
        request = _request(run.name, run.params_dict)
        if request.content_hash() not in seen:
            seen.add(request.content_hash())
            requests.append(request)
    engine = Engine(_engine_config(args))
    results = {r.request.content_hash(): r for r in engine.run(requests)}

    def runner(name: str, params: Dict[str, object]):
        result = results.get(_request(name, params).content_hash())
        if result is None:  # a run the plan did not cover; run inline
            from repro.suite.runner import run_benchmark

            return run_benchmark(name, _make_session(args), **params)
        if not result.ok:
            raise SystemExit(
                f"table run {result.request.describe()} {result.status}: "
                f"{result.error}"
            )
        return result.report

    return runner


def _cmd_tables(args) -> int:
    from repro.suite import tables

    structural = {
        1: tables.table1_versions,
        2: tables.table2_layouts,
        3: tables.table3_comm,
        5: tables.table5_layouts,
        7: tables.table7_comm,
        8: tables.table8_techniques,
    }
    measured_numbers = (4, 6)
    wanted = args.numbers or sorted(
        list(structural) + list(measured_numbers)
    )
    for number in wanted:
        if number not in structural and number not in measured_numbers:
            raise SystemExit(f"no table {number}; choose from 1-8")
    nodes = _effective_nodes(args.machine, args.nodes)
    runner = _engine_table_runner(args, nodes, set(wanted))
    measured = {
        4: lambda: tables.table4_linalg(
            lambda: _make_session(args), runner=runner
        ),
        6: lambda: tables.table6_apps(
            lambda: _make_session(args), runner=runner
        ),
    }
    for number in wanted:
        fn = structural.get(number) or measured[number]
        print(f"=== Table {number} ===")
        print(fn())
        print()
    return 0


def _cmd_sweep(args) -> int:
    from repro.engine import Engine
    from repro.suite.sweeps import (
        efficiency_series,
        engine_machine_sweep,
        engine_parameter_sweep,
    )

    values = [_parse_value(v) for v in args.values.split(",")]
    fixed = _parse_params(args.param)
    engine = Engine(_engine_config(args))
    try:
        if args.over == "nodes":
            if args.machine in FIXED_NODE_PRESETS:
                raise SystemExit(
                    f"cannot sweep nodes on machine preset {args.machine!r} "
                    f"(fixed at {FIXED_NODE_PRESETS[args.machine]} node(s))"
                )
            sweep = engine_machine_sweep(
                engine,
                args.name,
                values,
                machine=args.machine,
                tier=args.tier,
                params=fixed,
            )
            print(sweep.table())
            eff = efficiency_series(sweep)
            pairs = ", ".join(
                f"{n}: {e:.2f}" for n, e in zip(values, eff["efficiency"])
            )
            print(f"\nparallel efficiency vs {values[0]} nodes: {pairs}")
        else:
            nodes = _effective_nodes(args.machine, args.nodes)
            sweep = engine_parameter_sweep(
                engine,
                args.name,
                args.over,
                values,
                machine=args.machine,
                nodes=nodes,
                tier=args.tier,
                fixed_params=fixed,
            )
            print(sweep.table())
    except RuntimeError as exc:
        raise SystemExit(str(exc)) from None
    return 0


def _cmd_engine_runs(args) -> int:
    from repro.engine import open_store
    from repro.suite.tables import format_table

    store = open_store(args.store)
    records = store.records()
    if not records:
        print(f"no runs stored in {args.store}")
        return 0
    rows = []
    for run_id in store.run_ids():
        run = [r for r in records if r.get("run_id") == run_id]
        counts: Dict[str, int] = {}
        for record in run:
            counts[record.get("status", "?")] = (
                counts.get(record.get("status", "?"), 0) + 1
            )
        summary = " ".join(f"{s}={n}" for s, n in sorted(counts.items()))
        rows.append([run_id, str(len(run)), summary])
    print(format_table(["Run id", "Jobs", "Statuses"], rows))
    return 0


def _cmd_engine_history(args) -> int:
    from repro.engine import open_store
    from repro.suite.tables import format_table

    store = open_store(args.store)
    records = store.history(benchmark=args.benchmark, limit=args.limit)
    if not records:
        print(f"no matching records in {args.store}")
        return 0
    rows = []
    for record in records:
        report = record.get("report") or {}
        rows.append(
            [
                record.get("run_id", "?")[:13],
                record.get("benchmark", "?"),
                record.get("status", "?"),
                str(record.get("attempts", "-")),
                f"{record.get('wall_time_s', 0.0):.3f}",
                (
                    f"{report.get('elapsed_time_s'):.6f}"
                    if report.get("elapsed_time_s") is not None
                    else "-"
                ),
                (
                    f"{report.get('busy_floprate_mflops'):.2f}"
                    if report.get("busy_floprate_mflops") is not None
                    else "-"
                ),
                record.get("error") or "",
            ]
        )
    print(
        format_table(
            [
                "Run",
                "Benchmark",
                "Status",
                "Att",
                "Wall (s)",
                "Elapsed (s)",
                "MFLOP/s",
                "Error",
            ],
            rows,
        )
    )
    return 0


def _cmd_engine_diff(args) -> int:
    from repro.engine import diff_runs, open_store

    store = open_store(args.store)
    try:
        print(diff_runs(store, args.run_a, args.run_b))
    except KeyError as exc:
        # str(KeyError) wraps the message in repr quotes; unwrap it.
        raise SystemExit(exc.args[0] if exc.args else str(exc)) from None
    return 0


def _load_run_stats(store, ref: str):
    """One stored run's RunStats: the sidecar, else recomputed.

    Runs recorded before the stats layer (or whose engine was killed
    before the summary write) have no sidecar; their scheduler stats
    are recomputed from the per-job records, with the worker count —
    not recoverable from records — left unknown.
    """
    from repro.engine import RunStats, stats_from_records

    run_id = store.resolve(ref)
    sidecar = store.read_stats(run_id)
    if sidecar is not None:
        return RunStats.from_dict(sidecar)
    return stats_from_records(store.run_records(run_id))


def _cmd_engine_stats(args) -> int:
    import json as json_module

    from repro.engine import open_store

    store = open_store(args.store)
    try:
        stats = _load_run_stats(store, args.run)
    except KeyError as exc:
        raise SystemExit(exc.args[0] if exc.args else str(exc)) from None
    if args.json:
        print(json_module.dumps(stats.to_dict(), sort_keys=True, indent=2))
    else:
        print(stats.table())
    return 0


def _cmd_engine_check(args) -> int:
    import json as json_module
    from pathlib import Path

    from repro.engine import compare_benchmarks, open_store, trajectory_point
    from repro.engine.stats import load_baseline_file

    if args.baseline is None and args.slo is None:
        raise SystemExit("engine check: need --baseline and/or --slo")
    slo_ok = True
    if args.slo:
        slo_ok = _check_slo(args.slo, args.scrape)
    if args.baseline is None:
        for flag, name in (
            (args.gate_throughput, "--gate-throughput"),
            (args.bench_out, "--bench-out"),
        ):
            if flag is not None:
                raise SystemExit(f"engine check: {name} needs --baseline")
        return 0 if slo_ok else 1

    store = open_store(args.store)
    try:
        stats = _load_run_stats(store, args.run)
        if Path(args.baseline).is_file():
            baseline = load_baseline_file(args.baseline)
        else:
            baseline = _load_run_stats(store, args.baseline).benchmarks
    except KeyError as exc:
        raise SystemExit(exc.args[0] if exc.args else str(exc)) from None
    report = compare_benchmarks(
        stats.benchmarks, baseline, args.tolerance, strict=args.strict
    )
    print(report.table())
    throughput_ok = True
    throughput_info = None
    if args.gate_throughput is not None:
        baseline_rate = None
        if Path(args.baseline).is_file():
            with open(args.baseline, encoding="utf-8") as fh:
                doc = json_module.load(fh)
            baseline_rate = doc.get("engine", {}).get("throughput_jobs_per_s")
        else:
            baseline_stats = _load_run_stats(store, args.baseline)
            baseline_rate = baseline_stats.throughput_jobs_per_s
        if not baseline_rate:
            raise SystemExit(
                f"--gate-throughput: baseline {args.baseline} has no "
                "engine throughput to gate against"
            )
        floor = baseline_rate * (1.0 - args.gate_throughput / 100.0)
        throughput_ok = stats.throughput_jobs_per_s >= floor
        throughput_info = {
            "jobs_per_s": stats.throughput_jobs_per_s,
            "baseline_jobs_per_s": baseline_rate,
            "max_regression_pct": args.gate_throughput,
            "ok": throughput_ok,
        }
        print(
            f"throughput: {stats.throughput_jobs_per_s:.1f} jobs/s vs "
            f"baseline {baseline_rate:.1f} "
            f"(floor {floor:.1f}, -{args.gate_throughput:g}%): "
            f"{'ok' if throughput_ok else 'REGRESSED'}"
        )
    if args.bench_out:
        point = trajectory_point(stats)
        point["check"] = {
            "baseline": args.baseline,
            "tolerance_pct": args.tolerance,
            "strict": args.strict,
            "ok": report.ok,
            "regressions": len(report.regressions),
            "missing": report.missing,
            "extra": report.extra,
        }
        if throughput_info is not None:
            point["check"]["throughput"] = throughput_info
        Path(args.bench_out).write_text(
            json_module.dumps(point, sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"trajectory point written to {args.bench_out}")
    return 0 if (report.ok and throughput_ok and slo_ok) else 1


def _check_slo(spec_path: str, scrape_path: Optional[str]) -> bool:
    """Evaluate an SLO spec against a saved exposition scrape."""
    from repro.obs.expo import ExpositionError, parse_exposition
    from repro.obs.slo import SLOSpecError, evaluate_slos, load_slo_spec

    if not scrape_path:
        raise SystemExit(
            "engine check --slo needs --scrape FILE "
            "(a saved /metrics exposition, e.g. from `repro telemetry "
            "--out`)"
        )
    try:
        spec = load_slo_spec(spec_path)
    except OSError as exc:
        raise SystemExit(f"cannot read SLO spec {spec_path}: {exc}") from None
    except SLOSpecError as exc:
        raise SystemExit(f"bad SLO spec {spec_path}: {exc}") from None
    try:
        with open(scrape_path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise SystemExit(f"cannot read scrape {scrape_path}: {exc}") from None
    try:
        families = parse_exposition(text)
    except ExpositionError as exc:
        raise SystemExit(
            f"scrape {scrape_path} is not valid exposition: {exc}"
        ) from None
    report = evaluate_slos(spec, families)
    print(report.table())
    return report.ok


def _load_campaign_spec(path):
    from repro.campaign import load_spec

    try:
        return load_spec(path)
    except OSError as exc:
        raise SystemExit(f"cannot read campaign spec {path}: {exc}") from None
    except ValueError as exc:
        raise SystemExit(f"bad campaign spec {path}: {exc}") from None


def _campaign_store(args, spec):
    """Resolve the campaign's store path from CLI overrides."""
    from pathlib import Path

    from repro.campaign import campaign_paths

    store_path, _ = campaign_paths(spec.name, args.root)
    return Path(args.store) if args.store else store_path


def _cmd_campaign_run(args) -> int:
    from repro.campaign import run_campaign
    from repro.suite.tables import engine_summary_line

    spec = _load_campaign_spec(args.spec)
    plan = spec.compile()
    label = spec.name + (f": {spec.description}" if spec.description else "")
    print(f"campaign {label}")
    print(f"  {len(plan)} unique points across {len(spec.groups)} group(s)")

    def _run():
        return run_campaign(
            spec,
            root=args.root,
            jobs=args.jobs,
            timeout=args.timeout,
            retries=args.retries,
            store=args.store,
            cache_dir=args.cache_dir,
        )

    if args.dash:
        result = _run_with_dashboard(_run, title=f"campaign {spec.name}",
                                     interval=args.interval)
    else:
        result = _run()
    print("  " + engine_summary_line(result.results, result.stats))
    bad = [r for r in result.results if not r.ok]
    for failure in bad[:10]:
        print(
            f"  {failure.request.describe()}: {failure.status}: "
            f"{failure.error}"
        )
    if len(bad) > 10:
        print(f"  ... and {len(bad) - 10} more failed point(s)")
    if args.report:
        import json as json_module

        from repro.campaign import roofline_from_results

        doc = roofline_from_results(
            result.results, name=spec.name, strict=not bad
        )
        with open(args.report, "w", encoding="utf-8") as fh:
            json_module.dump(doc, fh, sort_keys=True, indent=2)
            fh.write("\n")
        print(f"  roofline report written to {args.report}")
    print(f"  store: {result.store_path}  cache: {result.cache_dir}")
    return 1 if bad else 0


def _run_with_dashboard(work, *, title: str, interval: float):
    """Run ``work()`` in a thread with a live terminal dashboard.

    The dashboard polls the process-global telemetry registry — the
    campaign's engine runs in this process, so its metrics land there
    — and stops one frame after the worker finishes.
    """
    import threading

    from repro.obs import telemetry
    from repro.obs.dash import run_dashboard

    box: Dict[str, object] = {}

    def _work():
        try:
            box["result"] = work()
        except BaseException as exc:  # noqa: BLE001 - re-raised in caller
            box["error"] = exc

    thread = threading.Thread(target=_work, daemon=True)
    thread.start()
    try:
        run_dashboard(
            telemetry.get_registry().collect,
            interval=interval,
            title=title,
            stop=lambda: not thread.is_alive(),
        )
    except KeyboardInterrupt:
        pass
    thread.join()
    if "error" in box:
        raise box["error"]
    return box["result"]


def _cmd_campaign_status(args) -> int:
    import json as json_module

    from repro.campaign import campaign_status

    spec = _load_campaign_spec(args.spec)
    status = campaign_status(
        spec, root=args.root, store=args.store, cache_dir=args.cache_dir
    )
    if args.json:
        print(json_module.dumps(status.to_dict(), sort_keys=True, indent=2))
        return 0
    print(f"campaign {status.name}")
    print(
        f"  {status.completed}/{status.total} points completed "
        f"({100 * status.fraction_complete:.1f}%), "
        f"{status.pending} pending"
    )
    if status.run_ids:
        print(f"  runs recorded: {len(status.run_ids)} "
              f"(latest {status.run_ids[-1]})")
    if status.pending_by_benchmark:
        worst = sorted(
            status.pending_by_benchmark.items(),
            key=lambda kv: (-kv[1], kv[0]),
        )[:10]
        pairs = ", ".join(f"{name}={n}" for name, n in worst)
        print(f"  pending by benchmark: {pairs}")
    return 0


def _cmd_campaign_report(args) -> int:
    import json as json_module

    from repro.campaign import roofline_from_store, scaling_series
    from repro.engine import open_store
    from repro.engine.plan import requests_from_run
    from repro.suite.tables import format_table

    spec = _load_campaign_spec(args.spec)
    store_path = _campaign_store(args, spec)
    if not store_path.exists():
        raise SystemExit(
            f"campaign {spec.name!r} has no store at {store_path}; "
            "run it first"
        )
    store = open_store(store_path)
    try:
        doc = roofline_from_store(
            store, args.run, name=spec.name, strict=not args.no_strict
        )
    except KeyError as exc:
        raise SystemExit(exc.args[0] if exc.args else str(exc)) from None

    rows = []
    for name, agg in doc["benchmarks"].items():
        bounds = agg["bound_counts"]
        intensity = (
            f"{agg['min_intensity']:.3g}..{agg['max_intensity']:.3g}"
            if agg["min_intensity"] is not None
            else "-"
        )
        rows.append(
            [
                name,
                str(agg["n_points"]),
                f"{agg['best_achieved_mflops']:.2f}",
                intensity,
                f"{bounds['compute']}/{bounds['communication']}",
                f"{agg['flop_total']:,}",
                f"{agg['network_byte_total']:,}",
            ]
        )
    print(
        format_table(
            [
                "Benchmark",
                "Points",
                "Best MFLOP/s",
                "Intensity",
                "Comp/Comm",
                "FLOPs",
                "Net bytes",
            ],
            rows,
        )
    )
    print(
        f"\n{doc['n_points']} point(s), reconciled="
        f"{str(doc['reconciled']).lower()}"
    )

    # Rebuild RunResults-shaped pairs for the scaling series off the
    # stored records: group by configuration, needs request + report.
    try:
        records = store.run_records(args.run)
    except KeyError as exc:
        raise SystemExit(exc.args[0] if exc.args else str(exc)) from None
    from repro.engine import RunResult, RunRequest
    from repro.metrics.serialize import report_from_dict

    results = []
    for record in records:
        if not record.get("request") or not record.get("report"):
            continue
        results.append(
            RunResult(
                request=RunRequest.from_dict(record["request"]),
                status=record.get("status", "ok"),
                report=report_from_dict(record["report"]),
                report_record=record["report"],
            )
        )
    series = scaling_series(results)
    if series:
        print(f"\nstrong-scaling series ({len(series)}):")
        for entry in series:
            pairs = ", ".join(
                f"{n}: {e:.2f}"
                for n, e in zip(entry["nodes"], entry["efficiency"])
            )
            params = (
                " " + ",".join(f"{k}={v}" for k, v in entry["params"].items())
                if entry["params"]
                else ""
            )
            print(
                f"  {entry['benchmark']} [{entry['machine']} "
                f"{entry['tier']}{params}] efficiency {pairs}"
            )
    if args.out:
        doc["scaling"] = series
        doc["plan_points"] = len(requests_from_run(store, args.run))
        with open(args.out, "w", encoding="utf-8") as fh:
            json_module.dump(doc, fh, sort_keys=True, indent=2)
            fh.write("\n")
        print(f"\nreport written to {args.out}")
    if args.plot:
        from repro.campaign import render_roofline_svg, validate_roofline_svg

        svg = render_roofline_svg(doc)
        summary = validate_roofline_svg(svg)
        with open(args.plot, "w", encoding="utf-8") as fh:
            fh.write(svg)
        print(
            f"roofline plot written to {args.plot} "
            f"({summary['points']} point(s), {summary['roofs']} roof "
            "line(s))"
        )
    return 0


def _cmd_campaign_diff(args) -> int:
    from repro.campaign import campaign_diff
    from repro.engine import open_store

    spec = _load_campaign_spec(args.spec)
    store_path = _campaign_store(args, spec)
    if not store_path.exists():
        raise SystemExit(
            f"campaign {spec.name!r} has no store at {store_path}; "
            "run it first"
        )
    store = open_store(store_path)
    try:
        report = campaign_diff(
            store,
            args.run_a,
            args.run_b,
            tolerance_pct=args.tolerance,
            strict=args.strict,
        )
    except KeyError as exc:
        raise SystemExit(exc.args[0] if exc.args else str(exc)) from None
    print(report.table())
    return 0 if report.ok else 1


def _cmd_profile(args) -> int:
    from repro.obs import (
        SpanCollector,
        chrome_trace,
        render_profile,
        write_chrome_trace,
        write_folded,
    )
    from repro.suite import run_benchmark

    session = _make_session(args)
    collector = SpanCollector().attach(session)
    run_benchmark(args.name, session, **_parse_params(args.param))
    collector.finalize()
    print(f"machine: {session.machine.describe()}")
    print(render_profile(collector, benchmark=args.name, top=args.top))
    if args.chrome:
        write_chrome_trace(
            chrome_trace(collector, benchmark=args.name), args.chrome
        )
        print(f"\nChrome trace written to {args.chrome} "
              "(load in ui.perfetto.dev or chrome://tracing)")
    if args.folded:
        write_folded(collector, args.folded, root_frame=args.name)
        print(f"folded stacks written to {args.folded} "
              "(feed to flamegraph.pl or speedscope)")
    return 0


def _cmd_trace_export(args) -> int:
    from repro.engine import open_store
    from repro.metrics.serialize import report_from_dict
    from repro.obs import chrome_trace_from_report, write_chrome_trace

    store = open_store(args.store)
    try:
        run_id = store.resolve(args.run)
    except KeyError as exc:
        raise SystemExit(exc.args[0] if exc.args else str(exc)) from None
    records = store.run_records(run_id)
    events = []
    exported = 0
    for pid, record in enumerate(records, start=1):
        if args.benchmark and record.get("benchmark") != args.benchmark:
            continue
        report_record = record.get("report")
        if not report_record:
            continue
        report = report_from_dict(report_record)
        trace = chrome_trace_from_report(report, pid=pid)
        events.extend(trace["traceEvents"])
        exported += 1
    if not exported:
        raise SystemExit(
            f"run {run_id} has no stored reports"
            + (f" for benchmark {args.benchmark!r}" if args.benchmark else "")
            + "; only ok/cached jobs carry one"
        )
    out = args.output or f"trace_{run_id[:12]}.json"
    write_chrome_trace({"traceEvents": events, "displayTimeUnit": "ms"}, out)
    print(
        f"exported {exported} report(s) of run {run_id} to {out} "
        "(load in ui.perfetto.dev or chrome://tracing)"
    )
    return 0


def _changed_paths() -> "list[str]":
    """Repo-relative paths changed vs HEAD, plus untracked files."""
    import subprocess

    out: "list[str]" = []
    for cmd in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError):
            continue
        out.extend(
            line.strip() for line in proc.stdout.splitlines()
            if line.strip()
        )
    return out


def _cmd_check_lint(args) -> int:
    from pathlib import Path

    from repro.check.baseline import load_baseline, write_baseline
    from repro.check.findings import findings_to_json, format_findings
    from repro.check.lint import lint_paths
    from repro.check.sarif import sarif_to_json

    paths = [Path(p) for p in (args.paths or ["src/repro"])]
    baseline = load_baseline(
        Path(args.baseline) if args.baseline else None
    )
    report_paths = None
    if getattr(args, "changed", False):
        report_paths = [
            p for p in _changed_paths() if p.endswith(".py")
        ]
        if not report_paths:
            print("0 finding(s) (no changed python files)")
            return 0
    result = lint_paths(
        paths,
        baseline=baseline,
        interprocedural=args.interprocedural,
        report_paths=report_paths,
    )
    if args.write_baseline:
        write_baseline(result.active, Path(args.write_baseline))
        print(
            f"wrote {len(result.active)} suppression(s) to "
            f"{args.write_baseline}; fill in every reason before "
            "committing"
        )
        return 0
    if args.format == "json":
        print(findings_to_json(result))
    elif args.format == "sarif":
        print(sarif_to_json(result))
    else:
        print(format_findings(result, verbose=args.verbose))
    if not result.ok:
        return 1
    if args.fail_on_stale and result.unused_suppressions:
        return 1
    return 0


def _cmd_check_audit(args) -> int:
    import json as _json

    from repro.check.sanitizer import audit_benchmark
    from repro.machine.presets import resolve_machine

    nodes = _effective_nodes(args.machine, args.nodes)
    machine = resolve_machine(args.machine, nodes)
    report = audit_benchmark(
        args.name,
        machine,
        params=_parse_params(args.param),
        tier=VersionTier(args.tier),
    )
    ok = report.ok(args.tolerance, strict=args.strict)
    if args.json:
        payload = report.to_dict()
        payload["ok"] = ok
        payload["tolerance_pct"] = args.tolerance
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0 if ok else 1
    print(report.table())
    verdict = "OK" if ok else "FAIL"
    print(
        f"{verdict}: {args.name} over-execution {report.over_pct:.3f}% "
        f"(tolerance {args.tolerance:g}%)"
        + (
            f", under-execution {report.under_pct:.3f}%"
            if args.strict
            else ""
        )
    )
    return 0 if ok else 1


def _cmd_serve(args) -> int:
    from repro.serve import ServeConfig
    from repro.serve.server import run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.jobs,
        cache_dir=args.cache_dir,
        cache_max_bytes=getattr(args, "cache_max_bytes", None),
        store=args.store,
        stream=getattr(args, "stream", None),
        max_queue=args.max_queue,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        timeout=args.timeout,
        retries=args.retries,
    )
    def announce(address):
        # printed only once the socket is bound, so --port 0 reports
        # the ephemeral port actually chosen, not the literal 0
        host, port = address
        print(
            f"repro serve on {host}:{port} "
            f"({config.workers} warm workers; "
            "POST /shutdown or Ctrl-C to stop)",
            flush=True,
        )

    app = run_server(config, on_bound=announce)
    counters = app.counters
    print(
        f"served {counters.submitted} submissions "
        f"({counters.executed} executed, {counters.deduped} deduped, "
        f"hit rate {counters.dedupe_hit_rate:.2f})"
    )
    return 0


def _cmd_submit(args) -> int:
    import json as json_module

    from repro.serve import ServeClient, ServeError

    client = ServeClient(args.host, args.port, client_id=args.client_id)
    request = {
        "benchmark": args.name,
        "machine": args.machine,
        "nodes": _effective_nodes(args.machine, args.nodes),
        "tier": args.tier,
        "params": _parse_params(args.param),
    }
    try:
        payload = client.submit(
            request,
            wait=not args.no_wait,
            timeout=args.timeout,
            busy_retries=args.busy_retries,
        )
    except ServeError as exc:
        raise SystemExit(f"submit failed ({exc.status}): {exc}") from None
    if args.json:
        print(json_module.dumps(payload, sort_keys=True, indent=2))
        return 0 if payload["job"].get("status") in ("ok", "cached", None) else 1
    job = payload["job"]
    print(
        f"{job['benchmark']}  state={job['state']} "
        f"status={job.get('status') or '-'} source={job['source']} "
        f"hash={job['request_hash'][:12]}"
    )
    report = payload.get("report")
    if report is not None:
        print(
            f"  elapsed {report['elapsed_time_s']:.6f}s  "
            f"busy {report['busy_time_s']:.6f}s  "
            f"{report['busy_floprate_mflops']:.2f} MFLOP/s"
        )
    if job.get("error"):
        print(f"  error: {job['error']}")
    return 0 if job.get("status") in ("ok", "cached", None) else 1


def _cmd_watch(args) -> int:
    import json as json_module

    from repro.serve import ServeClient, ServeError

    client = ServeClient(args.host, args.port, client_id=args.client_id)
    if args.dash:
        from repro.obs.dash import run_dashboard
        from repro.obs.expo import parse_exposition

        failures = {"n": 0}

        def _poll():
            try:
                families = parse_exposition(client.metrics())
            except Exception:
                failures["n"] += 1
                raise
            failures["n"] = 0
            return families

        try:
            run_dashboard(
                _poll,
                interval=args.interval,
                title=f"repro serve {args.host}:{args.port}",
                stop=lambda: failures["n"] >= 3,
            )
        except KeyboardInterrupt:
            pass
        return 0
    try:
        for event in client.watch(count=args.count, timeout=args.timeout):
            if args.json:
                print(json_module.dumps(event, sort_keys=True), flush=True)
                continue
            kind = event.get("kind")
            if kind == "run_started":
                print(
                    f"[{event.get('seq')}] server up: run {event.get('run_id')} "
                    f"({event.get('workers')} workers)",
                    flush=True,
                )
            elif kind == "job_finished":
                print(
                    f"[{event.get('seq')}] {event.get('benchmark')}: "
                    f"{event.get('status')} "
                    f"(attempts={event.get('attempts')}, "
                    f"wall={event.get('wall_time_s', 0.0):.3f}s)",
                    flush=True,
                )
            else:
                print(
                    f"[{event.get('seq')}] server done: "
                    f"run {event.get('run_id')}",
                    flush=True,
                )
    except ServeError as exc:
        raise SystemExit(f"watch failed ({exc.status}): {exc}") from None
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_telemetry(args) -> int:
    import json as json_module

    from repro.obs.expo import (
        ExpositionError,
        histogram_quantile,
        parse_exposition,
    )

    if args.file:
        try:
            with open(args.file, encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            raise SystemExit(f"cannot read {args.file}: {exc}") from None
        source = args.file
    else:
        from repro.serve import ServeClient, ServeError

        client = ServeClient(args.host, args.port, client_id=args.client_id)
        try:
            text = client.metrics()
        except (ServeError, OSError) as exc:
            raise SystemExit(
                f"scrape of {args.host}:{args.port} failed: {exc}"
            ) from None
        source = f"{args.host}:{args.port}"
    try:
        families = parse_exposition(text)
    except ExpositionError as exc:
        raise SystemExit(
            f"{source}: invalid exposition: {exc}"
        ) from None
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"scrape written to {args.out}")
    if args.json:
        print(json_module.dumps(families, sort_keys=True, indent=2))
    else:
        print(f"# {source}: {len(families)} metric families")
        for name in sorted(families):
            family = families[name]
            print(f"{name} ({family['type']})")
            for series in family["series"]:
                labels = ",".join(
                    f"{k}={v}" for k, v in sorted(series["labels"].items())
                )
                key = f"{{{labels}}}" if labels else "(total)"
                if family["type"] == "histogram":
                    count = series["count"]
                    if count:
                        stats = {
                            "buckets": series["buckets"],
                            "sum": series["sum"],
                            "count": count,
                        }
                        print(
                            f"  {key}  count={count:g} "
                            f"mean={series['sum'] / count:.6g} "
                            f"p50<={histogram_quantile(stats, 0.5):g} "
                            f"p99<={histogram_quantile(stats, 0.99):g}"
                        )
                    else:
                        print(f"  {key}  count=0")
                else:
                    print(f"  {key}  {series['value']:g}")
    if args.slo:
        from repro.obs.slo import SLOSpecError, evaluate_slos, load_slo_spec

        try:
            spec = load_slo_spec(args.slo)
        except OSError as exc:
            raise SystemExit(
                f"cannot read SLO spec {args.slo}: {exc}"
            ) from None
        except SLOSpecError as exc:
            raise SystemExit(f"bad SLO spec {args.slo}: {exc}") from None
        report = evaluate_slos(spec, families)
        print()
        print(report.table())
        return 0 if report.ok else 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DPF benchmark suite (IPPS 1997) — Python reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_machine_args(p):
        p.add_argument(
            "--machine", choices=sorted(PRESETS), default="cm5",
            help="simulated machine preset (default: cm5)",
        )
        p.add_argument(
            "--nodes", type=int, default=None,
            help="node count (default: 32; workstation is fixed at 1)",
        )
        p.add_argument(
            "--tier",
            choices=[t.value for t in VersionTier],
            default="basic",
            help="code-version tier of Table 1 (default: basic)",
        )

    def _add_engine_args(p):
        p.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="worker processes for parallel execution (default: 1)",
        )
        p.add_argument(
            "--cache-dir", metavar="DIR",
            help="content-addressed result cache; unchanged (request, "
            "code) pairs are served from disk without re-simulating",
        )
        p.add_argument(
            "--store", metavar="PATH",
            help="append every result to this JSONL run store",
        )
        p.add_argument(
            "--timeout", type=float, metavar="SEC",
            help="per-job timeout in seconds (enforced in --jobs>1 mode)",
        )
        p.add_argument(
            "--retries", type=int, default=0, metavar="K",
            help="retries per failed job before recording it (default: 0)",
        )
        p.add_argument(
            "--trace", metavar="PATH",
            help="write structured engine events to this JSONL trace",
        )
        p.add_argument(
            "--stream", metavar="PATH",
            help="append live JSONL run events (with per-job span "
            "summaries) to this file as jobs finish",
        )
        p.add_argument(
            "--cache-prune", action="store_true",
            help="drop stale-fingerprint cache buckets and crashed-put "
            "tmp files before running (needs --cache-dir)",
        )
        p.add_argument(
            "--cache-max-bytes", type=int, metavar="N",
            help="LRU-evict cache entries (oldest access first) down to "
            "this byte budget before running; implies --cache-prune",
        )

    p_list = sub.add_parser("list", help="list registered benchmarks")
    p_list.add_argument("-v", "--verbose", action="store_true")
    p_list.set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="run one benchmark")
    p_run.add_argument("name")
    p_run.add_argument(
        "--param", action="append", metavar="K=V",
        help="benchmark parameter override (repeatable)",
    )
    p_run.add_argument("--json", metavar="PATH", help="write report as JSON")
    _add_machine_args(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_suite = sub.add_parser("suite", help="run the whole suite")
    _add_machine_args(p_suite)
    _add_engine_args(p_suite)
    p_suite.add_argument(
        "--telemetry-out", metavar="PATH",
        help="after the run, write this process's telemetry registry "
        "as Prometheus text exposition",
    )
    p_suite.set_defaults(fn=_cmd_suite)

    p_tables = sub.add_parser("tables", help="regenerate the paper's tables")
    p_tables.add_argument(
        "numbers", nargs="*", type=int, help="table numbers (default: all)"
    )
    _add_machine_args(p_tables)
    _add_engine_args(p_tables)
    p_tables.set_defaults(fn=_cmd_tables)

    p_profile = sub.add_parser(
        "profile",
        help="run one benchmark under the span collector and print a "
        "simulated-time profile",
    )
    p_profile.add_argument("name")
    p_profile.add_argument(
        "--param", action="append", metavar="K=V",
        help="benchmark parameter override (repeatable)",
    )
    p_profile.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="regions to show in the busy-time ranking (default: 10)",
    )
    p_profile.add_argument(
        "--chrome", metavar="PATH",
        help="also export a Chrome trace-event JSON of the run "
        "(Perfetto-loadable)",
    )
    p_profile.add_argument(
        "--folded", metavar="PATH",
        help="also write folded stacks (flamegraph.pl / speedscope "
        "format)",
    )
    _add_machine_args(p_profile)
    p_profile.set_defaults(fn=_cmd_profile)

    p_trace = sub.add_parser(
        "trace", help="work with exported trace files"
    )
    sub_trace = p_trace.add_subparsers(dest="trace_command", required=True)
    p_export = sub_trace.add_parser(
        "export",
        help="re-emit a stored run as a Chrome trace file rebuilt from "
        "its report segments",
    )
    p_export.add_argument(
        "run", nargs="?", default="latest",
        help="run reference: id prefix, 'latest' (default) or @N",
    )
    p_export.add_argument(
        "--store", default=DEFAULT_STORE, metavar="PATH",
        help=f"run store to read (default: {DEFAULT_STORE})",
    )
    p_export.add_argument(
        "-o", "--output", metavar="PATH",
        help="output file (default: trace_<run-id>.json)",
    )
    p_export.add_argument(
        "--benchmark", metavar="NAME", help="only this benchmark"
    )
    p_export.set_defaults(fn=_cmd_trace_export)

    p_sweep = sub.add_parser(
        "sweep", help="sweep a benchmark parameter or the node count"
    )
    p_sweep.add_argument("name")
    p_sweep.add_argument(
        "--over", required=True, metavar="PARAM",
        help="parameter to sweep ('nodes' sweeps the machine size)",
    )
    p_sweep.add_argument(
        "--values", required=True,
        help="comma-separated values, e.g. 8,16,32",
    )
    p_sweep.add_argument(
        "--param", action="append", metavar="K=V",
        help="fixed benchmark parameter (repeatable)",
    )
    _add_machine_args(p_sweep)
    _add_engine_args(p_sweep)
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_campaign = sub.add_parser(
        "campaign",
        help="declarative machine-space sweeps run through the engine "
        "(parallel, cached, resumable) with roofline analytics",
    )
    sub_campaign = p_campaign.add_subparsers(
        dest="campaign_command", required=True
    )

    def _add_campaign_paths(p):
        p.add_argument(
            "--root", default=".repro/campaigns", metavar="DIR",
            help="directory campaigns keep stores/caches under "
            "(default: .repro/campaigns)",
        )
        p.add_argument(
            "--store", metavar="PATH",
            help="override the campaign's run store location",
        )
        p.add_argument(
            "--cache-dir", metavar="DIR",
            help="override the campaign's result cache location",
        )

    p_crun = sub_campaign.add_parser(
        "run",
        help="compile a campaign spec and execute its plan; a rerun of "
        "a killed campaign skips completed points via the cache",
    )
    p_crun.add_argument("spec", help="campaign spec JSON file")
    p_crun.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default: 1)",
    )
    p_crun.add_argument(
        "--timeout", type=float, metavar="SEC",
        help="per-job timeout in seconds (enforced in --jobs>1 mode)",
    )
    p_crun.add_argument(
        "--retries", type=int, default=0, metavar="K",
        help="retries per failed job (default: 0)",
    )
    p_crun.add_argument(
        "--report", metavar="PATH",
        help="also write the roofline report JSON here",
    )
    p_crun.add_argument(
        "--dash", action="store_true",
        help="live terminal dashboard while the campaign runs (full "
        "repaint on a TTY, one line per tick otherwise)",
    )
    p_crun.add_argument(
        "--interval", type=float, default=1.0, metavar="SEC",
        help="dashboard refresh interval (default: 1.0)",
    )
    _add_campaign_paths(p_crun)
    p_crun.set_defaults(fn=_cmd_campaign_run)

    p_cstatus = sub_campaign.add_parser(
        "status",
        help="completion picture of a campaign: points answered by its "
        "cache vs still pending",
    )
    p_cstatus.add_argument("spec", help="campaign spec JSON file")
    p_cstatus.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    _add_campaign_paths(p_cstatus)
    p_cstatus.set_defaults(fn=_cmd_campaign_status)

    p_creport = sub_campaign.add_parser(
        "report",
        help="roofline / arithmetic-intensity analytics plus "
        "strong-scaling series of a stored campaign run",
    )
    p_creport.add_argument("spec", help="campaign spec JSON file")
    p_creport.add_argument(
        "--run", default="latest",
        help="run reference: id prefix, 'latest' (default) or @N",
    )
    p_creport.add_argument(
        "--out", metavar="PATH", help="write the report document as JSON"
    )
    p_creport.add_argument(
        "--plot", metavar="SVG",
        help="render the roofline as a dependency-free SVG plot "
        "(validated before writing)",
    )
    p_creport.add_argument(
        "--no-strict", action="store_true",
        help="mark unreconciled points instead of failing (stores "
        "written before the FLOP-kind breakdown)",
    )
    _add_campaign_paths(p_creport)
    p_creport.set_defaults(fn=_cmd_campaign_report)

    p_cdiff = sub_campaign.add_parser(
        "diff",
        help="gate one campaign run against another (run A is the "
        "baseline); exits non-zero on regression",
    )
    p_cdiff.add_argument("spec", help="campaign spec JSON file")
    p_cdiff.add_argument("run_a", help="baseline run reference")
    p_cdiff.add_argument("run_b", help="current run reference")
    p_cdiff.add_argument(
        "--tolerance", type=float, default=0.0, metavar="PCT",
        help="allowed worse-direction drift per metric (default: 0)",
    )
    p_cdiff.add_argument(
        "--strict", action="store_true",
        help="also fail on benchmarks only run B measured",
    )
    _add_campaign_paths(p_cdiff)
    p_cdiff.set_defaults(fn=_cmd_campaign_diff)

    p_engine = sub.add_parser(
        "engine", help="inspect the execution engine's run store"
    )
    sub_engine = p_engine.add_subparsers(dest="engine_command", required=True)

    p_runs = sub_engine.add_parser("runs", help="list stored runs")
    p_runs.add_argument(
        "--store", default=DEFAULT_STORE, metavar="PATH",
        help=f"run store to read (default: {DEFAULT_STORE})",
    )
    p_runs.set_defaults(fn=_cmd_engine_runs)

    p_history = sub_engine.add_parser(
        "history", help="print stored per-job records"
    )
    p_history.add_argument(
        "--store", default=DEFAULT_STORE, metavar="PATH",
        help=f"run store to read (default: {DEFAULT_STORE})",
    )
    p_history.add_argument(
        "--benchmark", metavar="NAME", help="only this benchmark"
    )
    p_history.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="only the most recent N records",
    )
    p_history.set_defaults(fn=_cmd_engine_history)

    p_diff = sub_engine.add_parser(
        "diff", help="compare two stored runs (unique id prefixes accepted)"
    )
    p_diff.add_argument("run_a")
    p_diff.add_argument("run_b")
    p_diff.add_argument(
        "--store", default=DEFAULT_STORE, metavar="PATH",
        help=f"run store to read (default: {DEFAULT_STORE})",
    )
    p_diff.set_defaults(fn=_cmd_engine_diff)

    p_stats = sub_engine.add_parser(
        "stats",
        help="per-run scheduler metrics: throughput, queue wait, "
        "utilization, cache hits, retry/timeout histograms",
    )
    p_stats.add_argument(
        "run", nargs="?", default="latest",
        help="run reference: id prefix, 'latest' (default) or @N",
    )
    p_stats.add_argument(
        "--store", default=DEFAULT_STORE, metavar="PATH",
        help=f"run store to read (default: {DEFAULT_STORE})",
    )
    p_stats.add_argument(
        "--json", action="store_true", help="emit JSON instead of a table"
    )
    p_stats.set_defaults(fn=_cmd_engine_stats)

    p_check = sub_engine.add_parser(
        "check",
        help="gate a run's metrics against a baseline run or file; "
        "exits non-zero on regression",
    )
    p_check.add_argument(
        "run", nargs="?", default="latest",
        help="run reference: id prefix, 'latest' (default) or @N",
    )
    p_check.add_argument(
        "--baseline", metavar="RUN|FILE",
        help="baseline: a run reference in the store, or a JSON file "
        "(a --bench-out trajectory point or stats sidecar); optional "
        "when --slo is given",
    )
    p_check.add_argument(
        "--slo", metavar="FILE",
        help="also evaluate this SLO spec (JSON) against a saved "
        "/metrics scrape; failing objectives fail the check",
    )
    p_check.add_argument(
        "--scrape", metavar="FILE",
        help="Prometheus text exposition the --slo objectives read "
        "(e.g. saved via `repro telemetry --out`)",
    )
    p_check.add_argument(
        "--tolerance", type=float, default=5.0, metavar="PCT",
        help="allowed worse-direction drift per metric in percent "
        "(default: 5)",
    )
    p_check.add_argument(
        "--store", default=DEFAULT_STORE, metavar="PATH",
        help=f"run store to read (default: {DEFAULT_STORE})",
    )
    p_check.add_argument(
        "--bench-out", metavar="PATH",
        help="write the run's BENCH-compatible trajectory point here",
    )
    p_check.add_argument(
        "--strict", action="store_true",
        help="also fail on benchmarks absent from the baseline "
        "(coverage drift), not just regressions",
    )
    p_check.add_argument(
        "--gate-throughput", type=float, default=None, metavar="PCT",
        help="also fail if the run's engine throughput (jobs/s) falls "
        "more than PCT%% below the baseline's (the baseline must be a "
        "trajectory point / stats document with an engine section, or "
        "a run reference)",
    )
    p_check.set_defaults(fn=_cmd_engine_check)

    p_checker = sub.add_parser(
        "check",
        help="accounting linter (RC001-RC006) and runtime FLOP/comm "
        "sanitizer",
    )
    sub_check = p_checker.add_subparsers(dest="check_command", required=True)

    p_lint = sub_check.add_parser(
        "lint",
        help="static accounting linter over benchmark sources; exits "
        "non-zero on non-baselined findings",
    )
    p_lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    p_lint.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="output format (default: text); sarif emits a SARIF 2.1.0 "
        "document for code-scanning upload",
    )
    p_lint.add_argument(
        "--baseline", metavar="PATH",
        help="suppression file (default: .repro-check.toml if present)",
    )
    p_lint.add_argument(
        "--interprocedural", action="store_true", default=True,
        help="build the whole-scope call graph so taint flows through "
        "helpers and the RC008/RC1xx families run (default)",
    )
    p_lint.add_argument(
        "--no-interprocedural", dest="interprocedural",
        action="store_false",
        help="per-function rules only (the pre-call-graph behaviour)",
    )
    p_lint.add_argument(
        "--changed", action="store_true",
        help="report findings only for files changed vs git HEAD "
        "(plus untracked); the call graph still spans the full scope",
    )
    p_lint.add_argument(
        "--write-baseline", metavar="PATH",
        help="write a baseline covering the current active findings "
        "(reasons left to fill in) and exit",
    )
    p_lint.add_argument(
        "--fail-on-stale", action="store_true",
        help="also exit non-zero when baseline entries match nothing",
    )
    p_lint.add_argument(
        "-v", "--verbose", action="store_true",
        help="also list baselined findings",
    )
    p_lint.set_defaults(fn=_cmd_check_lint)

    p_audit = sub_check.add_parser(
        "audit",
        help="run one benchmark with shadow-counted numpy execution and "
        "diff it against the charged FLOPs/comm",
    )
    p_audit.add_argument("name", help="registered benchmark name")
    p_audit.add_argument(
        "--tolerance", type=float, default=0.0, metavar="PCT",
        help="allowed over-execution (uncharged work) in percent of "
        "charged FLOPs (default: 0)",
    )
    p_audit.add_argument(
        "--strict", action="store_true",
        help="also gate under-execution and unmapped ufuncs (only for "
        "fully-observable benchmarks with no raw-array kernels)",
    )
    p_audit.add_argument(
        "--param", action="append", metavar="K=V",
        help="benchmark parameter override (repeatable)",
    )
    p_audit.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    _add_machine_args(p_audit)
    p_audit.set_defaults(fn=_cmd_check_audit)

    def _add_client_args(p):
        p.add_argument(
            "--host", default="127.0.0.1", help="server host (default: local)"
        )
        p.add_argument(
            "--port", type=int, default=8765,
            help="server port (default: 8765)",
        )
        p.add_argument(
            "--client-id", metavar="ID",
            help="client identity for per-client rate limiting",
        )

    p_serve = sub.add_parser(
        "serve",
        help="run the benchmark server: warm worker pool, request "
        "dedupe, sharded store, live event subscriptions",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: local)"
    )
    p_serve.add_argument(
        "--port", type=int, default=8765,
        help="TCP port; 0 binds an ephemeral port (default: 8765)",
    )
    p_serve.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="resident warm worker processes (default: 2)",
    )
    p_serve.add_argument(
        "--cache-dir", metavar="DIR",
        help="content-addressed result cache shared with CLI runs",
    )
    p_serve.add_argument(
        "--cache-max-bytes", type=int, metavar="N",
        help="LRU byte budget for the cache, enforced periodically",
    )
    p_serve.add_argument(
        "--store", metavar="DIR",
        help="sharded run store directory (records land in per-prefix "
        "shard files; inspect with the usual `repro engine ...` commands)",
    )
    p_serve.add_argument(
        "--stream", metavar="PATH",
        help="also append every event to this JSONL file",
    )
    p_serve.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="bound on concurrently admitted unique jobs; beyond it "
        "submissions get 429 + Retry-After (default: 64)",
    )
    p_serve.add_argument(
        "--rate-limit", type=float, metavar="R",
        help="per-client admission rate in requests/second "
        "(default: unlimited)",
    )
    p_serve.add_argument(
        "--rate-burst", type=int, default=8, metavar="N",
        help="token-bucket burst per client (default: 8)",
    )
    p_serve.add_argument(
        "--timeout", type=float, metavar="SEC",
        help="per-attempt job timeout in seconds",
    )
    p_serve.add_argument(
        "--retries", type=int, default=0, metavar="K",
        help="retries per failed job (default: 0)",
    )
    p_serve.set_defaults(fn=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit one benchmark run to a repro serve instance"
    )
    p_submit.add_argument("name", help="registered benchmark name")
    p_submit.add_argument(
        "--param", action="append", metavar="K=V",
        help="benchmark parameter override (repeatable)",
    )
    p_submit.add_argument(
        "--no-wait", action="store_true",
        help="return the 202 acknowledgment instead of blocking for "
        "the result",
    )
    p_submit.add_argument(
        "--timeout", type=float, metavar="SEC",
        help="seconds to wait server-side before answering 202",
    )
    p_submit.add_argument(
        "--busy-retries", type=int, default=8, metavar="K",
        help="re-submissions after 429 backpressure, honoring the "
        "server's Retry-After (default: 8)",
    )
    p_submit.add_argument(
        "--json", action="store_true", help="print the full job payload"
    )
    _add_machine_args(p_submit)
    _add_client_args(p_submit)
    p_submit.set_defaults(fn=_cmd_submit)

    p_watch = sub.add_parser(
        "watch", help="follow a repro serve instance's live event stream"
    )
    p_watch.add_argument(
        "--count", type=int, metavar="N",
        help="stop after N events (default: until the server stops)",
    )
    p_watch.add_argument(
        "--timeout", type=float, metavar="SEC",
        help="socket timeout while waiting for the next event",
    )
    p_watch.add_argument(
        "--json", action="store_true", help="print raw event JSON lines"
    )
    p_watch.add_argument(
        "--dash", action="store_true",
        help="poll /metrics and render a live terminal dashboard "
        "instead of tailing the event stream",
    )
    p_watch.add_argument(
        "--interval", type=float, default=1.0, metavar="SEC",
        help="dashboard refresh interval (default: 1.0)",
    )
    _add_client_args(p_watch)
    p_watch.set_defaults(fn=_cmd_watch)

    p_telemetry = sub.add_parser(
        "telemetry",
        help="scrape and summarize a /metrics exposition (live server "
        "or saved file), optionally gating SLOs",
    )
    p_telemetry.add_argument(
        "--file", metavar="PATH",
        help="read a saved exposition instead of scraping a server",
    )
    p_telemetry.add_argument(
        "--out", metavar="PATH",
        help="also save the raw scrape here (feed to `engine check "
        "--slo --scrape`)",
    )
    p_telemetry.add_argument(
        "--json", action="store_true",
        help="emit the parsed families as JSON instead of a summary",
    )
    p_telemetry.add_argument(
        "--slo", metavar="FILE",
        help="evaluate this SLO spec against the scrape; exits "
        "non-zero when an objective fails",
    )
    _add_client_args(p_telemetry)
    p_telemetry.set_defaults(fn=_cmd_telemetry)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `repro engine history | head`
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
