"""Layout descriptors: axis kinds, parsing, and block-distribution geometry."""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from functools import lru_cache
from math import prod
from typing import Sequence, Tuple


class Axis(str, Enum):
    """Axis kind: node-local (``:serial``) or distributed (``:``)."""

    SERIAL = "serial"
    PARALLEL = "parallel"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Axis.{self.name}"


class Distribution(str, Enum):
    """How a parallel axis maps to processors (HPF ``DISTRIBUTE``).

    ``BLOCK`` (the CMF default and the suite's assumption) keeps
    contiguous chunks per node, so shifts only move block surfaces.
    ``CYCLIC`` deals elements round-robin, balancing irregular work at
    the cost of turning every shift into all-elements traffic — the
    classic HPF distribution trade-off, exposed as an ablation in the
    benchmark harness.  Serial axes are ``NONE``.
    """

    NONE = "none"
    BLOCK = "block"
    CYCLIC = "cyclic"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Distribution.{self.name}"


def parse_layout(spec: str, shape: Sequence[int]) -> "Layout":
    """Parse the paper's layout notation, e.g. ``"(:serial, :, :)"``.

    ``spec`` lists one entry per axis: ``:serial`` for a local axis,
    ``:`` for a (block-distributed) parallel one, and ``:cyclic`` for
    a cyclically distributed parallel axis.  Parentheses are optional.

    Results are memoized per ``(spec, shape)``: layouts are frozen, so
    repeated parses in per-iteration hot loops share one instance.
    """
    return _parse_layout_cached(spec, tuple(int(s) for s in shape))


@lru_cache(maxsize=4096)
def _parse_layout_cached(spec: str, shape: Tuple[int, ...]) -> "Layout":
    body = spec.strip()
    if body.startswith("(") and body.endswith(")"):
        body = body[1:-1]
    entries = [e.strip() for e in body.split(",")] if body else []
    axes = []
    dists = []
    for entry in entries:
        if entry == ":":
            axes.append(Axis.PARALLEL)
            dists.append(Distribution.BLOCK)
        elif entry in (":serial", "serial"):
            axes.append(Axis.SERIAL)
            dists.append(Distribution.NONE)
        elif entry in (":cyclic", "cyclic"):
            axes.append(Axis.PARALLEL)
            dists.append(Distribution.CYCLIC)
        else:
            raise ValueError(f"bad layout entry {entry!r} in spec {spec!r}")
    if len(axes) != len(shape):
        raise ValueError(
            f"layout spec {spec!r} has {len(axes)} axes but shape {tuple(shape)} "
            f"has {len(shape)}"
        )
    return Layout(shape, tuple(axes), tuple(dists))


@dataclass(frozen=True)
class Layout:
    """Shape plus per-axis SERIAL/PARALLEL kinds and distributions.

    Parallel axes are distributed (BLOCK by default, optionally
    CYCLIC) over a processor grid computed by :meth:`proc_grid`;
    serial axes live entirely within each node.
    """

    shape: Tuple[int, ...]
    axes: Tuple[Axis, ...]
    dist: Tuple[Distribution, ...] = ()

    def __post_init__(self) -> None:
        if len(self.shape) != len(self.axes):
            raise ValueError(
                f"shape {self.shape} and axes {self.axes} have different ranks"
            )
        if any(s < 0 for s in self.shape):
            raise ValueError(f"negative extent in shape {self.shape}")
        if not self.dist:
            object.__setattr__(
                self,
                "dist",
                tuple(
                    Distribution.BLOCK if a is Axis.PARALLEL else Distribution.NONE
                    for a in self.axes
                ),
            )
        elif len(self.dist) != len(self.axes):
            raise ValueError(
                f"dist {self.dist} and axes {self.axes} have different ranks"
            )
        else:
            for a, d in zip(self.axes, self.dist):
                if a is Axis.SERIAL and d is not Distribution.NONE:
                    raise ValueError("serial axes must have Distribution.NONE")
                if a is Axis.PARALLEL and d is Distribution.NONE:
                    raise ValueError(
                        "parallel axes need BLOCK or CYCLIC distribution"
                    )

    # -- basic geometry --------------------------------------------------
    @property
    def ndim(self) -> int:
        """Number of axes."""
        return len(self.shape)

    @property
    def size(self) -> int:
        """Total element count."""
        return prod(self.shape) if self.shape else 1

    @property
    def parallel_axes(self) -> Tuple[int, ...]:
        """Indices of the distributed axes."""
        return tuple(i for i, a in enumerate(self.axes) if a is Axis.PARALLEL)

    @property
    def serial_axes(self) -> Tuple[int, ...]:
        """Indices of the node-local axes."""
        return tuple(i for i, a in enumerate(self.axes) if a is Axis.SERIAL)

    @property
    def parallel_size(self) -> int:
        """Product of the parallel extents."""
        return prod(self.shape[i] for i in self.parallel_axes) if self.parallel_axes else 1

    @property
    def serial_size(self) -> int:
        """Product of the serial extents."""
        return prod(self.shape[i] for i in self.serial_axes) if self.serial_axes else 1

    def is_parallel(self, axis: int) -> bool:
        """Whether the given axis is distributed."""
        return self.axes[axis] is Axis.PARALLEL

    def spec_string(self) -> str:
        """Render back in the paper's ``(:serial,:,:)`` notation."""
        entries = []
        for a, d in zip(self.axes, self.dist):
            if a is Axis.SERIAL:
                entries.append(":serial")
            elif d is Distribution.CYCLIC:
                entries.append(":cyclic")
            else:
                entries.append(":")
        return "(" + ",".join(entries) + ")"

    def is_cyclic(self, axis: int) -> bool:
        """Whether the given axis is cyclically distributed."""
        return self.dist[axis] is Distribution.CYCLIC

    # -- distribution -----------------------------------------------------
    def proc_grid(self, nodes: int) -> Tuple[int, ...]:
        """Processor-grid extent per axis (1 on serial axes).

        Nodes are factored over parallel axes proportionally to their
        extents (largest current block gets the next prime factor), and
        an axis never receives more processors than its extent.
        """
        return _proc_grid_cached(self.shape, self.axes, nodes)

    def blocks(self, nodes: int, axis: int) -> int:
        """Number of blocks the given axis is split into."""
        return self.proc_grid(nodes)[axis]

    def block_size(self, nodes: int, axis: int) -> int:
        """Maximum block extent (ceil division) along an axis."""
        p = self.proc_grid(nodes)[axis]
        return math.ceil(self.shape[axis] / p) if self.shape[axis] else 0

    def max_local_shape(self, nodes: int) -> Tuple[int, ...]:
        """Shape of the largest per-node block."""
        grid = self.proc_grid(nodes)
        return tuple(
            math.ceil(s / g) if s else 0 for s, g in zip(self.shape, grid)
        )

    def max_local_elements(self, nodes: int) -> int:
        """Element count of the largest per-node block."""
        return prod(self.max_local_shape(nodes)) if self.shape else 1

    def nodes_used(self, nodes: int) -> int:
        """Nodes that actually hold data (≤ nodes for small arrays)."""
        return prod(self.proc_grid(nodes)) or 1

    def critical_fraction(self, nodes: int) -> float:
        """Largest per-node share of the array (≥ 1/nodes).

        This is the load-imbalance factor: compute time for an
        elementwise operation is ``total_flops * critical_fraction``
        divided by one node's rate.  Memoized: this sits on the
        per-operation charging hot path.
        """
        return _critical_fraction_cached(self.shape, self.axes, nodes)

    # -- communication-volume helpers --------------------------------------
    def shift_network_elements(self, nodes: int, axis: int, shift: int) -> int:
        """Elements crossing node boundaries for a cshift along ``axis``.

        Memoized: stencil loops re-price the same shift every step.
        """
        return _shift_network_elements_cached(self, nodes, axis, shift)

    def _shift_network_elements(self, nodes: int, axis: int, shift: int) -> int:
        n = self.shape[axis]
        if n == 0 or self.size == 0:
            return 0
        if not self.is_parallel(axis):
            return 0
        p = self.blocks(nodes, axis)
        if p <= 1:
            return 0
        s = abs(shift) % n
        s = min(s, n - s)
        if s == 0:
            return 0
        if self.is_cyclic(axis):
            # Round-robin placement: element i lives on node i mod p,
            # so any shift that is not a multiple of p relocates every
            # element — the cyclic distribution's stencil penalty.
            return 0 if abs(shift) % p == 0 else self.size
        b = self.block_size(nodes, axis)
        moved_fraction = min(s, b) / b
        return round(self.size * moved_fraction)

    def reduce_network_elements(
        self, nodes: int, axes: Tuple[int, ...]
    ) -> int:
        """Result elements that must be combined across nodes."""
        reduce_parallel = [a for a in axes if self.is_parallel(a)]
        if not reduce_parallel:
            return 0
        grid = self.proc_grid(nodes)
        if all(grid[a] <= 1 for a in reduce_parallel):
            return 0
        result_size = self.size
        for a in axes:
            result_size //= max(self.shape[a], 1)
        return result_size if result_size else 1

    def off_node_fraction(self, nodes: int) -> float:
        """Probability a uniformly random element lives on another node.

        Used to size router (gather/scatter/send/get) traffic for
        unstructured index patterns.
        """
        used = self.nodes_used(nodes)
        return (used - 1) / used if used > 1 else 0.0


@lru_cache(maxsize=4096)
def _critical_fraction_cached(
    shape: Tuple[int, ...], axes: Tuple[Axis, ...], nodes: int
) -> float:
    size = prod(shape) if shape else 1
    if size == 0:
        return 0.0
    grid = _proc_grid_cached(shape, axes, nodes)
    local = prod(
        math.ceil(s / g) if s else 0 for s, g in zip(shape, grid)
    ) if shape else 1
    return local / size


@lru_cache(maxsize=8192)
def _shift_network_elements_cached(
    layout: "Layout", nodes: int, axis: int, shift: int
) -> int:
    return layout._shift_network_elements(nodes, axis, shift)


@lru_cache(maxsize=4096)
def _proc_grid_cached(
    shape: Tuple[int, ...], axes: Tuple[Axis, ...], nodes: int
) -> Tuple[int, ...]:
    if nodes < 1:
        raise ValueError(f"nodes must be >= 1, got {nodes}")
    grid = [1] * len(shape)
    par = [i for i, a in enumerate(axes) if a is Axis.PARALLEL and shape[i] > 1]
    if not par:
        return tuple(grid)
    for prime in _prime_factors_desc(nodes):
        # Give the factor to the axis with the largest current block,
        # provided the axis can still be subdivided.
        candidates = [
            i for i in par if shape[i] / grid[i] >= prime
        ]
        if not candidates:
            candidates = [i for i in par if shape[i] / grid[i] > 1]
        if not candidates:
            break
        target = max(candidates, key=lambda i: shape[i] / grid[i])
        grid[target] *= prime
    # Never exceed the axis extent.
    for i in par:
        grid[i] = min(grid[i], shape[i])
    return tuple(grid)


def _prime_factors_desc(n: int) -> list[int]:
    factors: list[int] = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.append(d)
            n //= d
        d += 1
    if n > 1:
        factors.append(n)
    factors.sort(reverse=True)
    return factors
