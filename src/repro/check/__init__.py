"""Accounting linter and FLOP/comm sanitizer (``repro check``).

The paper's value is its *accounting*: every benchmark is characterized
by FLOP counts under the Hennessy-Patterson convention (§1.5), a
communication-pattern inventory and a memory footprint.  In this
reproduction those charges are explicit ``session.charge_*`` /
``record_comm`` calls sitting next to the NumPy math, so a drifted or
missing charge silently corrupts the metrics the suite exists to
report.  This package makes accounting drift a CI failure instead of a
latent paper-fidelity bug, with two cooperating layers:

* :mod:`repro.check.lint` — a static AST linter, run over the
  benchmark, collective-library and serving sources through a
  module-level call graph (:mod:`repro.check.callgraph`): accounting
  rules RC001-RC007 (uncharged compute, charge-kind mismatch, comm
  without record, session misuse, fused-kernel parity, dangling
  spans, unfused hot-loop charges) with interprocedural charge
  scopes, RC008 communication-pattern conformance against the
  registry (:mod:`repro.check.inventory`), and the RC101-RC104
  concurrency family for the async serving stack
  (:mod:`repro.check.concurrency`).  Results export to SARIF 2.1.0
  (:mod:`repro.check.sarif`).
* :mod:`repro.check.sanitizer` — a runtime audit mode that
  shadow-counts the NumPy operations actually executed on distributed
  payloads (via a thin ufunc-intercept array subclass) and diffs them
  against the charged FLOPs and communication events, per region.

Pre-existing findings can be suppressed — with justification — in a
:mod:`baseline file <repro.check.baseline>` (``.repro-check.toml``) so
the rule set can ratchet toward zero instead of blocking adoption.

See ``docs/CHECKS.md`` for the rule catalog and CLI usage.
"""

from repro.check.baseline import Baseline, Suppression, load_baseline
from repro.check.callgraph import CallGraph
from repro.check.concurrency import concurrency_findings
from repro.check.findings import Finding, findings_to_json, format_findings
from repro.check.inventory import AppInventory, inventory_findings
from repro.check.lint import lint_paths, lint_source, lint_sources
from repro.check.sanitizer import AuditReport, AuditSession, audit_benchmark
from repro.check.sarif import sarif_to_json, to_sarif, validate_sarif

__all__ = [
    "AppInventory",
    "AuditReport",
    "AuditSession",
    "Baseline",
    "CallGraph",
    "Finding",
    "Suppression",
    "audit_benchmark",
    "concurrency_findings",
    "findings_to_json",
    "format_findings",
    "inventory_findings",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "load_baseline",
    "sarif_to_json",
    "to_sarif",
    "validate_sarif",
]
