#!/usr/bin/env python
"""A downstream application built on the DPF substrate: 2-D multigrid.

The suite's API is meant to be adopted, not just benchmarked.  This
example implements a geometric multigrid V-cycle for the 2-D Poisson
equation using only public primitives — cshift stencils for smoothing
and residuals, gather/scatter for restriction and prolongation — and
compares its simulated cost against plain Jacobi iteration at equal
accuracy.  Multigrid's textbook result (grid-independent convergence)
emerges from the same accounting machinery the suite uses.
"""

import numpy as np

from repro import perf_session
from repro.array import from_numpy
from repro.comm.stencil import stencil_apply

LAPLACIAN = {
    (0, 0): -4.0, (1, 0): 1.0, (-1, 0): 1.0, (0, 1): 1.0, (0, -1): 1.0,
}


def residual(u, f):
    """r = f - A u with A = -laplacian (periodic, zero-mean)."""
    au = stencil_apply(u, LAPLACIAN)
    return f + au  # A = -lap  ->  r = f - (-lap u)


def jacobi_smooth(u, f, sweeps=2, omega=0.8):
    for _ in range(sweeps):
        r = residual(u, f)
        u = u + (omega / 4.0) * r
    return u


def restrict(session, fine):
    """Full-weighting restriction to the half grid (gather pattern)."""
    d = fine.np
    dn = np.roll(d, 1, 0)
    ds = np.roll(d, -1, 0)
    coarse = (
        0.25 * d
        + 0.125 * (dn + ds + np.roll(d, 1, 1) + np.roll(d, -1, 1))
        + 0.0625 * (
            np.roll(dn, 1, 1) + np.roll(dn, -1, 1)
            + np.roll(ds, 1, 1) + np.roll(ds, -1, 1)
        )
    )[::2, ::2]
    session.charge_kernel(12 * coarse.size, critical_fraction=1.0 / session.nodes)
    return from_numpy(session, coarse, "(:,:)")


def prolong(session, coarse, shape):
    """Bilinear prolongation to the fine grid (scatter pattern)."""
    c = coarse.np
    fine = np.zeros(shape)
    fine[::2, ::2] = c
    fine[1::2, ::2] = 0.5 * (c + np.roll(c, -1, 0))
    fine[::2, 1::2] = 0.5 * (c + np.roll(c, -1, 1))
    fine[1::2, 1::2] = 0.25 * (
        c + np.roll(c, -1, 0) + np.roll(c, -1, 1)
        + np.roll(np.roll(c, -1, 0), -1, 1)
    )
    session.charge_kernel(4 * fine.size, critical_fraction=1.0 / session.nodes)
    return from_numpy(session, fine, "(:,:)")


def v_cycle(session, u, f, min_size=8):
    u = jacobi_smooth(u, f)
    if u.shape[0] > min_size:
        r = residual(u, f)
        # The unscaled 5-point stencil absorbs h^2: the coarse-grid
        # equation needs the residual scaled by (2h/h)^2 = 4.
        rc = restrict(session, r) * 4.0
        zero = from_numpy(session, np.zeros_like(rc.np), "(:,:)")
        ec = v_cycle(session, zero, rc, min_size)
        u = u + prolong(session, ec, u.shape)
    return jacobi_smooth(u, f)


def solve(session, f, method, tol=1e-8, max_cycles=200):
    u = from_numpy(session, np.zeros_like(f.np), "(:,:)")
    history = []
    for _cycle in range(max_cycles):
        u = method(session, u, f)
        res = float(np.abs(residual(u, f).np).max())
        history.append(res)
        if res < tol:
            break
    return u, history


def main() -> None:
    n = 64
    rng = np.random.default_rng(0)
    f_data = rng.standard_normal((n, n))
    f_data -= f_data.mean()  # periodic Poisson needs zero mean

    for label, method in (
        ("multigrid V-cycles", v_cycle),
        ("damped Jacobi (x20 sweeps/cycle)",
         lambda s, u, f: jacobi_smooth(u, f, sweeps=20)),
    ):
        session = perf_session("cm5", 32)
        f = from_numpy(session, f_data, "(:,:)")
        u, history = solve(session, f, method, tol=1e-6)
        rec = session.recorder
        print(f"{label}")
        print(f"  cycles to 1e-6 residual: {len(history)}")
        print(f"  final residual: {history[-1]:.2e}")
        print(
            f"  simulated busy {rec.busy_time * 1e3:.2f} ms, "
            f"elapsed {rec.elapsed_time * 1e3:.2f} ms, "
            f"flops {rec.total_flops}"
        )
        print()


if __name__ == "__main__":
    main()
