"""JSONL live event stream for suite/engine/server runs.

``repro suite --stream events.jsonl`` (or ``EngineConfig.stream``)
makes the engine append one JSON object per line as the run progresses,
flushed per event so a tail/follower sees jobs the moment they finish:

* ``run_started``  — ``run_id``, number of jobs, worker count
* ``job_finished`` — benchmark, status, attempts, wall seconds, the
  request content hash, and (when span collection is on) the worker's
  span summary (see :data:`repro.obs.spans.SPAN_SUMMARY_SCHEMA`)
* ``run_finished`` — final status counts and duration

Every line carries ``kind`` and a monotonically increasing ``seq``.
The stream is observability output, not a store: replaying it does not
reconstruct reports (the run store does that).

Two consumers beyond the file writer:

* :func:`read_stream` / :func:`read_stream_partial` — read a stream
  back, tolerating the truncated trailing line a live reader sees when
  it races a writer mid-flush (the partial tail is reported, never
  parsed as garbage);
* :class:`EventFanout` — fan one live event stream out to N
  subscribers (queues or callbacks) plus any number of file sinks; the
  ``repro serve`` server uses it to feed every ``repro watch`` client
  from a single emission point.
"""

from __future__ import annotations

import json
import queue
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

#: Event kinds a stream may carry, in lifecycle order.
STREAM_EVENT_KINDS = ("run_started", "job_finished", "run_finished")


class EventStream:
    """Append-mode JSONL writer with per-event flush.

    The file is opened lazily on the first :meth:`emit`, so configuring
    a stream costs nothing when no event is ever written.  Writers are
    also usable as context managers.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh = None
        self._seq = 0

    def emit(self, kind: str, **fields) -> Dict:
        """Append one event line; returns the emitted record."""
        if kind not in STREAM_EVENT_KINDS:
            raise ValueError(
                f"unknown stream event kind {kind!r}; "
                f"expected one of {STREAM_EVENT_KINDS}"
            )
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        record = {"kind": kind, "seq": self._seq, **fields}
        self._seq += 1
        self.write(record)
        return record

    def write(self, record: Dict) -> None:
        """Write one already-built record (fan-out sink path)."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class StreamRead:
    """Outcome of reading a (possibly still-growing) stream file."""

    #: fully parsed events, file order
    events: List[Dict] = field(default_factory=list)
    #: raw text of a truncated trailing line (no newline / unparsable),
    #: or None when the file ended cleanly
    incomplete_tail: Optional[str] = None

    @property
    def clean(self) -> bool:
        """Whether the file ended on a complete event line."""
        return self.incomplete_tail is None


def read_stream_partial(path: Union[str, Path]) -> StreamRead:
    """Read a stream file, tolerating a partial trailing line.

    A live subscriber tailing a file the writer is still appending to
    can observe the final line mid-write (flushed without its newline,
    or cut anywhere inside the JSON).  Such a tail is *reported*, not
    raised: every complete line parses as usual, and the unparsable
    remainder comes back as ``incomplete_tail`` so the follower can
    retry from there.  A malformed line *before* the tail is real
    corruption and still raises ``ValueError`` naming the line number.
    """
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    read = StreamRead()
    lines = text.split("\n")
    # A trailing newline leaves an empty final segment; anything else
    # is a potentially-partial tail.
    tail = lines.pop() if lines else ""
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            read.events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}: corrupt stream line {number}: {exc}"
            ) from None
    if tail.strip():
        try:
            # A writer that flushed the record but not yet the newline
            # still produced a complete event.
            read.events.append(json.loads(tail))
        except json.JSONDecodeError:
            read.incomplete_tail = tail
    return read


def read_stream(path: Union[str, Path], *, strict: bool = False) -> list:
    """Read a stream file back as a list of event dictionaries.

    Tolerant by default: a truncated trailing line (a reader racing
    the writer mid-flush) is silently dropped — use
    :func:`read_stream_partial` to also get the raw tail.  With
    ``strict=True`` a truncated tail raises instead, which is the
    right mode for post-run validation of a finished stream.
    """
    read = read_stream_partial(path)
    if strict and not read.clean:
        raise ValueError(
            f"{path}: truncated trailing line: {read.incomplete_tail[:80]!r}"
        )
    return read.events


def validate_stream(events: List[Dict]) -> List[str]:
    """Schema-check a list of stream events; a list of problems.

    Checks the invariants every producer guarantees: known ``kind``,
    integer ``seq`` strictly increasing, lifecycle fields per kind
    (``run_id`` on run bracketing events; benchmark/status/request hash
    on ``job_finished``).  An empty return means the stream validates.
    """
    problems: List[str] = []
    last_seq: Optional[int] = None
    for position, event in enumerate(events):
        where = f"event {position}"
        kind = event.get("kind")
        if kind not in STREAM_EVENT_KINDS:
            problems.append(f"{where}: unknown kind {kind!r}")
            continue
        seq = event.get("seq")
        if not isinstance(seq, int):
            problems.append(f"{where}: missing integer seq")
        elif last_seq is not None and seq <= last_seq:
            problems.append(
                f"{where}: seq {seq} not increasing (previous {last_seq})"
            )
        if isinstance(seq, int):
            last_seq = seq
        if kind in ("run_started", "run_finished") and not event.get("run_id"):
            problems.append(f"{where}: {kind} missing run_id")
        if kind == "job_finished":
            for key in ("benchmark", "status", "request_hash"):
                if not event.get(key):
                    problems.append(f"{where}: job_finished missing {key}")
    return problems


class Subscription:
    """One live subscriber of an :class:`EventFanout`.

    Queue-backed with a bound: a subscriber that stops draining loses
    *newest* events past the bound (counted in :attr:`dropped`) instead
    of stalling the producer — a slow watcher must never hold up the
    scheduler.  Iterating yields events until the fan-out closes.
    """

    _CLOSE = object()

    def __init__(self, maxsize: int) -> None:
        self._queue: "queue.Queue" = queue.Queue(maxsize=maxsize)
        self.dropped = 0
        self.closed = False

    def _deliver(self, record: Dict) -> None:
        try:
            self._queue.put_nowait(record)
        except queue.Full:
            self.dropped += 1

    def _close(self) -> None:
        self.closed = True
        try:
            self._queue.put_nowait(self._CLOSE)
        except queue.Full:
            # No room for the sentinel: consumers still terminate — the
            # ``closed`` flag ends iteration once the queue drains, so
            # every already-delivered event is still read.
            pass

    def get(self, timeout: Optional[float] = None) -> Optional[Dict]:
        """Next event, or None on close/timeout."""
        try:
            item = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        if item is self._CLOSE:
            return None
        return item

    def __iter__(self) -> Iterator[Dict]:
        while True:
            try:
                item = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self.closed:
                    return
                continue
            if item is self._CLOSE:
                return
            yield item


class EventFanout:
    """Fan one live event stream out to N subscribers and file sinks.

    A single ``emit()`` point stamps the shared ``seq`` and delivers
    the record to every attached :class:`EventStream` file, every
    queue-backed :class:`Subscription`, and every callback subscriber.
    The retained ``run_started`` event is replayed to late subscribers
    so every consumer sees the run bracketing regardless of join time.
    Thread-safe: the serve scheduler emits from its event loop while
    watch connections subscribe/unsubscribe concurrently.
    """

    def __init__(self, *, maxsize: int = 1024) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._streams: List[EventStream] = []
        self._subscriptions: List[Subscription] = []
        self._callbacks: List[Callable[[Dict], None]] = []
        self._retained_start: Optional[Dict] = None
        self._maxsize = maxsize
        self._closed = False
        self._dropped_detached = 0

    @property
    def subscribers(self) -> int:
        """Live subscriber count (queues + callbacks)."""
        with self._lock:
            return len(self._subscriptions) + len(self._callbacks)

    @property
    def dropped(self) -> int:
        """Lifetime count of events lost to bounded subscriber queues.

        Sums the live subscriptions' drop counts plus those of every
        subscriber that has since detached, so the total survives
        subscriber churn (``/stats`` exposes it as ``dropped_events``).
        """
        with self._lock:
            return self._dropped_detached + sum(
                subscription.dropped for subscription in self._subscriptions
            )

    def attach(self, stream: EventStream) -> "EventFanout":
        """Add a file sink; every future event is appended to it."""
        with self._lock:
            self._streams.append(stream)
        return self

    def subscribe(
        self,
        callback: Optional[Callable[[Dict], None]] = None,
        *,
        replay: bool = True,
    ):
        """Add a live subscriber; returns its handle.

        With no ``callback`` a queue-backed :class:`Subscription` is
        returned; with one, the callback itself is the handle and is
        invoked synchronously under ``emit`` (keep it non-blocking —
        e.g. ``loop.call_soon_threadsafe``).  ``replay=True`` first
        delivers the retained ``run_started`` event, if any.
        """
        with self._lock:
            retained = self._retained_start if replay else None
            if callback is not None:
                self._callbacks.append(callback)
                handle = callback
            else:
                handle = Subscription(self._maxsize)
                self._subscriptions.append(handle)
        if retained is not None:
            if callback is not None:
                callback(retained)
            else:
                handle._deliver(retained)
        return handle

    def unsubscribe(self, handle) -> None:
        """Detach a subscriber (idempotent)."""
        with self._lock:
            if handle in self._subscriptions:
                self._dropped_detached += handle.dropped
                self._subscriptions.remove(handle)
            elif handle in self._callbacks:
                self._callbacks.remove(handle)

    def emit(self, kind: str, **fields) -> Dict:
        """Build one event and deliver it to every sink/subscriber."""
        if kind not in STREAM_EVENT_KINDS:
            raise ValueError(
                f"unknown stream event kind {kind!r}; "
                f"expected one of {STREAM_EVENT_KINDS}"
            )
        with self._lock:
            if self._closed:
                raise RuntimeError("event fan-out is closed")
            record = {"kind": kind, "seq": self._seq, **fields}
            self._seq += 1
            if kind == "run_started":
                self._retained_start = record
            streams = list(self._streams)
            subscriptions = list(self._subscriptions)
            callbacks = list(self._callbacks)
        for stream in streams:
            stream.write(record)
        for subscription in subscriptions:
            subscription._deliver(record)
        for callback in callbacks:
            callback(record)
        return record

    def close(self) -> None:
        """Close every subscription and file sink (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            streams = list(self._streams)
            subscriptions = list(self._subscriptions)
            self._dropped_detached += sum(
                subscription.dropped for subscription in subscriptions
            )
            self._streams.clear()
            self._subscriptions.clear()
            self._callbacks.clear()
        for subscription in subscriptions:
            subscription._close()
        for stream in streams:
            stream.close()


__all__ = [
    "STREAM_EVENT_KINDS",
    "EventFanout",
    "EventStream",
    "StreamRead",
    "Subscription",
    "read_stream",
    "read_stream_partial",
    "validate_stream",
]
