"""DPF code-version tiers (paper §1.2, Table 1).

A number of the benchmarks exist in several forms:

* ``basic``     — a "typical" user code by a knowledgeable user without
  a lengthy optimization process;
* ``optimized`` — code by a highly performance-oriented programmer with
  good knowledge of the compiler and the architecture;
* ``library``   — optimization via source-language library functions;
* ``cmssl``     — calls into the specialized scientific software
  library (our :mod:`repro.linalg` stands in for CMSSL);
* ``c_dpeac``   — performance-critical segments in a lower-level
  language with finer control over the architecture.  The simulator
  expresses this tier as a reduced local-overhead factor over the
  ``optimized`` code path.
"""

from __future__ import annotations

from enum import Enum


class VersionTier(str, Enum):
    """The five DPF code-version tiers of Table 1."""

    BASIC = "basic"
    OPTIMIZED = "optimized"
    LIBRARY = "library"
    CMSSL = "cmssl"
    C_DPEAC = "c_dpeac"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VersionTier.{self.name}"


#: Fraction of a node's peak FLOP rate sustained on direct-access
#: streaming kernels, per tier.  These express the paper's qualitative
#: ordering (compiler-generated basic code leaves performance on the
#: table; hand-tuned and library code recovers it; C/DPEAC gives the
#: finest control) and are freely re-parameterizable per machine.
DEFAULT_SUSTAINED_FRACTION = {
    VersionTier.BASIC: 0.28,
    VersionTier.OPTIMIZED: 0.45,
    VersionTier.LIBRARY: 0.55,
    VersionTier.CMSSL: 0.65,
    VersionTier.C_DPEAC: 0.80,
}
