"""Tests for the hierarchical metrics recorder."""

import pytest

from repro.metrics.flops import FlopKind
from repro.metrics.patterns import CommPattern
from repro.metrics.recorder import CommEvent, MetricsRecorder, Region


def _event(pattern=CommPattern.CSHIFT, busy=1.0, idle=0.5, net=100):
    return CommEvent(
        pattern=pattern, bytes_network=net, busy_time=busy, idle_time=idle
    )


class TestRegion:
    def test_requires_positive_iterations(self):
        with pytest.raises(ValueError):
            Region("r", 0)

    def test_busy_elapsed_aggregate_children(self):
        root = Region("root")
        child = Region("child")
        root.children.append(child)
        root.compute_busy = 1.0
        child.compute_busy = 2.0
        child.record_comm(_event(busy=0.5, idle=0.25))
        assert root.busy_time == pytest.approx(3.5)
        assert root.elapsed_time == pytest.approx(3.75)

    def test_comm_counts_inclusive(self):
        root = Region("root")
        child = Region("child")
        root.children.append(child)
        root.record_comm(_event(CommPattern.REDUCTION))
        child.record_comm(_event(CommPattern.CSHIFT))
        child.record_comm(_event(CommPattern.CSHIFT))
        counts = root.comm_counts()
        assert counts[CommPattern.REDUCTION] == 1
        assert counts[CommPattern.CSHIFT] == 2

    def test_comm_counts_per_iteration(self):
        r = Region("r", iterations=4)
        for _ in range(8):
            r.record_comm(_event())
        assert r.comm_counts_per_iteration()[CommPattern.CSHIFT] == 2.0

    def test_network_bytes(self):
        r = Region("r")
        r.record_comm(_event(net=30))
        r.record_comm(_event(net=70))
        assert r.network_bytes == 100

    def test_comm_busy_idle_running_sums(self):
        r = Region("r")
        for _ in range(3):
            r.record_comm(_event(busy=0.5, idle=0.25))
        assert r.comm_busy == pytest.approx(1.5)
        assert r.comm_idle == pytest.approx(0.75)
        assert r.comm_count == 3

    def test_fast_path_keeps_no_events(self):
        r = Region("r")
        r.record_comm(_event())
        assert r.comm_count == 1
        # Both per-event accessors raise, and the message names the
        # exact flags that would have retained the events.
        with pytest.raises(RuntimeError) as exc:
            r.comm_events
        assert "Session(detail_events=True)" in str(exc.value)
        assert "repro.sessions.trace_session" in str(exc.value)
        with pytest.raises(RuntimeError) as exc:
            r.total_comm_events
        assert "Session(detail_events=True)" in str(exc.value)
        assert "repro.sessions.trace_session" in str(exc.value)

    def test_fast_path_empty_region_events_are_benign(self):
        r = Region("r")
        assert r.comm_events == []
        assert r.total_comm_events == []

    def test_detail_mode_keeps_events(self):
        r = Region("r", detail_events=True)
        ev = _event()
        r.record_comm(ev)
        assert r.comm_events == [ev]
        assert r.total_comm_events == [ev]

    def test_add_comm_returns_event_only_in_detail_mode(self):
        fast = Region("fast")
        assert fast.add_comm(CommPattern.CSHIFT, bytes_network=8) is None
        detail = Region("detail", detail_events=True)
        ev = detail.add_comm(CommPattern.CSHIFT, bytes_network=8, busy_time=1.0)
        assert ev is not None and ev.bytes_network == 8
        # Both modes account identically.
        assert fast.network_bytes == detail.network_bytes == 8
        assert fast.comm_counts() == detail.comm_counts()

    def test_comm_stats_streams_keyed_by_pattern_rank_detail(self):
        r = Region("r")
        r.add_comm(CommPattern.CSHIFT, bytes_network=8, rank=1, detail="x")
        r.add_comm(CommPattern.CSHIFT, bytes_network=8, rank=1, detail="x")
        r.add_comm(CommPattern.CSHIFT, bytes_network=4, rank=2, detail="y")
        assert len(r.comm_stats) == 2
        stats = r.comm_stats[(CommPattern.CSHIFT, 1, "x")]
        assert stats.count == 2
        assert stats.bytes_network == 16

    def test_find_depth_first(self):
        root = Region("root")
        a = Region("a")
        b = Region("target")
        a.children.append(b)
        root.children.append(a)
        assert root.find("target") is b
        assert root.find("nope") is None


class TestMetricsRecorder:
    def test_region_nesting(self):
        rec = MetricsRecorder()
        with rec.region("outer"):
            rec.charge_flops(FlopKind.ADD, 10)
            with rec.region("inner"):
                rec.charge_flops(FlopKind.ADD, 5)
        outer = rec.root.find("outer")
        inner = rec.root.find("inner")
        assert inner.flops.total == 5
        assert outer.total_flops == 15
        assert rec.total_flops == 15

    def test_reentrant_region_accumulates_iterations(self):
        rec = MetricsRecorder()
        for _ in range(10):
            with rec.region("step"):
                rec.charge_flops(FlopKind.MUL, 3)
        step = rec.root.find("step")
        assert step.iterations == 10
        assert step.flops_per_iteration == 3.0

    def test_region_with_explicit_iterations(self):
        rec = MetricsRecorder()
        with rec.region("main_loop", iterations=7):
            rec.charge_flops(FlopKind.ADD, 14)
        assert rec.root.find("main_loop").flops_per_iteration == 2.0

    def test_stack_restored_after_exception(self):
        rec = MetricsRecorder()
        with pytest.raises(RuntimeError):
            with rec.region("oops"):
                raise RuntimeError("boom")
        assert rec.current is rec.root

    def test_charge_reduction(self):
        rec = MetricsRecorder()
        rec.charge_reduction(100, 2)
        assert rec.total_flops == 198

    def test_charge_reduction_trivial_is_free(self):
        rec = MetricsRecorder()
        rec.charge_reduction(1, 5)
        assert rec.total_flops == 0

    def test_compute_time_accumulates(self):
        rec = MetricsRecorder()
        rec.charge_compute_time(0.5)
        rec.charge_compute_time(0.25)
        assert rec.busy_time == pytest.approx(0.75)

    def test_negative_compute_time_raises(self):
        with pytest.raises(ValueError):
            MetricsRecorder().charge_compute_time(-1.0)

    def test_comm_charged_to_current_region(self):
        rec = MetricsRecorder()
        with rec.region("loop"):
            rec.record_comm(_event())
        assert rec.root.find("loop").comm_counts()[CommPattern.CSHIFT] == 1
        assert rec.root.comm_counts()[CommPattern.CSHIFT] == 1

    def test_busy_and_elapsed_from_comm(self):
        rec = MetricsRecorder()
        rec.record_comm(_event(busy=2.0, idle=1.0))
        assert rec.busy_time == pytest.approx(2.0)
        assert rec.elapsed_time == pytest.approx(3.0)
