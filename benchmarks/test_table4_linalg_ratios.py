"""Table 4: computation-to-communication ratios of the linear algebra
main loops — measured against the paper's analytic rows.

For every row the regenerated table records measured and paper values
of FLOPs/iteration, memory and communication counts; assertions pin
the quantities that must agree exactly (communication budgets) and
bound the FLOP ratios (EXPERIMENTS.md discusses the deltas).
"""

import pytest

from repro.suite import analytic
from repro.suite.tables import measure, table4_linalg

from conftest import save_table


def test_table4_regeneration(benchmark, output_dir, session_factory, table_runner):
    text = benchmark(lambda: table4_linalg(session_factory, runner=table_runner))
    save_table(output_dir, "table4_linalg_ratios", text)
    assert "matrix-vector" in text and "fft" in text


CASES = [
    # (name, params, segment, analytic row, flop rel tolerance)
    ("matrix-vector", {"n": 64, "m": 64, "repeats": 2}, None, analytic.matvec(64, 64), 0.05),
    ("lu", {"n": 32}, "factor", analytic.lu_factor(32, 1), 0.25),
    ("lu", {"n": 32}, "solve", analytic.lu_solve(32, 1), 0.6),
    ("qr", {"m": 48, "n": 24}, "factor", analytic.qr_factor(48, 24), 0.7),
    ("gauss-jordan", {"n": 32}, "main_loop", analytic.gauss_jordan(32), 0.15),
    ("pcr", {"n": 64}, "main_loop", analytic.pcr(64, 1), 0.3),
    ("conj-grad", {"n": 128}, "main_loop", analytic.conj_grad(128), 0.6),
    ("jacobi", {"n": 16}, "main_loop", analytic.jacobi(16), 0.3),
    ("fft", {"n": 256}, "main_loop", analytic.fft(256, 1), 0.0),
]


@pytest.mark.parametrize(
    "name,params,segment,row,tol",
    CASES,
    ids=[f"{c[0]}-{c[2] or 'whole'}" for c in CASES],
)
def test_row_against_paper(benchmark, session_factory, name, params, segment, row, tol):
    result = benchmark(lambda: measure(name, session_factory, params, segment=segment))
    _, flops, _, comm = result

    # Communication budget: exact (within re-entry rounding).
    for pattern, expected in row.comm_per_iteration.items():
        assert comm.get(pattern, 0.0) == pytest.approx(expected, abs=0.25), (
            f"{name}/{pattern.value}"
        )
    # FLOP count: exact where tol == 0, bounded ratio otherwise.
    if tol == 0.0:
        assert flops == row.flops_per_iteration
    else:
        ratio = flops / row.flops_per_iteration
        assert 1 - tol <= ratio <= 1 + tol or ratio < 1 + tol, (
            f"{name}: measured {flops:.0f} vs paper {row.flops_per_iteration:.0f}"
        )


@pytest.mark.parametrize("dims,n", [(1, 1024), (2, 1024), (3, 512)])
def test_fft_family_flops(benchmark, session_factory, dims, n):
    """fft 1-D/2-D/3-D: 5/10/15 N FLOPs per stage (Table 4)."""
    result = benchmark(
        lambda: measure("fft", session_factory, {"n": n, "dims": dims})
    )
    _, flops, _, _ = result
    side = {1: 1024, 2: 32, 3: 8}[dims]
    expected = analytic.fft(side, dims).flops_per_iteration
    assert flops == expected
