"""Uniform runner adapters for every benchmark.

Each adapter has the signature ``(session, **params) -> AppResult`` so
the registry can treat communication, linear-algebra and application
benchmarks identically.  Application modules already return
:class:`~repro.apps.base.AppResult`; the adapters here wrap the
linalg and commbench entry points.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppResult
from repro.machine.session import Session
from repro.metrics.access import LocalAccess


# -- communication benchmarks ------------------------------------------------
def gather_adapter(
    session: Session,
    n: int = 1 << 14,
    repeats: int = 5,
    pattern: str = "uniform",
    seed: int = 0,
):
    """Registry adapter: run the gather benchmark and verify it."""
    from repro.commbench.drivers import gather_benchmark

    r = gather_benchmark(session, n=n, repeats=repeats, pattern=pattern, seed=seed)
    return AppResult(
        name="gather", iterations=r.repeats, problem_size=r.elements,
        local_access=LocalAccess.NA, observables={"checksum": r.checksum},
    )


def scatter_adapter(
    session: Session,
    n: int = 1 << 14,
    repeats: int = 5,
    pattern: str = "permutation",
    seed: int = 0,
):
    """Registry adapter: run the scatter benchmark and verify it."""
    from repro.commbench.drivers import scatter_benchmark

    r = scatter_benchmark(session, n=n, repeats=repeats, pattern=pattern, seed=seed)
    return AppResult(
        name="scatter", iterations=r.repeats, problem_size=r.elements,
        local_access=LocalAccess.NA, observables={"checksum": r.checksum},
    )


def reduction_adapter(session: Session, n: int = 1 << 14, repeats: int = 5, seed: int = 0):
    """Registry adapter: run the reduction benchmark and verify it."""
    from repro.commbench.drivers import reduction_benchmark

    r = reduction_benchmark(session, n=n, repeats=repeats, seed=seed)
    return AppResult(
        name="reduction", iterations=r.repeats, problem_size=r.elements,
        local_access=LocalAccess.NA, observables={"checksum": r.checksum},
    )


def transpose_adapter(session: Session, n: int = 128, repeats: int = 5, seed: int = 0):
    """Registry adapter: run the transpose benchmark and verify it."""
    from repro.commbench.drivers import transpose_benchmark

    r = transpose_benchmark(session, n=n, repeats=repeats, seed=seed)
    return AppResult(
        name="transpose", iterations=r.repeats, problem_size=r.elements,
        local_access=LocalAccess.NA, observables={"checksum": r.checksum},
    )


# -- linear algebra ----------------------------------------------------------
def matvec_adapter(
    session: Session,
    variant: int = 1,
    n: int = 128,
    m: int | None = None,
    instances: int = 1,
    repeats: int = 4,
    seed: int = 0,
):
    """Registry adapter: run the matvec benchmark and verify it."""
    from repro.linalg.matvec import make_operands, matvec

    A, x = make_operands(session, variant, n=n, m=m, instances=instances, seed=seed)
    y = None
    with session.region("main_loop", iterations=repeats):
        for _ in range(repeats):
            y = matvec(A, x)
    ref = np.einsum("...mn,...n->...m", A.np, x.np)
    err = float(np.abs(y.np - ref).max())
    return AppResult(
        name=f"matrix-vector/{variant}", iterations=repeats,
        problem_size=A.size, local_access=LocalAccess.DIRECT,
        observables={"matvec_error": err},
    )


def lu_adapter(
    session: Session, n: int = 64, instances: int = 1, nrhs: int = 1, seed: int = 0
):
    """Registry adapter: run the lu benchmark and verify it."""
    from repro.linalg.lu import lu_factor, lu_solve, make_systems

    A, B = make_systems(session, n=n, instances=instances, nrhs=nrhs, seed=seed)
    fact = lu_factor(A)
    X = lu_solve(fact, B)
    resid = float(
        np.abs(np.einsum("inm,imr->inr", A.np, X.np) - B.np).max()
    )
    return AppResult(
        name="lu", iterations=n, problem_size=instances * n * n,
        local_access=LocalAccess.NA, observables={"residual": resid},
    )


def qr_adapter(session: Session, m: int = 96, n: int = 48, nrhs: int = 1, seed: int = 0):
    """Registry adapter: run the qr benchmark and verify it."""
    from repro.linalg.qr import make_system, qr_factor, qr_solve

    A, b = make_system(session, m=m, n=n, nrhs=nrhs, seed=seed)
    fact = qr_factor(A)
    x = qr_solve(fact, b)
    ref, *_ = np.linalg.lstsq(A.np, b.np, rcond=None)
    err = float(np.abs(x.np - ref).max())
    return AppResult(
        name="qr", iterations=n, problem_size=m * n,
        local_access=LocalAccess.NA, observables={"lstsq_error": err},
    )


def gauss_jordan_adapter(session: Session, n: int = 64, seed: int = 0):
    """Registry adapter: run the gauss_jordan benchmark and verify it."""
    from repro.linalg.gauss_jordan import gauss_jordan_solve, make_system

    A, b = make_system(session, n=n, seed=seed)
    x = gauss_jordan_solve(A, b)
    resid = float(np.abs(A.np @ x.np - b.np).max())
    return AppResult(
        name="gauss-jordan", iterations=n, problem_size=n * n,
        local_access=LocalAccess.NA, observables={"residual": resid},
    )


def pcr_adapter(
    session: Session,
    n: int = 128,
    variant: int = 1,
    nrhs: int = 1,
    packed: bool = True,
    seed: int = 0,
):
    """Registry adapter: run the pcr benchmark and verify it."""
    from repro.linalg.pcr import make_systems, pcr_solve, reference_solve

    instances = {1: None, 2: (4,), 3: (2, 2)}[variant]
    a, b, c, f = make_systems(session, n=n, instances=instances, nrhs=nrhs, seed=seed)
    x = pcr_solve(a, b, c, f, packed=packed)
    ref = reference_solve(a.np, b.np, c.np, f.np)
    err = float(np.abs(x.np - ref).max())
    return AppResult(
        name=f"pcr/{variant}", iterations=int(np.ceil(np.log2(n))),
        problem_size=a.size, local_access=LocalAccess.DIRECT,
        observables={"solve_error": err},
    )


def conj_grad_adapter(session: Session, n: int = 256, seed: int = 0):
    """Registry adapter: run the conj_grad benchmark and verify it."""
    from repro.linalg.conj_grad import cg_tridiagonal, make_rhs, reference_solve

    f = make_rhs(session, n, seed=seed)
    res = cg_tridiagonal(session, f, lower=-1.0, diag=4.0, upper=-0.5)
    ref = reference_solve(n, -1.0, 4.0, -0.5, f.np)
    err = float(np.abs(res.x.np - ref).max())
    return AppResult(
        name="conj-grad", iterations=res.iterations, problem_size=n,
        local_access=LocalAccess.NA,
        observables={"solve_error": err, "residual": res.residual_norm},
    )


def jacobi_adapter(session: Session, n: int = 32, seed: int = 0):
    """Registry adapter: run the jacobi benchmark and verify it."""
    from repro.linalg.jacobi_eigen import jacobi_eigen, make_matrix

    A = make_matrix(session, n, seed=seed)
    res = jacobi_eigen(A)
    ref = np.sort(np.linalg.eigvalsh(A.np))
    err = float(np.abs(res.eigenvalues - ref).max())
    return AppResult(
        name="jacobi", iterations=res.iterations, problem_size=n * n,
        local_access=LocalAccess.NA,
        observables={"eigenvalue_error": err, "off_norm": res.off_norm},
    )


def fft_adapter(session: Session, n: int = 1024, dims: int = 1, seed: int = 0):
    """Registry adapter: run the fft benchmark and verify it."""
    from repro.array.creation import from_numpy
    from repro.linalg.fft import fft, fft2, fft3

    rng = np.random.default_rng(seed)
    if dims == 1:
        x = from_numpy(session, rng.standard_normal(n) + 0j, "(:)")
        session.declare_memory("x", (n,), np.complex128)
        out = fft(x)
        ref = np.fft.fft(x.np)
        size = n
        iters = int(np.log2(n))
    elif dims == 2:
        side = int(round(n ** 0.5))
        side = 1 << (side.bit_length() - 1)
        x = from_numpy(session, rng.standard_normal((side, side)) + 0j, "(:,:)")
        session.declare_memory("x", (side, side), np.complex128)
        out = fft2(x)
        ref = np.fft.fft2(x.np)
        size = side * side
        iters = int(np.log2(side))
    else:
        side = max(4, 1 << (int(round(n ** (1 / 3))).bit_length() - 1))
        x = from_numpy(
            session, rng.standard_normal((side, side, side)) + 0j, "(:,:,:)"
        )
        session.declare_memory("x", (side, side, side), np.complex128)
        out = fft3(x)
        ref = np.fft.fftn(x.np)
        size = side**3
        iters = int(np.log2(side))
    err = float(np.abs(out.np - ref).max() / max(1.0, np.abs(ref).max()))
    return AppResult(
        name=f"fft/{dims}d", iterations=iters, problem_size=size,
        local_access=LocalAccess.NA, observables={"fft_error": err},
    )
