"""repro.check linter: per-rule fixtures, baseline, CLI plumbing.

Each rule gets a known-bad fixture (asserting the exact finding code,
symbol, and location) and a known-good twin that differs only in the
charging discipline, so the tests pin both the detection and the
false-positive boundary.
"""

from pathlib import Path
from textwrap import dedent

import pytest

from repro.check import (
    Baseline,
    Suppression,
    findings_to_json,
    format_findings,
    lint_paths,
    lint_source,
    load_baseline,
)
from repro.check.baseline import write_baseline
from repro.check.findings import summarize_codes


def codes(findings):
    return [f.code for f in findings]


# ----------------------------------------------------------------------
# RC001: uncharged compute
# ----------------------------------------------------------------------
class TestRC001:
    BAD = dedent(
        """\
        import numpy as np

        def leaky(a, session):
            raw = a.data
            out = raw * 2.0 + raw
            return out
        """
    )

    def test_flags_payload_arithmetic(self):
        findings = lint_source(self.BAD, "fix.py")
        assert codes(findings) == ["RC001"]
        f = findings[0]
        assert f.symbol == "leaky"
        assert f.path == "fix.py"
        assert f.line == 5  # the first arithmetic site
        assert "2 site(s)" in f.message  # the ADD and the MUL
        assert "charge" in f.message

    def test_charging_silences(self):
        good = self.BAD.replace(
            "    return out",
            "    session.charge_elementwise(out.size)\n    return out",
        )
        assert lint_source(good, "fix.py") == []

    def test_fused_wrapper_silences(self):
        good = dedent(
            """\
            def stepper(y, x, alpha):
                raw = x.data
                scaled = raw * 2.0
                return axpy(y, x, alpha)
            """
        )
        assert lint_source(good, "fix.py") == []

    def test_reference_helpers_exempt(self):
        ref = dedent(
            """\
            def dslash_reference(a):
                raw = a.data
                return raw * 2.0 + raw
            """
        )
        assert lint_source(ref, "fix.py") == []

    def test_untainted_param_arithmetic_not_flagged(self):
        # plain-array helpers are charged by their callers
        neutral = dedent(
            """\
            def helper(arr):
                return arr * 2.0 + arr
            """
        )
        assert lint_source(neutral, "fix.py") == []


# ----------------------------------------------------------------------
# RC002: charge-kind mismatch
# ----------------------------------------------------------------------
class TestRC002:
    BAD = dedent(
        """\
        import numpy as np

        def solver(a, session):
            raw = a.data
            r = np.sqrt(raw)
            session.charge_elementwise(r.size)
            return r
        """
    )

    def test_flags_uncharged_sqrt(self):
        findings = lint_source(self.BAD, "fix.py")
        assert codes(findings) == ["RC002"]
        f = findings[0]
        assert f.symbol == "solver"
        assert f.line == 5
        assert "SQRT" in f.message
        assert "4x" in f.message

    def test_transcendental_reports_8x(self):
        bad = self.BAD.replace("np.sqrt", "np.exp")
        findings = lint_source(bad, "fix.py")
        assert codes(findings) == ["RC002"]
        assert "EXP" in findings[0].message
        assert "8x" in findings[0].message

    def test_flopkind_mention_silences(self):
        good = self.BAD.replace(
            "session.charge_elementwise(r.size)",
            "session.charge_elementwise(r.size, kind=FlopKind.SQRT)",
        )
        assert lint_source(good, "fix.py") == []

    def test_preweighted_charge_silences(self):
        good = self.BAD.replace(
            "session.charge_elementwise(r.size)",
            "session.charge_kernel(606)",
        )
        assert lint_source(good, "fix.py") == []


# ----------------------------------------------------------------------
# RC003: comm without record
# ----------------------------------------------------------------------
class TestRC003:
    BAD = dedent(
        """\
        import numpy as np

        def shifter(u, session):
            raw = u.data
            halo = np.roll(raw, 1, axis=0)
            return halo
        """
    )

    def test_flags_unrecorded_roll(self):
        findings = lint_source(self.BAD, "fix.py")
        assert codes(findings) == ["RC003"]
        f = findings[0]
        assert f.symbol == "shifter"
        assert f.line == 5
        assert "np.roll" in f.message
        assert "record_comm" in f.message

    def test_record_comm_silences(self):
        good = self.BAD.replace(
            "    return halo",
            "    session.record_comm(pattern, bytes_network=8)\n"
            "    return halo",
        )
        assert lint_source(good, "fix.py") == []

    def test_collective_wrapper_silences(self):
        good = dedent(
            """\
            import numpy as np

            def shifter(u, session):
                raw = u.data
                halo = np.roll(raw, 1, axis=0)
                shifted = cshift(u, 1, axis=0)
                return halo, shifted
            """
        )
        assert lint_source(good, "fix.py") == []


# ----------------------------------------------------------------------
# RC004: session misuse
# ----------------------------------------------------------------------
class TestRC004:
    def test_session_reuse_across_runs(self):
        bad = dedent(
            """\
            def sweep(names, session):
                out = []
                for name in names:
                    out.append(run_benchmark(name, session))
                return out
            """
        )
        findings = lint_source(bad, "fix.py")
        assert codes(findings) == ["RC004"]
        f = findings[0]
        assert f.symbol == "sweep"
        assert f.line == 4
        assert "'session'" in f.message
        assert "fresh session" in f.message

    def test_fresh_session_per_run_ok(self):
        good = dedent(
            """\
            def sweep(names, machine):
                out = []
                for name in names:
                    session = open_session(machine)
                    out.append(run_benchmark(name, session))
                return out
            """
        )
        assert lint_source(good, "fix.py") == []

    def test_region_outside_with(self):
        bad = dedent(
            """\
            def timed(session):
                session.region("main")
                return session
            """
        )
        findings = lint_source(bad, "fix.py")
        assert codes(findings) == ["RC004"]
        assert "'with'" in findings[0].message
        assert findings[0].line == 2

    def test_region_as_context_manager_ok(self):
        good = dedent(
            """\
            def timed(session):
                with session.region("main"):
                    pass
            """
        )
        assert lint_source(good, "fix.py") == []

    def test_event_accessor_without_detail_guard(self):
        bad = dedent(
            """\
            def report(recorder):
                return len(recorder.root.comm_events)
            """
        )
        findings = lint_source(bad, "fix.py")
        assert codes(findings) == ["RC004"]
        f = findings[0]
        assert ".comm_events" in f.message
        assert "detail_events" in f.message

    def test_event_accessor_with_guard_ok(self):
        good = dedent(
            """\
            def report(recorder):
                if not recorder.detail_events:
                    return 0
                return len(recorder.root.comm_events)
            """
        )
        assert lint_source(good, "fix.py") == []

    def test_trace_session_counts_as_guard(self):
        good = dedent(
            """\
            def report():
                with trace_session() as session:
                    pass
                return session.recorder.root.total_comm_events
            """
        )
        assert lint_source(good, "fix.py") == []


# ----------------------------------------------------------------------
# RC005: fused-kernel parity
# ----------------------------------------------------------------------
class TestRC005:
    def test_stencil_comment_mismatch(self):
        bad = dedent(
            """\
            def step(uc, um, up, scale):
                # rhs = uc + scale * (um - uc + up)
                return stencil_combine(uc, um, up, scale)
            """
        )
        findings = lint_source(bad, "fix.py")
        assert codes(findings) == ["RC005"]
        f = findings[0]
        assert f.symbol == "step"
        assert f.line == 3
        assert "stencil_combine" in f.message

    def test_stencil_comment_match_ok(self):
        good = dedent(
            """\
            def step(uc, um, up, scale):
                # rhs = uc + scale * (um - 2*uc + up)
                return stencil_combine(uc, um, up, scale)
            """
        )
        assert lint_source(good, "fix.py") == []

    def test_axpy_augmented_comment(self):
        bad = dedent(
            """\
            def update(y, x, alpha):
                # y -= alpha * x
                return axpy(y, x, alpha)
            """
        )
        findings = lint_source(bad, "fix.py")
        assert codes(findings) == ["RC005"]

    def test_axpy_subtract_matches_minus_comment(self):
        good = dedent(
            """\
            def update(y, x, alpha):
                # y -= alpha * x
                return axpy(y, x, alpha, subtract=True)
            """
        )
        assert lint_source(good, "fix.py") == []

    def test_linear_combine_arity(self):
        bad = dedent(
            """\
            def mix(a, b, c):
                # out = 0.5*a + 0.5*b
                return linear_combine(a, b, c)
            """
        )
        findings = lint_source(bad, "fix.py")
        assert codes(findings) == ["RC005"]

    def test_prose_comment_skipped(self):
        # a comment that is not an expression cannot disagree
        good = dedent(
            """\
            def update(y, x, alpha):
                # accumulate the force contribution
                return axpy(y, x, alpha)
            """
        )
        assert lint_source(good, "fix.py") == []

    def test_dynamic_subtract_flag_skipped(self):
        good = dedent(
            """\
            def update(y, x, alpha, sub):
                # y -= alpha * x
                return axpy(y, x, alpha, subtract=sub)
            """
        )
        assert lint_source(good, "fix.py") == []


# ----------------------------------------------------------------------
# RC006: dangling observability spans
# ----------------------------------------------------------------------
class TestRC006:
    def test_iteration_outside_with(self):
        bad = dedent(
            """\
            def run(session, steps):
                with session.region("main_loop", iterations=steps):
                    for step in range(steps):
                        session.iteration(step)
                        session.charge_elementwise(100)
            """
        )
        findings = lint_source(bad, "fix.py")
        assert codes(findings) == ["RC006"]
        f = findings[0]
        assert f.symbol == "run"
        assert f.line == 4
        assert "'with'" in f.message
        assert "iteration" in f.message

    def test_iteration_as_context_manager_ok(self):
        good = dedent(
            """\
            def run(session, steps):
                with session.region("main_loop", iterations=steps):
                    for step in range(steps):
                        with session.iteration(step):
                            session.charge_elementwise(100)
            """
        )
        assert lint_source(good, "fix.py") == []

    def test_returned_span_is_passthrough(self):
        # Session.iteration itself forwards the collector's context
        # manager; the caller enters it.
        good = dedent(
            """\
            def iteration(self, index):
                obs = self.recorder.observer
                if obs is None:
                    return _NULL_SPAN
                return obs.iteration(index)
            """
        )
        assert lint_source(good, "fix.py") == []

    def test_with_iteration_outside_region_in_region_function(self):
        bad = dedent(
            """\
            def run(session, steps):
                for step in range(steps):
                    with session.iteration(step):
                        session.charge_elementwise(100)
                with session.region("main_loop", iterations=steps):
                    session.charge_elementwise(100)
            """
        )
        findings = lint_source(bad, "fix.py")
        assert codes(findings) == ["RC006"]
        f = findings[0]
        assert f.symbol == "run"
        assert f.line == 3
        assert "region" in f.message

    def test_helper_without_regions_exempt(self):
        # A per-stage helper invoked under the caller's region (like
        # the FFT axis sweep) owns no region and is not flagged.
        good = dedent(
            """\
            def _sweep_axis(session, stages):
                for s in range(stages):
                    with session.iteration(s):
                        session.charge_elementwise(100)
            """
        )
        assert lint_source(good, "fix.py") == []

    def test_iteration_inside_region_ok(self):
        good = dedent(
            """\
            def run(session, steps):
                with session.region("main_loop", iterations=steps):
                    for step in range(steps):
                        with session.iteration(step):
                            session.charge_elementwise(100)
                with session.region("tail", iterations=1):
                    session.charge_elementwise(10)
            """
        )
        assert lint_source(good, "fix.py") == []


# ----------------------------------------------------------------------
# Parse failure
# ----------------------------------------------------------------------
def test_syntax_error_is_rc000():
    findings = lint_source("def broken(:\n", "oops.py")
    assert codes(findings) == ["RC000"]
    assert findings[0].path == "oops.py"
    assert "parse" in findings[0].message


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
class TestRC007:
    BAD = dedent(
        """\
        def run(session, field, steps):
            with session.region("main_loop", iterations=steps):
                for step in range(steps):
                    session.charge_elementwise(FlopKind.MUL, field.layout)
                    session.charge_elementwise(FlopKind.ADD, field.layout)
        """
    )

    def test_flags_consecutive_same_layout_pair(self):
        findings = lint_source(self.BAD, "fix.py")
        assert codes(findings) == ["RC007"]
        f = findings[0]
        assert f.symbol == "run"
        assert f.line == 4  # first call of the run
        assert "charge_elementwise_seq" in f.message
        assert "2 consecutive" in f.message

    def test_fused_call_silences(self):
        good = dedent(
            """\
            def run(session, field, steps):
                with session.region("main_loop", iterations=steps):
                    for step in range(steps):
                        session.charge_elementwise_seq(
                            ((FlopKind.MUL, 1, False), (FlopKind.ADD, 1, False)),
                            field.layout,
                        )
            """
        )
        assert lint_source(good, "fix.py") == []

    def test_different_layouts_not_flagged(self):
        good = self.BAD.replace(
            "session.charge_elementwise(FlopKind.ADD, field.layout)",
            "session.charge_elementwise(FlopKind.ADD, other.layout)",
        )
        assert lint_source(good, "fix.py") == []

    def test_separated_calls_not_flagged(self):
        good = self.BAD.replace(
            "            session.charge_elementwise(FlopKind.ADD",
            "            x = step + 1\n"
            "            session.charge_elementwise(FlopKind.ADD",
        )
        assert lint_source(good, "fix.py") == []

    def test_outside_loop_not_flagged(self):
        good = dedent(
            """\
            def apply(session, field):
                session.charge_elementwise(FlopKind.MUL, field.layout)
                session.charge_elementwise(FlopKind.ADD, field.layout)
            """
        )
        assert lint_source(good, "fix.py") == []

    def test_if_block_inside_loop_is_transparent(self):
        bad = dedent(
            """\
            def run(session, field, steps):
                for step in range(steps):
                    if step % 2:
                        session.charge_elementwise(FlopKind.MUL, field.layout)
                        session.charge_elementwise(FlopKind.ADD, field.layout)
            """
        )
        assert codes(lint_source(bad, "fix.py")) == ["RC007"]

    def test_nested_loop_run_reported_once(self):
        bad = dedent(
            """\
            def run(session, field, steps):
                for step in range(steps):
                    for tap in (-1, 1):
                        session.charge_elementwise(FlopKind.MUL, field.layout)
                        session.charge_elementwise(FlopKind.ADD, field.layout)
            """
        )
        findings = lint_source(bad, "fix.py")
        assert codes(findings) == ["RC007"]
        assert findings[0].line == 4

    def test_keyword_layout_spelling_flagged(self):
        bad = dedent(
            """\
            def run(session, field, steps):
                while steps:
                    session.charge_elementwise(FlopKind.MUL, layout=field.layout)
                    session.charge_elementwise(FlopKind.ADD, layout=field.layout)
                    steps -= 1
            """
        )
        assert codes(lint_source(bad, "fix.py")) == ["RC007"]

    def test_run_of_three_counted_once(self):
        bad = self.BAD.replace(
            "            session.charge_elementwise(FlopKind.ADD, field.layout)",
            "            session.charge_elementwise(FlopKind.ADD, field.layout)\n"
            "            session.charge_elementwise(FlopKind.SUB, field.layout)",
        )
        findings = lint_source(bad, "fix.py")
        assert codes(findings) == ["RC007"]
        assert "3 consecutive" in findings[0].message

    def test_baseline_suppresses(self):
        findings = lint_source(self.BAD, "fix.py")
        baseline = Baseline(
            suppressions=[
                Suppression("RC007", "fix.py", "run", "mixed access modes")
            ]
        )
        result = baseline.apply(findings)
        assert result.ok
        assert codes(result.suppressed) == ["RC007"]


class TestBaseline:
    BAD = TestRC001.BAD

    def test_exact_suppression(self):
        findings = lint_source(self.BAD, "fix.py")
        baseline = Baseline(
            suppressions=[
                Suppression("RC001", "fix.py", "leaky", "known, tracked")
            ]
        )
        result = baseline.apply(findings)
        assert result.ok
        assert codes(result.suppressed) == ["RC001"]
        assert result.unused_suppressions == []

    def test_wrong_symbol_does_not_suppress(self):
        findings = lint_source(self.BAD, "fix.py")
        baseline = Baseline(
            suppressions=[Suppression("RC001", "fix.py", "other", "reason")]
        )
        result = baseline.apply(findings)
        assert not result.ok
        assert result.unused_suppressions == ["RC001:fix.py:other"]

    def test_path_wildcard(self):
        findings = lint_source(self.BAD, "src/repro/apps/fix.py")
        baseline = Baseline(
            suppressions=[
                Suppression("RC001", "src/repro/apps/*", "*", "bulk adopt")
            ]
        )
        assert baseline.apply(findings).ok

    def test_load_rejects_missing_reason(self, tmp_path):
        p = tmp_path / ".repro-check.toml"
        p.write_text(
            '[[suppression]]\ncode = "RC001"\npath = "a.py"\n'
            'symbol = "f"\n'
        )
        with pytest.raises(ValueError, match="reason"):
            load_baseline(p)

    def test_load_absent_file_is_empty(self, tmp_path):
        baseline = load_baseline(tmp_path / "missing.toml")
        assert baseline.suppressions == []

    def test_write_then_load_roundtrip(self, tmp_path):
        findings = lint_source(self.BAD, "fix.py")
        p = tmp_path / "baseline.toml"
        write_baseline(findings, p)
        loaded = load_baseline(p)
        assert [s.code for s in loaded.suppressions] == ["RC001"]
        assert loaded.apply(findings).ok


# ----------------------------------------------------------------------
# Driver / output formats
# ----------------------------------------------------------------------
class TestDriver:
    def test_lint_paths_reports_relative(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "bad.py").write_text(TestRC001.BAD)
        (pkg / "__pycache__").mkdir()
        (pkg / "__pycache__" / "junk.py").write_text(TestRC001.BAD)
        result = lint_paths(
            [pkg], baseline=Baseline(suppressions=[]), root=tmp_path
        )
        assert codes(result.active) == ["RC001"]
        assert result.active[0].path == "pkg/bad.py"

    def test_format_and_json(self):
        findings = lint_source(TestRC001.BAD, "fix.py")
        result = Baseline(suppressions=[]).apply(findings)
        text = format_findings(result)
        assert "fix.py:5" in text
        assert "1 finding(s), 0 suppressed, 0 stale suppression(s)" in text
        payload = findings_to_json(result)
        assert '"RC001"' in payload
        assert '"ok": false' in payload

    def test_summarize_codes(self):
        findings = lint_source(TestRC001.BAD, "a.py") + lint_source(
            TestRC002.BAD, "b.py"
        )
        assert summarize_codes(findings) == {"RC001": 1, "RC002": 1}


# ----------------------------------------------------------------------
# The repo itself stays clean (the acceptance bar for this tool)
# ----------------------------------------------------------------------
def test_repo_sources_are_clean():
    root = Path(__file__).resolve().parents[1]
    result = lint_paths(
        [root / "src" / "repro"],
        baseline_path=root / ".repro-check.toml",
        root=root,
    )
    assert result.ok, format_findings(result)
    assert result.unused_suppressions == []


# ----------------------------------------------------------------------
# RC003 movement vocabulary: concatenate and fast_roll
# ----------------------------------------------------------------------
class TestRC003Movement:
    def test_concatenate_of_payload_slices_flagged(self):
        # fast_roll's expansion: a circular shift spelled as two
        # slices + concatenate is still data movement
        bad = dedent(
            """\
            import numpy as np

            def drift(state, session):
                raw = state.data
                shifted = np.concatenate((raw[1:], raw[:1]))
                return shifted
            """
        )
        findings = lint_source(bad, "fix.py")
        assert codes(findings) == ["RC003"]
        assert findings[0].symbol == "drift"
        assert findings[0].line == 5

    def test_concatenate_with_record_ok(self):
        good = dedent(
            """\
            import numpy as np

            def drift(state, session):
                raw = state.data
                shifted = np.concatenate((raw[1:], raw[:1]))
                session.record_comm(pattern, bytes_network=8)
                return shifted
            """
        )
        assert lint_source(good, "fix.py") == []

    def test_fast_roll_of_payload_flagged(self):
        bad = dedent(
            """\
            from repro.array.roll import fast_roll

            def drift(state, session):
                raw = state.data
                return fast_roll(raw, 1)
            """
        )
        findings = lint_source(bad, "fix.py")
        assert codes(findings) == ["RC003"]
        assert "fast_roll" in findings[0].message

    def test_fast_roll_with_record_ok(self):
        good = dedent(
            """\
            from repro.array.roll import fast_roll

            def drift(state, session):
                raw = state.data
                out = fast_roll(raw, 1)
                session.record_comm(pattern, bytes_network=8)
                return out
            """
        )
        assert lint_source(good, "fix.py") == []

    def test_untainted_concatenate_not_flagged(self):
        neutral = dedent(
            """\
            import numpy as np

            def pack(parts):
                return np.concatenate(parts)
            """
        )
        assert lint_source(neutral, "fix.py") == []


# ----------------------------------------------------------------------
# Interprocedural mode: taint flows through helpers
# ----------------------------------------------------------------------
class TestInterprocedural:
    HELPER_COMPUTES = dedent(
        """\
        def square(arr):
            return arr * arr

        def run(state, session):
            raw = state.data
            return square(raw)
        """
    )

    def test_uncharged_helper_charged_to_caller(self):
        flat = lint_source(self.HELPER_COMPUTES, "fix.py")
        assert flat == []  # per-function taint stops at the call
        deep = lint_source(
            self.HELPER_COMPUTES, "fix.py", interprocedural=True
        )
        assert codes(deep) == ["RC001"]
        f = deep[0]
        assert f.symbol == "run"
        assert f.line == 6  # the call site, not the helper body
        assert "square" in f.message

    def test_charging_helper_silences(self):
        good = dedent(
            """\
            def scale(arr, session):
                out = arr * 2.0
                session.charge_elementwise(out.size)
                return out

            def run(state, session):
                raw = state.data
                return scale(raw, session)
            """
        )
        assert lint_source(good, "fix.py", interprocedural=True) == []

    def test_callee_charge_extends_caller_scope(self):
        # the caller computes but a helper in the chain charges: the
        # per-function rule would flag it, the graph must not
        src = dedent(
            """\
            def commit(session, n):
                session.charge_elementwise(n)

            def run(state, session):
                raw = state.data
                out = raw * 2.0
                commit(session, out.size)
                return out
            """
        )
        assert codes(lint_source(src, "fix.py")) == ["RC001"]
        assert lint_source(src, "fix.py", interprocedural=True) == []

    def test_special_kind_propagates_as_rc002(self):
        src = dedent(
            """\
            import numpy as np

            def rms(arr):
                return np.sqrt(arr)

            def run(state, session):
                raw = state.data
                r = rms(raw)
                session.charge_elementwise(r.size)
                return r
            """
        )
        deep = lint_source(src, "fix.py", interprocedural=True)
        assert "RC002" in codes(deep)
        assert any("SQRT" in f.message for f in deep)

    def test_movement_helper_propagates_as_rc003(self):
        src = dedent(
            """\
            import numpy as np

            def rotate(arr):
                return np.roll(arr, 1)

            def run(state, session):
                raw = state.data
                session.charge_elementwise(raw.size)
                return rotate(raw)
            """
        )
        deep = lint_source(src, "fix.py", interprocedural=True)
        assert "RC003" in codes(deep)

    def test_recording_movement_helper_ok(self):
        src = dedent(
            """\
            import numpy as np

            def rotate(arr, session):
                out = np.roll(arr, 1)
                session.record_comm(pattern, bytes_network=8)
                return out

            def run(state, session):
                raw = state.data
                session.charge_elementwise(raw.size)
                return rotate(raw, session)
            """
        )
        assert lint_source(src, "fix.py", interprocedural=True) == []

    def test_reference_chain_stays_exempt(self):
        src = dedent(
            """\
            def square(arr):
                return arr * arr

            def reference_step(arr):
                return square(arr)

            def run(state, session):
                ref = reference_step(state.data)
                return ref
            """
        )
        assert lint_source(src, "fix.py", interprocedural=True) == []


# ----------------------------------------------------------------------
# --changed: partial reporting over the full graph
# ----------------------------------------------------------------------
class TestChangedReporting:
    def test_report_paths_filters_after_baseline(self, tmp_path):
        (tmp_path / "a.py").write_text(TestRC001.BAD)
        (tmp_path / "b.py").write_text(TestRC001.BAD)
        baseline = Baseline(suppressions=[
            Suppression(
                code="RC001", path="a.py", symbol="leaky",
                reason="known",
            ),
            Suppression(
                code="RC001", path="gone.py", symbol="x",
                reason="stale",
            ),
        ])
        full = lint_paths([tmp_path], baseline=baseline, root=tmp_path)
        assert [f.path for f in full.active] == ["b.py"]
        assert len(full.unused_suppressions) == 1

        partial = lint_paths(
            [tmp_path], baseline=baseline, root=tmp_path,
            report_paths=["b.py"],
        )
        assert [f.path for f in partial.active] == ["b.py"]
        assert partial.suppressed == []
        # a partial report never judges baseline staleness
        assert partial.unused_suppressions == []

    def test_changed_file_outside_findings_reports_clean(self, tmp_path):
        (tmp_path / "bad.py").write_text(TestRC001.BAD)
        (tmp_path / "clean.py").write_text("def ok():\n    pass\n")
        partial = lint_paths(
            [tmp_path], baseline=Baseline(suppressions=[]),
            root=tmp_path, report_paths=["clean.py"],
        )
        assert partial.ok
        assert partial.active == []

    def test_graph_spans_beyond_report_scope(self, tmp_path):
        # the finding in changed.py only exists because the full graph
        # saw helper.py: --changed must not shrink the analysis scope
        (tmp_path / "helper.py").write_text(dedent(
            """\
            def square(arr):
                return arr * arr
            """
        ))
        (tmp_path / "changed.py").write_text(dedent(
            """\
            from helper import square

            def run(state, session):
                raw = state.data
                return square(raw)
            """
        ))
        partial = lint_paths(
            [tmp_path], baseline=Baseline(suppressions=[]),
            root=tmp_path, report_paths=["changed.py"],
        )
        assert codes(partial.active) == ["RC001"]
        assert partial.active[0].path == "changed.py"
