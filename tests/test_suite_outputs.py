"""Tests for the DPF-style output-file writer and registry consistency."""

import pytest

from repro.suite import REGISTRY, run_benchmark
from repro.suite.outputs import render_output, write_outputs


class TestOutputs:
    def test_render_contains_metrics(self, session):
        rep = run_benchmark("diff-3d", session, nx=8, steps=2)
        text = render_output(rep, session.machine.describe())
        assert "busy time" in text
        assert "elapsed floprate" in text
        assert "verification observables" in text
        assert "CM-5/32" in text

    def test_write_outputs_files(self, tmp_path, session_factory):
        reports = write_outputs(
            tmp_path,
            session_factory,
            names=["gmo", "diff-3d"],
            params={
                "gmo": {"ns": 64, "ntr": 8},
                "diff-3d": {"nx": 8, "steps": 2},
            },
        )
        assert set(reports) == {"gmo", "diff-3d"}
        assert (tmp_path / "gmo.out").exists()
        assert (tmp_path / "diff-3d.out").exists()
        csv_text = (tmp_path / "suite.csv").read_text()
        assert "gmo" in csv_text and "diff-3d" in csv_text
        body = (tmp_path / "diff-3d.out").read_text()
        assert "communication profile" in body
        assert "stencil" in body


class TestRegistryConsistency:
    """The registry metadata must match what the benchmarks report."""

    SMALL = {
        "boson": {"nx": 6, "nt": 4, "sweeps": 2},
        "diff-2d": {"nx": 16, "steps": 2},
        "diff-3d": {"nx": 8, "steps": 2},
        "ellip-2d": {"nx": 8},
        "fermion": {"sites": 8, "n": 4, "sweeps": 2},
        "gmo": {"ns": 64, "ntr": 8},
        "mdcell": {"nc": 3, "steps": 1},
        "pic-gather-scatter": {"nx": 8, "n_p": 32, "steps": 1},
        "qcd-kernel": {"nx": 2, "iterations": 1},
        "qptransport": {"iterations": 4},
        "rp": {"nx": 4},
        "step4": {"nx": 8, "steps": 1},
    }

    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_local_access_matches_registry(self, session_factory, name):
        rep = run_benchmark(name, session_factory(), **self.SMALL[name])
        assert rep.local_access is REGISTRY[name].local_access, name


class TestDocgen:
    def test_generated_reference_in_sync(self):
        """docs/BENCHMARKS.md must match a fresh generation."""
        import pathlib

        from repro.suite.docgen import generate

        committed = (
            pathlib.Path(__file__).parent.parent / "docs" / "BENCHMARKS.md"
        ).read_text()
        assert committed == generate()

    def test_reference_covers_all_benchmarks(self):
        from repro.suite.docgen import generate

        text = generate()
        for name in REGISTRY:
            assert f"### `{name}`" in text

    def test_reference_mentions_paper_tables(self):
        from repro.suite.docgen import generate

        text = generate()
        for marker in ("Table 1", "Tables 2/5", "Tables 3/7", "Table 8"):
            assert marker in text
