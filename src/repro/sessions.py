"""One place to open execution sessions.

Every consumer — examples, the benchmark harness, the CLI — used to
spell ``Session(cm5(32))`` by hand, which made it easy for the
``detail_events`` default to drift between them.  These helpers make
the two modes explicit:

* :func:`perf_session` — the aggregate-only fast path (the default):
  communication is accounted in per-pattern accumulators, no per-event
  list is kept.  Metrics are identical to trace mode; use this for
  timing runs and table generation driven by :class:`PerfReport`.
* :func:`trace_session` — trace mode (``detail_events=True``): every
  :class:`~repro.metrics.recorder.CommEvent` is retained, as needed by
  :mod:`repro.analysis.trace` and per-event inspection.

:func:`open_session` is the common underlying constructor.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.machine.presets import resolve_machine
from repro.machine.session import Session
from repro.versions import VersionTier

__all__ = ["open_session", "perf_session", "trace_session"]


def open_session(
    machine: str = "cm5",
    nodes: Optional[int] = None,
    *,
    tier: Union[VersionTier, str] = VersionTier.BASIC,
    detail_events: bool = False,
) -> Session:
    """Build a session on a named machine preset.

    ``nodes=None`` takes the preset's default size.  ``tier`` accepts
    the enum or its string value.
    """
    return Session(
        resolve_machine(machine, nodes),
        tier=VersionTier(tier),
        detail_events=detail_events,
    )


def perf_session(
    machine: str = "cm5",
    nodes: Optional[int] = None,
    *,
    tier: Union[VersionTier, str] = VersionTier.BASIC,
) -> Session:
    """Fast-path session: aggregate comm accounting, no event lists."""
    return open_session(machine, nodes, tier=tier, detail_events=False)


def trace_session(
    machine: str = "cm5",
    nodes: Optional[int] = None,
    *,
    tier: Union[VersionTier, str] = VersionTier.BASIC,
) -> Session:
    """Trace-mode session: keeps every CommEvent for analysis tools."""
    return open_session(machine, nodes, tier=tier, detail_events=True)
