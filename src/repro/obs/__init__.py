"""repro.obs — span tracing and profiling over the simulated clock.

The observability spine of the reproduction (see docs/OBSERVABILITY.md):

* :class:`SpanCollector` (:mod:`repro.obs.spans`) — attaches to a
  session as a read-only observer and rebuilds the run as hierarchical
  spans and timeline slices on the simulated clock, with totals that
  reconcile bit-exactly against the run's
  :class:`~repro.metrics.report.PerfReport`;
* :mod:`repro.obs.chrome` — Chrome trace-event JSON export
  (Perfetto-loadable), from live collectors or stored reports;
* :mod:`repro.obs.profile` — text profile reports and folded-stack
  flamegraphs;
* :mod:`repro.obs.stream` — JSONL live event stream for engine runs;
* :mod:`repro.obs.telemetry` — wall-clock metrics registry (counters,
  gauges, histograms) for the host runtime around the simulation, with
  :mod:`repro.obs.expo` (Prometheus text exposition: renderer + strict
  parser), :mod:`repro.obs.slo` (declarative objectives evaluated from
  a scrape) and :mod:`repro.obs.dash` (live terminal dashboard).  See
  docs/TELEMETRY.md.

Attaching a collector never changes any reported metric; with no
collector attached, the hooks cost one ``is not None`` check.  The
telemetry registry observes wall-clock behaviour only and is likewise
benchmark-metrics-invisible: canonical report JSON is byte-identical
with telemetry enabled or disabled.
"""

from repro.obs.chrome import (
    chrome_trace,
    chrome_trace_from_report,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.profile import (
    folded_stacks,
    profile_lines,
    render_profile,
    write_folded,
)
from repro.obs.spans import (
    SPAN_SUMMARY_SCHEMA,
    RegionMirror,
    Slice,
    Span,
    SpanCollector,
)
from repro.obs.stream import (
    STREAM_EVENT_KINDS,
    EventFanout,
    EventStream,
    StreamRead,
    Subscription,
    read_stream,
    read_stream_partial,
    validate_stream,
)
from repro.obs.telemetry import (
    LATENCY_BUCKETS_S,
    MetricsRegistry,
    get_registry,
)

__all__ = [
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "get_registry",
    "SPAN_SUMMARY_SCHEMA",
    "STREAM_EVENT_KINDS",
    "EventFanout",
    "EventStream",
    "StreamRead",
    "Subscription",
    "RegionMirror",
    "Slice",
    "Span",
    "SpanCollector",
    "chrome_trace",
    "chrome_trace_from_report",
    "folded_stacks",
    "profile_lines",
    "read_stream",
    "read_stream_partial",
    "render_profile",
    "validate_stream",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_folded",
]
