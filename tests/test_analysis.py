"""Tests for the analysis package: ratios, comparisons, traces."""

import json

import pytest

from repro import Session, cm5
from repro.analysis.compare import compare_environments, find_crossover
from repro.analysis.ratios import comm_to_comp_ratio, grain_size, pattern_mix
from repro.analysis.trace import comm_trace, trace_summary, trace_to_json
from repro.metrics.patterns import CommPattern
from repro.suite import run_benchmark
from repro.versions import VersionTier


class TestRatios:
    def test_grain_size_matches_ops_per_point(self, session):
        rep = run_benchmark("diff-3d", session, nx=10, steps=4)
        assert grain_size(rep) == rep.ops_per_point

    def test_summary_fields(self, session):
        rep = run_benchmark("ellip-2d", session, nx=10)
        summary = comm_to_comp_ratio(rep)
        assert summary.benchmark == "ellip-2d"
        assert summary.comm_events_per_iteration == pytest.approx(7.0, abs=0.2)
        assert summary.flops_per_comm_event > 0
        assert 0.0 < summary.busy_fraction <= 1.0

    def test_no_comm_benchmark_infinite_intensity(self, session):
        rep = run_benchmark("gmo", session, ns=64, ntr=8)
        summary = comm_to_comp_ratio(rep)
        assert summary.flops_per_comm_event == float("inf")
        assert summary.classify() == "compute-bound"

    def test_classification_labels(self, session):
        rep = run_benchmark("ellip-2d", session, nx=8)
        label = comm_to_comp_ratio(rep).classify()
        assert label in ("compute-bound", "latency-bound", "bandwidth-bound")

    def test_pattern_mix_sums_to_one(self, session):
        rep = run_benchmark("qptransport", session, iterations=4)
        mix = pattern_mix(rep)
        assert sum(mix.values()) == pytest.approx(1.0)
        assert mix[CommPattern.SCATTER] > mix[CommPattern.SORT]

    def test_pattern_mix_empty_for_no_comm(self, session):
        rep = run_benchmark("fermion", session, sites=8, n=4, sweeps=1)
        assert pattern_mix(rep) == {}


class TestCompare:
    BENCHES = {
        "diff-3d": {"nx": 10, "steps": 3},
        "gmo": {"ns": 64, "ntr": 8},
    }

    def test_compare_environments(self):
        cmp = compare_environments(
            ("cm5-basic", lambda: Session(cm5(32))),
            ("cm5-cmssl", lambda: Session(cm5(32), tier=VersionTier.CMSSL)),
            self.BENCHES,
        )
        assert set(cmp.elapsed_a) == set(self.BENCHES)
        # CMSSL-quality code beats basic on every compute benchmark.
        for bench in self.BENCHES:
            assert cmp.speedup(bench) > 1.0
        assert cmp.geomean_speedup() > 1.0
        assert set(cmp.winners().values()) == {"cm5-cmssl"}

    def test_summary_text(self):
        cmp = compare_environments(
            ("a", lambda: Session(cm5(8))),
            ("b", lambda: Session(cm5(64))),
            {"diff-3d": {"nx": 10, "steps": 2}},
        )
        text = cmp.summary()
        assert "a vs b" in text
        assert "geomean" in text

    def test_find_crossover_detects_flip(self):
        """A low-latency small machine beats a big machine on tiny
        problems; the big machine overtakes as sizes grow."""
        def small_fast():
            return Session(
                cm5(4).with_overrides(
                    network=cm5(4).network.with_overrides(
                        latency_news=1e-6,
                        latency_tree=1e-6,
                        latency_router=2e-6,
                    )
                )
            )

        def big():
            return Session(cm5(256))
        crossover = find_crossover(
            "ellip-2d", small_fast, big, "nx", [8, 32, 64],
        )
        assert crossover == 64

    def test_find_crossover_none_when_no_flip(self):
        def slow():
            return Session(cm5(2))

        def fast():
            return Session(cm5(2))
        result = find_crossover(
            "diff-3d", fast, slow, "nx", [8], fixed_params={"steps": 2}
        )
        assert result is None


class TestTrace:
    def test_trace_events(self, trace_session):
        session = trace_session
        run_benchmark("ellip-2d", session, nx=8)
        events = comm_trace(session.recorder)
        assert events
        patterns = {e.pattern for e in events}
        assert {"cshift", "reduction"} <= patterns
        assert all(e.region.startswith("benchmark") for e in events)

    def test_trace_region_paths(self, trace_session):
        session = trace_session
        run_benchmark("diff-3d", session, nx=8, steps=2)
        events = comm_trace(session.recorder)
        assert any("main_loop" in e.region for e in events)

    def test_trace_json(self, trace_session):
        session = trace_session
        run_benchmark("fft", session, n=64)
        data = json.loads(trace_to_json(session.recorder))
        assert isinstance(data, list)
        assert data[0]["pattern"] in ("cshift", "aapc", "butterfly")

    def test_trace_summary_table(self, trace_session):
        session = trace_session
        run_benchmark("qptransport", session, iterations=4)
        text = trace_summary(session.recorder)
        assert "scatter" in text
        assert "sort" in text
        assert "count" in text


class TestBisectionBandwidth:
    """Paper §2: transpose 'may be used to confirm advertised
    bisection bandwidths' — the sweep must recover the model value."""

    def test_recovers_cm5_bandwidth(self):
        from repro.analysis.bandwidth import measure_bisection_bandwidth

        machine = cm5(32)
        fit = measure_bisection_bandwidth(machine)
        assert fit.advertised_ratio(machine) == pytest.approx(1.0, rel=0.05)

    def test_detects_thin_bisection(self):
        from repro.analysis.bandwidth import measure_bisection_bandwidth

        full = cm5(32)
        thin = full.with_overrides(
            network=full.network.with_overrides(bisection_fraction=0.25)
        )
        fit_full = measure_bisection_bandwidth(full)
        fit_thin = measure_bisection_bandwidth(thin)
        assert fit_thin.effective_bandwidth == pytest.approx(
            0.25 * fit_full.effective_bandwidth, rel=0.05
        )

    def test_latency_fit_nonnegative(self):
        from repro.analysis.bandwidth import measure_bisection_bandwidth

        fit = measure_bisection_bandwidth(cm5(16))
        assert fit.latency >= 0.0
        assert len(fit.sizes) == len(fit.elapsed) == len(fit.bytes_moved)
