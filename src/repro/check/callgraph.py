"""Module-level call graph with per-function summaries.

PRs 1-8 grew helpers everywhere — collective primitives, fused
kernels, engine plumbing — and the per-function linter's taint model
deliberately stopped at call boundaries ("helpers are charged by
their callers").  That convention is only sound if *somebody* in the
call chain charges; this module is how the linter checks the chain.

The graph is built once per lint run over every file in scope:

* each module is parsed and every function scanned twice with
  :func:`repro.check.rules.scan_function` — once normally and once
  with all parameters pre-tainted, so we learn whether a helper
  computes on (or moves) what callers hand it;
* call edges are resolved through imports (``from x import f``,
  ``import x as a``), same-module names, ``self.method`` dispatch,
  constructor-inferred attribute/local types (``self.pool =
  WorkerPool(...)`` makes ``self.pool.restart()`` resolve), and a
  restricted unique-method-name fallback for everything else;
* function *references* handed to thread registrars
  (``Thread(target=f)``, ``executor.submit(f)``,
  ``loop.run_in_executor(None, f)``, ``fanout.subscribe(f)``) are
  kept separately as thread entries — they are not call edges, because
  the registering function never runs them in its own context;
* a fixpoint pass propagates monotone summaries (charges emitted,
  FLOP kinds, comm recorded, param-compute/param-movement) along call
  edges until stable.

Consumers: :mod:`repro.check.lint` annotates
:class:`~repro.check.rules.FunctionFacts` with the transitive fields
so RC001/RC002/RC003 see through calls; :mod:`repro.check.concurrency`
and :mod:`repro.check.inventory` run their own analyses over the same
edges.  See docs/CHECKS.md ("The call graph").
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.check.rules import (
    SPECIAL_KINDS,
    FunctionFacts,
    RawCall,
    _Site,
    scan_function,
)

#: Method names never resolved through the unique-name fallback: they
#: collide with builtin container/string/file/concurrency vocabulary,
#: and a wild edge into (say) a store's ``append`` would smear its
#: blocking evidence over every ``list.append`` in an async function.
AMBIGUOUS_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear", "index",
    "count", "sort", "reverse", "copy", "get", "setdefault", "update",
    "keys", "values", "items", "add", "discard", "union", "join",
    "split", "rsplit", "strip", "lstrip", "rstrip", "startswith",
    "endswith", "format", "replace", "encode", "decode", "lower",
    "upper", "read", "write", "close", "flush", "seek", "tell",
    "open", "send", "put", "get_nowait", "put_nowait", "result",
    "set", "wait", "acquire", "release", "submit", "cancel", "done",
    "run", "start", "stop", "shutdown", "next", "reset",
    # numpy ndarray vocabulary: ``x.sum()`` on a plain array must not
    # resolve to a same-named DistArray intrinsic (a wild edge here
    # drags collective record_comm literals into app closures)
    "sum", "mean", "max", "min", "std", "var", "prod", "all", "any",
    "astype", "reshape", "transpose", "dot", "cumsum", "round",
    "clip", "fill", "item", "tolist", "flatten", "ravel", "squeeze",
    "argmax", "argmin", "take", "conj", "trace", "nonzero",
}

#: Registrars whose function-valued argument runs on *another thread*
#: (or process): maps registrar name -> how to find the callable.
THREAD_REGISTRARS = {
    "Thread": "target_kw",       # threading.Thread(target=f)
    "submit": "arg0",            # executor.submit(f, ...)
    "map": "arg0",               # executor.map(f, ...)
    "run_in_executor": "arg1",   # loop.run_in_executor(None, f, ...)
    "to_thread": "arg0",         # asyncio.to_thread(f, ...)
    "add_done_callback": "arg0",  # future.add_done_callback(f)
    "subscribe": "arg0",         # EventFanout.subscribe(f)
}

#: Registrars whose callable runs *on the event loop*: neither a call
#: edge nor a thread entry (this is the sanctioned cross-thread idiom
#: RC102 endorses).
LOOP_REGISTRARS = {"call_soon_threadsafe", "call_soon", "call_later",
                   "call_at"}


@dataclass
class ResolvedCall:
    """One call edge out of a function."""

    target: str          # callee qualname ("module:symbol")
    line: int
    col: int
    args_tainted: bool   # under the base scan's taint
    name: str            # callee short name, for messages


@dataclass
class ThreadTarget:
    """A function reference registered to run on another thread."""

    target: Optional[str]            # resolved qualname, if any
    lambda_node: Optional[ast.Lambda]
    line: int
    col: int
    registrar: str


@dataclass
class ClassInfo:
    """One class definition: methods, bases and inferred attr types."""

    name: str
    module: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Set[str] = field(default_factory=set)
    #: self.<attr> -> class qualname, inferred from constructor calls
    #: and annotations in any method body
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class FunctionNode:
    """One function (or the module body) in the graph."""

    qualname: str
    module: str
    symbol: str
    path: str
    node: ast.AST
    is_async: bool
    class_name: Optional[str]
    params: Tuple[str, ...]
    facts: FunctionFacts
    param_facts: FunctionFacts
    resolved: List[ResolvedCall] = field(default_factory=list)
    thread_targets: List[ThreadTarget] = field(default_factory=list)


@dataclass
class ModuleInfo:
    """Per-module symbol tables."""

    name: str
    path: str
    tree: ast.Module
    functions: Dict[str, FunctionNode] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: alias -> module name  (``import x.y as a``)
    imports: Dict[str, str] = field(default_factory=dict)
    #: name -> (module, original name)  (``from x import y [as z]``)
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)


@dataclass
class Summary:
    """Transitive facts for one function, after the fixpoint."""

    charges_anything: bool = False
    charges_flops: bool = False
    charged_kinds: Set[str] = field(default_factory=set)
    records_comm: bool = False
    computes_on_params: bool = False
    moves_params: bool = False
    #: 4x/8x kinds the function executes on its parameters uncharged
    param_kinds: Set[str] = field(default_factory=set)


def module_name_for(path: str) -> str:
    """Dotted module name for a source path (``src/`` roots stripped)."""
    parts = path.replace("\\", "/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    return ".".join(p for p in parts if p) or path


def _iter_defs(tree: ast.Module):
    """Yield ``(symbol, class_name, node)`` for module body and defs."""
    yield "<module>", None, tree

    def walk(body, prefix: str, class_name: Optional[str]):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                symbol = f"{prefix}{node.name}"
                yield symbol, class_name, node
                yield from walk(node.body, f"{symbol}.", None)
            elif isinstance(node, ast.ClassDef):
                yield from walk(
                    node.body, f"{prefix}{node.name}.", node.name
                )

    yield from walk(tree.body, "", None)


def _param_names(node: ast.AST) -> Tuple[str, ...]:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return ()
    a = node.args
    names = [p.arg for p in a.posonlyargs + a.args + a.kwonlyargs]
    if a.vararg:
        names.append(a.vararg.arg)
    if a.kwarg:
        names.append(a.kwarg.arg)
    return tuple(n for n in names if n not in ("self", "cls"))


class CallGraph:
    """The project-wide graph.  Build with :meth:`build`."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionNode] = {}
        self.summaries: Dict[str, Summary] = {}
        #: method name -> qualnames defining it (fallback dispatch)
        self.method_index: Dict[str, List[str]] = {}
        #: class qualname ("module:Class") -> ClassInfo
        self.class_index: Dict[str, ClassInfo] = {}

    # -- construction ---------------------------------------------------
    @classmethod
    def build(
        cls,
        units: Sequence[Tuple[str, ast.Module]],
    ) -> "CallGraph":
        """Build from ``(shown_path, parsed_tree)`` units."""
        graph = cls()
        for path, tree in units:
            graph._add_module(path, tree)
        graph._resolve_attr_types()
        for fn in graph.functions.values():
            graph._resolve_calls(fn)
        graph._fixpoint()
        return graph

    def _add_module(self, path: str, tree: ast.Module) -> None:
        mod = ModuleInfo(name=module_name_for(path), path=path, tree=tree)
        if mod.name in self.modules:
            # duplicate module name (e.g. two fixture files): last wins
            # for import resolution, both keep their function nodes
            pass
        self.modules[mod.name] = mod
        for stmt in ast.walk(tree):
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    mod.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(stmt, ast.ImportFrom):
                base = stmt.module or ""
                if stmt.level:
                    parts = mod.name.split(".")
                    parts = parts[: len(parts) - stmt.level]
                    base = ".".join(parts + ([stmt.module]
                                             if stmt.module else []))
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    mod.from_imports[alias.asname or alias.name] = (
                        base, alias.name
                    )
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                info = ClassInfo(
                    name=node.name, module=mod.name, node=node,
                    bases=[ast.unparse(b) for b in node.bases],
                )
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        info.methods.add(item.name)
                mod.classes[node.name] = info
                self.class_index[f"{mod.name}:{node.name}"] = info
        for symbol, class_name, node in _iter_defs(tree):
            params = _param_names(node)
            facts = scan_function(node, symbol)
            param_facts = (
                scan_function(node, symbol, params=params)
                if params
                else facts
            )
            qualname = f"{mod.name}:{symbol}"
            fn = FunctionNode(
                qualname=qualname,
                module=mod.name,
                symbol=symbol,
                path=path,
                node=node,
                is_async=isinstance(node, ast.AsyncFunctionDef),
                class_name=class_name,
                params=params,
                facts=facts,
                param_facts=param_facts,
            )
            mod.functions[symbol] = fn
            self.functions[qualname] = fn
            if class_name is not None and symbol.count(".") == 1:
                name = symbol.split(".", 1)[1]
                self.method_index.setdefault(name, []).append(qualname)

    # -- type inference -------------------------------------------------
    def _resolve_class_name(
        self, mod: ModuleInfo, expr: ast.expr
    ) -> Optional[str]:
        """Class qualname for a constructor expression, if known."""
        if isinstance(expr, ast.Name):
            if expr.id in mod.classes:
                return f"{mod.name}:{expr.id}"
            tgt = mod.from_imports.get(expr.id)
            if tgt:
                m2, orig = tgt
                m2info = self.modules.get(m2)
                if m2info and orig in m2info.classes:
                    return f"{m2}:{orig}"
        elif isinstance(expr, ast.Attribute) and isinstance(
            expr.value, ast.Name
        ):
            m2 = mod.imports.get(expr.value.id)
            if m2:
                m2info = self.modules.get(m2)
                if m2info and expr.attr in m2info.classes:
                    return f"{m2}:{expr.attr}"
        return None

    def _resolve_attr_types(self) -> None:
        """Infer ``self.<attr>`` classes from constructor assignments."""
        for mod in self.modules.values():
            for cinfo in mod.classes.values():
                for item in ast.walk(cinfo.node):
                    target: Optional[str] = None
                    value: Optional[ast.expr] = None
                    if isinstance(item, ast.Assign) and len(
                        item.targets
                    ) == 1:
                        t = item.targets[0]
                        if (
                            isinstance(t, ast.Attribute)
                            and isinstance(t.value, ast.Name)
                            and t.value.id == "self"
                        ):
                            target, value = t.attr, item.value
                    elif isinstance(item, ast.AnnAssign):
                        t = item.target
                        if (
                            isinstance(t, ast.Attribute)
                            and isinstance(t.value, ast.Name)
                            and t.value.id == "self"
                        ):
                            target = t.attr
                            ann = self._resolve_class_name(
                                mod, item.annotation
                            )
                            if ann:
                                cinfo.attr_types.setdefault(target, ann)
                            value = item.value
                    if target is None or value is None:
                        continue
                    if isinstance(value, ast.Call):
                        qn = self._resolve_class_name(mod, value.func)
                        if qn:
                            cinfo.attr_types.setdefault(target, qn)

    def _local_types(self, fn: FunctionNode) -> Dict[str, str]:
        """``var -> class qualname`` for constructor-assigned locals."""
        mod = self.modules[fn.module]
        out: Dict[str, str] = {}
        body = getattr(fn.node, "body", [])
        for stmt in body:
            for item in ast.walk(stmt):
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if (
                    isinstance(item, ast.Assign)
                    and len(item.targets) == 1
                    and isinstance(item.targets[0], ast.Name)
                    and isinstance(item.value, ast.Call)
                ):
                    qn = self._resolve_class_name(mod, item.value.func)
                    if qn:
                        out[item.targets[0].id] = qn
        return out

    # -- call resolution ------------------------------------------------
    def _method_in_class(
        self, class_qn: str, name: str, _depth: int = 0
    ) -> Optional[str]:
        """Resolve a method through the class and its known bases."""
        if _depth > 8:
            return None
        cinfo = self.class_index.get(class_qn)
        if cinfo is None:
            return None
        if name in cinfo.methods:
            return f"{cinfo.module}:{cinfo.name}.{name}"
        mod = self.modules.get(cinfo.module)
        for base in cinfo.bases:
            if mod is None:
                break
            base_qn = self._resolve_class_name(
                mod, ast.parse(base, mode="eval").body
            )
            if base_qn:
                hit = self._method_in_class(base_qn, name, _depth + 1)
                if hit:
                    return hit
        return None

    def resolve_ref(
        self,
        fn: FunctionNode,
        expr: ast.expr,
        local_types: Optional[Dict[str, str]] = None,
    ) -> Optional[str]:
        """Resolve a function/method reference expression to a qualname."""
        mod = self.modules[fn.module]
        if isinstance(expr, ast.Name):
            name = expr.id
            sibling = f"{fn.symbol}.{name}"
            if sibling in mod.functions:
                return mod.functions[sibling].qualname
            if name in mod.functions:
                return mod.functions[name].qualname
            tgt = mod.from_imports.get(name)
            if tgt:
                m2, orig = tgt
                m2info = self.modules.get(m2)
                if m2info and orig in m2info.functions:
                    return m2info.functions[orig].qualname
            return None
        if not isinstance(expr, ast.Attribute):
            return None
        name = expr.attr
        value = expr.value
        if isinstance(value, ast.Name):
            recv = value.id
            if recv in ("self", "cls") and fn.class_name:
                hit = self._method_in_class(
                    f"{fn.module}:{fn.class_name}", name
                )
                if hit:
                    return hit
            m2 = mod.imports.get(recv)
            if m2:
                m2info = self.modules.get(m2)
                if m2info and name in m2info.functions:
                    return m2info.functions[name].qualname
                return None
            tgt = mod.from_imports.get(recv)
            if tgt and tgt[0]:
                # ``from repro import comm; comm.cshift(...)``
                m2info = self.modules.get(f"{tgt[0]}.{tgt[1]}")
                if m2info and name in m2info.functions:
                    return m2info.functions[name].qualname
            if local_types and recv in local_types:
                return self._method_in_class(local_types[recv], name)
        elif (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and fn.class_name
        ):
            cinfo = self.class_index.get(f"{fn.module}:{fn.class_name}")
            if cinfo:
                attr_qn = cinfo.attr_types.get(value.attr)
                if attr_qn:
                    return self._method_in_class(attr_qn, name)
        # restricted dynamic-dispatch fallback: unique method name
        if (
            name not in AMBIGUOUS_METHODS
            and not name.startswith("__")
            and len(self.method_index.get(name, ())) == 1
        ):
            return self.method_index[name][0]
        return None

    def _callable_arg(self, call: ast.Call, how: str) -> Optional[ast.expr]:
        if how == "target_kw":
            for kw in call.keywords:
                if kw.arg == "target":
                    return kw.value
            return None
        idx = {"arg0": 0, "arg1": 1}[how]
        if len(call.args) > idx:
            return call.args[idx]
        return None

    def _resolve_calls(self, fn: FunctionNode) -> None:
        local_types = self._local_types(fn)
        for rc in fn.facts.calls:
            assert isinstance(rc, RawCall)
            if rc.name in LOOP_REGISTRARS:
                continue
            if rc.name in THREAD_REGISTRARS and not (
                rc.name in ("submit", "map") and rc.recv is None
            ):
                # builtin map()/bare submit() are same-thread; the
                # method spellings hand their callable to a worker
                arg = self._callable_arg(
                    rc.call, THREAD_REGISTRARS[rc.name]
                )
                if isinstance(arg, ast.Lambda):
                    fn.thread_targets.append(ThreadTarget(
                        None, arg, rc.line, rc.col, rc.name or ""
                    ))
                elif isinstance(arg, (ast.Name, ast.Attribute)):
                    tq = self.resolve_ref(fn, arg, local_types)
                    if tq:
                        fn.thread_targets.append(ThreadTarget(
                            tq, None, rc.line, rc.col, rc.name or ""
                        ))
                # fall through: the registrar call itself may be a real
                # method in the graph (e.g. WorkerPool.submit) — only
                # the callable *argument* escapes to another thread
            tq = self.resolve_ref(fn, rc.func, local_types)
            if tq and tq != fn.qualname:
                fn.resolved.append(ResolvedCall(
                    tq, rc.line, rc.col, rc.args_tainted, rc.name or ""
                ))

    # -- summaries ------------------------------------------------------
    @staticmethod
    def _param_only_sites(fn: FunctionNode) -> List[_Site]:
        """Compute sites present only under the param-tainted scan."""
        base = {(s.line, s.col) for s in fn.facts.compute_sites}
        return [
            s for s in fn.param_facts.compute_sites
            if (s.line, s.col) not in base
        ]

    @staticmethod
    def _param_only_moves(fn: FunctionNode) -> List[_Site]:
        base = {(s.line, s.col) for s in fn.facts.movement_sites}
        return [
            s for s in fn.param_facts.movement_sites
            if (s.line, s.col) not in base
        ]

    def _fixpoint(self) -> None:
        from repro.check.rules import CHARGING_WRAPPERS

        flops_wrappers = CHARGING_WRAPPERS - {
            "cshift", "eoshift", "stencil_shifts"
        }
        escaping: Dict[str, List[str]] = {}
        for qn, fn in self.functions.items():
            facts = fn.facts
            s = Summary(
                charges_anything=(
                    bool(facts.charge_calls)
                    or bool(facts.wrapper_calls)
                    or facts.has_record_comm
                ),
                charges_flops=(
                    bool(facts.charge_calls)
                    or bool(facts.wrapper_calls & flops_wrappers)
                ),
                charged_kinds=set(facts.charged_kinds),
                records_comm=(
                    facts.has_record_comm or bool(facts.wrapper_calls)
                ),
            )
            # reference implementations are verification baselines:
            # deliberately uncharged, and callers comparing against
            # them are not hiding work (the same exemption the
            # per-function taint model grants their bodies)
            is_reference = "reference" in fn.symbol.lower()
            p_sites = [] if is_reference else self._param_only_sites(fn)
            s.computes_on_params = bool(p_sites)
            s.param_kinds = {
                site.kind for site in p_sites
                if site.kind in SPECIAL_KINDS
            }
            s.moves_params = (
                not is_reference and bool(self._param_only_moves(fn))
            )
            self.summaries[qn] = s
            # calls whose arguments are tainted only because the params
            # were: the conduits for param-compute transitivity
            base_tainted = {
                (c.line, c.col) for c in facts.calls if c.args_tainted
            }
            conduits: List[str] = []
            for rc2 in fn.param_facts.calls:
                if not rc2.args_tainted:
                    continue
                if (rc2.line, rc2.col) in base_tainted:
                    continue
                tq = next(
                    (
                        r.target for r in fn.resolved
                        if (r.line, r.col) == (rc2.line, rc2.col)
                    ),
                    None,
                )
                if tq:
                    conduits.append(tq)
            escaping[qn] = conduits

        for _ in range(64):
            changed = False
            for qn, fn in self.functions.items():
                s = self.summaries[qn]
                for edge in fn.resolved:
                    t = self.summaries.get(edge.target)
                    if t is None:
                        continue
                    if t.charges_anything and not s.charges_anything:
                        s.charges_anything = True
                        changed = True
                    if t.charges_flops and not s.charges_flops:
                        s.charges_flops = True
                        changed = True
                    if not t.charged_kinds <= s.charged_kinds:
                        s.charged_kinds |= t.charged_kinds
                        changed = True
                    if t.records_comm and not s.records_comm:
                        s.records_comm = True
                        changed = True
                if "reference" in fn.symbol.lower():
                    continue  # reference baselines stay exempt
                for tq in escaping[qn]:
                    t = self.summaries.get(tq)
                    if t is None:
                        continue
                    if t.computes_on_params and not s.computes_on_params:
                        s.computes_on_params = True
                        changed = True
                    if not t.param_kinds <= s.param_kinds:
                        s.param_kinds |= t.param_kinds
                        changed = True
                    if t.moves_params and not s.moves_params:
                        s.moves_params = True
                        changed = True
            if not changed:
                break

    # -- annotation (consumed by repro.check.lint) ----------------------
    def annotate(self) -> None:
        """Write transitive evidence back onto each function's facts.

        After this, the per-function rule emitters in
        :mod:`repro.check.rules` see through calls: the ``callee_*``
        flags extend each function's charge scope to its transitive
        callees, and ``call_compute_sites``/``call_movement_sites``
        carry evidence for tainted payloads handed to helpers that
        compute or move without charging.
        """
        for fn in self.functions.values():
            facts = fn.facts
            for edge in fn.resolved:
                t = self.summaries.get(edge.target)
                if t is None:
                    continue
                facts.callee_charges_anything |= t.charges_anything
                facts.callee_charges_flops |= t.charges_flops
                facts.callee_charged_kinds |= t.charged_kinds
                facts.callee_records_comm |= t.records_comm
                if not edge.args_tainted:
                    continue
                short = edge.name or edge.target.rsplit(":", 1)[-1]
                if t.computes_on_params and not t.charges_anything:
                    facts.call_compute_sites.append(_Site(
                        edge.line, edge.col, None,
                        f"call to {short}() which computes on the "
                        "handed payload without charging",
                    ))
                    for kind in sorted(t.param_kinds):
                        facts.call_compute_sites.append(_Site(
                            edge.line, edge.col, kind,
                            f"call to {short}() which executes a "
                            f"{kind} on the handed payload",
                        ))
                if t.moves_params and not t.records_comm:
                    facts.call_movement_sites.append(_Site(
                        edge.line, edge.col, None,
                        f"call to {short}() which moves the handed "
                        "payload without recording",
                    ))

    # -- convenience ----------------------------------------------------
    def callees(self, qualname: str) -> List[ResolvedCall]:
        fn = self.functions.get(qualname)
        return list(fn.resolved) if fn else []

    def summary(self, qualname: str) -> Optional[Summary]:
        return self.summaries.get(qualname)
