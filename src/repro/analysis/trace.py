"""Communication-trace export.

Flattens a recorder's region tree into a chronological event trace
(region path, pattern, bytes, busy/idle seconds) for external tooling
— the modern equivalent of the CM-5's PRISM communication profiles.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import List

from repro.metrics.recorder import MetricsRecorder, Region


@dataclass(frozen=True)
class TraceEvent:
    """One communication event with its region path."""

    region: str
    pattern: str
    bytes_network: int
    bytes_local: int
    nodes: int
    busy_time: float
    idle_time: float
    rank: int | None
    detail: str


def comm_trace(recorder: MetricsRecorder) -> List[TraceEvent]:
    """Depth-first flattening of all communication events."""
    events: List[TraceEvent] = []

    def _walk(region: Region, path: str) -> None:
        here = f"{path}/{region.name}" if path else region.name
        for e in region.comm_events:
            events.append(
                TraceEvent(
                    region=here,
                    pattern=e.pattern.value,
                    bytes_network=e.bytes_network,
                    bytes_local=e.bytes_local,
                    nodes=e.nodes,
                    busy_time=e.busy_time,
                    idle_time=e.idle_time,
                    rank=e.rank,
                    detail=e.detail,
                )
            )
        for child in region.children:
            _walk(child, here)

    _walk(recorder.root, "")
    return events


def trace_to_json(recorder: MetricsRecorder, indent: int = 2) -> str:
    """JSON document of the flattened event trace."""
    return json.dumps(
        [asdict(e) for e in comm_trace(recorder)], indent=indent
    )


def trace_summary(recorder: MetricsRecorder) -> str:
    """Aggregate the trace by pattern: count, bytes, time."""
    totals: dict = {}
    for e in comm_trace(recorder):
        entry = totals.setdefault(
            e.pattern, {"count": 0, "bytes": 0, "busy": 0.0, "idle": 0.0}
        )
        entry["count"] += 1
        entry["bytes"] += e.bytes_network
        entry["busy"] += e.busy_time
        entry["idle"] += e.idle_time
    lines = [
        f"{'pattern':18s} {'count':>7s} {'net bytes':>12s} {'busy s':>10s} {'idle s':>10s}"
    ]
    for pattern in sorted(totals):
        t = totals[pattern]
        lines.append(
            f"{pattern:18s} {t['count']:7d} {t['bytes']:12d} "
            f"{t['busy']:10.6f} {t['idle']:10.6f}"
        )
    return "\n".join(lines)
