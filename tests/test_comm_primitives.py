"""Tests for the collective primitives: shifts, spreads, reductions,
broadcasts, transposes, send/get."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Session, cm5
from repro.array import from_numpy
from repro.comm.primitives import (
    broadcast,
    cshift,
    eoshift,
    get,
    reduce_array,
    reduce_location,
    remap,
    send,
    spread,
    transpose,
)
from repro.layout.spec import Axis
from repro.metrics.patterns import CommPattern


class TestCshift:
    def test_cmf_semantics(self, session):
        """CSHIFT(A, s): result(i) = A(i + s), cyclically."""
        x = from_numpy(session, np.arange(5.0), "(:)")
        assert cshift(x, 1).np.tolist() == [1, 2, 3, 4, 0]
        assert cshift(x, -1).np.tolist() == [4, 0, 1, 2, 3]

    def test_axis_selection(self, session):
        x = from_numpy(session, np.arange(6.0).reshape(2, 3), "(:,:)")
        assert np.array_equal(cshift(x, 1, axis=0).np, np.roll(x.np, -1, 0))
        assert np.array_equal(cshift(x, 1, axis=1).np, np.roll(x.np, -1, 1))

    def test_inverse_roundtrip(self, session):
        x = from_numpy(session, np.arange(8.0), "(:)")
        assert np.array_equal(cshift(cshift(x, 3), -3).np, x.np)

    def test_records_event_with_rank(self, trace_session):
        session = trace_session
        x = from_numpy(session, np.arange(8.0), "(:)")
        cshift(x, 1)
        events = session.recorder.root.comm_events
        assert events[-1].pattern is CommPattern.CSHIFT
        assert events[-1].rank == 1

    def test_serial_axis_no_network(self, trace_session):
        session = trace_session
        x = from_numpy(session, np.arange(8.0).reshape(2, 4), "(:serial,:)")
        cshift(x, 1, axis=0)
        assert session.recorder.root.comm_events[-1].bytes_network == 0

    def test_parallel_axis_network_traffic(self, trace_session):
        session = trace_session
        x = from_numpy(session, np.arange(64.0), "(:)")
        cshift(x, 1)
        assert session.recorder.root.comm_events[-1].bytes_network > 0

    def test_bad_axis_raises(self, session):
        x = from_numpy(session, np.arange(4.0), "(:)")
        with pytest.raises(ValueError):
            cshift(x, 1, axis=2)

    @given(
        n=st.integers(2, 64),
        shift=st.integers(-100, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_roll(self, n, shift):
        session = Session(cm5(8))
        data = np.arange(float(n))
        x = from_numpy(session, data, "(:)")
        assert np.array_equal(cshift(x, shift).np, np.roll(data, -shift))


class TestEoshift:
    def test_positive_shift_fills_tail(self, session):
        x = from_numpy(session, np.arange(4.0), "(:)")
        assert eoshift(x, 1).np.tolist() == [1, 2, 3, 0]

    def test_negative_shift_fills_head(self, session):
        x = from_numpy(session, np.arange(4.0), "(:)")
        assert eoshift(x, -1, boundary=9.0).np.tolist() == [9, 0, 1, 2]

    def test_overshift_all_boundary(self, session):
        x = from_numpy(session, np.arange(4.0), "(:)")
        assert eoshift(x, 10, boundary=-1.0).np.tolist() == [-1, -1, -1, -1]

    def test_2d_axis(self, session):
        x = from_numpy(session, np.arange(6.0).reshape(2, 3), "(:,:)")
        out = eoshift(x, 1, axis=1)
        assert out.np[0].tolist() == [1, 2, 0]


class TestSpreadBroadcast:
    def test_spread_inserts_axis(self, session):
        x = from_numpy(session, np.array([1.0, 2.0]), "(:)")
        out = spread(x, 0, 3)
        assert out.shape == (3, 2)
        assert np.array_equal(out.np, np.tile(x.np, (3, 1)))

    def test_spread_trailing_axis(self, session):
        x = from_numpy(session, np.array([1.0, 2.0]), "(:)")
        out = spread(x, 1, 3)
        assert out.shape == (2, 3)
        assert (out.np[0] == 1.0).all()

    def test_spread_axis_kind(self, session):
        x = from_numpy(session, np.array([1.0, 2.0]), "(:)")
        out = spread(x, 0, 3, axis_kind=Axis.SERIAL)
        assert out.layout.axes[0] is Axis.SERIAL

    def test_spread_records_event(self, trace_session):
        session = trace_session
        x = from_numpy(session, np.arange(16.0), "(:)")
        spread(x, 0, 4)
        assert (
            session.recorder.root.comm_events[-1].pattern is CommPattern.SPREAD
        )

    def test_broadcast_scalar(self, trace_session):
        session = trace_session
        out = broadcast(session, 3.5, (4, 4), "(:,:)")
        assert (out.np == 3.5).all()
        assert (
            session.recorder.root.comm_events[-1].pattern
            is CommPattern.BROADCAST
        )

    def test_broadcast_vector_to_matrix(self, session):
        v = from_numpy(session, np.arange(3.0), "(:)")
        out = broadcast(session, v, (2, 3), "(:,:)")
        assert np.array_equal(out.np, np.tile(np.arange(3.0), (2, 1)))


class TestReduce:
    def test_full_sum(self, session):
        x = from_numpy(session, np.arange(10.0), "(:)")
        assert reduce_array(x, "sum") == 45.0

    def test_axis_sum_returns_distarray(self, session):
        x = from_numpy(session, np.arange(6.0).reshape(2, 3), "(:,:)")
        out = reduce_array(x, "sum", axis=0)
        assert out.np.tolist() == [3.0, 5.0, 7.0]
        assert out.layout.axes == (Axis.PARALLEL,)

    def test_max_min(self, session):
        x = from_numpy(session, np.array([3.0, -2.0, 8.0]), "(:)")
        assert reduce_array(x, "max") == 8.0
        assert reduce_array(x, "min") == -2.0

    def test_masked_sum(self, session):
        x = from_numpy(session, np.arange(6.0), "(:)")
        mask = x > 2.0
        assert reduce_array(x, "sum", mask=mask) == 12.0

    def test_masked_max(self, session):
        x = from_numpy(session, np.arange(6.0), "(:)")
        mask = x < 3.0
        assert reduce_array(x, "max", mask=mask) == 2.0

    def test_flops_charged_n_minus_one(self, session):
        x = from_numpy(session, np.arange(100.0), "(:)")
        before = session.recorder.total_flops
        reduce_array(x, "sum")
        assert session.recorder.total_flops - before == 99

    def test_unknown_op_raises(self, session):
        x = from_numpy(session, np.arange(4.0), "(:)")
        with pytest.raises(ValueError):
            reduce_array(x, "median")

    def test_multi_axis(self, session):
        x = from_numpy(session, np.arange(24.0).reshape(2, 3, 4), "(:,:,:)")
        out = reduce_array(x, "sum", axis=(0, 2))
        assert np.array_equal(out.np, x.np.sum(axis=(0, 2)))

    def test_reduce_location(self, session):
        x = from_numpy(session, np.array([[1.0, 9.0], [0.0, 3.0]]), "(:,:)")
        assert reduce_location(x, "max") == (0, 1)
        assert reduce_location(x, "min") == (1, 0)

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_sum_matches_numpy(self, values):
        session = Session(cm5(4))
        arr = np.array(values)
        x = from_numpy(session, arr, "(:)")
        assert reduce_array(x, "sum") == pytest.approx(arr.sum(), rel=1e-12, abs=1e-9)


class TestTransposeRemap:
    def test_transpose_2d(self, session):
        x = from_numpy(session, np.arange(6.0).reshape(2, 3), "(:,:)")
        assert np.array_equal(transpose(x).np, x.np.T)

    def test_transpose_permutation(self, session):
        x = from_numpy(session, np.arange(24.0).reshape(2, 3, 4), "(:,:,:)")
        out = transpose(x, (2, 0, 1))
        assert out.shape == (4, 2, 3)

    def test_transpose_moves_axis_kinds(self, session):
        x = from_numpy(session, np.arange(6.0).reshape(2, 3), "(:serial,:)")
        out = transpose(x)
        assert out.layout.axes == (Axis.PARALLEL, Axis.SERIAL)

    def test_transpose_records_aapc(self, trace_session):
        session = trace_session
        x = from_numpy(session, np.arange(16.0).reshape(4, 4), "(:,:)")
        transpose(x)
        ev = session.recorder.root.comm_events[-1]
        assert ev.pattern is CommPattern.AAPC
        assert ev.bytes_network > 0

    def test_bad_permutation_raises(self, session):
        x = from_numpy(session, np.arange(4.0).reshape(2, 2), "(:,:)")
        with pytest.raises(ValueError):
            transpose(x, (0, 0))

    def test_remap_changes_layout_not_data(self, session):
        x = from_numpy(session, np.arange(6.0).reshape(2, 3), "(:,:)")
        out = remap(x, "(:serial,:)")
        assert np.array_equal(out.np, x.np)
        assert out.layout.axes == (Axis.SERIAL, Axis.PARALLEL)

    def test_remap_shape_change_rejected(self, session):
        from repro.layout.spec import parse_layout

        x = from_numpy(session, np.arange(6.0).reshape(2, 3), "(:,:)")
        with pytest.raises(ValueError):
            remap(x, parse_layout("(:,:,:)", (1, 2, 3)))


class TestSendGet:
    def test_get_fetches(self, session):
        x = from_numpy(session, np.arange(10.0), "(:)")
        out = get(x, np.array([9, 0, 5]))
        assert out.np.tolist() == [9, 0, 5]

    def test_send_overwrite(self, session):
        x = from_numpy(session, np.zeros(5), "(:)")
        vals = from_numpy(session, np.array([7.0, 8.0]), "(:)")
        send(x, np.array([1, 3]), vals)
        assert x.np.tolist() == [0, 7, 0, 8, 0]

    def test_send_with_add(self, session):
        x = from_numpy(session, np.zeros(3), "(:)")
        vals = from_numpy(session, np.ones(4), "(:)")
        send(x, np.array([0, 0, 2, 2]), vals, combine="add")
        assert x.np.tolist() == [2, 0, 2]

    def test_get_records_event(self, trace_session):
        session = trace_session
        x = from_numpy(session, np.arange(10.0), "(:)")
        get(x, np.array([1]))
        assert session.recorder.root.comm_events[-1].pattern is CommPattern.GET
