"""Lint driver: walk sources, scan functions, apply rules RC001-RC006.

Entry points:

* :func:`lint_source` — lint one source string (used by tests);
* :func:`lint_paths` — lint files/directories, apply the baseline, and
  return a :class:`~repro.check.findings.LintResult`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.check.baseline import Baseline, load_baseline
from repro.check.findings import Finding, LintResult
from repro.check.rules import apply_rules, scan_function

#: Directories never linted (fixtures with intentionally bad charging
#: live under tests/).
SKIP_PARTS = {"__pycache__", ".git", "tests"}


def _iter_functions(
    tree: ast.Module,
) -> Iterator[tuple]:
    """Yield ``(symbol, node)`` for the module and every function.

    Functions are yielded with dotted symbols (``Class.method``,
    ``outer.inner``); the module's top-level statements are scanned as
    ``<module>`` with nested definitions excluded (they get their own
    scan).
    """
    yield "<module>", tree

    def walk(body: Iterable[ast.stmt], prefix: str) -> Iterator[tuple]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                symbol = f"{prefix}{node.name}"
                yield symbol, node
                yield from walk(node.body, f"{symbol}.")
            elif isinstance(node, ast.ClassDef):
                yield from walk(node.body, f"{prefix}{node.name}.")

    yield from walk(tree.body, "")


def lint_source(
    source: str, path: str = "<string>"
) -> List[Finding]:
    """Lint one source string; returns raw findings (no baseline)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                code="RC000",
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                symbol="<module>",
                message=f"source does not parse: {exc.msg}",
            )
        ]
    source_lines = source.splitlines()
    findings: List[Finding] = []
    for symbol, node in _iter_functions(tree):
        facts = scan_function(node, symbol)
        findings.extend(apply_rules(facts, path, source_lines))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into the python files to lint."""
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not SKIP_PARTS & set(sub.parts):
                    yield sub
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Sequence[Path],
    *,
    baseline: Optional[Baseline] = None,
    baseline_path: Optional[Path] = None,
    root: Optional[Path] = None,
) -> LintResult:
    """Lint files/dirs and apply the baseline.

    Paths in findings are reported relative to ``root`` (default: the
    current directory) so they match baseline entries regardless of how
    the linted paths were spelled.
    """
    if baseline is None:
        baseline = load_baseline(baseline_path)
    if root is None:
        root = Path.cwd()
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        try:
            rel = file_path.resolve().relative_to(root.resolve())
            shown = str(rel)
        except ValueError:
            shown = str(file_path)
        source = file_path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, shown))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return baseline.apply(findings)
