"""DPF-style output files.

The original suite produced per-benchmark output files with the §1.5
metrics ("Sources, examples of DPF benchmark use and produced output
are also available there", §1.1).  :func:`write_outputs` reproduces
that artifact: one ``<benchmark>.out`` per run containing the
performance summary, the per-segment breakdown, the communication
profile and the verification observables, plus a ``suite.csv`` roll-up.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Mapping, Optional

from repro.analysis.trace import trace_summary
from repro.machine.session import Session
from repro.metrics.report import PerfReport
from repro.metrics.serialize import reports_to_csv
from repro.suite.runner import run_benchmark


def render_output(report: PerfReport, machine_desc: str = "") -> str:
    """The text of one DPF-style output file."""
    lines = ["DPF benchmark output", "=" * 56]
    if machine_desc:
        lines.append(f"machine        : {machine_desc}")
    lines.append(report.summary())
    if report.extra:
        lines.append("")
        lines.append("verification observables:")
        for key, value in report.extra.items():
            lines.append(f"  {key:30s} {value:.8g}")
    return "\n".join(lines) + "\n"


def write_outputs(
    directory: str | pathlib.Path,
    session_factory,
    params: Optional[Mapping[str, Mapping[str, object]]] = None,
    names: Optional[list] = None,
) -> Dict[str, PerfReport]:
    """Run benchmarks and write ``<name>.out`` files plus ``suite.csv``.

    Returns the reports keyed by benchmark name.
    """
    from repro.suite.registry import REGISTRY

    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    params = params or {}
    reports: Dict[str, PerfReport] = {}
    for name in names if names is not None else sorted(REGISTRY):
        session: Session = session_factory()
        report = run_benchmark(name, session, **params.get(name, {}))
        reports[name] = report
        body = render_output(report, session.machine.describe())
        body += "\ncommunication profile:\n"
        body += trace_summary(session.recorder) + "\n"
        safe = name.replace("/", "_")
        (directory / f"{safe}.out").write_text(body)
    (directory / "suite.csv").write_text(reports_to_csv(reports.values()))
    return reports
