#!/usr/bin/env python
"""Registering a user benchmark in the DPF suite.

The registry is open: a downstream user can add their own application
kernel, declare its layout/communication metadata (the Table-5/7 rows
it would occupy) and run it through the same harness, reports and
tables as the stock 32 benchmarks.

The example adds `smooth-relax` — red-black Gauss-Seidel smoothing on
a 2-D grid, a kernel the stock suite does not cover.
"""

import numpy as np

from repro import perf_session, run_benchmark
from repro.apps.base import AppResult
from repro.array import from_numpy
from repro.array.masks import assign_where
from repro.comm.primitives import cshift, reduce_array
from repro.metrics.access import LocalAccess
from repro.metrics.patterns import CommPattern
from repro.suite.registry import REGISTRY, BenchmarkSpec
from repro.versions import VersionTier


def smooth_relax(session, nx: int = 32, sweeps: int = 20, seed: int = 0):
    """Red-black Gauss-Seidel relaxation of laplace(u) = f."""
    rng = np.random.default_rng(seed)
    f = from_numpy(session, rng.standard_normal((nx, nx)), "(:,:)")
    u = from_numpy(session, np.zeros((nx, nx)), "(:,:)")
    session.declare_memory("u", (nx, nx), np.float64)
    session.declare_memory("f", (nx, nx), np.float64)

    ii, jj = np.meshgrid(np.arange(nx), np.arange(nx), indexing="ij")
    red = from_numpy(session, (ii + jj) % 2 == 0, "(:,:)")
    black = from_numpy(session, (ii + jj) % 2 == 1, "(:,:)")

    res = np.inf
    with session.region("main_loop", iterations=sweeps):
        for _ in range(sweeps):
            for mask in (red, black):
                neigh = (
                    cshift(u, 1, 0) + cshift(u, -1, 0)
                    + cshift(u, 1, 1) + cshift(u, -1, 1)
                )
                update = 0.25 * (neigh - f)
                assign_where(u, mask, update)
            r = (
                cshift(u, 1, 0) + cshift(u, -1, 0)
                + cshift(u, 1, 1) + cshift(u, -1, 1)
                - 4.0 * u - f
            )
            res = float(reduce_array(r.abs(), "max"))
    return AppResult(
        name="smooth-relax",
        iterations=sweeps,
        problem_size=nx * nx,
        local_access=LocalAccess.NA,
        observables={"residual_inf": res},
    )


def main() -> None:
    REGISTRY["smooth-relax"] = BenchmarkSpec(
        name="smooth-relax",
        group="app",
        runner=smooth_relax,
        versions=(VersionTier.BASIC,),
        layouts=("(:,:)",),
        local_access=LocalAccess.NA,
        comm_patterns={
            CommPattern.CSHIFT: (2,),
            CommPattern.REDUCTION: (2,),
        },
        techniques={"stencil": "CSHIFT"},
        default_params={"nx": 32, "sweeps": 20},
        description="red-black Gauss-Seidel smoothing (user benchmark)",
    )

    report = run_benchmark("smooth-relax", perf_session("cm5", 32))
    print(report.summary())
    print(f"\nresidual after smoothing: {report.extra['residual_inf']:.4f}")
    print(
        "\nThe custom benchmark now regenerates into the suite tables "
        "alongside the stock codes:"
    )
    from repro.suite.tables import table7_comm

    for line in table7_comm().splitlines():
        if "smooth-relax" in line or line.startswith(("Pattern", "---")):
            print(line)


if __name__ == "__main__":
    main()
