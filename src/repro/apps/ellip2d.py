"""ellip-2D: Poisson's equation by the conjugate gradient method.

Paper class: structured grid, linear, *iterative* solver,
*inhomogeneous* (variable-coefficient stencil), Dirichlet boundary
conditions.  Table 5 layout: ``x(:,:)``.  Table 6: ``38 n_x n_y``
FLOPs per iteration, **4 CSHIFTs and 3 Reductions** per iteration,
``96 n_x n_y`` bytes double (12 n-point fields: five stencil
coefficient arrays, rhs, x, r, p, q and workspace), no local axes.

The operator is a variable-coefficient 5-point stencil
``(A u)_ij = a u + w u_W + e u_E + s u_S + n u_N`` — self-adjoint by
construction (the off-diagonal coefficient arrays are shared between
the two sides of each face) so plain CG applies.  Dirichlet boundaries
are imposed by conditionalizing the shifted operands to zero outside
the domain (the paper's "cshift with conditionalization to freeze
values at the boundaries").
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppResult
from repro.array.distarray import DistArray
from repro.comm.primitives import cshift, reduce_array
from repro.layout.spec import parse_layout
from repro.machine.session import Session
from repro.metrics.access import LocalAccess
from repro.metrics.flops import FlopKind


class _Operator:
    """Self-adjoint variable-coefficient 5-point operator on (nx, ny)."""

    def __init__(self, session: Session, nx: int, ny: int, seed: int) -> None:
        rng = np.random.default_rng(seed)
        self.layout = parse_layout("(:,:)", (nx, ny))
        self.session = session
        # Face conductivities (inhomogeneous medium), positive.
        kx = 1.0 + rng.uniform(0, 0.5, (nx + 1, ny))  # vertical faces
        ky = 1.0 + rng.uniform(0, 0.5, (nx, ny + 1))  # horizontal faces
        self.w = kx[:-1, :]  # coupling to (i-1, j)
        self.e = kx[1:, :]  # coupling to (i+1, j)
        self.s = ky[:, :-1]
        self.n = ky[:, 1:]
        self.diag = self.w + self.e + self.s + self.n

    def apply(self, p: DistArray) -> DistArray:
        """(A p) with Dirichlet boundaries; 4 CSHIFTs, ~9 FLOPs/point."""
        session = self.session
        pw = cshift(p, -1, axis=0)  # p_(i-1, j)
        pe = cshift(p, +1, axis=0)
        ps = cshift(p, -1, axis=1)
        pn = cshift(p, +1, axis=1)
        # Freeze boundary values: the wrapped entries are outside the
        # domain and Dirichlet zero.
        pw.data[0, :] = 0.0
        pe.data[-1, :] = 0.0
        ps.data[:, 0] = 0.0
        pn.data[:, -1] = 0.0
        out = (
            self.diag * p.data
            - self.w * pw.data
            - self.e * pe.data
            - self.s * ps.data
            - self.n * pn.data
        )
        session.charge_elementwise(FlopKind.MUL, p.layout, ops_per_element=5)
        session.charge_elementwise(FlopKind.SUB, p.layout, ops_per_element=4)
        return DistArray(out, p.layout, session)

    def dense(self) -> np.ndarray:
        """Dense matrix form for verification."""
        nx, ny = self.layout.shape
        n = nx * ny
        A = np.zeros((n, n))
        for i in range(nx):
            for j in range(ny):
                k = i * ny + j
                A[k, k] = self.diag[i, j]
                if i > 0:
                    A[k, k - ny] = -self.w[i, j]
                if i < nx - 1:
                    A[k, k + ny] = -self.e[i, j]
                if j > 0:
                    A[k, k - 1] = -self.s[i, j]
                if j < ny - 1:
                    A[k, k + 1] = -self.n[i, j]
        return A


def run(
    session: Session,
    nx: int = 32,
    ny: int | None = None,
    tol: float = 1e-8,
    max_iter: int | None = None,
    seed: int = 0,
) -> AppResult:
    """Solve ``A u = f`` by CG; per iteration 4 CSHIFTs, 3 Reductions."""
    ny = nx if ny is None else ny
    op = _Operator(session, nx, ny, seed)
    layout = op.layout
    rng = np.random.default_rng(seed + 1)
    f = DistArray(rng.standard_normal((nx, ny)), layout, session, "f")
    # Table 6 memory: 96 n_x n_y — 12 doubles per point.
    for name in ("kx", "ky", "diag", "w", "e", "s", "n"):
        session.declare_memory(name, (nx, ny), np.float64)
    for name in ("f", "x", "r", "p", "q"):
        session.declare_memory(name, (nx, ny), np.float64)

    if max_iter is None:
        max_iter = 4 * nx * ny
    x = DistArray(np.zeros((nx, ny)), layout, session, "x")
    r = f.copy("r")
    p = r.copy("p")
    rho = reduce_array(r * r, "sum")  # Reduction (initialization)
    it = 0
    res = float(np.sqrt(rho))
    with session.region("main_loop", iterations=1) as region:
        while it < max_iter and res > tol:
            q = op.apply(p)  # 4 CSHIFTs
            pq = reduce_array(p * q, "sum")  # Reduction 1
            alpha = rho / pq
            session.recorder.charge_flops(FlopKind.DIV, 1)
            x += alpha * p
            r -= alpha * q
            rho_new = reduce_array(r * r, "sum")  # Reduction 2
            beta = rho_new / rho
            session.recorder.charge_flops(FlopKind.DIV, 1)
            p = r + beta * p
            rho = rho_new
            # Reduction 3: infinity-norm convergence check.
            res = float(reduce_array(r.abs(), "max"))
            it += 1
        region.iterations = max(1, it)
    return AppResult(
        name="ellip-2d",
        iterations=it,
        problem_size=nx * ny,
        local_access=LocalAccess.NA,
        observables={"residual": res, "iterations": float(it)},
        state={"x": x.np.copy(), "f": f.np.copy(), "operator": op},
    )
