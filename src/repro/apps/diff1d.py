"""diff-1D: the 1-D diffusion equation via a tridiagonal solver.

Paper class: structured grid, linear, direct solver, homogeneous,
constant boundary conditions (§4).  Table 5 layout: ``x(:)``.
Table 6: ``13 n_x + 4 P log P - 8`` FLOPs per iteration, one 3-point
stencil plus the substructured tridiagonal solve (PCR across the
processor interfaces — the ``P``-dependent term), no local axes.

Implementation: Crank-Nicolson time stepping of ``u_t = nu u_xx`` with
fixed (constant) boundary values.  Each step evaluates the explicit
half via a 3-point stencil (array sections per Table 8) and solves the
implicit half with :func:`repro.linalg.pcr.pcr_solve`.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppResult
from repro.array.distarray import DistArray
from repro.array.fused import stencil_combine
from repro.comm.stencil import stencil_shifts
from repro.layout.spec import parse_layout
from repro.linalg.pcr import pcr_solve
from repro.machine.session import Session
from repro.metrics.access import LocalAccess


def run(
    session: Session,
    nx: int = 256,
    steps: int = 10,
    nu: float = 0.1,
    dt: float = 0.1,
) -> AppResult:
    """Diffuse an initial sine profile; returns decay observables."""
    h = 1.0 / nx
    r = nu * dt / (h * h)
    x = np.arange(nx) * h
    u = DistArray(np.sin(2 * np.pi * x), parse_layout("(:)", (nx,)), session, "u")
    session.declare_memory("u", (nx,), np.float64)
    session.declare_memory("rhs", (nx,), np.float64)
    # Table 6 memory: 32 n_x bytes double = 4 n-vectors (u, rhs and the
    # implicit system's diagonals).
    session.declare_memory("diagonals", (2, nx), np.float64)

    # Constant-coefficient Crank-Nicolson tridiagonal (periodic domain;
    # the sine mode is periodic so constant BCs are honoured exactly).
    lo = np.full(nx, -0.5 * r)
    di = np.full(nx, 1.0 + r)
    up = np.full(nx, -0.5 * r)
    spec = parse_layout("(:)", (nx,))
    a = DistArray(lo, spec, session, "a")
    b = DistArray(di, spec, session, "b")
    c = DistArray(up, spec, session, "c")

    initial_norm = float(np.abs(u.np).max())
    with session.region("main_loop", iterations=steps):
        for step in range(steps):
            with session.iteration(step):
                # Explicit half: one 3-point stencil (array sections).
                um, uc, up_ = stencil_shifts(u, [-1, 0, 1], boundary="periodic")
                # rhs = uc + scale * (um - 2*uc + up), fused (scale = 0.5*r)
                scale = 0.5 * r
                rhs = stencil_combine(uc, um, up_, scale)
                # 13 n_x FLOPs per iteration: the stencil combine above
                # charges 5 n (2 mul + 3 add/sub); the solve charges the rest.
                f = DistArray(
                    rhs.data[None, :], parse_layout("(:serial,:)", (1, nx)),
                    session,
                )
                sol = pcr_solve(a, b, c, f)
                u = DistArray(sol.data[0], spec, session, "u")
    final_norm = float(np.abs(u.np).max())
    mode_decay = final_norm / initial_norm
    # Exact Crank-Nicolson amplification for the k=1 Fourier mode.
    lam = 2.0 * (np.cos(2 * np.pi / nx) - 1.0)
    g = (1.0 + 0.5 * r * lam) / (1.0 - 0.5 * r * lam)
    return AppResult(
        name="diff-1d",
        iterations=steps,
        problem_size=nx,
        local_access=LocalAccess.NA,
        observables={
            "mode_decay": mode_decay,
            "expected_decay": float(g**steps),
            "max_abs": final_norm,
        },
        state={"u": u.np.copy()},
    )
