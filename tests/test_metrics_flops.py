"""Tests for the FLOP-count conventions (paper §1.5(1))."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.flops import (
    FLOP_COSTS,
    FlopCounter,
    FlopKind,
    flop_cost,
    merge_counters,
    reduction_flops,
    scan_flops,
)


class TestFlopCosts:
    def test_add_sub_mul_cost_one(self):
        for kind in (FlopKind.ADD, FlopKind.SUB, FlopKind.MUL):
            assert FLOP_COSTS[kind] == 1

    def test_div_sqrt_cost_four(self):
        assert FLOP_COSTS[FlopKind.DIV] == 4
        assert FLOP_COSTS[FlopKind.SQRT] == 4

    def test_transcendentals_cost_eight(self):
        for kind in (FlopKind.LOG, FlopKind.EXP, FlopKind.TRIG, FlopKind.POW):
            assert FLOP_COSTS[kind] == 8

    def test_flop_cost_scales_with_count(self):
        assert flop_cost(FlopKind.DIV, 10) == 40

    def test_flop_cost_zero(self):
        assert flop_cost(FlopKind.ADD, 0) == 0

    def test_flop_cost_negative_raises(self):
        with pytest.raises(ValueError):
            flop_cost(FlopKind.ADD, -1)

    def test_complex_add_doubles(self):
        assert flop_cost(FlopKind.ADD, 5, complex_valued=True) == 10

    def test_complex_mul_costs_six(self):
        assert flop_cost(FlopKind.MUL, 1, complex_valued=True) == 6

    def test_complex_div_exceeds_real_div(self):
        assert flop_cost(FlopKind.DIV, 1, complex_valued=True) > flop_cost(
            FlopKind.DIV, 1
        )

    def test_complex_transcendental_doubles(self):
        assert flop_cost(FlopKind.EXP, 1, complex_valued=True) == 16


class TestReductionScanCosts:
    def test_reduction_is_n_minus_one(self):
        assert reduction_flops(100) == 99

    def test_reduction_multiple_results(self):
        # Reducing a (m, n) array along axis 1: m results of n-1 adds.
        assert reduction_flops(10, 5) == 45

    def test_reduction_of_one_element_free(self):
        assert reduction_flops(1) == 0

    def test_reduction_of_zero_free(self):
        assert reduction_flops(0) == 0

    def test_scan_matches_reduction_cost(self):
        assert scan_flops(64, 3) == reduction_flops(64, 3)

    @given(st.integers(1, 10_000), st.integers(1, 100))
    def test_reduction_cost_formula(self, n, r):
        assert reduction_flops(n, r) == (n - 1) * r


class TestFlopCounter:
    def test_empty_counter_is_falsy(self):
        assert not FlopCounter()
        assert FlopCounter().total == 0

    def test_add_accumulates_weighted(self):
        c = FlopCounter()
        c.add(FlopKind.ADD, 10)
        c.add(FlopKind.DIV, 2)
        assert c.total == 10 + 8

    def test_add_raw(self):
        c = FlopCounter()
        c.add_raw(17)
        assert c.total == 17

    def test_add_raw_negative_raises(self):
        with pytest.raises(ValueError):
            FlopCounter().add_raw(-1)

    def test_add_negative_raises(self):
        with pytest.raises(ValueError):
            FlopCounter().add(FlopKind.ADD, -5)

    def test_add_zero_is_noop(self):
        c = FlopCounter()
        c.add(FlopKind.MUL, 0)
        assert not c
        assert c.operations == {}

    def test_operations_tracks_raw_counts(self):
        c = FlopCounter()
        c.add(FlopKind.SQRT, 3)
        assert c.operations[FlopKind.SQRT] == 3
        assert c.total == 12

    def test_merge(self):
        a = FlopCounter()
        a.add(FlopKind.ADD, 5)
        b = FlopCounter()
        b.add(FlopKind.ADD, 7)
        b.add(FlopKind.DIV, 1)
        a.merge(b)
        assert a.operations[FlopKind.ADD] == 12
        assert a.total == 12 + 4

    def test_copy_is_independent(self):
        a = FlopCounter()
        a.add(FlopKind.MUL, 2)
        b = a.copy()
        b.add(FlopKind.MUL, 3)
        assert a.total == 2
        assert b.total == 5

    def test_equality(self):
        a = FlopCounter()
        b = FlopCounter()
        a.add(FlopKind.ADD, 4)
        b.add(FlopKind.ADD, 4)
        assert a == b
        b.add(FlopKind.ADD, 1)
        assert a != b

    def test_merge_counters_helper(self):
        counters = []
        for i in range(3):
            c = FlopCounter()
            c.add(FlopKind.ADD, i + 1)
            counters.append(c)
        total = merge_counters(counters)
        assert total.total == 6

    def test_complex_flag_in_add(self):
        c = FlopCounter()
        c.add(FlopKind.MUL, 4, complex_valued=True)
        assert c.total == 24
        assert c.operations[FlopKind.MUL] == 4

    @given(
        st.lists(
            st.tuples(st.sampled_from(list(FlopKind)), st.integers(0, 1000)),
            max_size=30,
        )
    )
    def test_total_is_sum_of_costs(self, ops):
        c = FlopCounter()
        expected = 0
        for kind, n in ops:
            c.add(kind, n)
            expected += flop_cost(kind, n)
        assert c.total == expected
