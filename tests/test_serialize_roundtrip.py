"""Round-trip tests for report serialization.

The engine's run store and result cache persist reports as JSON and
rebuild them on the way out, so ``report_to_dict``/``report_from_dict``
must be lossless — including ``extra`` observables, the per-segment
region breakdown, and the peak rate that anchors arithmetic
efficiency.
"""

import json

import pytest

from repro import Session, cm5
from repro.metrics.serialize import (
    canonical_report_json,
    report_from_dict,
    report_from_json,
    report_to_dict,
    report_to_json,
)
from repro.suite import run_benchmark


@pytest.fixture
def segmented_report():
    """md has nested segments, comm events, memory and observables."""
    return run_benchmark("md", Session(cm5(16)), n_p=8, steps=3)


@pytest.fixture
def linalg_report():
    return run_benchmark("ellip-2d", Session(cm5(32)), nx=8)


class TestRoundTrip:
    def test_dict_roundtrip_equality(self, segmented_report):
        restored = report_from_dict(report_to_dict(segmented_report))
        assert restored == segmented_report

    def test_json_roundtrip_equality(self, linalg_report):
        restored = report_from_json(report_to_json(linalg_report))
        assert restored == linalg_report

    def test_extra_observables_survive(self, segmented_report):
        assert segmented_report.extra  # md verifies its numerics
        restored = report_from_dict(report_to_dict(segmented_report))
        assert restored.extra == segmented_report.extra

    def test_segments_survive(self, segmented_report):
        assert segmented_report.segments
        restored = report_from_dict(report_to_dict(segmented_report))
        assert [s.name for s in restored.segments] == [
            s.name for s in segmented_report.segments
        ]
        for orig, back in zip(segmented_report.segments, restored.segments):
            assert back == orig
            assert back.comm_counts == orig.comm_counts
            assert back.busy_floprate_mflops == orig.busy_floprate_mflops

    def test_enums_rehydrate(self, segmented_report):
        restored = report_from_dict(report_to_dict(segmented_report))
        assert restored.local_access is segmented_report.local_access
        assert restored.comm_counts == segmented_report.comm_counts
        assert restored.memory_by_tag == segmented_report.memory_by_tag

    def test_derived_metrics_recompute(self, segmented_report):
        restored = report_from_dict(report_to_dict(segmented_report))
        assert restored.peak_mflops == segmented_report.peak_mflops
        assert (
            restored.arithmetic_efficiency
            == segmented_report.arithmetic_efficiency
        )
        assert (
            restored.busy_floprate_mflops
            == segmented_report.busy_floprate_mflops
        )
        assert restored.comm_per_iteration() == (
            segmented_report.comm_per_iteration()
        )

    def test_double_roundtrip_is_stable(self, linalg_report):
        once = report_to_dict(linalg_report)
        twice = report_to_dict(report_from_dict(once))
        assert canonical_report_json(once) == canonical_report_json(twice)


class TestCanonicalJson:
    def test_key_order_invariant(self, linalg_report):
        record = report_to_dict(linalg_report)
        shuffled = dict(reversed(list(record.items())))
        assert canonical_report_json(record) == canonical_report_json(shuffled)

    def test_compact(self, linalg_report):
        text = canonical_report_json(report_to_dict(linalg_report))
        assert "\n" not in text and ": " not in text
        json.loads(text)  # still valid JSON
