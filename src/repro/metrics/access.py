"""Local-memory-access classification (paper §1.5, attribute (7)).

The paper labels the local-axis access scheme of each benchmark's
primary data structures in its main loop:

* ``N/A``     — no local (serial) axes are present;
* ``direct``  — the local axis is indexed directly by the loop variable;
* ``indirect``— the local axis is indexed through another array
  (vector-valued subscripts);
* ``strided`` — the local axis is indexed by a triplet subscript.

On a real machine these patterns determine how well the node's memory
hierarchy (vector-unit pipelines on the CM-5, caches elsewhere) is
used.  The simulator maps each class to a sustained-rate multiplier in
:class:`repro.machine.model.LocalModel`.
"""

from __future__ import annotations

from enum import Enum


class LocalAccess(str, Enum):
    """Local memory access pattern of a benchmark's main loop."""

    NA = "N/A"
    DIRECT = "direct"
    INDIRECT = "indirect"
    STRIDED = "strided"

    @classmethod
    def parse(cls, text: str) -> "LocalAccess":
        """Parse the paper's table labels (case-insensitive)."""
        normalized = text.strip().lower()
        for member in cls:
            if member.value.lower() == normalized:
                return member
        raise ValueError(f"unknown local access pattern: {text!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LocalAccess.{self.name}"


#: Relative sustained-throughput penalty of each access class, used as
#: the default by :class:`repro.machine.model.LocalModel`.  ``direct``
#: streaming access is the baseline; strided access defeats unit-stride
#: vector loads; indirect access serializes address generation.
DEFAULT_ACCESS_PENALTY = {
    LocalAccess.NA: 1.0,
    LocalAccess.DIRECT: 1.0,
    LocalAccess.STRIDED: 1.6,
    LocalAccess.INDIRECT: 2.8,
}
