"""fem-3D: iterative solution of finite element equations in 3-D.

Paper class (§4, (1)): the one *unstructured-grid* benchmark — tends
to use "communication primitives tailored for general communication,
such as send-with-combiner".  Table 5 layouts: ``x(:serial,:,:)``
(per-element nodal values: vertex slot serial) and
``x(:serial,:serial,:)`` (per-element stiffness matrices).  Table 6:
``18 n_ve n_e`` FLOPs per iteration (``n_ve`` vertices per element),
memory ``56 n_ve n_e + 140 n_v + 1200 n_e``, and per iteration **one
Gather and one Scatter w/ combine** (Table 8: the CMSSL partitioned
gather/scatter utilities), *direct* local access.

Implementation: Poisson on a tetrahedral mesh (a structured box
decomposed into tets, then treated as fully unstructured element-node
connectivity).  The solver is damped Jacobi on the assembled operator
evaluated matrix-free each iteration: gather nodal values to element
corners, apply the 4x4 element stiffness matrices locally, scatter
the contributions back with combining.  The matrix-free operator is
verified against the directly assembled sparse matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import AppResult
from repro.layout.spec import parse_layout
from repro.machine.session import Session
from repro.metrics.access import LocalAccess
from repro.metrics.patterns import CommPattern

#: the five tetrahedra decomposing a unit cube (corner indices 0..7,
#: corner k has coordinates (k&1, (k>>1)&1, (k>>2)&1))
_CUBE_TETS = [
    (0, 1, 2, 4),
    (1, 2, 3, 7),
    (1, 4, 5, 7),
    (2, 4, 6, 7),
    (1, 2, 4, 7),
]


@dataclass
class TetMesh:
    """Unstructured tetrahedral mesh: vertices and element connectivity."""

    vertices: np.ndarray  # (n_v, 3)
    elements: np.ndarray  # (n_e, 4) vertex indices

    @property
    def n_v(self) -> int:
        """Vertex count."""
        return self.vertices.shape[0]

    @property
    def n_e(self) -> int:
        """Element count."""
        return self.elements.shape[0]


def box_mesh(nx: int, ny: int, nz: int) -> TetMesh:
    """Tetrahedralize an ``nx x ny x nz``-cell box."""
    xs, ys, zs = np.meshgrid(
        np.arange(nx + 1), np.arange(ny + 1), np.arange(nz + 1), indexing="ij"
    )
    vertices = np.stack([xs, ys, zs], axis=-1).reshape(-1, 3).astype(float)

    def vid(i, j, k):
        """Vertex index of grid point (i, j, k)."""
        return (i * (ny + 1) + j) * (nz + 1) + k

    elements = []
    for i in range(nx):
        for j in range(ny):
            for k in range(nz):
                corners = [
                    vid(i + (c & 1), j + ((c >> 1) & 1), k + ((c >> 2) & 1))
                    for c in range(8)
                ]
                for tet in _CUBE_TETS:
                    elements.append([corners[t] for t in tet])
    return TetMesh(vertices, np.asarray(elements, dtype=np.int64))


def element_stiffness(mesh: TetMesh) -> np.ndarray:
    """Local 4x4 stiffness matrices of linear tets (K_e = V B^T B)."""
    v = mesh.vertices[mesh.elements]  # (n_e, 4, 3)
    # Gradients of the linear basis functions.
    d = v[:, 1:, :] - v[:, :1, :]  # (n_e, 3, 3) edge matrix
    det = np.linalg.det(d)
    vol = np.abs(det) / 6.0
    dinv = np.linalg.inv(d)  # rows: gradients of lambda_1..3 wrt x
    grads = np.empty((mesh.n_e, 4, 3))
    grads[:, 1:, :] = np.transpose(dinv, (0, 2, 1))
    grads[:, 0, :] = -grads[:, 1:, :].sum(axis=1)
    K = np.einsum("eia,eja->eij", grads, grads) * vol[:, None, None]
    return K


def assemble_dense(mesh: TetMesh, K: np.ndarray, mass: float) -> np.ndarray:
    """Direct dense assembly for verification."""
    A = np.zeros((mesh.n_v, mesh.n_v))
    for e in range(mesh.n_e):
        idx = mesh.elements[e]
        A[np.ix_(idx, idx)] += K[e]
    A += mass * np.eye(mesh.n_v)
    return A


class FEMOperator:
    """Matrix-free gather/compute/scatter application of K + mass I."""

    def __init__(self, session: Session, mesh: TetMesh, mass: float = 1.0):
        self.session = session
        self.mesh = mesh
        self.mass = mass
        self.K = element_stiffness(mesh)
        self.elem_layout = parse_layout("(:serial,:)", (4, mesh.n_e))
        self.node_layout = parse_layout("(:)", (mesh.n_v,))

    def apply(self, u: np.ndarray) -> np.ndarray:
        """A @ u via 1 Gather + local element kernels + 1 Scatter w/ add."""
        session = self.session
        mesh = self.mesh
        off = self.node_layout.off_node_fraction(session.nodes)
        n_moved = 4 * mesh.n_e
        # Gather nodal values to element corners (CMSSL partitioned
        # gather utility, Table 8).
        u_e = u[mesh.elements]  # (n_e, 4)
        session.record_comm(
            CommPattern.GATHER,
            bytes_network=round(n_moved * 8 * off),
            bytes_local=n_moved * 8,
            rank=1,
            detail="nodes to elements",
        )
        # Local element kernel: 4x4 matvec per element — the paper's
        # 18 n_ve n_e (7 multiply-adds + bookkeeping per vertex).
        f_e = np.einsum("eij,ej->ei", self.K, u_e)
        session.charge_kernel(
            18 * 4 * mesh.n_e, layout=self.elem_layout, access=LocalAccess.DIRECT
        )
        # Scatter w/ combine back to the nodes (partitioned scatter).
        out = self.mass * u
        np.add.at(out, mesh.elements.ravel(), f_e.ravel())
        session.record_comm(
            CommPattern.SCATTER_COMBINE,
            bytes_network=round(n_moved * 8 * off),
            bytes_local=n_moved * 8,
            rank=1,
            detail="elements to nodes (w/ add)",
        )
        return out


def run(
    session: Session,
    nx: int = 4,
    ny: int | None = None,
    nz: int | None = None,
    iterations: int = 40,
    mass: float = 1.0,
    omega: float = 0.7,
    seed: int = 0,
) -> AppResult:
    """Damped-Jacobi iterations on ``(K + mass I) u = f``."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    mesh = box_mesh(nx, ny, nz)
    op = FEMOperator(session, mesh, mass)
    rng = np.random.default_rng(seed)
    f = rng.standard_normal(mesh.n_v)

    # Table 6 memory: element values/stiffness, nodal fields, mesh.
    session.declare_memory("u_elem", (4, mesh.n_e), np.float64)
    session.declare_memory("K_elem", (4, 4, mesh.n_e), np.float64)
    session.declare_memory("connectivity", (4, mesh.n_e), np.int64)
    for name in ("u", "f", "resid", "diag"):
        session.declare_memory(name, (mesh.n_v,), np.float64)

    # Jacobi needs the operator diagonal (assembled once).
    diag = mass * np.ones(mesh.n_v)
    for e in range(mesh.n_e):
        idx = mesh.elements[e]
        diag[idx] += np.diag(op.K[e])

    u = np.zeros(mesh.n_v)
    res0 = float(np.linalg.norm(f))
    res = res0
    with session.region("main_loop", iterations=iterations):
        for _ in range(iterations):
            Au = op.apply(u)
            r = f - Au
            u = u + omega * r / diag
            res = float(np.linalg.norm(r))
    # Verification: matrix-free operator vs dense assembly.
    A = assemble_dense(mesh, op.K, mass)
    probe = rng.standard_normal(mesh.n_v)
    op_err = float(np.abs(op.apply(probe) - A @ probe).max())
    return AppResult(
        name="fem-3d",
        iterations=iterations,
        problem_size=mesh.n_e,
        local_access=LocalAccess.DIRECT,
        observables={
            "residual_reduction": res / res0,
            "operator_error": op_err,
            "n_vertices": float(mesh.n_v),
            "n_elements": float(mesh.n_e),
        },
        state={"u": u.copy(), "mesh": mesh, "operator": op, "f": f.copy()},
    )
