"""Tests for gather/scatter with combiners (paper §2, Table 8)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Session, cm5
from repro.array import from_numpy, zeros
from repro.comm.gather_scatter import gather, gather_combine, scatter
from repro.metrics.patterns import CommPattern


class TestGather:
    def test_basic(self, session):
        src = from_numpy(session, np.arange(10.0) * 2, "(:)")
        out = gather(src, np.array([0, 5, 9]))
        assert out.np.tolist() == [0, 10, 18]

    def test_repeated_indices(self, session):
        src = from_numpy(session, np.arange(4.0), "(:)")
        out = gather(src, np.array([2, 2, 2]))
        assert out.np.tolist() == [2, 2, 2]

    def test_2d_index_tuple(self, session):
        src = from_numpy(session, np.arange(6.0).reshape(2, 3), "(:,:)")
        out = gather(src, (np.array([0, 1]), np.array([2, 0])))
        assert out.np.tolist() == [2, 3]

    def test_records_pattern(self, trace_session):
        session = trace_session
        src = from_numpy(session, np.arange(4.0), "(:)")
        gather(src, np.array([0]))
        assert (
            session.recorder.root.comm_events[-1].pattern is CommPattern.GATHER
        )

    def test_collision_override_reduces_cost(self, trace_session):
        session = trace_session
        src = from_numpy(session, np.arange(1 << 12, dtype=float), "(:)")
        idx = np.zeros(1 << 12, dtype=int)
        gather(src, idx)
        hot = session.recorder.root.comm_events[-1].busy_time
        gather(src, idx, collisions=1.0)
        clean = session.recorder.root.comm_events[-1].busy_time
        assert clean < hot


class TestGatherCombine:
    def test_histogram(self, session):
        src = from_numpy(session, np.ones(6), "(:)")
        out = gather_combine(src, np.array([0, 1, 1, 2, 2, 2]), (4,))
        assert out.np.tolist() == [1, 2, 3, 0]

    def test_2d_output(self, session):
        src = from_numpy(session, np.ones(4), "(:)")
        idx = (np.array([0, 0, 1, 1]), np.array([0, 0, 1, 1]))
        out = gather_combine(src, idx, (2, 2))
        assert out.np.tolist() == [[2, 0], [0, 2]]

    def test_unsupported_op(self, session):
        src = from_numpy(session, np.ones(2), "(:)")
        with pytest.raises(ValueError):
            gather_combine(src, np.array([0, 1]), (2,), op="max")


class TestScatter:
    def test_overwrite(self, session):
        dest = zeros(session, (5,), "(:)")
        vals = from_numpy(session, np.array([1.0, 2.0]), "(:)")
        scatter(dest, np.array([4, 0]), vals)
        assert dest.np.tolist() == [2, 0, 0, 0, 1]

    def test_add_combiner(self, session):
        dest = zeros(session, (3,), "(:)")
        vals = from_numpy(session, np.ones(5), "(:)")
        scatter(dest, np.array([0, 0, 1, 2, 2]), vals, combine="add")
        assert dest.np.tolist() == [2, 1, 2]

    def test_max_combiner(self, session):
        dest = zeros(session, (2,), "(:)")
        vals = from_numpy(session, np.array([3.0, 7.0, 5.0]), "(:)")
        scatter(dest, np.array([0, 0, 1]), vals, combine="max")
        assert dest.np.tolist() == [7, 5]

    def test_unknown_combiner(self, session):
        dest = zeros(session, (2,), "(:)")
        vals = from_numpy(session, np.ones(1), "(:)")
        with pytest.raises(ValueError):
            scatter(dest, np.array([0]), vals, combine="xor")

    def test_pattern_distinction(self, trace_session):
        session = trace_session
        dest = zeros(session, (4,), "(:)")
        vals = from_numpy(session, np.ones(2), "(:)")
        scatter(dest, np.array([0, 1]), vals)
        assert (
            session.recorder.root.comm_events[-1].pattern
            is CommPattern.SCATTER
        )
        scatter(dest, np.array([0, 1]), vals, combine="add")
        assert (
            session.recorder.root.comm_events[-1].pattern
            is CommPattern.SCATTER_COMBINE
        )

    def test_combine_charges_flops(self, session):
        dest = zeros(session, (4,), "(:)")
        vals = from_numpy(session, np.ones(8), "(:)")
        before = session.recorder.total_flops
        scatter(dest, np.zeros(8, dtype=int), vals, combine="add")
        assert session.recorder.total_flops - before == 8

    @given(
        n=st.integers(1, 64),
    )
    @settings(max_examples=20, deadline=None)
    def test_scatter_gather_roundtrip(self, n):
        """Scatter through a permutation then gather back is identity."""
        session = Session(cm5(8))
        rng = np.random.default_rng(n)
        perm = rng.permutation(n)
        vals = from_numpy(session, rng.standard_normal(n), "(:)")
        dest = zeros(session, (n,), "(:)")
        scatter(dest, perm, vals)
        back = gather(dest, perm)
        assert np.allclose(back.np, vals.np)

    def test_deposit_conservation(self, session):
        """Scatter-with-add conserves the deposited total (histogram)."""
        rng = np.random.default_rng(0)
        vals = from_numpy(session, rng.random(100), "(:)")
        dest = zeros(session, (7,), "(:)")
        scatter(dest, rng.integers(0, 7, 100), vals, combine="add")
        assert dest.np.sum() == pytest.approx(vals.np.sum())
