"""Table 7: communication patterns in the application codes.

Regenerates the pattern-by-rank classification and validates per
application that the measured communication inventory matches the
registry's Table-7 metadata.
"""

import pytest

from repro import Session, cm5
from repro.metrics.patterns import CommPattern
from repro.suite import REGISTRY, benchmark_names, run_benchmark
from repro.suite.tables import table7_comm

from conftest import save_table

PARAMS = {
    "boson": {"nx": 6, "nt": 4, "sweeps": 2},
    "diff-1d": {"nx": 32, "steps": 2},
    "diff-2d": {"nx": 16, "steps": 2},
    "diff-3d": {"nx": 8, "steps": 2},
    "ellip-2d": {"nx": 8},
    "fem-3d": {"nx": 2, "iterations": 4},
    "fermion": {"sites": 8, "n": 4, "sweeps": 2},
    "gmo": {"ns": 64, "ntr": 8},
    "ks-spectral": {"nx": 32, "ne": 2, "steps": 2},
    "md": {"n_p": 8, "steps": 2},
    "mdcell": {"nc": 3, "steps": 1},
    "n-body": {"n": 12, "variant": "spread"},
    "pic-simple": {"nx": 8, "n_p": 64, "steps": 1},
    "pic-gather-scatter": {"nx": 8, "n_p": 32, "steps": 1},
    "qcd-kernel": {"nx": 2, "iterations": 1},
    "qmc": {"blocks": 1, "steps_per_block": 5, "n_w": 40},
    "qptransport": {"iterations": 4},
    "rp": {"nx": 4},
    "step4": {"nx": 8, "steps": 1},
    "wave-1d": {"nx": 32, "steps": 2},
}

#: implementation-level extras that legitimately appear beyond the
#: Table-7 pattern list (documented in EXPERIMENTS.md): stencils
#: composed from primitives, FFT-internal motions, solver substrates.
IMPLEMENTATION_EXTRAS = {
    "diff-1d": {CommPattern.CSHIFT, CommPattern.STENCIL},
    "diff-2d": {CommPattern.STENCIL},
    "diff-3d": {CommPattern.STENCIL},
    "wave-1d": {CommPattern.AAPC},
    "ks-spectral": {CommPattern.CSHIFT, CommPattern.AAPC},
    "pic-simple": {CommPattern.CSHIFT, CommPattern.AAPC},
    "md": {CommPattern.REDUCTION},
    "n-body": {CommPattern.REDUCTION},
    "qcd-kernel": set(),
}


def test_table7_regeneration(benchmark, output_dir):
    text = benchmark(table7_comm)
    save_table(output_dir, "table7_app_comm", text)
    for pattern in ("cshift", "scan", "sort", "scatter"):
        assert pattern in text


@pytest.mark.parametrize("name", sorted(PARAMS))
def test_measured_inventory_vs_registry(benchmark, name):
    def run():
        session = Session(cm5(32))
        run_benchmark(name, session, **PARAMS[name])
        return set(session.recorder.root.comm_counts())

    measured = benchmark(run)
    declared = set(REGISTRY[name].comm_patterns)
    allowed = declared | IMPLEMENTATION_EXTRAS.get(name, set())
    unexpected = measured - allowed
    assert not unexpected, (
        f"{name}: patterns {sorted(p.value for p in unexpected)} not in "
        "Table 7 or the documented extras"
    )
    # All declared patterns must actually occur (for benchmarks whose
    # declared set is parameter-independent).
    missing = declared - measured
    assert not missing or name == "n-body", (
        f"{name}: declared patterns never observed: "
        f"{sorted(p.value for p in missing)}"
    )


def test_every_app_covered(benchmark):
    benchmark(lambda: None)
    assert set(PARAMS) == set(benchmark_names("app"))
