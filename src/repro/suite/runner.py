"""Benchmark runner: execute registered benchmarks and build reports."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.machine.session import Session
from repro.metrics.report import PerfReport
from repro.suite.registry import REGISTRY


def run_benchmark(name: str, session: Session, **params) -> PerfReport:
    """Run one benchmark in the given session and return its report.

    The session's recorder must be fresh for the report's totals to
    describe this benchmark alone (create one session per run).
    Extra ``params`` override the spec's defaults.  The benchmark's
    verification observables are attached to ``report.extra``.
    """
    try:
        spec = REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
    tier_overrides = spec.tier_params.get(session.tier, {})
    merged = {**spec.default_params, **tier_overrides, **params}
    result = spec.runner(session, **merged)
    report = PerfReport.from_recorder(
        result.name,
        session.tier.value,
        session.recorder,
        problem_size=result.problem_size,
        local_access=result.local_access,
        iterations=result.iterations,
        peak_mflops=session.machine.peak_mflops,
    )
    report.extra.update(result.observables)
    return report


def run_suite(
    session_factory,
    names: Optional[Iterable[str]] = None,
    params: Optional[Dict[str, Dict]] = None,
) -> Dict[str, PerfReport]:
    """Run many benchmarks, one fresh session each.

    ``session_factory`` is a zero-argument callable returning a new
    :class:`Session` (e.g. ``lambda: Session(cm5(32))``); ``params``
    maps benchmark name to parameter overrides.
    """
    params = params or {}
    reports: Dict[str, PerfReport] = {}
    for name in names if names is not None else REGISTRY:
        session = session_factory()
        reports[name] = run_benchmark(name, session, **params.get(name, {}))
    return reports
