"""mdcell: molecular dynamics with short-range (cell-list) forces.

Paper class (§4, (11)): the interaction range is short, so particles
only interact with nearby particles; a 3-D grid of cells holds a
fixed-capacity packed particle list per cell, neighbours are visited
with cshifts and forces computed cell-against-cell.

Table 5 layout: ``x(:serial, :, :, :)`` — the particle slot axis is
serial, the three cell-grid axes parallel.  Table 6:
``(101 + 392 n_p) n_p n_c^3`` FLOPs per iteration (``n_p`` = particles
per cell), memory ``(184 + 160 n_p) n_x n_y n_z``, and per iteration
**195 CSHIFTs and 7 Scatters on the local axis**: the packed per-cell
arrays are shifted to visit the 26 neighbour offsets (26 visits x 7
packed quantities = 182, plus 13 realignment shifts of the walking
buffer = 195), and the cell lists are rebuilt each step by scattering
three position components, three velocity components and the slot
count (7 Scatters on the local axis).

Truncated Lennard-Jones; the cell-computed forces are verified against
a direct all-pairs computation with the same cutoff.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.apps.base import AppResult
from repro.layout.spec import parse_layout
from repro.machine.session import Session
from repro.metrics.access import LocalAccess
from repro.metrics.patterns import CommPattern


def direct_cutoff_forces(
    pos: np.ndarray, box: float, rc: float, eps: float, sigma: float
):
    """Direct all-pairs reference with minimum image + cutoff."""
    d = pos[None, :, :] - pos[:, None, :]
    d -= box * np.round(d / box)
    r2 = (d * d).sum(axis=-1)
    np.fill_diagonal(r2, np.inf)
    mask = r2 < rc * rc
    safe_r2 = np.where(mask, r2, 1.0)
    inv2 = np.where(mask, (sigma * sigma) / safe_r2, 0.0)
    inv6 = inv2**3
    inv12 = inv6**2
    coef = np.where(mask, 24.0 * eps * (2.0 * inv12 - inv6) / safe_r2, 0.0)
    forces = -(coef[:, :, None] * d).sum(axis=1)
    energy = 2.0 * eps * (inv12 - inv6)[mask].sum()
    return forces, float(energy)


class CellSystem:
    """Fixed-capacity cell lists over a periodic cubic box."""

    def __init__(
        self,
        session: Session,
        nc: int,
        cap: int,
        box: float,
        rc: float,
        eps: float,
        sigma: float,
    ) -> None:
        self.session = session
        self.nc = nc
        self.cap = cap
        self.box = box
        self.rc = rc
        self.eps = eps
        self.sigma = sigma
        self.layout = parse_layout("(:serial,:,:,:)", (cap, nc, nc, nc))
        self.cells_total = nc**3

    def build(self, pos: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Bin particles into cells; 7 Scatters on the local axis."""
        session = self.session
        nc, cap = self.nc, self.cap
        cell_idx = np.floor(pos / self.rc).astype(int) % nc
        flat = (cell_idx[:, 0] * nc + cell_idx[:, 1]) * nc + cell_idx[:, 2]
        packed = np.full((cap, self.cells_total, 3), np.nan)
        owner = np.full((cap, self.cells_total), -1, dtype=int)
        slots = np.zeros(self.cells_total, dtype=int)
        for p in np.argsort(flat, kind="stable"):
            cidx = flat[p]
            s = slots[cidx]
            if s >= cap:
                raise RuntimeError(
                    f"cell capacity {cap} exceeded; lower the density"
                )
            packed[s, cidx, :] = pos[p]
            owner[s, cidx] = p
            slots[cidx] += 1
        n_total = pos.shape[0]
        for name in ("x", "y", "z", "vx", "vy", "vz", "count"):
            session.record_comm(
                CommPattern.SCATTER,
                bytes_network=round(
                    n_total * 8 * self.layout.off_node_fraction(session.nodes)
                ),
                bytes_local=n_total * 8,
                rank=4,
                detail=f"bin {name} into cells",
            )
        return packed, owner

    def forces(self, packed: np.ndarray, owner: np.ndarray, n_total: int):
        """Cell-against-cell forces over the 27 offsets.

        Charges the paper's 195 CSHIFTs (26 neighbour visits of the 7
        packed quantities + 13 walker realignments) and the
        ``(101 + 392 n_p) n_p n_c^3`` force kernel.
        """
        session = self.session
        nc, cap = self.nc, self.cap
        grid = packed.reshape(cap, nc, nc, nc, 3)
        f_grid = np.zeros_like(grid)
        energy = 0.0
        surface = self.layout.shift_network_elements(session.nodes, 1, 1)
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                for dk in (-1, 0, 1):
                    nb = np.roll(grid, shift=(-di, -dj, -dk), axis=(1, 2, 3))
                    own = grid.reshape(cap, self.cells_total, 3)
                    oth = nb.reshape(cap, self.cells_total, 3)
                    # Empty slots are NaN; the arithmetic below runs
                    # over them and is masked afterwards (HPF-style
                    # whole-array semantics), so silence NaN warnings.
                    with np.errstate(invalid="ignore"):
                        d = oth[None, :, :, :] - own[:, None, :, :]
                        d -= self.box * np.round(d / self.box)
                        r2 = (d * d).sum(axis=-1)
                        valid = np.isfinite(r2) & (r2 < self.rc * self.rc)
                    if (di, dj, dk) == (0, 0, 0):
                        s_idx = np.arange(cap)
                        valid[s_idx, s_idx, :] = False
                    safe = np.where(valid, r2, 1.0)
                    inv2 = np.where(valid, (self.sigma**2) / safe, 0.0)
                    inv6 = inv2**3
                    inv12 = inv6**2
                    coef = np.where(
                        valid, 24.0 * self.eps * (2.0 * inv12 - inv6) / safe, 0.0
                    )
                    # NaN slots (empty) must not poison the sum: 0 * NaN
                    # is NaN, so zero the displacement explicitly.
                    d = np.where(valid[:, :, :, None], d, 0.0)
                    contrib = -(coef[:, :, :, None] * d).sum(axis=1)
                    f_grid += contrib.reshape(cap, nc, nc, nc, 3)
                    energy += 2.0 * self.eps * (inv12 - inv6)[valid].sum()
                    if (di, dj, dk) != (0, 0, 0):
                        for _ in range(7):
                            session.record_comm(
                                CommPattern.CSHIFT,
                                bytes_network=surface * 8,
                                bytes_local=cap * self.cells_total * 8,
                                rank=4,
                                detail=f"neighbour ({di},{dj},{dk})",
                            )
        for _ in range(13):
            session.record_comm(
                CommPattern.CSHIFT,
                bytes_network=surface * 8,
                bytes_local=cap * self.cells_total * 8,
                rank=4,
                detail="walker realignment",
            )
        np_per_cell = n_total / self.cells_total
        session.charge_kernel(
            round((101 + 392 * np_per_cell) * np_per_cell * self.cells_total),
            layout=self.layout,
            access=LocalAccess.INDIRECT,
        )
        # Unpack per-particle forces.
        forces = np.zeros((n_total, 3))
        flat_owner = owner.reshape(-1)
        flat_forces = f_grid.reshape(-1, 3)
        mask = flat_owner >= 0
        forces[flat_owner[mask]] = flat_forces[mask]
        return forces, float(energy)


def run(
    session: Session,
    nc: int = 4,
    particles_per_cell: float = 1.0,
    steps: int = 3,
    dt: float = 1e-3,
    eps: float = 1.0,
    sigma: float = 0.3,
    seed: int = 0,
) -> AppResult:
    """Cell-list LJ dynamics on an ``nc^3`` periodic box."""
    rc = 1.0
    box = nc * rc
    n_total = max(2, int(particles_per_cell * nc**3))
    rng = np.random.default_rng(seed)
    sites = nc**3 * 8
    if n_total <= sites:
        base = rng.permutation(sites)[:n_total]
        gx, gy, gz = np.unravel_index(base, (2 * nc, 2 * nc, 2 * nc))
        pos = (
            np.stack([gx, gy, gz], axis=1) * (box / (2 * nc))
            + 0.05 * rng.random((n_total, 3))
        ) % box
    else:  # denser than the jittered lattice can host: uniform placement
        pos = rng.uniform(0, box, (n_total, 3))
    vel = 0.02 * rng.standard_normal((n_total, 3))
    vel -= vel.mean(axis=0)

    cap = max(4, int(np.ceil(particles_per_cell * 6)))
    system = CellSystem(session, nc, cap, box, rc, eps, sigma)
    for name in ("cx", "cy", "cz", "cvx", "cvy", "cvz", "cfx", "cfy", "cfz"):
        session.declare_memory(name, (cap, nc, nc, nc), np.float64)
    session.declare_memory("occ", (cap, nc, nc, nc), np.int32)
    session.declare_memory("count", (nc, nc, nc), np.int32)

    packed, owner = system.build(pos)
    forces, pot = system.forces(packed, owner, n_total)
    kin = 0.5 * float((vel * vel).sum())
    e0 = kin + pot
    max_force_err = 0.0
    with session.region("main_loop", iterations=steps):
        for _ in range(steps):
            vel += 0.5 * dt * forces
            pos = (pos + dt * vel) % box
            with session.region("binning"):
                packed, owner = system.build(pos)
            with session.region("forces"):
                forces, pot = system.forces(packed, owner, n_total)
            ref_forces, _ = direct_cutoff_forces(pos, box, rc, eps, sigma)
            max_force_err = max(
                max_force_err, float(np.abs(forces - ref_forces).max())
            )
            vel += 0.5 * dt * forces
    kin = 0.5 * float((vel * vel).sum())
    e1 = kin + pot
    return AppResult(
        name="mdcell",
        iterations=steps,
        problem_size=n_total,
        local_access=LocalAccess.INDIRECT,
        observables={
            "energy_initial": e0,
            "energy_final": e1,
            "energy_drift": abs(e1 - e0) / max(abs(e0), 1e-300),
            "force_error_vs_direct": max_force_err,
        },
        state={"pos": pos.copy(), "vel": vel.copy(), "box": box, "rc": rc},
    )
