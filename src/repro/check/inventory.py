"""RC008: static communication-pattern conformance for the apps.

Table 7 of the paper characterizes every application by its
communication-pattern inventory, and the registry carries that
declaration (`BenchmarkSpec.comm_patterns`, plus the documented
implementation-level `comm_extras` — stencils composed from
primitives, FFT-internal motions, solver substrates).  The runtime
table test (`benchmarks/test_table7_app_comm.py`) checks the measured
inventory at one parameter point; this rule checks the *code*: the
set of `CommPattern` values reachable from each app's runner through
the call graph must match what the registry declares.

* a pattern recorded on some reachable path but absent from
  ``comm_patterns`` and ``comm_extras`` is **used-but-undeclared**
  (the paper table under-describes the implementation);
* a declared pattern that no reachable ``record_comm`` can ever emit
  is **declared-but-unused** (the implementation under-delivers the
  paper table).

Extraction distinguishes *must* evidence (a literal ``CommPattern.X``
first argument / ``pattern=`` keyword of ``record_comm``, or a literal
pattern argument handed to a resolved callee) from *may* evidence
(``CommPattern.X`` mentioned in a function that records through a
variable, e.g. ``scatter``'s combine-dependent choice).  Undeclared
findings require must evidence; unused findings accept may evidence —
both directions err toward precision.

The closure is fenced to the benchmark-implementation layers
(``repro.apps``/``comm``/``linalg``/``array``/``workloads``) so
literal pattern mentions in pricing tables or docs generators never
leak into an app's inventory.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.check.callgraph import CallGraph, FunctionNode
from repro.check.findings import Finding
from repro.check.rules import _call_name

#: module prefixes traversed by the inventory closure
CLOSURE_PREFIXES = (
    "repro.apps",
    "repro.comm",
    "repro.linalg",
    "repro.array",
    "repro.workloads",
)


@dataclass(frozen=True)
class AppInventory:
    """One app's declared inventory, decoupled from the live registry."""

    name: str
    runner_module: str
    runner_name: str
    declared: frozenset  # of pattern names (Table 7)
    extras: frozenset    # documented implementation-level extras


def registry_inventories() -> List[AppInventory]:
    """Declared inventories of every app benchmark in the registry."""
    from repro.suite.registry import REGISTRY

    out: List[AppInventory] = []
    for name, spec in REGISTRY.items():
        if spec.group != "app":
            continue
        out.append(AppInventory(
            name=name,
            runner_module=spec.runner.__module__,
            runner_name=spec.runner.__name__,
            declared=frozenset(p.name for p in spec.comm_patterns),
            extras=frozenset(p.name for p in spec.comm_extras),
        ))
    return out


def _pattern_attr(expr: ast.expr) -> Optional[str]:
    """``CommPattern.X`` -> ``"X"``."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "CommPattern"
    ):
        return expr.attr
    return None


@dataclass
class _FnPatterns:
    must: Set[str]
    may: Set[str]


def _own_nodes(fn: FunctionNode):
    """The function's own AST nodes, nested defs excluded.

    Parameter defaults are included: ``def stencil_shifts(...,
    pattern=CommPattern.STENCIL)`` recording through ``pattern`` emits
    its default unless a caller overrides it — may evidence.
    """
    stack = list(getattr(fn.node, "body", []))
    args = getattr(fn.node, "args", None)
    if args is not None:
        stack.extend(d for d in args.defaults if d is not None)
        stack.extend(d for d in args.kw_defaults if d is not None)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            stack.append(child)


def _extract(fn: FunctionNode) -> _FnPatterns:
    """Direct pattern evidence of one function."""
    must: Set[str] = set()
    may: Set[str] = set()
    records_via_var = False
    for node in _own_nodes(fn):
        if not isinstance(node, ast.Call):
            continue
        _, name = _call_name(node.func)
        if name == "record_comm":
            arg: Optional[ast.expr] = node.args[0] if node.args else None
            for kw in node.keywords:
                if kw.arg == "pattern":
                    arg = kw.value
            p = _pattern_attr(arg) if arg is not None else None
            if p:
                must.add(p)
            else:
                records_via_var = True
        else:
            # a literal pattern handed to a helper that records it
            for arg in list(node.args) + [
                kw.value for kw in node.keywords
            ]:
                p = _pattern_attr(arg)
                if p:
                    must.add(p)
    if records_via_var:
        # the recorded pattern is a variable (parameter, conditional
        # choice): every CommPattern mention in the body is possible
        for node in _own_nodes(fn):
            if isinstance(node, ast.Attribute):
                p = _pattern_attr(node)
                if p:
                    may.add(p)
    return _FnPatterns(must=must, may=may - must)


def _in_closure(module: str, runner_module: str) -> bool:
    return module == runner_module or module.startswith(CLOSURE_PREFIXES)


def closure_patterns(
    graph: CallGraph,
    runner_qualname: str,
    *,
    cache: Optional[Dict[str, _FnPatterns]] = None,
) -> Tuple[Set[str], Set[str], Dict[str, str]]:
    """``(must, may, origin)`` pattern sets reachable from a runner."""
    if cache is None:
        cache = {}
    runner = graph.functions.get(runner_qualname)
    if runner is None:
        return set(), set(), {}
    runner_module = runner.module
    must: Set[str] = set()
    may: Set[str] = set()
    origin: Dict[str, str] = {}
    seen: Set[str] = set()
    stack = [runner_qualname]
    while stack:
        qn = stack.pop()
        if qn in seen:
            continue
        seen.add(qn)
        fn = graph.functions.get(qn)
        if fn is None or not _in_closure(fn.module, runner_module):
            continue
        pats = cache.get(qn)
        if pats is None:
            pats = _extract(fn)
            cache[qn] = pats
        for p in pats.must:
            must.add(p)
            origin.setdefault(p, qn)
        for p in pats.may:
            may.add(p)
            origin.setdefault(p, qn)
        for edge in fn.resolved:
            stack.append(edge.target)
    return must, may, origin


def inventory_findings(
    graph: CallGraph,
    inventories: Optional[Sequence[AppInventory]] = None,
) -> List[Finding]:
    """RC008 findings for every app whose runner is in the graph.

    ``inventories`` defaults to the live registry; tests pass
    hand-built :class:`AppInventory` rows against fixture modules.
    """
    if inventories is None:
        try:
            inventories = registry_inventories()
        except Exception:
            return []  # registry not importable in this lint scope
    out: List[Finding] = []
    cache: Dict[str, _FnPatterns] = {}
    for inv in inventories:
        mod = graph.modules.get(inv.runner_module)
        if mod is None or inv.runner_name not in mod.functions:
            continue
        runner = mod.functions[inv.runner_name]
        must, may, origin = closure_patterns(
            graph, runner.qualname, cache=cache
        )
        declared_all = inv.declared | inv.extras
        for p in sorted(must - declared_all):
            where = origin.get(p, runner.qualname).replace(":", "::")
            out.append(Finding(
                code="RC008",
                path=runner.path,
                line=runner.facts.line,
                col=0,
                symbol=runner.symbol,
                message=(
                    f"benchmark {inv.name!r} records CommPattern.{p} "
                    f"(reachable via {where}) but the registry "
                    "declares neither comm_patterns nor comm_extras "
                    "for it — update the spec or remove the record"
                ),
            ))
        for p in sorted(inv.declared - (must | may)):
            out.append(Finding(
                code="RC008",
                path=runner.path,
                line=runner.facts.line,
                col=0,
                symbol=runner.symbol,
                message=(
                    f"benchmark {inv.name!r} declares CommPattern.{p} "
                    "in its registry comm_patterns but no reachable "
                    "record_comm can emit it — the implementation "
                    "under-delivers the declared Table-7 inventory"
                ),
            ))
    out.sort(key=lambda f: (f.path, f.line, f.col, f.message))
    return out
