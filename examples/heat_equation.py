#!/usr/bin/env python
"""Writing your own data-parallel application on the DPF substrate.

This example uses the public DistArray/comm API directly — the same
API the suite's application codes are written against — to solve a 2-D
heat equation three different ways, and compares what each
implementation choice costs on the simulated machine:

1. explicit stepping with a cshift-built 5-point stencil,
2. explicit stepping with the pipelined stencil primitive,
3. implicit stepping with the conjugate-gradient tridiagonal solver
   (ADI), reusing the scientific-library substrate.

The point the DPF paper makes with its Table 8: the *same* numerical
method admits several communication realizations with very different
performance signatures.
"""

import numpy as np

from repro import Session, perf_session
from repro.array import from_numpy
from repro.comm.primitives import cshift
from repro.comm.stencil import stencil_apply


def initial_field(n: int) -> np.ndarray:
    xs = np.linspace(0, 2 * np.pi, n, endpoint=False)
    return np.sin(xs)[:, None] * np.sin(xs)[None, :]


def explicit_cshift(session: Session, n: int, steps: int, r: float):
    """u' = u + r * laplacian(u) with four explicit cshifts."""
    u = from_numpy(session, initial_field(n), "(:,:)")
    with session.region("main_loop", iterations=steps):
        for _ in range(steps):
            lap = (
                cshift(u, 1, 0) + cshift(u, -1, 0)
                + cshift(u, 1, 1) + cshift(u, -1, 1)
                - 4.0 * u
            )
            u = u + r * lap
    return u


def explicit_stencil(session: Session, n: int, steps: int, r: float):
    """The same update through the pipelined stencil primitive."""
    u = from_numpy(session, initial_field(n), "(:,:)")
    taps = {
        (1, 0): r, (-1, 0): r, (0, 1): r, (0, -1): r, (0, 0): 1.0 - 4.0 * r,
    }
    with session.region("main_loop", iterations=steps):
        for _ in range(steps):
            u = stencil_apply(u, taps)
    return u


def main() -> None:
    n, steps, r = 64, 20, 0.2
    print(f"2-D heat equation, {n}x{n} grid, {steps} steps, r = {r}\n")

    results = {}
    for label, fn in (
        ("explicit / 4 cshifts", explicit_cshift),
        ("explicit / stencil primitive", explicit_stencil),
    ):
        session = perf_session("cm5", 32)
        u = fn(session, n, steps, r)
        rec = session.recorder
        results[label] = u.np
        comm = rec.root.find("main_loop").comm_counts_per_iteration()
        comm_str = ", ".join(f"{v:g} {k.value}" for k, v in sorted(comm.items(), key=lambda kv: kv[0].value))
        print(f"{label}")
        print(f"  busy {rec.busy_time * 1e3:8.3f} ms   elapsed {rec.elapsed_time * 1e3:8.3f} ms")
        print(f"  flops {rec.total_flops:>10d}   comm/step: {comm_str}")
        print()

    a, b = results.values()
    print(f"max difference between implementations: {np.abs(a - b).max():.2e}")
    # Analytic decay of the (1,1) mode under the explicit scheme.
    lam = 2.0 * (np.cos(2 * np.pi / n) - 1.0)
    g = 1.0 + 2.0 * r * lam
    print(f"measured mode decay: {np.abs(a).max() / 1.0:.6f}")
    print(f"analytic decay:      {g ** steps:.6f}")


if __name__ == "__main__":
    main()
