"""Stencil evaluation (Tables 7 and 8).

The paper distinguishes the *stencil* communication pattern from the
primitives used to implement it: boson/wave-1D/ellip-2D/rp/mdcell
build stencils from CSHIFTs, step4 from chained CSHIFTs, and the
diff-* family from array sections (Table 8).  This module provides the
stencil *primitive*: one call fetches all neighbor values, charging a
single pipelined multi-surface exchange — the "stencil primitive …
provided to retrieve the data from several neighbors simultaneously
and to pipeline the combining of the data" of §4(2).

Benchmarks that need exact FLOP formulas combine the returned shifted
arrays with explicit DistArray arithmetic;
:func:`stencil_apply` offers a generic combined evaluation for user
code.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.array.distarray import DistArray
from repro.array.roll import fast_roll
from repro.metrics.flops import FlopKind
from repro.metrics.patterns import CommPattern

Offset = Union[int, Tuple[int, ...]]


def _normalize_offsets(
    offsets: Sequence[Offset], ndim: int
) -> List[Tuple[int, ...]]:
    out: List[Tuple[int, ...]] = []
    for off in offsets:
        if isinstance(off, (int, np.integer)):
            off = (int(off),) + (0,) * (ndim - 1)
        off = tuple(int(o) for o in off)
        if len(off) != ndim:
            raise ValueError(f"offset {off} has wrong rank for {ndim}-D array")
        out.append(off)
    return out


def _shift(data: np.ndarray, offset: Tuple[int, ...], boundary: str, fill) -> np.ndarray:
    """Shifted copy: ``result(i) = data(i + offset)`` per axis."""
    if boundary == "periodic":
        result = data
        for axis, s in enumerate(offset):
            if s:
                result = fast_roll(result, -s, axis)
        return result if result is not data else data.copy()
    if boundary in ("dirichlet", "constant"):
        result = np.full_like(data, fill)
        src = [slice(None)] * data.ndim
        dst = [slice(None)] * data.ndim
        for axis, s in enumerate(offset):
            n = data.shape[axis]
            if abs(s) >= n:
                return result
            if s >= 0:
                src[axis] = slice(s, n)
                dst[axis] = slice(0, n - s)
            else:
                src[axis] = slice(0, n + s)
                dst[axis] = slice(-s, n)
        result[tuple(dst)] = data[tuple(src)]
        return result
    raise ValueError(f"unknown boundary {boundary!r}")


def stencil_shifts(
    x: DistArray,
    offsets: Sequence[Offset],
    *,
    boundary: str = "periodic",
    fill=0.0,
    pattern: CommPattern = CommPattern.STENCIL,
) -> List[DistArray]:
    """Fetch all stencil neighbors in one pipelined exchange.

    Returns one shifted DistArray per offset.  The communication charge
    is a single :class:`CommPattern.STENCIL` event whose stage count is
    the number of distinct non-zero surface exchanges — the pipelining
    benefit of a dedicated stencil primitive.
    """
    offs = _normalize_offsets(offsets, x.ndim)
    results = [
        DistArray(_shift(x.data, off, boundary, fill), x.layout, x.session)
        for off in offs
    ]
    itemsize = x.data.itemsize
    nodes = x.session.nodes
    net = 0
    stages = 0
    for off in offs:
        off_bytes = 0
        for axis, s in enumerate(off):
            if s:
                off_bytes += (
                    x.layout.shift_network_elements(nodes, axis, s) * itemsize
                )
        if off_bytes:
            stages += 1
            net += off_bytes
    x.session.record_comm(
        pattern,
        bytes_network=net,
        bytes_local=x.size * itemsize * max(1, len(offs) - 1),
        rank=x.ndim,
        stages=max(1, stages),
        detail=f"{len(offs)}-point",
    )
    return results


def stencil_apply(
    x: DistArray,
    taps: Dict[Tuple[int, ...], float],
    *,
    boundary: str = "periodic",
    fill=0.0,
) -> DistArray:
    """Generic weighted-stencil evaluation: ``sum(c * shift(x, off))``.

    Coefficients are grouped by value, so a 7-point Laplacian with six
    equal off-center taps charges 5 adds + 1 multiply for the neighbor
    group rather than six separate multiplies — matching how a
    performance-oriented CMF programmer (or the CMSSL stencil routine)
    would evaluate it.
    """
    if not taps:
        raise ValueError("taps must be non-empty")
    offs = _normalize_offsets(list(taps.keys()), x.ndim)
    coeffs = list(taps.values())
    shifted = stencil_shifts(x, offs, boundary=boundary, fill=fill)

    groups: Dict[float, List[DistArray]] = {}
    for arr, c in zip(shifted, coeffs):
        groups.setdefault(float(c), []).append(arr)

    session = x.session
    partials: List[np.ndarray] = []
    n_add = 0
    n_mul = 0
    for coeff, members in groups.items():
        acc = members[0].data.copy()
        for m in members[1:]:
            acc += m.data
            n_add += 1
        if coeff != 1.0:
            acc *= coeff
            n_mul += 1
        partials.append(acc)
    total = partials[0]
    for p in partials[1:]:
        total += p
        n_add += 1
    if n_add:
        session.charge_elementwise(FlopKind.ADD, x.layout, ops_per_element=n_add)
    if n_mul:
        session.charge_elementwise(FlopKind.MUL, x.layout, ops_per_element=n_mul)
    return DistArray(total, x.layout, session)
