"""Sharded run store: hash-prefix shards with concurrent-writer safety.

A flat :class:`~repro.engine.store.RunStore` is one JSONL file — fine
for a CLI run, hostile to a long-lived multi-writer server: every
append contends on a single file and a reader must scan everything.  A
:class:`ShardedRunStore` spreads records over
``<root>/shards/<prefix>.jsonl`` files keyed by the leading hex digits
of each record's request content hash, so concurrent writers mostly
touch *different* files, and hash-targeted lookups only read one shard.

Safety model (what ``repro serve`` relies on):

* **record appends** — one serialized line per record, written under a
  per-shard ``flock`` (plus an in-process mutex for threads sharing
  the store object), so lines from concurrent writers never interleave;
* **stats sidecars** — ``<root>/stats/<run_id>.json`` written via
  per-pid tmp file + atomic rename
  (:func:`~repro.engine.store.write_json_atomic`), the cache's
  convention;
* **layout marker** — ``<root>/store.json`` records the schema and
  shard width, so a store is always reopened with the width it was
  created with.

The read API (``records``/``resolve``/``run_records``/``history``/
``read_stats``) is inherited from
:class:`~repro.engine.store.StoreReader`, so ``engine runs``/``stats``/
``check``/``diff`` work on a sharded store exactly as on a flat one —
``open_store`` picks the flavor by path.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.engine.store import StoreReader, write_json_atomic

try:  # POSIX inter-process file locking; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

#: Sharded-store layout version (the marker file's ``schema``).
SHARD_SCHEMA_VERSION = 1

#: Default shard-key width in hex digits (2 → up to 256 shards).
DEFAULT_SHARD_WIDTH = 2

#: Shard key used for records carrying no request hash.
FALLBACK_SHARD = "misc"


class ShardedRunStore(StoreReader):
    """Run records sharded by request-hash prefix under one directory."""

    MARKER = "store.json"

    def __init__(
        self,
        root: Union[str, Path],
        *,
        width: Optional[int] = None,
    ) -> None:
        self.path = Path(root)
        self.root = self.path
        marker = self._read_marker()
        if marker is not None:
            stored_width = int(marker.get("width", DEFAULT_SHARD_WIDTH))
            if width is not None and width != stored_width:
                raise ValueError(
                    f"store {self.root} was created with shard width "
                    f"{stored_width}, not {width}"
                )
            self.width = stored_width
        else:
            self.width = width if width is not None else DEFAULT_SHARD_WIDTH
            if not (1 <= self.width <= 8):
                raise ValueError(f"shard width must be in 1..8, got {self.width}")
        self._locks: Dict[str, threading.Lock] = {}
        self._locks_guard = threading.Lock()

    # -- layout ---------------------------------------------------------
    @property
    def shards_dir(self) -> Path:
        return self.root / "shards"

    @property
    def stats_dir(self) -> Path:
        """Directory of per-run stats sidecars (atomic writes)."""
        return self.root / "stats"

    def _read_marker(self) -> Optional[Dict]:
        try:
            with (self.path / self.MARKER).open(encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    def _write_marker(self) -> None:
        marker = self.root / self.MARKER
        if not marker.exists():
            write_json_atomic(
                marker,
                {
                    "kind": "sharded-run-store",
                    "schema": SHARD_SCHEMA_VERSION,
                    "width": self.width,
                },
            )

    def shard_key(self, record: Dict) -> str:
        """The shard a record belongs to (hash prefix, lowercased)."""
        request_hash = record.get("request_hash") or ""
        if not request_hash:
            return FALLBACK_SHARD
        return str(request_hash)[: self.width].lower()

    def shard_path(self, key: str) -> Path:
        return self.shards_dir / f"{key}.jsonl"

    def shard_keys(self) -> List[str]:
        """Keys of every shard currently on disk, sorted."""
        if not self.shards_dir.is_dir():
            return []
        return sorted(p.stem for p in self.shards_dir.glob("*.jsonl"))

    def _shard_mutex(self, key: str) -> threading.Lock:
        with self._locks_guard:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = threading.Lock()
            return lock

    # -- writing --------------------------------------------------------
    def append(self, record: Dict) -> None:
        """Append one record to its shard, safely vs concurrent writers.

        The line is serialized first and written with a single
        ``write`` while holding both the in-process shard mutex
        (threads sharing this store) and a ``flock`` on the shard file
        (other processes), so concurrent appends can never interleave
        bytes within a line.
        """
        self.extend([record])

    def extend(self, records: Iterable[Dict]) -> None:
        """Append many records, grouped per shard under one lock each."""
        by_shard: Dict[str, List[str]] = {}
        for record in records:
            line = json.dumps(record, sort_keys=True) + "\n"
            by_shard.setdefault(self.shard_key(record), []).append(line)
        if not by_shard:
            return
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        self._write_marker()
        for key, lines in sorted(by_shard.items()):
            path = self.shard_path(key)
            with self._shard_mutex(key):
                with path.open("a", encoding="utf-8") as fh:
                    if fcntl is not None:
                        fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
                    try:
                        fh.write("".join(lines))
                        fh.flush()
                    finally:
                        if fcntl is not None:
                            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    # -- reading --------------------------------------------------------
    def records(self) -> List[Dict]:
        """All records across shards, oldest first.

        Shard files interleave runs, so global order is rebuilt from
        the per-record append timestamp (``ts``); ties keep shard-file
        order, which preserves each writer's own append sequence.
        """
        out: List[Dict] = []
        for key in self.shard_keys():
            with self.shard_path(key).open(encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if line:
                        out.append(json.loads(line))
        out.sort(key=lambda r: r.get("ts") or 0.0)
        return out

    def records_for_hash(self, request_hash: str) -> List[Dict]:
        """Records of one request hash — reads only its shard."""
        key = str(request_hash)[: self.width].lower()
        path = self.shard_path(key)
        if not path.exists():
            return []
        out = []
        with path.open(encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    record = json.loads(line)
                    if record.get("request_hash") == request_hash:
                        out.append(record)
        out.sort(key=lambda r: r.get("ts") or 0.0)
        return out
