"""Domain rules RC001-RC006: AST analysis of accounting discipline.

The linter reasons about *payload taint*: expressions derived from a
``DistArray.data`` attribute are raw NumPy payloads of distributed
arrays.  Arithmetic on tainted values executes data-parallel FLOPs
that the DPF conventions (paper §1.5) require a matching
``session.charge_*`` call for; movement of tainted values (roll,
transpose, take, ...) requires a ``record_comm``.  Operating through
``DistArray`` operators, the fused kernels or the collective library
is always safe — those layers charge internally — so only raw-payload
escapes are flagged.

Deliberately *not* tainted:

* function parameters — helpers receiving plain arrays (stencil
  shifters, interaction kernels) are charged by their callers;
* the ``DistArray.np`` accessor — the sanctioned verification window,
  exempt from accounting by design;
* shape/dtype-style attributes — index arithmetic is not FLOPs.

This trades recall for precision: a rule that cries wolf on every
verification helper would be baselined into silence.  The runtime
sanitizer (:mod:`repro.check.sanitizer`) covers the complement.
"""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.check.findings import Finding

#: Module aliases recognized as NumPy.
NP_MODULES = {"np", "numpy"}

#: NumPy call names that execute floating-point arithmetic, mapped to
#: the FlopKind name the DPF convention charges them under.
NP_ARITH: Dict[str, str] = {
    "add": "ADD",
    "subtract": "SUB",
    "multiply": "MUL",
    "divide": "DIV",
    "true_divide": "DIV",
    "floor_divide": "DIV",
    "reciprocal": "DIV",
    "sqrt": "SQRT",
    "cbrt": "SQRT",
    "exp": "EXP",
    "expm1": "EXP",
    "exp2": "EXP",
    "log": "LOG",
    "log2": "LOG",
    "log10": "LOG",
    "log1p": "LOG",
    "sin": "TRIG",
    "cos": "TRIG",
    "tan": "TRIG",
    "arcsin": "TRIG",
    "arccos": "TRIG",
    "arctan": "TRIG",
    "arctan2": "TRIG",
    "sinh": "TRIG",
    "cosh": "TRIG",
    "tanh": "TRIG",
    "hypot": "TRIG",
    "power": "POW",
    "float_power": "POW",
    "square": "MUL",
    "negative": "SUB",
    "absolute": "ABS",
    "abs": "ABS",
    "fabs": "ABS",
    "conj": "SUB",
    "conjugate": "SUB",
    "maximum": "COMPARE",
    "minimum": "COMPARE",
}

#: BinOp/AugAssign operator -> FlopKind name.
BINOP_KINDS = {
    ast.Add: "ADD",
    ast.Sub: "SUB",
    ast.Mult: "MUL",
    ast.Div: "DIV",
    ast.FloorDiv: "DIV",
    ast.MatMult: "MUL",
}

#: The 4x/8x-weighted kinds of the paper's FLOP convention; using one
#: without charging it is RC002.
SPECIAL_KINDS = {"DIV", "SQRT", "EXP", "LOG", "TRIG", "POW"}

#: NumPy data-movement calls (RC003).
NP_MOVEMENT = {
    "roll",
    "transpose",
    "swapaxes",
    "moveaxis",
    "rollaxis",
    "take",
    "put",
    "take_along_axis",
    "put_along_axis",
    # joining shards is movement too — the runtime sanitizer has
    # counted it since the ChargeBuffer PR; the lint agrees now
    "concatenate",
}

#: Bare-name movement helpers that do *not* charge internally
#: (``repro.array.roll.fast_roll`` is a speed substitute for
#: ``np.roll`` — same movement, still needs a record_comm in scope).
MOVEMENT_FUNCS = {"fast_roll"}

#: Reduction-style methods; on a tainted (raw payload) receiver they
#: execute uncharged work.
RAW_REDUCTION_METHODS = {"sum", "prod", "mean", "cumsum", "cumprod", "dot"}

#: Session/recorder methods that charge FLOPs.
CHARGE_METHODS = {
    "charge_elementwise",
    "charge_elementwise_seq",
    "charge_kernel",
    "charge_reduction_flops",
    "charge_flops",
    "charge_raw_flops",
    "charge_reduction",
}

#: Charges carrying pre-weighted totals (already include the 4x/8x
#: factors), which satisfy RC002 wholesale.
PREWEIGHTED_METHODS = {
    "charge_kernel",
    "charge_raw_flops",
    "charge_reduction_flops",
    "charge_reduction",
}

#: Library entry points that charge (FLOPs and/or comm) internally.
CHARGING_WRAPPERS = {
    "axpy",
    "fma",
    "scale_add",
    "linear_combine",
    "stencil_combine",
    "stencil_apply",
    "stencil_shifts",
    "cshift",
    "eoshift",
    "spread",
    "broadcast",
    "reduce_array",
    "reduce_location",
    "transpose",
    "remap",
    "send",
    "get",
    "gather",
    "scatter",
    "scan",
    "matvec",
    "pcr_solve",
    "sort_array",
    "rank_array",
    # repro.array.fused's internal charging helper: the public kernels
    # delegate all their charge_elementwise_seq calls to it.
    "_charge_steps",
}

#: DistArray elementwise intrinsics: calling one charges its kind.
DISTARRAY_KIND_METHODS = {
    "sqrt": "SQRT",
    "exp": "EXP",
    "log": "LOG",
    "sin": "TRIG",
    "cos": "TRIG",
    "abs": "ABS",
    "conj": "SUB",
}

#: Attributes that keep payload taint flowing (everything else —
#: .shape, .dtype, .size, .np ... — breaks the chain).
TAINT_ATTRS = {"data", "T", "real", "imag", "flat"}

#: Per-event accessors that raise (or silently miss events) on the
#: aggregate-only fast path.
EVENT_ACCESSORS = {"comm_events", "total_comm_events"}

#: Known charge sequences of the fused kernels (RC005), as FLOP-kind
#: multisets.  linear_combine is arity-dependent and handled in code.
FUSED_SEQUENCES: Dict[str, Dict[str, int]] = {
    "fma": {"MUL": 1, "ADD": 1},
    "scale_add": {"MUL": 2, "ADD": 1},
    "stencil_combine": {"MUL": 2, "SUB": 1, "ADD": 2},
}


@dataclass
class _Site:
    """One evidence site inside a function."""

    line: int
    col: int
    kind: Optional[str] = None
    detail: str = ""


@dataclass
class RawCall:
    """One call site, recorded for the interprocedural layer.

    ``recv``/``name`` are the :func:`_call_name` decomposition;
    ``args_tainted`` is whether any argument carried payload taint at
    the time of the call (under the scan's taint initialisation — the
    param-tainted scan reports a superset of the base scan).  The AST
    nodes are kept so :mod:`repro.check.callgraph` can resolve deep
    attribute chains and keyword arguments.
    """

    recv: Optional[str]
    name: Optional[str]
    line: int
    col: int
    args_tainted: bool
    func: ast.expr
    call: ast.Call


@dataclass
class FunctionFacts:
    """Everything the rules need to know about one function body."""

    symbol: str
    line: int
    compute_sites: List[_Site] = field(default_factory=list)
    movement_sites: List[_Site] = field(default_factory=list)
    charge_calls: Set[str] = field(default_factory=set)
    charged_kinds: Set[str] = field(default_factory=set)
    wrapper_calls: Set[str] = field(default_factory=set)
    has_record_comm: bool = False
    region_calls: List[_Site] = field(default_factory=list)
    with_region_calls: int = 0
    span_calls: List[_Site] = field(default_factory=list)
    unscoped_iteration_sites: List[_Site] = field(default_factory=list)
    event_accessor_sites: List[_Site] = field(default_factory=list)
    mentions_detail_events: bool = False
    session_reuse_sites: List[Tuple[str, _Site]] = field(
        default_factory=list
    )
    fused_calls: List[Tuple[str, ast.Call]] = field(default_factory=list)
    #: runs of >= 2 consecutive same-layout ``charge_elementwise``
    #: statements inside a loop body (RC007); detail carries the run
    #: length and layout expression
    hot_charge_runs: List[_Site] = field(default_factory=list)
    #: every call site, for the interprocedural layer
    calls: List[RawCall] = field(default_factory=list)

    # -- interprocedural annotations (filled by repro.check.callgraph;
    # -- defaults reproduce the per-function semantics exactly) --------
    #: a transitive callee charges FLOPs / records comm / calls a wrapper
    callee_charges_anything: bool = False
    #: a transitive callee charges FLOPs (RC002's gate)
    callee_charges_flops: bool = False
    #: FlopKinds charged by transitive callees (RC002's union)
    callee_charged_kinds: Set[str] = field(default_factory=set)
    #: a transitive callee records comm or calls a collective wrapper
    callee_records_comm: bool = False
    #: compute evidence flowing *through* calls: tainted args handed to
    #: a helper that computes on its parameters without charging
    call_compute_sites: List[_Site] = field(default_factory=list)
    #: movement evidence through calls (helper moves its parameters)
    call_movement_sites: List[_Site] = field(default_factory=list)

    @property
    def charges_flops(self) -> bool:
        return (
            bool(self.charge_calls)
            or bool(
                self.wrapper_calls
                & (CHARGING_WRAPPERS - {"cshift", "eoshift", "stencil_shifts"})
            )
            or self.callee_charges_flops
        )

    @property
    def charges_anything(self) -> bool:
        return (
            bool(self.charge_calls)
            or bool(self.wrapper_calls)
            or self.has_record_comm
            or self.callee_charges_anything
        )

    @property
    def preweighted(self) -> bool:
        return bool(self.charge_calls & PREWEIGHTED_METHODS)


def _call_name(func: ast.expr) -> Tuple[Optional[str], Optional[str]]:
    """Resolve a call target to ``(module_or_receiver, name)``.

    ``np.sqrt`` -> ("np", "sqrt"); ``sqrt`` -> (None, "sqrt");
    ``x.sqrt`` -> ("<attr>", "sqrt"); ``np.fft.fft`` -> ("np.fft", "fft").
    """
    if isinstance(func, ast.Name):
        return None, func.id
    if isinstance(func, ast.Attribute):
        value = func.value
        if isinstance(value, ast.Name):
            return value.id, func.attr
        if isinstance(value, ast.Attribute) and isinstance(
            value.value, ast.Name
        ):
            return f"{value.value.id}.{value.attr}", func.attr
        return "<attr>", func.attr
    return None, None


def _nested_stmt_lists(stmt: ast.stmt) -> List[List[ast.stmt]]:
    """Statement lists nested directly inside ``stmt``, loops excluded.

    ``with``/``if``/``try`` blocks are transparent for RC007 — charges
    inside them still execute once per surrounding-loop iteration — but
    nested ``for``/``while`` bodies are not: those loops scan their own
    bodies when visited.
    """
    if isinstance(stmt, (ast.For, ast.While, ast.AsyncFor)):
        return []
    lists: List[List[ast.stmt]] = []
    for name in ("body", "orelse", "finalbody"):
        block = getattr(stmt, name, None)
        if isinstance(block, list) and block and isinstance(
            block[0], ast.stmt
        ):
            lists.append(block)
    for handler in getattr(stmt, "handlers", []):
        lists.append(handler.body)
    return lists


class _FunctionScanner(ast.NodeVisitor):
    """Single in-order pass over one function body.

    Maintains the set of tainted (raw-payload-derived) names; loops are
    scanned twice so taint introduced late in a loop body reaches uses
    at its top on the second pass (evidence sites are deduplicated by
    position).
    """

    def __init__(self, facts: FunctionFacts) -> None:
        self.facts = facts
        self.tainted: Set[str] = set()
        self._seen_sites: Set[Tuple[int, int, str]] = set()
        self._with_depth_calls: Set[int] = set()
        #: nesting depth of 'with session.region(...)' blocks at the
        #: current traversal point (RC006 scoping)
        self._region_depth = 0
        self._fused_seen: Set[int] = set()
        #: session names already passed to run_benchmark and not
        #: reassigned since (reassignment = a fresh session)
        self._sessions_used: Set[str] = set()
        #: call sites keyed by AST node identity (nested calls like
        #: ``self._ensure().submit(...)`` share a position, so position
        #: keys would collapse them); the loop double-scan revisits the
        #: same node objects, and args_tainted is OR-merged then
        self._raw_calls: Dict[int, RawCall] = {}

    # -- taint ----------------------------------------------------------
    def _is_tainted(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Attribute):
            if node.attr == "data":
                return True
            if node.attr in TAINT_ATTRS:
                return self._is_tainted(node.value)
            return False
        if isinstance(node, ast.Subscript):
            return self._is_tainted(node.value)
        if isinstance(node, ast.BinOp):
            return self._is_tainted(node.left) or self._is_tainted(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._is_tainted(node.operand)
        if isinstance(node, (ast.Tuple, ast.List)):
            return any(self._is_tainted(e) for e in node.elts)
        if isinstance(node, ast.IfExp):
            return self._is_tainted(node.body) or self._is_tainted(node.orelse)
        if isinstance(node, ast.Starred):
            return self._is_tainted(node.value)
        if isinstance(node, ast.Call):
            recv, name = _call_name(node.func)
            args_tainted = any(self._is_tainted(a) for a in node.args) or any(
                self._is_tainted(k.value) for k in node.keywords
            )
            if recv in NP_MODULES and args_tainted:
                return True
            if recv == "<attr>" or (recv and recv not in NP_MODULES):
                # method call: taint flows through payload methods
                if name in {"copy", "astype", "view", "reshape", "ravel"}:
                    return self._is_tainted(node.func.value)  # type: ignore[attr-defined]
            return False
        return False

    def _taint_targets(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.tainted.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._taint_targets(elt)

    def _untaint_targets(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._untaint_targets(elt)

    # -- evidence recording ---------------------------------------------
    def _add_site(
        self,
        bucket: List[_Site],
        node: ast.AST,
        kind: Optional[str],
        detail: str = "",
    ) -> None:
        key = (node.lineno, node.col_offset, detail or (kind or ""))
        if key in self._seen_sites:
            return
        self._seen_sites.add(key)
        bucket.append(_Site(node.lineno, node.col_offset, kind, detail))

    # -- statements ------------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested functions get their own scan

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]
    visit_Lambda = visit_FunctionDef  # type: ignore[assignment]

    def _reset_sessions(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self._sessions_used.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._reset_sessions(elt)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for t in node.targets:
            self._reset_sessions(t)
        if self._is_tainted(node.value):
            for t in node.targets:
                self._taint_targets(t)
        else:
            for t in node.targets:
                if isinstance(t, ast.Name):
                    self._untaint_targets(t)
        for t in node.targets:
            if not isinstance(t, ast.Name):
                self.visit(t)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._reset_sessions(node.target)
        if node.value is not None:
            self.visit(node.value)
            if self._is_tainted(node.value):
                self._taint_targets(node.target)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        kind = BINOP_KINDS.get(type(node.op))
        if kind and (
            self._is_tainted(node.target) or self._is_tainted(node.value)
        ):
            self._add_site(
                self.facts.compute_sites, node, kind, f"augmented {kind}"
            )
            self._taint_targets(node.target)

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        if self._is_tainted(node.iter):
            self._taint_targets(node.target)
        self._scan_charge_runs(node.body)
        for _ in range(2):  # second pass propagates loop-carried taint
            for stmt in node.body:
                self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self._scan_charge_runs(node.body)
        for _ in range(2):
            for stmt in node.body:
                self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)

    def _scan_charge_runs(self, body: List[ast.stmt]) -> None:
        """RC007 evidence: consecutive same-layout charges in a loop.

        Walks the loop's statement lists (descending into ``with``/
        ``if``/``try`` blocks, but not into nested loops — those scan
        their own bodies) looking for runs of two or more adjacent
        ``*.charge_elementwise(kind, layout, ...)`` statements whose
        layout expressions match textually.
        """
        run_layout: Optional[str] = None
        run_len = 0
        run_first: Optional[ast.stmt] = None

        def close_run() -> None:
            nonlocal run_layout, run_len, run_first
            if run_len >= 2 and run_first is not None:
                self._add_site(
                    self.facts.hot_charge_runs,
                    run_first,
                    None,
                    f"{run_len} consecutive charge_elementwise calls "
                    f"on {run_layout}",
                )
            run_layout = None
            run_len = 0
            run_first = None

        for stmt in body:
            layout_src = self._charge_stmt_layout(stmt)
            if layout_src is not None:
                if layout_src == run_layout:
                    run_len += 1
                else:
                    close_run()
                    run_layout = layout_src
                    run_len = 1
                    run_first = stmt
                continue
            close_run()
            for inner in _nested_stmt_lists(stmt):
                self._scan_charge_runs(inner)
        close_run()

    @staticmethod
    def _charge_stmt_layout(stmt: ast.stmt) -> Optional[str]:
        """Layout-expression source if ``stmt`` is a bare charge call."""
        if not isinstance(stmt, ast.Expr) or not isinstance(
            stmt.value, ast.Call
        ):
            return None
        recv, name = _call_name(stmt.value.func)
        if recv is None or name != "charge_elementwise":
            return None
        call = stmt.value
        layout_node: Optional[ast.expr] = None
        if len(call.args) >= 2:
            layout_node = call.args[1]
        else:
            for kw in call.keywords:
                if kw.arg == "layout":
                    layout_node = kw.value
        if layout_node is None:
            return None
        return ast.unparse(layout_node)

    def visit_With(self, node: ast.With) -> None:
        opens_region = False
        for item in node.items:
            ctx = item.context_expr
            if isinstance(ctx, ast.Call):
                recv, name = _call_name(ctx.func)
                if name == "region":
                    self.facts.with_region_calls += 1
                    self._with_depth_calls.add(id(ctx))
                    opens_region = True
                elif name == "iteration" and recv is not None:
                    self._with_depth_calls.add(id(ctx))
                    if self._region_depth == 0:
                        self._add_site(
                            self.facts.unscoped_iteration_sites,
                            ctx,
                            None,
                            "with iteration",
                        )
            self.visit(ctx)
            if item.optional_vars is not None:
                self._reset_sessions(item.optional_vars)
        if opens_region:
            self._region_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if opens_region:
            self._region_depth -= 1

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def visit_Return(self, node: ast.Return) -> None:
        # Returning a span context manager is a pass-through (the
        # caller enters it), not a dangling span.
        value = node.value
        if isinstance(value, ast.Call):
            recv, name = _call_name(value.func)
            if name == "iteration" and recv is not None:
                self._with_depth_calls.add(id(value))
        self.generic_visit(node)

    # -- expressions -----------------------------------------------------
    def visit_BinOp(self, node: ast.BinOp) -> None:
        kind = BINOP_KINDS.get(type(node.op))
        if kind is None and isinstance(node.op, ast.Pow):
            kind = "POW"
            if isinstance(node.right, ast.Constant) and node.right.value == 2:
                kind = "MUL"  # x**2 compiles to a multiply
        if kind and (
            self._is_tainted(node.left) or self._is_tainted(node.right)
        ):
            self._add_site(
                self.facts.compute_sites, node, kind, f"operator {kind}"
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in EVENT_ACCESSORS:
            self._add_site(
                self.facts.event_accessor_sites, node, None, node.attr
            )
        if node.attr == "detail_events":
            self.facts.mentions_detail_events = True
        self.generic_visit(node)

    def visit_keyword(self, node: ast.keyword) -> None:
        if node.arg == "detail_events":
            self.facts.mentions_detail_events = True
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        recv, name = _call_name(node.func)
        args = list(node.args) + [k.value for k in node.keywords]
        args_tainted = any(self._is_tainted(a) for a in args)

        key = id(node)
        prior = self._raw_calls.get(key)
        if prior is None:
            self._raw_calls[key] = RawCall(
                recv, name, node.lineno, node.col_offset,
                args_tainted, node.func, node,
            )
        elif args_tainted and not prior.args_tainted:
            prior.args_tainted = True

        if recv in NP_MODULES and name is not None:
            if name in NP_ARITH and args_tainted:
                self._add_site(
                    self.facts.compute_sites,
                    node,
                    NP_ARITH[name],
                    f"np.{name}",
                )
            if name in NP_MOVEMENT and args_tainted:
                self._add_site(
                    self.facts.movement_sites, node, None, f"np.{name}"
                )
        elif name is not None:
            if name in CHARGE_METHODS and recv is not None:
                self.facts.charge_calls.add(name)
            elif name == "record_comm":
                self.facts.has_record_comm = True
            elif name == "region" and recv is not None:
                if id(node) not in self._with_depth_calls:
                    self._add_site(
                        self.facts.region_calls, node, None, "region"
                    )
            elif name == "iteration" and recv is not None:
                if id(node) not in self._with_depth_calls:
                    self._add_site(
                        self.facts.span_calls, node, None, "iteration"
                    )
            elif name == "trace_session":
                self.facts.mentions_detail_events = True
            elif name == "run_benchmark":
                session_arg = None
                if len(node.args) >= 2 and isinstance(node.args[1], ast.Name):
                    session_arg = node.args[1].id
                for k in node.keywords:
                    if k.arg == "session" and isinstance(k.value, ast.Name):
                        session_arg = k.value.id
                if session_arg:
                    if session_arg in self._sessions_used:
                        key = (node.lineno, node.col_offset, "reuse")
                        if key not in self._seen_sites:
                            self._seen_sites.add(key)
                            self.facts.session_reuse_sites.append(
                                (
                                    session_arg,
                                    _Site(node.lineno, node.col_offset),
                                )
                            )
                    self._sessions_used.add(session_arg)
            elif name in MOVEMENT_FUNCS and recv is None and args_tainted:
                # fast_roll et al. move payloads without charging — the
                # runtime sanitizer counts them, so must the lint
                self._add_site(
                    self.facts.movement_sites, node, None, f"{name}()"
                )
            elif name in CHARGING_WRAPPERS and recv is None:
                self.facts.wrapper_calls.add(name)
            elif recv is not None and recv not in NP_MODULES:
                if name in DISTARRAY_KIND_METHODS and not self._is_tainted(
                    getattr(node.func, "value", node.func)
                ):
                    # DistArray intrinsic: charges its kind internally.
                    self.facts.charged_kinds.add(DISTARRAY_KIND_METHODS[name])
                    self.facts.wrapper_calls.add(f".{name}")
                elif name in DISTARRAY_KIND_METHODS and self._is_tainted(
                    getattr(node.func, "value", node.func)
                ):
                    self._add_site(
                        self.facts.compute_sites,
                        node,
                        DISTARRAY_KIND_METHODS[name].upper(),
                        f"payload .{name}()",
                    )
                elif name in RAW_REDUCTION_METHODS and self._is_tainted(
                    getattr(node.func, "value", node.func)
                ):
                    self._add_site(
                        self.facts.compute_sites,
                        node,
                        None,
                        f"payload .{name}()",
                    )
                elif name in NP_MOVEMENT and self._is_tainted(
                    getattr(node.func, "value", node.func)
                ):
                    self._add_site(
                        self.facts.movement_sites, node, None, f".{name}()"
                    )

        if name in FUSED_SEQUENCES or name in ("axpy", "linear_combine"):
            if id(node) not in self._fused_seen:
                self._fused_seen.add(id(node))
                self.facts.fused_calls.append((name, node))

        # FlopKind.X mentions count as charged kinds.
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        pass

    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Attribute):
            value = node.value
            if isinstance(value, ast.Name) and value.id == "FlopKind":
                self.facts.charged_kinds.add(node.attr)
        super().generic_visit(node)


def _collect_flopkind_mentions(tree: ast.AST, facts: FunctionFacts) -> None:
    """Record every ``FlopKind.X`` mention as a charged kind."""
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "FlopKind"
        ):
            facts.charged_kinds.add(node.attr)


def scan_function(
    node: ast.AST, symbol: str, *, params: Sequence[str] = ()
) -> FunctionFacts:
    """Analyze one function (or module) body and return its facts.

    ``params`` pre-taints the named parameters: the interprocedural
    layer uses a second scan with every parameter tainted to learn
    whether a helper computes on (or moves) what its callers hand it.
    """
    facts = FunctionFacts(symbol=symbol, line=getattr(node, "lineno", 1))
    scanner = _FunctionScanner(facts)
    scanner.tainted.update(params)
    body = node.body if hasattr(node, "body") else [node]
    for stmt in body:
        scanner.visit(stmt)
    facts.calls = list(scanner._raw_calls.values())
    _collect_flopkind_mentions(node, facts)
    return facts


# ----------------------------------------------------------------------
# Rule emitters
# ----------------------------------------------------------------------
def rc001_uncharged_compute(facts: FunctionFacts, path: str) -> List[Finding]:
    """RC001: payload arithmetic in a function that charges nothing.

    Evidence is the function's own tainted-compute sites plus (in
    interprocedural mode) call sites where tainted data is handed to a
    helper that computes on its parameters without charging; the charge
    scope silencing the rule is likewise the function *and* every
    transitive callee.
    """
    sites = facts.compute_sites + facts.call_compute_sites
    if not sites or facts.charges_anything:
        return []
    if "reference" in facts.symbol.rsplit(".", 1)[-1]:
        return []
    first = min(sites, key=lambda s: (s.line, s.col))
    n = len(sites)
    return [
        Finding(
            code="RC001",
            path=path,
            line=first.line,
            col=first.col,
            symbol=facts.symbol,
            message=(
                "numpy arithmetic on distributed payload data "
                f"({first.detail}; {n} site(s)) but the function charges "
                "no FLOPs and records no communication — add "
                "session.charge_* calls or route through DistArray/"
                "repro.array.fused"
            ),
        )
    ]


def rc002_kind_mismatch(facts: FunctionFacts, path: str) -> List[Finding]:
    """RC002: a 4x/8x-weighted operation with no charge of that kind."""
    if not facts.charges_flops or facts.preweighted:
        return []
    if "reference" in facts.symbol.rsplit(".", 1)[-1]:
        return []
    out: List[Finding] = []
    seen: Set[str] = set()
    for site in facts.compute_sites + facts.call_compute_sites:
        kind = site.kind
        if kind is None or kind not in SPECIAL_KINDS or kind in seen:
            continue
        if kind in facts.charged_kinds or kind in facts.callee_charged_kinds:
            continue
        seen.add(kind)
        out.append(
            Finding(
                code="RC002",
                path=path,
                line=site.line,
                col=site.col,
                symbol=facts.symbol,
                message=(
                    f"{site.detail} executes a {kind} "
                    f"({'4x' if kind in ('DIV', 'SQRT') else '8x'}-weighted "
                    "under the paper's FLOP convention) but no "
                    f"FlopKind.{kind} charge appears in this function"
                ),
            )
        )
    return out


def rc003_comm_without_record(
    facts: FunctionFacts, path: str
) -> List[Finding]:
    """RC003: payload data movement with no communication record."""
    sites = facts.movement_sites + facts.call_movement_sites
    if not sites:
        return []
    if (
        facts.has_record_comm
        or facts.wrapper_calls
        or facts.callee_records_comm
    ):
        return []
    if "reference" in facts.symbol.rsplit(".", 1)[-1]:
        return []
    first = min(sites, key=lambda s: (s.line, s.col))
    return [
        Finding(
            code="RC003",
            path=path,
            line=first.line,
            col=first.col,
            symbol=facts.symbol,
            message=(
                f"{first.detail} moves distributed payload data "
                f"({len(sites)} site(s)) but the function "
                "records no communication — call session.record_comm or "
                "use the collective library (cshift/transpose/...)"
            ),
        )
    ]


def rc004_session_misuse(facts: FunctionFacts, path: str) -> List[Finding]:
    """RC004: reused sessions, dangling regions, fast-path accessors."""
    out: List[Finding] = []
    for session_name, site in facts.session_reuse_sites:
        out.append(
            Finding(
                code="RC004",
                path=path,
                line=site.line,
                col=site.col,
                symbol=facts.symbol,
                message=(
                    f"session {session_name!r} passed to run_benchmark "
                    "more than once without reassignment; reports "
                    "require a fresh session per run (the runner raises "
                    "on recorded activity)"
                ),
            )
        )
    for site in facts.region_calls:
        out.append(
            Finding(
                code="RC004",
                path=path,
                line=site.line,
                col=site.col,
                symbol=facts.symbol,
                message=(
                    "session.region(...) called outside a 'with' "
                    "statement: the region is never entered or closed, so "
                    "charges land in the parent region"
                ),
            )
        )
    if not facts.mentions_detail_events:
        for site in facts.event_accessor_sites:
            out.append(
                Finding(
                    code="RC004",
                    path=path,
                    line=site.line,
                    col=site.col,
                    symbol=facts.symbol,
                    message=(
                        f"per-event accessor .{site.detail} is reachable "
                        "on the aggregate-only fast path, where events "
                        "are dropped; guard on recorder.detail_events or "
                        "open the session with Session(detail_events="
                        "True) / repro.sessions.trace_session"
                    ),
                )
            )
    return out


# -- RC005: fused-kernel parity ----------------------------------------
def _comment_for_call(
    call: ast.Call, source_lines: Sequence[str]
) -> Optional[str]:
    """The documenting comment of a fused call: same line, else above."""
    lineno = call.lineno
    line = source_lines[lineno - 1] if lineno - 1 < len(source_lines) else ""
    if "#" in line:
        return line.split("#", 1)[1].strip()
    for back in (2, 3):
        idx = lineno - back
        if idx < 0 or idx >= len(source_lines):
            break
        stripped = source_lines[idx].strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            return stripped.lstrip("#").strip()
        break
    return None


def _ops_from_comment(text: str) -> Optional[Counter]:
    """FLOP-kind multiset of the expression documented in a comment.

    Handles ``name = expr``, ``name += expr`` / ``-=`` (the augmented
    operator contributes its ADD/SUB), and trailing prose after a comma
    (stripped progressively until the expression parses).
    """
    extra: Counter = Counter()
    for aug, kind in (("+=", "ADD"), ("-=", "SUB"), ("*=", "MUL")):
        if aug in text:
            text = text.split(aug, 1)[1]
            extra[kind] += 1
            break
    else:
        if "=" in text and "==" not in text:
            text = text.split("=", 1)[1]
    text = text.strip()
    tree = None
    for _ in range(4):
        try:
            tree = ast.parse(text, mode="eval")
            break
        except SyntaxError:
            if "," not in text:
                return None
            text = text.rsplit(",", 1)[0].strip()
    if tree is None:
        return None
    ops: Counter = Counter(extra)
    for node in ast.walk(tree):
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Pow):
                if (
                    isinstance(node.right, ast.Constant)
                    and node.right.value == 2
                ):
                    ops["MUL"] += 1
                else:
                    ops["POW"] += 1
                continue
            kind = BINOP_KINDS.get(type(node.op))
            if kind:
                ops[kind] += 1
    if sum(ops.values()) == 0:
        return None
    return ops


def _expected_fused_ops(name: str, call: ast.Call) -> Optional[Counter]:
    """Charged FLOP-kind multiset of one fused-kernel call."""
    if name == "axpy":
        subtract = False
        for kw in call.keywords:
            if kw.arg == "subtract":
                if not isinstance(kw.value, ast.Constant):
                    return None  # dynamic flag: cannot check statically
                subtract = bool(kw.value.value)
        return Counter({"MUL": 1, "SUB" if subtract else "ADD": 1})
    if name == "linear_combine":
        n = 0
        for arg in call.args:
            if isinstance(arg, ast.Starred):
                return None  # dynamic arity
            n += 1
        if n == 0:
            return None
        return Counter({"MUL": n, "ADD": n - 1})
    spec = FUSED_SEQUENCES.get(name)
    return Counter(spec) if spec else None


def rc005_fused_parity(
    facts: FunctionFacts, path: str, source_lines: Sequence[str]
) -> List[Finding]:
    """RC005: fused call whose documented expression disagrees."""
    out: List[Finding] = []
    for name, call in facts.fused_calls:
        expected = _expected_fused_ops(name, call)
        if expected is None:
            continue
        comment = _comment_for_call(call, source_lines)
        if comment is None:
            continue
        documented = _ops_from_comment(comment)
        if documented is None:
            continue
        if documented != expected:
            exp = ", ".join(f"{k}x{v}" for k, v in sorted(expected.items()))
            doc = ", ".join(f"{k}x{v}" for k, v in sorted(documented.items()))
            out.append(
                Finding(
                    code="RC005",
                    path=path,
                    line=call.lineno,
                    col=call.col_offset,
                    symbol=facts.symbol,
                    message=(
                        f"{name}() charges [{exp}] but the documented "
                        f"expression ({comment!r}) implies [{doc}]; fix "
                        "the comment or the call so the charged FLOP-"
                        "kind sequence matches what it replaces"
                    ),
                )
            )
    return out


def rc006_dangling_spans(facts: FunctionFacts, path: str) -> List[Finding]:
    """RC006: obs span APIs used where no span can open or close.

    Two shapes are flagged:

    * ``session.iteration(...)`` called but not entered with ``with``
      (and not returned to a caller who will enter it) — the context
      manager is created and dropped, so no span opens;
    * ``with session.iteration(...)`` outside any ``with
      session.region(...)`` block in a function that opens regions of
      its own — the marker lands in whatever region the *caller* left
      current, which is almost never the intent.  Helper functions that
      open no regions are exempt: their caller owns the region scope
      (e.g. a per-stage FFT sweep invoked under ``main_loop``).
    """
    out: List[Finding] = []
    for site in facts.span_calls:
        out.append(
            Finding(
                code="RC006",
                path=path,
                line=site.line,
                col=site.col,
                symbol=facts.symbol,
                message=(
                    "session.iteration(...) called outside a 'with' "
                    "statement: the span context manager is never "
                    "entered, so no iteration span opens — write "
                    "'with session.iteration(i):' around the loop body"
                ),
            )
        )
    if facts.with_region_calls:
        for site in facts.unscoped_iteration_sites:
            out.append(
                Finding(
                    code="RC006",
                    path=path,
                    line=site.line,
                    col=site.col,
                    symbol=facts.symbol,
                    message=(
                        "'with session.iteration(...)' opened outside "
                        "any 'with session.region(...)' block although "
                        "this function manages its own regions; the "
                        "iteration span attaches to the caller's "
                        "current region — move the marker inside the "
                        "region block it annotates"
                    ),
                )
            )
    return out


def rc007_unfused_hot_charges(
    facts: FunctionFacts, path: str
) -> List[Finding]:
    """RC007: consecutive same-layout charges inside a loop body.

    Each ``charge_elementwise`` call pays Python-call and
    layout-pricing overhead once per loop iteration; a run of two or
    more adjacent calls on the same layout is the exact shape
    ``charge_elementwise_seq`` fuses into a single priced call with
    bit-identical totals.
    """
    out: List[Finding] = []
    for site in facts.hot_charge_runs:
        out.append(
            Finding(
                code="RC007",
                path=path,
                line=site.line,
                col=site.col,
                symbol=facts.symbol,
                message=(
                    f"{site.detail} inside a loop body — fuse into one "
                    "charge_elementwise_seq(((kind, ops, complex), "
                    "...), layout) call; totals are bit-identical and "
                    "per-iteration accounting overhead drops to a "
                    "single call"
                ),
            )
        )
    return out


def apply_rules(
    facts: FunctionFacts, path: str, source_lines: Sequence[str]
) -> List[Finding]:
    """Run every rule over one function's facts."""
    findings: List[Finding] = []
    findings.extend(rc001_uncharged_compute(facts, path))
    findings.extend(rc002_kind_mismatch(facts, path))
    findings.extend(rc003_comm_without_record(facts, path))
    findings.extend(rc004_session_misuse(facts, path))
    findings.extend(rc005_fused_parity(facts, path, source_lines))
    findings.extend(rc006_dangling_spans(facts, path))
    findings.extend(rc007_unfused_hot_charges(facts, path))
    return findings
