"""Scientific software library — the CMSSL stand-in (paper §3).

The DPF linear algebra subset tests compiler-generated code against a
highly optimized library.  This package *is* that library for the
reproduction: matrix-vector multiplication (four layout variants),
dense LU and QR factor/solve, Gauss-Jordan solution, parallel cyclic
reduction and conjugate-gradient tridiagonal solvers, a one-sided
Jacobi eigenanalysis and radix-2 FFTs in one to three dimensions.

Where possible the interface conventions follow CMSSL's: factor and
solve are separate entry points (the paper times them separately for
``lu`` and ``qr``), multiple independent problem *instances* are
supported along leading axes, and several layouts are accepted
(Table 2).
"""

from repro.linalg.matvec import matvec
from repro.linalg.lu import lu_factor, lu_solve
from repro.linalg.qr import qr_factor, qr_solve
from repro.linalg.gauss_jordan import gauss_jordan_solve
from repro.linalg.pcr import pcr_solve
from repro.linalg.conj_grad import cg_tridiagonal
from repro.linalg.jacobi_eigen import jacobi_eigen
from repro.linalg.fft import fft, fft2, fft3, ifft

__all__ = [
    "cg_tridiagonal",
    "fft",
    "fft2",
    "fft3",
    "gauss_jordan_solve",
    "ifft",
    "jacobi_eigen",
    "lu_factor",
    "lu_solve",
    "matvec",
    "pcr_solve",
    "qr_factor",
    "qr_solve",
]
