"""Cache LRU-eviction tests: byte budgets for long-lived servers.

``cache.prune(max_bytes=...)`` is what keeps a ``repro serve``
instance's disk cache bounded: stale fingerprint buckets go wholesale,
then the live bucket is trimmed oldest-access-first to the budget.
``get()`` touches entries (mtime) so recency is real access recency.
"""

import os
import time

import pytest

from repro.engine import Engine, EngineConfig
from repro.engine.cache import ResultCache
from repro.engine.jobs import RunRequest


def request(i: int) -> RunRequest:
    return RunRequest(benchmark="n-body", params={"n": i})


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache", fingerprint="f" * 64)


def fill(cache, count: int):
    requests = [request(i) for i in range(count)]
    for r in requests:
        cache.put(r, {"request_hash": r.content_hash(), "report": {"x": 1}})
    return requests


def backdate(cache, request, *, seconds: float) -> None:
    path = cache._entry_path(request)
    stamp = time.time() - seconds
    os.utime(path, (stamp, stamp))


class TestLruEviction:
    def test_prune_to_budget_evicts_oldest_access_first(self, cache):
        requests = fill(cache, 4)
        for age, r in zip((400, 300, 200, 100), requests):
            backdate(cache, r, seconds=age)
        entry_size = cache._entry_path(requests[0]).stat().st_size
        removed = cache.prune(max_bytes=2 * entry_size)
        assert removed == 2
        assert requests[0] not in cache and requests[1] not in cache
        assert requests[2] in cache and requests[3] in cache

    def test_get_refreshes_recency(self, cache):
        requests = fill(cache, 3)
        for r in requests:
            backdate(cache, r, seconds=500)
        # a hit on the oldest-by-write entry makes it most recent
        assert cache.get(requests[0]) is not None
        entry_size = cache._entry_path(requests[0]).stat().st_size
        cache.prune(max_bytes=entry_size)
        assert requests[0] in cache
        assert requests[1] not in cache and requests[2] not in cache

    def test_budget_zero_empties_bucket(self, cache):
        fill(cache, 3)
        assert cache.prune(max_bytes=0) == 3
        assert len(cache) == 0

    def test_budget_large_enough_keeps_everything(self, cache):
        fill(cache, 3)
        assert cache.prune(max_bytes=10**9) == 0
        assert len(cache) == 3

    def test_none_budget_keeps_legacy_prune_semantics(self, cache, tmp_path):
        fill(cache, 2)
        stale = tmp_path / "cache" / "0123456789abcdef" / "old.json"
        stale.parent.mkdir(parents=True)
        stale.write_text("{}")
        removed = cache.prune()
        assert removed == 1  # only the stale bucket's file
        assert len(cache) == 2

    def test_size_bytes_counts_all_buckets(self, cache, tmp_path):
        fill(cache, 2)
        stale = tmp_path / "cache" / "0123456789abcdef" / "old.json"
        stale.parent.mkdir(parents=True)
        stale.write_text('{"stale": true}')
        assert cache.size_bytes() == sum(
            p.stat().st_size
            for p in (tmp_path / "cache").rglob("*.json")
        )
        assert cache.size_bytes() > 0


class TestEngineIntegration:
    def test_cache_max_bytes_pruned_before_run(self, tmp_path):
        cache_dir = tmp_path / "cache"
        seed = Engine(EngineConfig(cache_dir=cache_dir))
        seed.run([request(16), request(17)])
        # age the first entry so the budget evicts deterministically
        cache = ResultCache(cache_dir)
        backdate(cache, request(16), seconds=600)
        entry = cache._entry_path(request(17)).stat().st_size
        engine = Engine(
            EngineConfig(cache_dir=cache_dir, cache_max_bytes=entry)
        )
        results = engine.run([request(17)])
        # the surviving entry is the one the run needed: cache hit
        assert results[0].status == "cached"
        assert engine.last_run_stats.phases["cache_pruned_files"] == 1.0
        assert request(16) not in cache

    def test_cli_flag_reaches_engine_config(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["suite", "--cache-dir", "c", "--cache-max-bytes", "4096"]
        )
        from repro.cli import _engine_config

        config = _engine_config(args)
        assert config.cache_max_bytes == 4096
        # the budget implies pruning even without --cache-prune
        assert not config.cache_prune
