"""Gauss-Jordan solution of dense linear systems.

Table 2: ``X(:)`` and ``X(:,:)`` — a single system with all axes
parallel.  Table 4 charges ``2 n^2 + n + 2`` FLOPs per main-loop
iteration and, per iteration, **1 Reduction, 3 Sends, 2 Gets and
2 Broadcasts** — the pivot search, the explicit row exchange through
the router, and the broadcasts of the pivot row and multiplier column
before the full-matrix update.
"""

from __future__ import annotations

import numpy as np

from repro.array.distarray import DistArray
from repro.layout.spec import parse_layout
from repro.machine.session import Session
from repro.metrics.access import LocalAccess
from repro.metrics.flops import FlopKind
from repro.metrics.patterns import CommPattern


def gauss_jordan_solve(A: DistArray, b: DistArray) -> DistArray:
    """Solve ``A x = b`` by Gauss-Jordan elimination with partial
    pivoting, reducing ``A`` all the way to the identity."""
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError(f"A must be square, got {A.shape}")
    n = A.shape[0]
    if b.shape != (n,):
        raise ValueError(f"b shape {b.shape} incompatible with A {A.shape}")
    session = A.session
    M = A.data.astype(np.float64, copy=True)
    x = b.data.astype(np.float64, copy=True)
    itemsize = M.itemsize
    off = A.layout.off_node_fraction(session.nodes)

    def _router(pattern: CommPattern, elements: int, detail: str) -> None:
        session.record_comm(
            pattern,
            bytes_network=round(elements * itemsize * off),
            bytes_local=elements * itemsize,
            rank=2,
            detail=detail,
        )

    with session.region("main_loop", iterations=max(1, n)):
        for k in range(n):
            # 1 Reduction: pivot search in column k, rows k..n-1.
            p = k + int(np.argmax(np.abs(M[k:, k])))
            session.charge_reduction_flops(n - k, 1, layout=A.layout)
            session.record_comm(
                CommPattern.REDUCTION,
                bytes_network=itemsize + 8,
                rank=1,
                detail="pivot search",
            )
            if M[p, k] == 0.0:
                raise np.linalg.LinAlgError("singular matrix in gauss_jordan")

            # Row exchange through the router: 2 Gets fetch the two rows,
            # 3 Sends write them back and swap the RHS entries.
            row_k = M[k, :].copy()
            row_p = M[p, :].copy()
            _router(CommPattern.GET, n, "fetch row k")
            _router(CommPattern.GET, n, "fetch row p")
            M[k, :] = row_p
            M[p, :] = row_k
            _router(CommPattern.SEND, n, "store row p -> k")
            _router(CommPattern.SEND, n, "store row k -> p")
            x[k], x[p] = x[p], x[k]
            _router(CommPattern.SEND, 2, "swap rhs")

            # Scale the pivot row: n + 1 divisions (row and RHS entry),
            # the paper's "n + 2" with the reciprocal.
            piv = M[k, k]
            M[k, :] /= piv
            x[k] /= piv
            session.recorder.charge_flops(FlopKind.DIV, n + 1)

            # 2 Broadcasts: pivot row along columns, multiplier column
            # along rows.
            col = M[:, k].copy()
            col[k] = 0.0
            session.record_comm(
                CommPattern.BROADCAST,
                bytes_network=n * itemsize if session.nodes > 1 else 0,
                bytes_local=n * itemsize,
                rank=2,
                detail="pivot row",
            )
            session.record_comm(
                CommPattern.BROADCAST,
                bytes_network=n * itemsize if session.nodes > 1 else 0,
                bytes_local=n * itemsize,
                rank=2,
                detail="multiplier column",
            )

            # Full-matrix rank-1 elimination: 2 n^2 FLOPs.
            M -= np.outer(col, M[k, :])
            x -= col * x[k]
            flops = 2 * n * n + 2 * n
            session.recorder.charge_raw_flops(flops)
            session.recorder.charge_compute_time(
                session.machine.compute_time(
                    flops * A.layout.critical_fraction(session.nodes),
                    tier=session.tier,
                    access=LocalAccess.DIRECT,
                )
            )
    return DistArray(x, parse_layout("(:)", x.shape), session, "x")


def make_system(
    session: Session, n: int, seed: int = 0
) -> tuple[DistArray, DistArray]:
    """A diagonally dominant random system with Table-2 layouts."""
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n)) + n * np.eye(n)
    b = rng.standard_normal(n)
    dA = DistArray(A, parse_layout("(:,:)", A.shape), session, "A")
    db = DistArray(b, parse_layout("(:)", b.shape), session, "b")
    # Table 4 memory for gauss-jordan: 28 n^2 + 16 n single — matrix,
    # update temporaries and pivot bookkeeping.
    session.declare_memory("A", (n, n), np.float64)
    session.declare_memory("update", (n, n), np.float64)
    session.declare_memory("b", (n,), np.float64)
    session.declare_memory("pivots", (n,), np.int64)
    return dA, db
