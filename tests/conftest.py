"""Shared fixtures for the DPF reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Session, cm5, workstation
from repro.machine.presets import generic_cluster


@pytest.fixture
def session() -> Session:
    """A fresh session on a 32-node CM-5."""
    return Session(cm5(32))


@pytest.fixture
def single_node_session() -> Session:
    """A session on a single shared-memory node (no network traffic)."""
    return Session(workstation())


@pytest.fixture
def trace_session() -> Session:
    """A 32-node CM-5 session retaining the full per-event comm trace."""
    return Session(cm5(32), detail_events=True)


@pytest.fixture
def session_factory():
    """Factory producing fresh CM-5 sessions (for suite runs)."""
    return lambda: Session(cm5(32))


@pytest.fixture
def cluster_session() -> Session:
    return Session(generic_cluster(16))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
