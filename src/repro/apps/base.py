"""Shared result type for application benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.metrics.access import LocalAccess


@dataclass
class AppResult:
    """Outcome of one application-benchmark run.

    ``observables`` carries physics/numerics quantities the test suite
    verifies (energies, residuals, conserved sums); ``state`` carries
    raw arrays for deeper verification against references.
    """

    name: str
    iterations: int
    problem_size: int
    local_access: LocalAccess
    observables: Dict[str, float] = field(default_factory=dict)
    state: Dict[str, Any] = field(default_factory=dict)
